// Table 6: BICO distortion in the static setting (m = 40k, 80k feature
// budgets) and under merge-&-reduce streaming. Paper shape: BICO is fast
// but its distortion is frequently above 5 and sometimes above 10 — the
// CF tree enforces no sensitivity lower bound.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"
#include "src/eval/harness.h"

int main() {
  using namespace fastcoreset;
  bench::Banner("Table 6 — BICO distortion, static and streaming",
                "BICO fails the distortion metric on many datasets at "
                "sensitivity-sampling coreset sizes");

  Rng data_rng(6);
  std::vector<Dataset> datasets = ArtificialSuite(bench::Scale(), data_rng);
  datasets.push_back(
      MakeAdultLike(static_cast<size_t>(20000 * bench::Scale()), data_rng));
  datasets.push_back(
      MakeMnistLike(static_cast<size_t>(8000 * bench::Scale()), data_rng));
  {
    auto star = MakeStarLike(
        static_cast<size_t>(30000 * bench::Scale()), data_rng);
    datasets.push_back(std::move(star));
  }
  datasets.push_back(
      MakeTaxiLike(static_cast<size_t>(50000 * bench::Scale()), data_rng));
  const size_t k = bench::K();
  const int runs = bench::Runs();

  TablePrinter table;
  table.SetHeader({"Dataset", "Static m=40k", "Static m=80k", "Streaming"});
  for (const auto& dataset : datasets) {
    std::vector<std::string> row = {dataset.name};
    auto run_cell = [&](bool streaming, size_t m) {
      api::CoresetSpec spec;
      spec.method = "bico";
      spec.k = k;
      spec.m = m;  // Doubles as the CF budget (BicoOptions default).
      const CoresetBuilder bico_builder = api::MakeBuilder(spec).value();
      const TrialStats stats = RunTrials(
          runs, 15000 + m + streaming, [&](Rng& rng) {
            Coreset coreset;
            if (streaming) {
              const size_t block =
                  std::max<size_t>(2 * m, dataset.points.rows() / 8);
              coreset = StreamingCompress(dataset.points, {}, bico_builder,
                                          block, m, rng);
            } else {
              coreset = api::Build(spec, dataset.points, {}, rng)->coreset;
            }
            DistortionOptions probe;
            probe.k = k;
            return CoresetDistortion(dataset.points, {}, coreset, probe, rng);
          });
      return bench::DistortionCell(stats.value.Mean(),
                                   stats.value.Variance());
    };
    row.push_back(run_cell(false, 40 * k));
    row.push_back(run_cell(false, 80 * k));
    row.push_back(run_cell(true, 40 * k));
    table.AddRow(row);
    std::printf("done: %s\n", dataset.name.c_str());
    std::fflush(stdout);
  }

  std::printf("\nTable 6 — BICO distortion (*fail > 5*, **catastrophic > "
              "10**)\n");
  table.Print();
  std::printf("\nExpected shape: several cells above 5, static and "
              "streaming alike; doubling the budget helps only "
              "moderately.\n");
  return 0;
}
