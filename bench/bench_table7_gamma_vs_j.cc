// Table 7: the interpolation knob. Gaussian-mixture imbalance gamma in
// {0, 1, 3, 5} versus the welterweight candidate-solution size j in
// {1 (lightweight), 2, log k, sqrt k, k (Fast-Coreset)}. Paper shape: all
// methods fine at gamma <= 1; as gamma grows only large-j methods keep
// low distortion ("how good must the approximate solution be before
// sensitivity sampling can handle class imbalance?").

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"
#include "src/eval/harness.h"

int main() {
  using namespace fastcoreset;
  bench::Banner("Table 7 — imbalance gamma vs candidate-solution size j",
                "larger class imbalance requires larger j for reliable "
                "compression");

  const size_t n = static_cast<size_t>(50000 * bench::Scale());
  const size_t d = 50, kappa = 50;
  const size_t k = bench::K();
  const size_t m = 4000;
  const int runs = bench::Runs();

  struct JChoice {
    std::string label;
    size_t j;   // Welterweight candidate size; 0 = the library default
                // (ceil(log2 k), reported back via j_effective).
    bool fast;  // The Fast-Coreset (j = k) row.
  };
  std::vector<JChoice> choices = {
      {"LW Coreset (j=1)", 1, false},
      {"j = log k (default)", 0, false},
      {"j = 2", 2, false},
      {"j = sqrt k",
       static_cast<size_t>(std::lround(std::sqrt(static_cast<double>(k)))),
       false},
      {"Fast Coreset (j=k)", 0, true},
  };
  const std::vector<double> gammas = {0.0, 1.0, 3.0, 5.0};

  TablePrinter table;
  table.SetHeader(
      {"method", "gamma=0", "gamma=1", "gamma=3", "gamma=5"});
  for (auto& choice : choices) {
    std::vector<std::string> row = {choice.label};
    for (double gamma : gammas) {
      const TrialStats stats = RunTrials(
          runs,
          17000 + (choice.fast ? 997 : choice.j * 31) +
              static_cast<uint64_t>(gamma),
          [&](Rng& rng) {
            const Matrix points =
                GenerateGaussianMixture(n, d, kappa, gamma, rng);
            api::CoresetSpec spec;
            spec.k = k;
            spec.m = m;
            if (choice.fast) {
              spec.method = "fast_coreset";
            } else {
              spec.method = "welterweight";
              api::WelterweightOptions options;
              options.j = choice.j;
              spec.options = options;
            }
            const api::BuildResult result =
                api::Build(spec, points, {}, rng).value();
            if (!choice.fast && choice.j == 0) {
              // Surface the default the facade actually used.
              choice.label =
                  "j = log k = " +
                  std::to_string(result.diagnostics.j_effective);
              row[0] = choice.label;
            }
            const Coreset& coreset = result.coreset;
            DistortionOptions probe;
            probe.k = k;
            return CoresetDistortion(points, {}, coreset, probe, rng);
          });
      row.push_back(bench::DistortionCell(stats.value.Mean(),
                                          stats.value.Variance()));
    }
    table.AddRow(row);
    std::printf("done: %s\n", choice.label.c_str());
    std::fflush(stdout);
  }

  std::printf("\nTable 7 — distortion as gamma (imbalance) and j vary\n");
  table.Print();
  std::printf("\nExpected shape: the top rows degrade as gamma grows; the "
              "bottom rows (large j) stay near 1.\n");
  return 0;
}
