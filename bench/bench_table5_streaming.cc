// Table 5 + Figure 5: streaming (merge-&-reduce) vs static distortion and
// runtime for the sampling spectrum on the artificial datasets plus the
// Adult- and MNIST-like stand-ins.
//
// Paper shape (the surprising one): the accelerated methods perform *at
// least as well* under composition as statically — merge-&-reduce's
// non-uniformity can even rescue uniform sampling on outlier-heavy data.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"
#include "src/eval/harness.h"

int main() {
  using namespace fastcoreset;
  bench::Banner("Table 5 / Figure 5 — streaming vs static distortion",
                "accelerated methods do not degrade under merge-&-reduce "
                "composition");

  Rng data_rng(5);
  std::vector<Dataset> datasets = ArtificialSuite(bench::Scale(), data_rng);
  datasets.push_back(
      MakeAdultLike(static_cast<size_t>(20000 * bench::Scale()), data_rng));
  datasets.push_back(
      MakeMnistLike(static_cast<size_t>(10000 * bench::Scale()), data_rng));
  const size_t k = bench::K();
  const size_t m = 40 * k;
  const int runs = bench::Runs();
  const std::vector<std::string> samplers = {"uniform", "lightweight",
                                             "welterweight", "fast_coreset"};

  TablePrinter table;
  TablePrinter runtime_table;
  std::vector<std::string> header = {"Dataset"};
  for (const std::string& method : samplers) {
    header.push_back(method + " strm");
    header.push_back(method + " stat");
  }
  table.SetHeader(header);
  runtime_table.SetHeader(header);

  for (const auto& dataset : datasets) {
    std::vector<std::string> row = {dataset.name};
    std::vector<std::string> runtime_row = {dataset.name};
    const size_t block =
        std::max<size_t>(2 * m, dataset.points.rows() / 8);
    for (size_t s = 0; s < samplers.size(); ++s) {
      api::CoresetSpec spec;
      spec.method = samplers[s];
      spec.k = k;
      spec.m = m;
      // One spec serves both pipelines: statically via Build, under
      // merge-&-reduce via the CoresetBuilder adapter.
      const CoresetBuilder builder = api::MakeBuilder(spec).value();
      for (const bool streaming : {true, false}) {
        double build_seconds = 0.0;
        const TrialStats stats = RunTrials(
            runs, 13000 + 29 * s + streaming, [&](Rng& rng) {
              Timer timer;
              Coreset coreset;
              if (streaming) {
                coreset = StreamingCompress(dataset.points, {}, builder,
                                            block, m, rng);
              } else {
                coreset = api::Build(spec, dataset.points, {}, rng)->coreset;
              }
              build_seconds += timer.Seconds();
              DistortionOptions probe;
              probe.k = k;
              return CoresetDistortion(dataset.points, {}, coreset, probe,
                                       rng);
            });
        row.push_back(bench::DistortionCell(stats.value.Mean(),
                                            stats.value.Variance()));
        runtime_row.push_back(TablePrinter::Num(build_seconds / runs));
      }
    }
    table.AddRow(row);
    runtime_table.AddRow(runtime_row);
    std::printf("done: %s\n", dataset.name.c_str());
    std::fflush(stdout);
  }

  std::printf("\nTable 5 — distortion, streaming (strm) vs static (stat)\n");
  table.Print();
  std::printf("\nFigure 5 (bottom) — mean construction seconds\n");
  runtime_table.Print();
  std::printf("\nExpected shape: streaming columns are no worse than their "
              "static counterparts (often better on c-outlier/Geometric).\n");
  return 0;
}
