// Figure 3: the qualitative failure of lightweight coresets. A 2-D
// Gaussian mixture of 100k points contains a small (~400 point) cluster
// close to the dataset's center of mass. Lightweight coresets sample by
// distance-from-mean and miss it; Fast-Coresets (j = k sensitivities)
// find it. We report per-cluster coverage and dump CSVs for plotting.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/csv_loader.h"
#include "src/data/generators.h"

namespace {

using namespace fastcoreset;

/// Counts coreset points within `radius` of a cluster center.
size_t Coverage(const Coreset& coreset, double cx, double cy, double radius) {
  size_t count = 0;
  for (size_t i = 0; i < coreset.size(); ++i) {
    const double dx = coreset.points.At(i, 0) - cx;
    const double dy = coreset.points.At(i, 1) - cy;
    if (dx * dx + dy * dy <= radius * radius) ++count;
  }
  return count;
}

}  // namespace

int main() {
  bench::Banner("Figure 3 — lightweight coresets miss a small central "
                "cluster",
                "clusters near the center of mass get almost no "
                "1-means sensitivity");

  Rng rng(3);
  const size_t n = static_cast<size_t>(100000 * bench::Scale());
  const size_t big_clusters = 8;
  const size_t small_cluster = 400;
  const size_t per_big = (n - small_cluster) / big_clusters;

  // Big clusters on a ring of radius 100 (center of mass ~ origin); the
  // small cluster sits near the origin — close to the dataset mean.
  Matrix points(per_big * big_clusters + small_cluster, 2);
  size_t row_idx = 0;
  std::vector<std::pair<double, double>> centers;
  for (size_t c = 0; c < big_clusters; ++c) {
    const double angle =
        2.0 * M_PI * static_cast<double>(c) / big_clusters;
    const double cx = 100.0 * std::cos(angle);
    const double cy = 100.0 * std::sin(angle);
    centers.emplace_back(cx, cy);
    for (size_t p = 0; p < per_big; ++p) {
      points.At(row_idx, 0) = cx + 4.0 * rng.NextGaussian();
      points.At(row_idx, 1) = cy + 4.0 * rng.NextGaussian();
      ++row_idx;
    }
  }
  const double small_cx = 8.0, small_cy = 5.0;  // Near the center of mass.
  centers.emplace_back(small_cx, small_cy);
  for (size_t p = 0; p < small_cluster; ++p) {
    points.At(row_idx, 0) = small_cx + 0.8 * rng.NextGaussian();
    points.At(row_idx, 1) = small_cy + 0.8 * rng.NextGaussian();
    ++row_idx;
  }

  const size_t m = 200;
  const size_t k = big_clusters + 1;
  api::CoresetSpec lightweight_spec;
  lightweight_spec.method = "lightweight";
  lightweight_spec.k = k;
  lightweight_spec.m = m;
  const Coreset lightweight =
      api::Build(lightweight_spec, points, {}, rng)->coreset;

  api::CoresetSpec fast_spec;
  fast_spec.method = "fast_coreset";
  fast_spec.k = k;
  fast_spec.m = m;
  api::FastOptions fast_options;
  fast_options.use_jl = false;
  fast_spec.options = fast_options;
  const Coreset fast = api::Build(fast_spec, points, {}, rng)->coreset;

  TablePrinter table;
  table.SetHeader({"cluster", "points", "lightweight hits", "fast hits"});
  for (size_t c = 0; c < centers.size(); ++c) {
    const bool small = c == centers.size() - 1;
    table.AddRow(
        {small ? "SMALL central" : "ring " + std::to_string(c),
         std::to_string(small ? small_cluster : per_big),
         std::to_string(Coverage(lightweight, centers[c].first,
                                 centers[c].second, small ? 4.0 : 16.0)),
         std::to_string(Coverage(fast, centers[c].first, centers[c].second,
                                 small ? 4.0 : 16.0))});
  }
  table.Print();

  SaveCsv("fig3_dataset_sample.csv",
          points.SelectRows([&] {
            std::vector<size_t> rows;
            for (size_t i = 0; i < points.rows(); i += 37) rows.push_back(i);
            return rows;
          }()));
  SaveCsv("fig3_lightweight_coreset.csv", lightweight.points);
  SaveCsv("fig3_fast_coreset.csv", fast.points);
  std::printf("\nWrote fig3_dataset_sample.csv, fig3_lightweight_coreset.csv,"
              " fig3_fast_coreset.csv for plotting.\n");
  std::printf("Expected shape: the SMALL central row has ~0 lightweight "
              "hits but > 0 fast-coreset hits.\n");
  return 0;
}
