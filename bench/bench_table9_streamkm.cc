// Table 9: StreamKM++ distortion on the artificial datasets (m = 40k).
// Paper shape: distortions around 1.4 - 2.5 — worse than sensitivity
// sampling, because StreamKM++'s guarantee needs coreset sizes logarithmic
// in n and exponential in d.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"
#include "src/eval/harness.h"

int main() {
  using namespace fastcoreset;
  bench::Banner("Table 9 — StreamKM++ distortion on artificial datasets",
                "StreamKM++ needs much larger coresets than sensitivity "
                "sampling for comparable accuracy");

  Rng data_rng(9);
  const auto datasets = ArtificialSuite(bench::Scale(), data_rng);
  const size_t k = bench::K();
  const size_t m = 40 * k;
  const int runs = bench::Runs();

  api::CoresetSpec skm_spec;
  skm_spec.method = "stream_km";
  skm_spec.k = k;
  skm_spec.m = m;
  const CoresetBuilder skm_builder = api::MakeBuilder(skm_spec).value();
  api::CoresetSpec sens_spec;
  sens_spec.method = "sensitivity";
  sens_spec.k = k;
  sens_spec.m = m;

  TablePrinter table;
  table.SetHeader({"Dataset", "StreamKM++", "Sensitivity (reference)"});
  for (const auto& dataset : datasets) {
    const TrialStats skm = RunTrials(runs, 21000, [&](Rng& rng) {
      const size_t block = std::max<size_t>(2 * m, dataset.points.rows() / 8);
      const Coreset coreset = StreamingCompress(
          dataset.points, {}, skm_builder, block, m, rng);
      DistortionOptions probe;
      probe.k = k;
      return CoresetDistortion(dataset.points, {}, coreset, probe, rng);
    });
    const TrialStats sens = RunTrials(runs, 21001, [&](Rng& rng) {
      const Coreset coreset =
          api::Build(sens_spec, dataset.points, {}, rng)->coreset;
      DistortionOptions probe;
      probe.k = k;
      return CoresetDistortion(dataset.points, {}, coreset, probe, rng);
    });
    table.AddRow({dataset.name,
                  bench::DistortionCell(skm.value.Mean(),
                                        skm.value.Variance()),
                  bench::DistortionCell(sens.value.Mean(),
                                        sens.value.Variance())});
    std::printf("done: %s\n", dataset.name.c_str());
    std::fflush(stdout);
  }

  std::printf("\nTable 9 — StreamKM++ vs sensitivity-sampling distortion\n");
  table.Print();
  std::printf("\nExpected shape: the StreamKM++ column is consistently "
              "above the sensitivity column.\n");
  return 0;
}
