// Seeding landscape (extension bench): the paper's introduction surveys
// fast seeding methods — k-means++ (O(ndk)), k-means|| (few parallel
// rounds), AFK-MC^2 (sublinear per center, reference [5]), Fast-kmeans++
// (quadtree, the paper's choice) and our HST tree-greedy (§8.4). This
// bench measures, for each: seeding time, solution cost, and — the
// paper's real question — the distortion of the sensitivity-sampling
// coreset built *from that seed*, showing that an O(polylog) seed is all
// a coreset needs.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/clustering/afkmc2.h"
#include "src/clustering/fast_kmeans_plus_plus.h"
#include "src/clustering/kmeans_parallel.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/tree_greedy.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"
#include "src/eval/harness.h"
#include "src/geometry/distance.h"
#include "src/geometry/jl_projection.h"

namespace {

using namespace fastcoreset;

using SeedFn = Clustering (*)(const Matrix&, size_t, Rng&);

Clustering SeedKmpp(const Matrix& points, size_t k, Rng& rng) {
  return KMeansPlusPlus(points, {}, k, 2, rng);
}
Clustering SeedParallel(const Matrix& points, size_t k, Rng& rng) {
  KMeansParallelOptions options;
  return KMeansParallel(points, {}, k, options, rng);
}
Clustering SeedAfkmc2(const Matrix& points, size_t k, Rng& rng) {
  Afkmc2Options options;
  return Afkmc2(points, {}, k, options, rng);
}
/// Algorithm 1 steps 1+3 around a tree-based seeder: seed on a JL
/// projection (quadtrees fragment in high dimension — the reason the
/// paper projects first), then move each cluster's center to its mean in
/// the original space and recompute assignment costs there.
Clustering ProjectSeedRefine(const Matrix& points, size_t k, Rng& rng,
                             bool tree_greedy) {
  const size_t target = JlTargetDim(k, 0.7, points.cols());
  const Matrix projected = target < points.cols()
                               ? JlProject(points, target, rng)
                               : points;
  Clustering seeded;
  if (tree_greedy) {
    TreeGreedyOptions options;
    seeded = TreeGreedySeeding(projected, {}, k, options, rng);
  } else {
    FastKMeansPlusPlusOptions options;
    seeded = FastKMeansPlusPlus(projected, {}, k, options, rng);
  }
  // Refine: original-space cluster means under the seeded assignment.
  const size_t clusters = seeded.centers.rows();
  Matrix centers(clusters, points.cols());
  std::vector<double> mass(clusters, 0.0);
  for (size_t i = 0; i < points.rows(); ++i) {
    const size_t c = seeded.assignment[i];
    mass[c] += 1.0;
    const auto row = points.Row(i);
    auto center = centers.Row(c);
    for (size_t j = 0; j < points.cols(); ++j) center[j] += row[j];
  }
  for (size_t c = 0; c < clusters; ++c) {
    if (mass[c] <= 0.0) continue;
    auto center = centers.Row(c);
    for (size_t j = 0; j < points.cols(); ++j) center[j] /= mass[c];
  }
  Clustering result;
  result.z = 2;
  result.centers = std::move(centers);
  result.assignment = seeded.assignment;
  result.point_costs.resize(points.rows());
  result.total_cost = 0.0;
  for (size_t i = 0; i < points.rows(); ++i) {
    result.point_costs[i] = SquaredL2(
        points.Row(i), result.centers.Row(result.assignment[i]));
    result.total_cost += result.point_costs[i];
  }
  return result;
}

Clustering SeedFast(const Matrix& points, size_t k, Rng& rng) {
  return ProjectSeedRefine(points, k, rng, /*tree_greedy=*/false);
}
Clustering SeedTreeGreedy(const Matrix& points, size_t k, Rng& rng) {
  return ProjectSeedRefine(points, k, rng, /*tree_greedy=*/true);
}

}  // namespace

int main() {
  bench::Banner("Seeding comparison — time, cost, and coreset quality per "
                "seed (extension)",
                "any O(polylog)-approximate seed yields an equally good "
                "sensitivity-sampling coreset (Fact 3.1)");

  const size_t n = static_cast<size_t>(50000 * bench::Scale());
  const size_t k = bench::K();
  const size_t m = 40 * k;
  const int runs = bench::Runs();
  Rng data_rng(2024);
  const Matrix points =
      GenerateGaussianMixture(n, 30, k, /*gamma=*/2.0, data_rng);

  struct Method {
    const char* name;
    SeedFn seed;
  };
  const Method methods[] = {
      {"k-means++ (O(ndk))", &SeedKmpp},
      {"k-means|| (5 rounds)", &SeedParallel},
      {"AFK-MC^2 (chain 200)", &SeedAfkmc2},
      {"Fast-kmeans++ (JL + quadtree + refine)", &SeedFast},
      {"HST tree-greedy (JL + refine, §8.4)", &SeedTreeGreedy},
  };

  TablePrinter table;
  table.SetHeader({"seeder", "seed seconds", "seed cost",
                   "coreset distortion"});
  for (const Method& method : methods) {
    RunningStat seconds, cost, distortion;
    for (int t = 0; t < runs; ++t) {
      Rng rng(4000 + t);
      Timer timer;
      const Clustering seed = method.seed(points, k, rng);
      seconds.Add(timer.Seconds());
      cost.Add(seed.total_cost);
      const Coreset coreset =
          api::SampleFromSolution(points, {}, seed, m, rng);
      DistortionOptions probe;
      probe.k = k;
      distortion.Add(CoresetDistortion(points, {}, coreset, probe, rng));
    }
    table.AddRow({method.name, TablePrinter::Num(seconds.Mean()),
                  TablePrinter::Num(cost.Mean()),
                  TablePrinter::MeanVar(distortion.Mean(),
                                        distortion.Variance())});
    std::printf("done: %s\n", method.name);
    std::fflush(stdout);
  }

  std::printf("\nSeeding landscape on a gamma=2 Gaussian mixture "
              "(n=%zu, d=30, k=%zu)\n", n, k);
  table.Print();
  std::printf("\nExpected shape: seed costs differ by large factors, but "
              "every coreset-distortion cell sits near 1 — the coreset "
              "oversampling absorbs the seed's approximation factor.\n");
  return 0;
}
