// Shared helpers for the experiment binaries. Every bench honours:
//   FC_SCALE — dataset size multiplier (default 1.0; the built-in sizes
//              are already scaled from the paper's to a laptop budget)
//   FC_RUNS  — repetitions per cell (default 3; the paper uses 5)
//   FC_K     — cluster count (default 100, as in the paper's small-k runs)

#ifndef FASTCORESET_BENCH_BENCH_UTIL_H_
#define FASTCORESET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/common/env.h"
#include "src/common/table_printer.h"

namespace fastcoreset {
namespace bench {

inline double Scale() { return EnvDouble("FC_SCALE", 1.0); }
inline int Runs() { return static_cast<int>(EnvInt("FC_RUNS", 3)); }
inline size_t K() { return static_cast<size_t>(EnvInt("FC_K", 100)); }

/// Formats a distortion cell with the paper's failure markers:
/// "> 5" bold (here: *...*), "> 10" underlined (here: **...**).
inline std::string DistortionCell(double mean, double variance) {
  const std::string body = TablePrinter::MeanVar(mean, variance);
  if (mean > 10.0) return "**" + body + "**";
  if (mean > 5.0) return "*" + body + "*";
  return body;
}

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* claim) {
  std::printf(
      "\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("FC_SCALE=%.2f FC_RUNS=%d FC_K=%zu\n", Scale(), Runs(), K());
  std::printf(
      "================================================================\n\n");
}

}  // namespace bench
}  // namespace fastcoreset

#endif  // FASTCORESET_BENCH_BENCH_UTIL_H_
