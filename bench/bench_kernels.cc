// Distance-kernel microbench: serial scalar nearest-center assignment (the
// pre-overhaul hot path) vs the blocked norm-cached kernel, single-threaded
// and across the ParallelFor substrate. Emits BENCH_kernels.json so the
// perf trajectory of the Õ(nd) accounting has machine-readable data.
//
// Honours FC_RUNS (repetitions; best-of is reported) and FC_SCALE (row
// multiplier). FC_BENCH_THREADS (default 4) picks the threaded column.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/data/generators.h"
#include "src/geometry/distance.h"

namespace fastcoreset {
namespace {

// The seed's scalar hot path, reproduced verbatim as the baseline: one
// serial FindNearestCenter sweep (direct (x-c)^2 form, no norm caching,
// no blocking, no threads).
void SerialScalarAssign(const Matrix& points, const Matrix& centers,
                        std::vector<size_t>* assignment,
                        std::vector<double>* sq_dists) {
  assignment->resize(points.rows());
  sq_dists->resize(points.rows());
  for (size_t i = 0; i < points.rows(); ++i) {
    const NearestCenter nearest = FindNearestCenter(points.Row(i), centers);
    (*assignment)[i] = nearest.index;
    (*sq_dists)[i] = nearest.sq_dist;
  }
}

struct Config {
  size_t n, d, k;
};

struct Row {
  Config config;
  double serial_scalar_ms = 0.0;
  double blocked_1t_ms = 0.0;
  double blocked_mt_ms = 0.0;
  bool outputs_match = false;
  bool thread_invariant = false;
};

template <typename Fn>
double BestOfRuns(int runs, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < runs; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.Millis());
  }
  return best;
}

Row RunConfig(const Config& config, size_t threads, int runs, Rng& rng) {
  const Matrix points = GenerateGaussianMixture(config.n, config.d,
                                                /*kappa=*/config.k,
                                                /*gamma=*/0.5, rng);
  Matrix centers(config.k, config.d);
  for (size_t c = 0; c < config.k; ++c) {
    centers.CopyRowFrom(points, rng.NextIndex(points.rows()), c);
  }

  Row row;
  row.config = config;
  row.config.n = points.rows();  // Generators may round the row count.

  std::vector<size_t> scalar_idx, blocked_idx, threaded_idx;
  std::vector<double> scalar_sq, blocked_sq, threaded_sq;

  row.serial_scalar_ms = BestOfRuns(runs, [&] {
    SerialScalarAssign(points, centers, &scalar_idx, &scalar_sq);
  });
  SetNumThreads(1);
  row.blocked_1t_ms = BestOfRuns(runs, [&] {
    AssignToNearest(points, centers, &blocked_idx, &blocked_sq);
  });
  SetNumThreads(threads);
  row.blocked_mt_ms = BestOfRuns(runs, [&] {
    AssignToNearest(points, centers, &threaded_idx, &threaded_sq);
  });
  ResetNumThreads();

  row.outputs_match = blocked_idx == scalar_idx;
  row.thread_invariant =
      blocked_idx == threaded_idx && blocked_sq == threaded_sq;
  return row;
}

void WriteJson(const std::vector<Row>& rows, size_t threads,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"kernels\",\n  \"threads\": %zu,\n",
               threads);
  std::fprintf(out, "  \"configs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        out,
        "    {\"n\": %zu, \"d\": %zu, \"k\": %zu, "
        "\"serial_scalar_ms\": %.3f, \"blocked_1t_ms\": %.3f, "
        "\"blocked_%zut_ms\": %.3f, \"speedup_blocked_1t\": %.2f, "
        "\"speedup_blocked_%zut\": %.2f, \"outputs_match\": %s, "
        "\"thread_invariant\": %s}%s\n",
        row.config.n, row.config.d, row.config.k, row.serial_scalar_ms,
        row.blocked_1t_ms, threads, row.blocked_mt_ms,
        row.serial_scalar_ms / row.blocked_1t_ms, threads,
        row.serial_scalar_ms / row.blocked_mt_ms,
        row.outputs_match ? "true" : "false",
        row.thread_invariant ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace
}  // namespace fastcoreset

int main() {
  using namespace fastcoreset;
  const size_t threads =
      static_cast<size_t>(EnvInt("FC_BENCH_THREADS", 4));
  const int runs = std::max(1, bench::Runs());
  const double scale = bench::Scale();

  bench::Banner("Kernel bench — nearest-center assignment",
                "blocked + threaded kernel beats the serial scalar path");

  auto scaled = [&](size_t n) {
    return std::max<size_t>(1000, static_cast<size_t>(n * scale));
  };
  const std::vector<Config> configs = {
      {scaled(50000), 16, 10},
      {scaled(50000), 32, 64},
      {scaled(20000), 64, 128},
  };

  Rng rng(20240601);
  std::vector<Row> rows;
  std::printf("%10s %4s %5s | %10s %10s %10s | %7s %7s\n", "n", "d", "k",
              "scalar ms", "blk 1t ms", "blk Nt ms", "x(1t)", "x(Nt)");
  for (const Config& config : configs) {
    const Row row = RunConfig(config, threads, runs, rng);
    rows.push_back(row);
    std::printf("%10zu %4zu %5zu | %10.2f %10.2f %10.2f | %7.2f %7.2f %s%s\n",
                row.config.n, row.config.d, row.config.k,
                row.serial_scalar_ms, row.blocked_1t_ms, row.blocked_mt_ms,
                row.serial_scalar_ms / row.blocked_1t_ms,
                row.serial_scalar_ms / row.blocked_mt_ms,
                row.outputs_match ? "" : "[MISMATCH] ",
                row.thread_invariant ? "" : "[THREAD-VARIANT]");
  }

  WriteJson(rows, threads, "BENCH_kernels.json");
  std::printf("\nwrote BENCH_kernels.json (threads=%zu, runs=%d)\n", threads,
              runs);
  return 0;
}
