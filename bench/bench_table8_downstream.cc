// Table 8: downstream solution quality. For each real-like dataset,
// compress with each fast method, run k-means++ (k = 50) + Lloyd on the
// compression, and report cost(P, C_S) on the full data with identical
// initialization seeds within each row. Paper shape: among methods with
// small distortion, no method consistently wins — compression quality,
// not method identity, drives downstream cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/lloyd.h"
#include "src/data/real_like.h"

int main() {
  using namespace fastcoreset;
  bench::Banner("Table 8 — downstream k-means cost from each compression",
                "no sampling method consistently yields the best solutions "
                "once distortion is small");

  Rng data_rng(8);
  const auto suite = RealLikeSuite(bench::Scale(), data_rng);
  const size_t k = 50;
  const std::vector<std::string> samplers = {"uniform", "lightweight",
                                             "welterweight", "fast_coreset"};

  TablePrinter table;
  std::vector<std::string> header = {"Dataset"};
  for (const std::string& method : samplers) header.push_back(method);
  table.SetHeader(header);

  size_t row_seed = 0;
  for (const auto& dataset : suite) {
    const size_t m =
        dataset.points.rows() > 100000 ? 20000 : 4000;  // Paper's setup.
    std::vector<std::string> row = {dataset.name};
    ++row_seed;
    for (size_t s = 0; s < samplers.size(); ++s) {
      // Identical initialization within a row: the coreset build gets a
      // method-specific seed, the solver a row-fixed one.
      api::CoresetSpec spec;
      spec.method = samplers[s];
      spec.k = k;
      spec.m = std::min(m, dataset.points.rows());
      spec.seed = 19000 + 97 * s + row_seed;
      const Coreset coreset = api::Build(spec, dataset.points)->coreset;
      Rng solve_rng(500 + row_seed);  // Same within the row.
      const Clustering seed =
          KMeansPlusPlus(coreset.points, coreset.weights, k, 2, solve_rng);
      const Clustering refined =
          LloydKMeans(coreset.points, coreset.weights, seed.centers);
      const double cost = CostToCenters(dataset.points, {}, refined.centers, 2);
      row.push_back(TablePrinter::Num(cost, 3));
    }
    table.AddRow(row);
    std::printf("done: %s\n", dataset.name.c_str());
    std::fflush(stdout);
  }

  std::printf("\nTable 8 — cost(P, C_S), k = 50, identical inits per row\n");
  table.Print();
  std::printf("\nExpected shape: columns within a row agree within a few "
              "percent wherever the method's distortion is small; no column "
              "dominates.\n");
  return 0;
}
