// Figure 4: coreset distortion under the k-median objective (z = 1),
// m in {40k, 60k, 80k}, one run per cell as in the paper ("to emphasize
// the random nature of compression quality"). Shape: k-median distortions
// are consistent with the k-means ones — same methods fail on the same
// datasets.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"

int main() {
  using namespace fastcoreset;
  bench::Banner("Figure 4 — k-median coreset distortion (one run per cell)",
                "k-median distortions mirror the k-means results");

  Rng data_rng(14);
  std::vector<Dataset> datasets = ArtificialSuite(bench::Scale(), data_rng);
  {
    auto real = RealLikeSuite(bench::Scale(), data_rng);
    for (auto& dataset : real) datasets.push_back(std::move(dataset));
  }
  const size_t k = bench::K();
  const std::vector<size_t> m_scalars = {40, 60, 80};
  const std::vector<std::string> samplers = {"uniform", "lightweight",
                                             "welterweight", "fast_coreset"};

  TablePrinter table;
  std::vector<std::string> header = {"Dataset"};
  for (const std::string& method : samplers) {
    for (size_t ms : m_scalars) {
      header.push_back(method.substr(0, 4) + " " + std::to_string(ms) + "k");
    }
  }
  table.SetHeader(header);

  uint64_t seed = 23000;
  for (const auto& dataset : datasets) {
    std::vector<std::string> row = {dataset.name};
    for (const std::string& method : samplers) {
      for (size_t ms : m_scalars) {
        api::CoresetSpec spec;
        spec.method = method;
        spec.k = k;
        spec.m = ms * k;
        spec.z = 1;
        Rng rng(++seed);
        const Coreset coreset =
            api::Build(spec, dataset.points, {}, rng)->coreset;
        DistortionOptions probe;
        probe.k = k;
        probe.z = 1;
        const double distortion =
            CoresetDistortion(dataset.points, {}, coreset, probe, rng);
        std::string cell = TablePrinter::Num(distortion);
        if (distortion > 10.0) {
          cell = "**" + cell + "**";
        } else if (distortion > 5.0) {
          cell = "*" + cell + "*";
        }
        row.push_back(cell);
      }
    }
    table.AddRow(row);
    std::printf("done: %s\n", dataset.name.c_str());
    std::fflush(stdout);
  }

  std::printf("\nFigure 4 — k-median distortion (single runs; *fail > 5*)\n");
  table.Print();
  std::printf("\nExpected shape: failures in the Uniform columns on "
              "c-outlier / Geometric / Taxi / Star; FastCoreset columns "
              "stay near 1.\n");
  return 0;
}
