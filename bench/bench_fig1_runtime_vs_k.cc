// Figure 1: coreset construction runtime as k grows (50, 100, 200, 400)
// for standard sensitivity sampling vs Fast-Coresets. The paper's shape:
// sensitivity sampling slows down linearly in k (its k-means++ seeding is
// O(nkd)); Fast-Coresets grow only logarithmically.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/real_like.h"
#include "src/eval/harness.h"

int main() {
  using namespace fastcoreset;
  bench::Banner("Figure 1 — coreset runtime vs k",
                "sensitivity sampling scales linearly in k, Fast-Coresets "
                "near-logarithmically");

  Rng data_rng(11);
  std::vector<Dataset> datasets = ArtificialSuite(bench::Scale(), data_rng);
  datasets.push_back(
      MakeAdultLike(static_cast<size_t>(20000 * bench::Scale()), data_rng));
  const int runs = bench::Runs();
  const std::vector<size_t> ks = {50, 100, 200, 400};

  for (const char* method : {"sensitivity", "fast_coreset"}) {
    const bool fast = std::string(method) == "fast_coreset";
    TablePrinter table;
    table.SetHeader({"Dataset", "k=50", "k=100", "k=200", "k=400"});
    for (const auto& dataset : datasets) {
      std::vector<std::string> row = {dataset.name};
      for (size_t k : ks) {
        api::CoresetSpec spec;
        spec.method = method;
        spec.k = k;
        spec.m = 40 * k;
        const TrialStats stats = RunTrials(
            runs, 9000 + k + (fast ? 1 : 0), [&](Rng& rng) {
              Timer timer;
              (void)api::Build(spec, dataset.points, {}, rng).value();
              return timer.Seconds();
            });
        row.push_back(TablePrinter::MeanVar(stats.value.Mean(),
                                            stats.value.Variance()));
      }
      table.AddRow(row);
      std::fflush(stdout);
    }
    std::printf("\n%s — seconds per coreset (mean ± var)\n", method);
    table.Print();
  }
  std::printf("\nExpected shape: sensitivity rows grow ~8x from k=50 to "
              "k=400; Fast-Coreset rows grow far slower.\n");
  return 0;
}
