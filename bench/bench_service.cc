// Service-layer throughput bench: requests/sec through CoresetService for
// cold builds (distinct seeds -> every request misses and builds) vs
// cached builds (one request repeated -> every request hits), at 1 and 4
// shards, plus the task-graph shard-overlap ratio (the same shards=4
// rebuild scheduled concurrently vs sequentially at 4 pool threads), plus
// the socket-transport cached throughput (4 concurrent loopback clients
// pipelining the warmed request through NetServer).
// Emits BENCH_service.json; the CI perf gate compares its "gate" ratios
// (machine-relative, so a slower runner cannot fail them) against
// bench/baselines/BENCH_service_baseline.json.
//
// Honours FC_RUNS (cold requests per cell; best-of is NOT used here —
// throughput is an average over the batch), FC_SCALE (row multiplier) and
// FC_K (cluster count).

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/net/net_server.h"
#include "src/service/service.h"

namespace fastcoreset {
namespace {

struct Cell {
  size_t shards = 1;
  double cold_rps = 0.0;    ///< Requests/sec, every request builds.
  double cached_rps = 0.0;  ///< Requests/sec, every request hits.
  double cold_seconds_per_request = 0.0;
  double cached_seconds_per_request = 0.0;
};

service::BuildRequest RequestFor(size_t k, uint64_t seed, size_t shards) {
  service::BuildRequest request;
  request.dataset = "bench";
  request.spec.method = "fast_coreset";
  request.spec.k = k;
  request.spec.seed = seed;
  request.shards = shards;
  return request;
}

Cell Measure(service::CoresetService& svc, size_t k, size_t shards,
             int cold_requests, int cached_requests) {
  Cell cell;
  cell.shards = shards;

  // Cold: distinct seeds are distinct cache keys, so every request pays a
  // full sharded build. Start from a cleared cache so inserts/evictions
  // are part of the measured path.
  svc.ClearCache();
  Timer timer;
  for (int i = 0; i < cold_requests; ++i) {
    const auto response =
        svc.Build(RequestFor(k, /*seed=*/1000 + i, shards));
    FC_CHECK_MSG(response.ok(), response.status().ToString().c_str());
  }
  cell.cold_seconds_per_request = timer.Seconds() / cold_requests;
  cell.cold_rps = 1.0 / cell.cold_seconds_per_request;

  // Cached: one warm-up miss, then the same request over and over.
  const auto warm = svc.Build(RequestFor(k, /*seed=*/7, shards));
  FC_CHECK_MSG(warm.ok(), warm.status().ToString().c_str());
  timer.Reset();
  for (int i = 0; i < cached_requests; ++i) {
    const auto response = svc.Build(RequestFor(k, /*seed=*/7, shards));
    FC_CHECK_MSG(response.ok(), response.status().ToString().c_str());
    FC_CHECK_MSG(response->diagnostics.cache_status == "hit",
                 "expected a cache hit");
  }
  cell.cached_seconds_per_request = timer.Seconds() / cached_requests;
  cell.cached_rps = 1.0 / cell.cached_seconds_per_request;
  return cell;
}

/// Shard-overlap ratio: the same shards=4 rebuild driven through the
/// task-graph scheduler sequentially (parallelism = 1, one shard at a
/// time, each on the full pool) vs concurrently (parallelism = 0, shards
/// overlap on budget slices), best-of-`runs` wall clock each, at a pinned
/// 4-thread pool (the CI bench env does not set FC_THREADS). Returns
/// sequential_wall / concurrent_wall — above 1.0 means overlapping the
/// shards beat running them one after another on the same machine.
double MeasureShardOverlap(service::CoresetService& svc, size_t k,
                           int runs) {
  SetNumThreads(4);
  auto best_wall = [&](size_t parallelism) {
    double best = 0.0;
    for (int i = 0; i < runs; ++i) {
      service::BuildRequest request = RequestFor(k, /*seed=*/31, 4);
      request.parallelism = parallelism;
      request.use_cache = false;  // Every run pays the full sharded build.
      Timer timer;
      const auto response = svc.Build(request);
      const double wall = timer.Seconds();
      FC_CHECK_MSG(response.ok(), response.status().ToString().c_str());
      if (best == 0.0 || wall < best) best = wall;
    }
    return best;
  };
  const double sequential = best_wall(/*parallelism=*/1);
  const double concurrent = best_wall(/*parallelism=*/0);
  ResetNumThreads();
  std::printf("shards=4 overlap @4 threads: sequential %.2f ms   "
              "concurrent %.2f ms   ratio %.3f\n",
              1e3 * sequential, 1e3 * concurrent, sequential / concurrent);
  return sequential / concurrent;
}

/// All-cache-hit request throughput over the --listen transport: 4
/// concurrent loopback clients pipelining the warmed shards=1 request
/// through NetServer (poll loop + bounded queue + worker pool), measured
/// as aggregate requests/sec. Gated as net_cached_rps / cold_rps — the
/// served-cache-hit contract: a request over the socket transport must
/// stay lookup-priced, orders of magnitude cheaper than a rebuild.
double MeasureNetCachedRps(service::CoresetService& svc, size_t k,
                           int requests_per_client) {
  constexpr size_t kClients = 4;
  net::NetServerOptions options;
  options.workers = 4;
  net::NetServer server(svc, options);
  const auto status = server.Start();
  FC_CHECK_MSG(status.ok(), status.ToString().c_str());
  std::thread serve_thread([&server] { server.Serve(); });

  // Warm the seed-7 shards=1 entry (the shards=4 measurement cleared the
  // cache); every request line below is then a cache hit, so this times
  // the transport + queue + cache path only.
  const auto warm = svc.Build(RequestFor(k, /*seed=*/7, /*shards=*/1));
  FC_CHECK_MSG(warm.ok(), warm.status().ToString().c_str());
  const std::string line =
      "{\"verb\":\"build\",\"dataset\":\"bench\",\"method\":"
      "\"fast_coreset\",\"k\":" +
      std::to_string(k) + ",\"seed\":7,\"shards\":1}\n";

  const auto run_client = [&](size_t* hits) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    FC_CHECK_MSG(fd >= 0, "socket");
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    FC_CHECK_MSG(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0,
                 "connect");
    std::string burst;
    for (int i = 0; i < requests_per_client; ++i) burst += line;
    size_t sent = 0;
    std::string received;
    char buf[65536];
    // Interleave sending and receiving: the per-session in-flight cap
    // backpressures a fire-everything sender, so a real pipelining
    // client drains responses as it goes.
    while (static_cast<int>(std::count(received.begin(), received.end(),
                                       '\n')) < requests_per_client) {
      if (sent < burst.size()) {
        const ssize_t n = ::send(fd, burst.data() + sent,
                                 std::min<size_t>(burst.size() - sent, 1 << 16),
                                 MSG_NOSIGNAL);
        FC_CHECK_MSG(n > 0, "send");
        sent += static_cast<size_t>(n);
      }
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      FC_CHECK_MSG(n > 0, "recv");
      received.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    size_t count = 0;
    for (size_t at = received.find("\"cache\":\"hit\"");
         at != std::string::npos;
         at = received.find("\"cache\":\"hit\"", at + 1)) {
      ++count;
    }
    *hits = count;
  };

  std::vector<size_t> hits(kClients, 0);
  std::vector<std::thread> clients;
  Timer timer;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back(run_client, &hits[c]);
  }
  for (std::thread& client : clients) client.join();
  const double seconds = timer.Seconds();

  server.RequestDrain();
  serve_thread.join();

  size_t total_hits = 0;
  for (size_t count : hits) total_hits += count;
  const size_t total = kClients * static_cast<size_t>(requests_per_client);
  FC_CHECK_MSG(total_hits == total,
               "every net request must be a served cache hit");
  const double rps = static_cast<double>(total) / seconds;
  std::printf("net (--listen): %zu clients x %d pipelined cache hits: "
              "%10.0f req/s aggregate (%.4f ms/req)\n",
              kClients, requests_per_client, rps, 1e3 * seconds /
                  static_cast<double>(total));
  return rps;
}

void WriteJson(size_t n, size_t d, size_t k, const Cell& one,
               const Cell& four, double shard_overlap, double net_rps,
               const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"service\",\n"
               "  \"dataset\": {\"n\": %zu, \"d\": %zu, \"k\": %zu},\n",
               n, d, k);
  std::fprintf(out,
               "  \"shards1\": {\"cold_rps\": %.3f, \"cached_rps\": %.1f},\n",
               one.cold_rps, one.cached_rps);
  std::fprintf(out,
               "  \"shards4\": {\"cold_rps\": %.3f, \"cached_rps\": %.1f},\n",
               four.cold_rps, four.cached_rps);
  std::fprintf(out, "  \"net\": {\"clients\": 4, \"cached_rps\": %.1f},\n",
               net_rps);
  // Machine-relative ratios for the CI gate: what a cache hit saves over
  // a cold build (direct and over the socket transport), and what
  // overlapping shards saves over running them sequentially. A slower
  // runner shifts numerators and denominators together.
  std::fprintf(out,
               "  \"gate\": {\n"
               "    \"service_cached_speedup\": %.3f,\n"
               "    \"service_shard_overlap\": %.3f,\n"
               "    \"service_net_throughput\": %.3f\n"
               "  }\n}\n",
               one.cached_rps / one.cold_rps, shard_overlap,
               net_rps / one.cold_rps);
  std::fclose(out);
}

}  // namespace
}  // namespace fastcoreset

int main() {
  using namespace fastcoreset;
  const double scale = bench::Scale();
  const size_t n =
      std::max<size_t>(2000, static_cast<size_t>(20000 * scale));
  const size_t d = 8;
  const size_t k = std::min<size_t>(bench::K(), 50);
  const int cold_requests = std::max(3, bench::Runs());
  const int cached_requests = 200;

  bench::Banner("Service bench — cached vs cold request throughput",
                "a repeated request costs a cache lookup, not an O(nd) "
                "build (merge-&-reduce sharding included)");

  service::CoresetService svc({/*cache_capacity=*/64});
  {
    service::SyntheticSpec synthetic;
    synthetic.generator = "gaussian_mixture";
    synthetic.n = n;
    synthetic.d = d;
    synthetic.kappa = 32;
    synthetic.gamma = 0.5;
    synthetic.seed = 20240729;
    const auto status = svc.datasets().RegisterSynthetic("bench", synthetic);
    FC_CHECK_MSG(status.ok(), status.ToString().c_str());
  }

  const Cell one = Measure(svc, k, /*shards=*/1, cold_requests,
                           cached_requests);
  const Cell four = Measure(svc, k, /*shards=*/4, cold_requests,
                            cached_requests);

  std::printf("n=%zu d=%zu k=%zu (m=%zu)\n", n, d, k, 40 * k);
  std::printf("shards=1: cold %8.2f req/s (%.2f ms)   cached %10.0f req/s "
              "(%.4f ms)   speedup %.0fx\n",
              one.cold_rps, 1e3 * one.cold_seconds_per_request,
              one.cached_rps, 1e3 * one.cached_seconds_per_request,
              one.cached_rps / one.cold_rps);
  std::printf("shards=4: cold %8.2f req/s (%.2f ms)   cached %10.0f req/s "
              "(%.4f ms)   speedup %.0fx\n",
              four.cold_rps, 1e3 * four.cold_seconds_per_request,
              four.cached_rps, 1e3 * four.cached_seconds_per_request,
              four.cached_rps / four.cold_rps);

  const double shard_overlap =
      MeasureShardOverlap(svc, k, std::max(3, bench::Runs()));
  const double net_rps =
      MeasureNetCachedRps(svc, k, /*requests_per_client=*/200);

  WriteJson(n, d, k, one, four, shard_overlap, net_rps,
            "BENCH_service.json");
  std::printf("\nwrote BENCH_service.json (cold=%d cached=%d requests)\n",
              cold_requests, cached_requests);
  return 0;
}
