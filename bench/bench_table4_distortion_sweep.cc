// Table 4 + Figure 2: distortion (mean ± variance) and construction
// runtime for the four-method sampling spectrum across artificial and
// real-like datasets, at coreset sizes m = 40k and m = 80k.
//
// Paper shape: uniform fails on c-outlier/Geometric/Taxi (and Star at
// m=40k); lightweight fails on some artificial sets at small m;
// welterweight fails more rarely; Fast-Coresets never fail. Larger m
// improves everyone. Runtimes order uniform < lightweight < welterweight
// < Fast-Coreset.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"
#include "src/eval/harness.h"

int main() {
  using namespace fastcoreset;
  bench::Banner("Table 4 / Figure 2 — distortion & runtime across the "
                "sampling spectrum (m = 40k, 80k)",
                "the faster the method, the more brittle its compression");

  Rng data_rng(4);
  std::vector<Dataset> datasets = ArtificialSuite(bench::Scale(), data_rng);
  {
    auto real = RealLikeSuite(bench::Scale(), data_rng);
    for (auto& dataset : real) datasets.push_back(std::move(dataset));
  }
  const size_t k = bench::K();
  const int runs = bench::Runs();
  const std::vector<size_t> m_scalars = {40, 80};
  const std::vector<std::string> samplers = {"uniform", "lightweight",
                                             "welterweight", "fast_coreset"};

  TablePrinter distortion_table;
  TablePrinter runtime_table;
  std::vector<std::string> header = {"Dataset"};
  for (const std::string& method : samplers) {
    for (size_t ms : m_scalars) {
      header.push_back(method + " m=" + std::to_string(ms) + "k");
    }
  }
  distortion_table.SetHeader(header);
  runtime_table.SetHeader(header);

  for (const auto& dataset : datasets) {
    std::vector<std::string> distortion_row = {dataset.name};
    std::vector<std::string> runtime_row = {dataset.name};
    for (size_t s = 0; s < samplers.size(); ++s) {
      for (size_t ms : m_scalars) {
        api::CoresetSpec spec;
        spec.method = samplers[s];
        spec.k = k;
        spec.m = ms * k;
        double build_seconds = 0.0;
        const TrialStats stats = RunTrials(
            runs, 11000 + 17 * s + ms, [&](Rng& rng) {
              Timer timer;
              const Coreset coreset =
                  api::Build(spec, dataset.points, {}, rng)->coreset;
              build_seconds += timer.Seconds();
              DistortionOptions probe;
              probe.k = k;
              return CoresetDistortion(dataset.points, {}, coreset, probe,
                                       rng);
            });
        distortion_row.push_back(bench::DistortionCell(
            stats.value.Mean(), stats.value.Variance()));
        runtime_row.push_back(TablePrinter::Num(build_seconds / runs));
      }
    }
    distortion_table.AddRow(distortion_row);
    runtime_table.AddRow(runtime_row);
    std::printf("done: %s\n", dataset.name.c_str());
    std::fflush(stdout);
  }

  std::printf("\nTable 4 — distortion mean ± var (*fail > 5*, **catastrophic"
              " > 10**)\n");
  distortion_table.Print();
  std::printf("\nFigure 2 (bottom) — mean construction seconds\n");
  runtime_table.Print();
  std::printf("\nExpected shape: failures concentrate in the Uniform and "
              "Lightweight columns on c-outlier / Geometric / Taxi / Star; "
              "the FastCoreset column never fails; runtimes increase left "
              "to right.\n");
  return 0;
}
