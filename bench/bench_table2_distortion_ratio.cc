// Tables 2 & 3: dataset characteristics, and the distortion of uniform
// sampling / Fast-Coresets relative to standard sensitivity sampling on
// the (stand-in) real datasets. The paper's shape: both ratios ~1 on
// benign datasets; uniform blows up on Star (~8.5x) and catastrophically
// on Taxi (~600x); Fast-Coresets stay within ~2x everywhere.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"
#include "src/eval/harness.h"

int main() {
  using namespace fastcoreset;
  bench::Banner(
      "Tables 2 & 3 — uniform / Fast-Coreset distortion vs sensitivity "
      "sampling",
      "uniform fails on Star and Taxi; Fast-Coresets track sensitivity "
      "sampling everywhere");

  Rng data_rng(42);
  const auto suite = RealLikeSuite(bench::Scale(), data_rng);
  const size_t k = bench::K();
  const size_t m = 40 * k;
  const int runs = bench::Runs();

  TablePrinter characteristics;
  characteristics.SetHeader({"Dataset", "Points", "Dim"});
  for (const auto& dataset : suite) {
    characteristics.AddRow({dataset.name,
                            std::to_string(dataset.points.rows()),
                            std::to_string(dataset.points.cols())});
  }
  std::printf("Table 3 — dataset characteristics (stand-ins)\n");
  characteristics.Print();

  TablePrinter table;
  table.SetHeader({"Dataset", "Uniform/Sens.", "FastCoreset/Sens."});
  for (const auto& dataset : suite) {
    // Each trial is one request-shaped spec: the seed is the only thing
    // that changes between repetitions (RunSeededTrials derives it).
    auto mean_distortion = [&](const std::string& method, uint64_t salt) {
      api::CoresetSpec spec;
      spec.method = method;
      spec.k = k;
      spec.m = m;
      const TrialStats stats =
          RunSeededTrials(runs, 7000 + salt, [&](uint64_t seed) {
            spec.seed = seed;
            const Coreset coreset =
                api::Build(spec, dataset.points)->coreset;
            DistortionOptions probe;
            probe.k = k;
            Rng probe_rng(seed ^ 0x9e3779b97f4a7c15ull);
            return CoresetDistortion(dataset.points, {}, coreset, probe,
                                     probe_rng);
          });
      return stats.value.Mean();
    };
    const double sens = mean_distortion("sensitivity", 3);
    const double uniform = mean_distortion("uniform", 0);
    const double fast = mean_distortion("fast_coreset", 4);
    auto cell = [&](double ratio) {
      std::string body = TablePrinter::Num(ratio);
      return ratio > 5.0 ? "*" + body + "*" : body;
    };
    table.AddRow({dataset.name, cell(uniform / sens), cell(fast / sens)});
    std::fflush(stdout);
  }
  std::printf("\nTable 2 — distortion ratio vs sensitivity sampling "
              "(k=%zu, m=40k)\n", k);
  table.Print();
  std::printf("\nExpected shape: ratios ~1 everywhere except Uniform on "
              "Star (>5x) and Taxi (>>10x).\n");
  return 0;
}
