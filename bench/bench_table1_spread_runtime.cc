// Table 1: Fast-kmeans++ runtime as a function of r ~ log Δ on the spread
// dataset. The paper shows runtime growing linearly with r (13.5s -> 16.2s
// for r = 20..50 at its scale) for the non-adaptive quadtree embedding —
// the motivation for the spread-reduction pipeline of Section 4.
//
// We report two columns: the non-adaptive ("full-depth") embedding, which
// reproduces the paper's linear trend, and our adaptive default, which
// only deepens the tree where points are actually close and therefore
// largely sidesteps the dependency in practice (the theory still needs
// Section 4 to kill the worst case).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/clustering/fast_kmeans_plus_plus.h"
#include "src/data/generators.h"
#include "src/eval/harness.h"

int main() {
  using namespace fastcoreset;
  bench::Banner("Table 1 — Fast-kmeans++ runtime vs r ~ log(spread)",
                "runtime grows linearly with log Δ before spread reduction");

  const size_t n = static_cast<size_t>(20000 * bench::Scale());
  const size_t k = bench::K();
  const int runs = bench::Runs();

  TablePrinter table;
  table.SetHeader({"r (log spread)", "full-depth tree (paper's cost)",
                   "adaptive tree (ours)"});
  for (size_t r : {size_t{20}, size_t{30}, size_t{40}, size_t{50}}) {
    auto time_mode = [&](bool full_depth) {
      const TrialStats stats = RunTrials(
          runs, 1000 + r + (full_depth ? 500 : 0), [&](Rng& rng) -> double {
            const Matrix points = GenerateSpreadDataset(n, r, rng);
            Timer timer;
            FastKMeansPlusPlusOptions options;
            options.full_depth_tree = full_depth;
            // Depth must cover the 0.5^r chain plus the unit-square bulk.
            options.max_depth = static_cast<int>(r) + 12;
            (void)FastKMeansPlusPlus(points, {}, k, options, rng);
            return timer.Seconds();
          });
      return TablePrinter::MeanVar(stats.value.Mean(),
                                   stats.value.Variance());
    };
    table.AddRow({TablePrinter::Num(static_cast<double>(r)),
                  time_mode(true), time_mode(false)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\nExpected shape: the full-depth column grows roughly "
              "linearly with r; the adaptive column stays nearly flat.\n");
  return 0;
}
