// Ablations on the Fast-Coreset design choices called out in DESIGN.md:
//   - rejection sampling on/off in Fast-kmeans++,
//   - JL projection on/off,
//   - spread reduction (Crude-Approx + Reduce-Spread) on/off on a
//     huge-spread instance,
//   - center-correction weights on/off,
//   - quadtree depth cap sweep.
// Each row reports distortion and construction time so the cost of every
// knob is visible.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/api/fastcoreset.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"
#include "src/eval/harness.h"

namespace {

using namespace fastcoreset;

void Row(TablePrinter* table, const std::string& label, const Matrix& points,
         const api::CoresetSpec& spec, size_t k, int runs, uint64_t seed) {
  double seconds = 0.0;
  const TrialStats stats = RunTrials(runs, seed, [&](Rng& rng) {
    Timer timer;
    const Coreset coreset = api::Build(spec, points, {}, rng)->coreset;
    seconds += timer.Seconds();
    DistortionOptions probe;
    probe.k = k;
    probe.z = spec.z;
    return CoresetDistortion(points, {}, coreset, probe, rng);
  });
  table->AddRow({label,
                 bench::DistortionCell(stats.value.Mean(),
                                       stats.value.Variance()),
                 TablePrinter::Num(seconds / runs)});
  std::printf("done: %s\n", label.c_str());
  std::fflush(stdout);
}

/// A fast_coreset spec with the given sub-options.
api::CoresetSpec FastSpec(size_t k, size_t m, const api::FastOptions& options) {
  api::CoresetSpec spec;
  spec.method = "fast_coreset";
  spec.k = k;
  spec.m = m;
  spec.options = options;
  return spec;
}

}  // namespace

int main() {
  bench::Banner("Ablations — Fast-Coreset design choices",
                "each knob trades speed against robustness as analysed in "
                "Sections 3-4");

  const size_t k = bench::K();
  const int runs = bench::Runs();
  Rng data_rng(77);
  const size_t n = static_cast<size_t>(50000 * bench::Scale());
  const Matrix gaussian =
      GenerateGaussianMixture(n, 50, 50, /*gamma=*/3.0, data_rng);

  TablePrinter table;
  table.SetHeader({"variant", "distortion", "seconds"});

  const api::FastOptions base;
  Row(&table, "baseline (JL + rejection)", gaussian, FastSpec(k, 40 * k, base),
      k, runs, 31000);

  api::FastOptions no_rejection = base;
  no_rejection.seeding_rejection_sampling = false;
  Row(&table, "no rejection sampling", gaussian,
      FastSpec(k, 40 * k, no_rejection), k, runs, 31001);

  api::FastOptions no_jl = base;
  no_jl.use_jl = false;
  Row(&table, "no JL projection", gaussian, FastSpec(k, 40 * k, no_jl), k,
      runs, 31002);

  api::FastOptions corrected = base;
  corrected.center_correction = true;
  Row(&table, "center-correction weights", gaussian,
      FastSpec(k, 40 * k, corrected), k, runs, 31003);

  api::FastOptions shallow = base;
  shallow.seeding_max_depth = 8;
  Row(&table, "quadtree depth cap 8", gaussian, FastSpec(k, 40 * k, shallow),
      k, runs, 31004);

  api::FastOptions deep = base;
  deep.seeding_max_depth = 40;
  Row(&table, "quadtree depth cap 40", gaussian, FastSpec(k, 40 * k, deep), k,
      runs, 31005);

  std::printf("\nGaussian mixture (gamma=3) ablations\n");
  table.Print();

  // Spread reduction only matters on huge-spread data.
  Rng spread_rng(78);
  const Matrix spread_data = GenerateSpreadDataset(n, 45, spread_rng);
  TablePrinter spread_table;
  spread_table.SetHeader({"variant", "distortion", "seconds"});
  api::FastOptions plain;
  plain.use_jl = false;  // 2-D data.
  Row(&spread_table, "no spread reduction", spread_data,
      FastSpec(k, 40 * k, plain), k, runs, 31006);
  api::FastOptions reduced = plain;
  reduced.use_spread_reduction = true;
  Row(&spread_table, "with spread reduction (Alg 2+3)", spread_data,
      FastSpec(k, 40 * k, reduced), k, runs, 31007);

  std::printf("\nSpread dataset (r=45) ablations\n");
  spread_table.Print();

  // Seeder ablation: tree-greedy (Section 8.4) vs Fast-kmeans++.
  TablePrinter seeder_table;
  seeder_table.SetHeader({"variant", "distortion", "seconds"});
  Row(&seeder_table, "seeder: Fast-kmeans++", gaussian,
      FastSpec(k, 40 * k, base), k, runs, 31008);
  api::FastOptions greedy_seeded = base;
  greedy_seeded.seeder = api::FastSeeder::kTreeGreedy;
  Row(&seeder_table, "seeder: HST tree-greedy", gaussian,
      FastSpec(k, 40 * k, greedy_seeded), k, runs, 31009);
  std::printf("\nSeeder ablation (Section 8.4 extension)\n");
  seeder_table.Print();

  // Group sampling (STOC'21 optimal-size construction) vs sensitivity at
  // shrinking coreset sizes: the size advantage should show at small m.
  TablePrinter group_table;
  group_table.SetHeader({"m", "group sampling", "sensitivity sampling"});
  for (size_t m : {size_t{500}, size_t{1000}, size_t{2000}, size_t{4000}}) {
    auto cell = [&](bool group) {
      api::CoresetSpec spec;
      spec.method = group ? "group_sampling" : "sensitivity";
      spec.k = k;
      spec.m = m;
      const TrialStats stats = RunTrials(
          runs, 32000 + m + group, [&](Rng& rng) {
            const Coreset coreset =
                api::Build(spec, gaussian, {}, rng)->coreset;
            DistortionOptions probe;
            probe.k = k;
            return CoresetDistortion(gaussian, {}, coreset, probe, rng);
          });
      return bench::DistortionCell(stats.value.Mean(),
                                   stats.value.Variance());
    };
    group_table.AddRow({std::to_string(m), cell(true), cell(false)});
    std::fflush(stdout);
  }
  std::printf("\nGroup sampling vs sensitivity sampling across coreset "
              "sizes\n");
  group_table.Print();

  // Streaming-uniform ablation (Section 5.4): merge-&-reduce uniform vs a
  // one-pass exact-uniform reservoir on the c-outlier stream. The paper
  // observes merge-&-reduce's induced non-uniformity can *help* here.
  Rng outlier_rng(79);
  const Matrix outliers = GenerateCOutlier(n, 5, 50, 1e4, outlier_rng);
  TablePrinter stream_table;
  stream_table.SetHeader({"uniform variant", "distortion"});
  const size_t m_stream = 40 * k;
  api::CoresetSpec uniform_spec;
  uniform_spec.method = "uniform";
  uniform_spec.k = k;
  const CoresetBuilder uniform_builder =
      api::MakeBuilder(uniform_spec).value();
  for (const bool reservoir : {false, true}) {
    const TrialStats stats = RunTrials(runs, 33000 + reservoir, [&](Rng& rng) {
      Coreset coreset;
      if (reservoir) {
        WeightedReservoir sampler(m_stream, outliers.cols(), &rng);
        sampler.OfferAll(outliers);
        coreset = sampler.Extract();
      } else {
        coreset = StreamingCompress(outliers, {}, uniform_builder,
                                    outliers.rows() / 8, m_stream, rng);
      }
      DistortionOptions probe;
      probe.k = k;
      return CoresetDistortion(outliers, {}, coreset, probe, rng);
    });
    stream_table.AddRow({reservoir ? "one-pass reservoir (A-ExpJ)"
                                   : "merge-&-reduce composition",
                         bench::DistortionCell(stats.value.Mean(),
                                               stats.value.Variance())});
  }
  std::printf("\nStreaming uniform sampling on c-outlier: reservoir vs "
              "merge-&-reduce\n");
  stream_table.Print();
  std::printf("\nExpected shape: baseline distortion ~1.1; removing "
              "rejection sampling or capping depth at 8 hurts accuracy; "
              "spread reduction keeps accuracy while bounding the tree "
              "depth.\n");
  return 0;
}
