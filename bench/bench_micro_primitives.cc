// Google-benchmark microbenches for the hot primitives: distance kernels,
// JL projection, quadtree construction, Fenwick sampling, k-means++
// seeding and sensitivity computation. These are the terms in the paper's
// Õ(nd) accounting.

#include <benchmark/benchmark.h>

#include "src/clustering/fast_kmeans_plus_plus.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/common/fenwick_tree.h"
#include "src/common/rng.h"
#include "src/core/importance.h"
#include "src/geometry/distance.h"
#include "src/geometry/jl_projection.h"
#include "src/geometry/quadtree.h"

namespace fastcoreset {
namespace {

Matrix RandomPoints(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix points(n, d);
  for (double& x : points.data()) x = rng.Uniform(0.0, 100.0);
  return points;
}

void BM_SquaredL2(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const Matrix points = RandomPoints(2, d, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredL2(points.Row(0), points.Row(1)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(d));
}
BENCHMARK(BM_SquaredL2)->Arg(14)->Arg(50)->Arg(784);

void BM_JlProject(benchmark::State& state) {
  const size_t n = 2000, d = 784;
  const size_t target = static_cast<size_t>(state.range(0));
  const Matrix points = RandomPoints(n, d, 2);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JlProject(points, target, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_JlProject)->Arg(8)->Arg(32);

void BM_QuadtreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix points = RandomPoints(n, 8, 4);
  for (auto _ : state) {
    Rng rng(5);
    Quadtree tree(points, rng);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_QuadtreeBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_FenwickSample(benchmark::State& state) {
  const size_t n = 100000;
  Rng rng(6);
  FenwickTree tree(n);
  for (size_t i = 0; i < n; ++i) tree.Set(i, rng.NextDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Sample(rng));
  }
}
BENCHMARK(BM_FenwickSample);

void BM_KMeansPlusPlus(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const Matrix points = RandomPoints(10000, 20, 7);
  for (auto _ : state) {
    Rng rng(8);
    benchmark::DoNotOptimize(
        KMeansPlusPlus(points, {}, k, 2, rng).total_cost);
  }
}
BENCHMARK(BM_KMeansPlusPlus)->Arg(10)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_FastKMeansPlusPlus(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const Matrix points = RandomPoints(10000, 20, 9);
  for (auto _ : state) {
    Rng rng(10);
    FastKMeansPlusPlusOptions options;
    benchmark::DoNotOptimize(
        FastKMeansPlusPlus(points, {}, k, options, rng).total_cost);
  }
}
BENCHMARK(BM_FastKMeansPlusPlus)->Arg(10)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_ComputeSensitivities(benchmark::State& state) {
  const Matrix points = RandomPoints(50000, 20, 11);
  Rng rng(12);
  const Clustering solution = KMeansPlusPlus(points, {}, 50, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSensitivities(
        points, {}, solution.assignment, solution.centers, 2));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_ComputeSensitivities)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fastcoreset

BENCHMARK_MAIN();
