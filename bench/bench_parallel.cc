// Substrate + sampling bench: persistent-pool dispatch latency vs the
// PR 2 spawn-per-call substrate (reproduced inline as the baseline), and
// k-means++ seeding end-to-end against a legacy replica that pays the
// spawn-per-call dispatch plus the O(n) mass rebuild + O(n) re-sum per
// center draw. Emits BENCH_parallel.json; the CI perf gate compares its
// "gate" ratios against bench/baselines/BENCH_parallel_baseline.json, so
// the numbers that matter are machine-relative speedups, not absolute ms.
//
// Honours FC_RUNS (repetitions; best-of is reported), FC_SCALE (row
// multiplier) and FC_BENCH_THREADS (default 4) for the threaded columns.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/discrete_distribution.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/data/generators.h"
#include "src/geometry/distance.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {
namespace {

// The PR 2 substrate, reproduced verbatim as the dispatch baseline: same
// chunk plan, but every call constructs and joins its worker threads.
constexpr size_t kChunkSize = 4096;
constexpr size_t kMaxChunks = 1024;

void SpawnPerCallFor(size_t n, size_t workers,
                     const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  size_t chunks = 1, chunk_size = n;
  if (n >= kChunkSize) {
    chunks = std::min(kMaxChunks, (n + kChunkSize - 1) / kChunkSize);
    chunk_size = (n + chunks - 1) / chunks;
  }
  workers = std::min(workers, chunks);
  std::atomic<size_t> next_chunk{0};
  auto run = [&] {
    for (size_t c = next_chunk.fetch_add(1); c < chunks;
         c = next_chunk.fetch_add(1)) {
      const size_t begin = c * chunk_size;
      const size_t end = std::min(n, begin + chunk_size);
      if (begin < end) body(begin, end);
    }
  };
  if (workers <= 1) {
    run();
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 1; t < workers; ++t) threads.emplace_back(run);
  run();
  for (auto& thread : threads) thread.join();
}

double SpawnPerCallReduce(size_t n, size_t workers,
                          const std::function<double(size_t, size_t)>& body) {
  if (n == 0) return 0.0;
  std::vector<double> partials(ParallelChunkCount(n), 0.0);
  std::atomic<size_t> slot{0};
  SpawnPerCallFor(n, workers, [&](size_t begin, size_t end) {
    partials[slot.fetch_add(1)] = body(begin, end);
  });
  double total = 0.0;
  for (double partial : partials) total += partial;
  return total;
}

// The pre-PR 3 k-means++ inner loop: per center, a full O(n) mass
// rebuild through the spawn-per-call reduce plus SampleDiscrete's O(n)
// re-sum — ~2k spawn/join rounds and ~2 extra linear passes per seeding.
std::vector<size_t> LegacyKMeansPlusPlusSeed(const Matrix& points, size_t k,
                                             size_t workers, Rng& rng) {
  const size_t n = points.rows();
  std::vector<double> min_sq(n, 0.0), masses(n, 0.0);
  std::vector<size_t> centers;
  centers.push_back(rng.NextIndex(n));
  const auto first = points.Row(centers[0]);
  SpawnPerCallFor(n, workers, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      min_sq[i] = SquaredL2(points.Row(i), first);
    }
  });
  for (size_t c = 1; c < k; ++c) {
    const double total =
        SpawnPerCallReduce(n, workers, [&](size_t begin, size_t end) {
          double partial = 0.0;
          for (size_t i = begin; i < end; ++i) {
            masses[i] = min_sq[i];
            partial += masses[i];
          }
          return partial;
        });
    if (total <= 0.0) break;
    centers.push_back(rng.SampleDiscrete(masses));  // Re-sums all n.
    const auto center = points.Row(centers.back());
    SpawnPerCallFor(n, workers, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const double sq = SquaredL2(points.Row(i), center);
        if (sq < min_sq[i]) min_sq[i] = sq;
      }
    });
  }
  return centers;
}

// The current path: pool dispatch + incremental Fenwick sampling. Same
// shape as KMeansPlusPlus's hot loop, duplicated here so the bench pins
// the substrate difference, not unrelated seeder details.
std::vector<size_t> PoolKMeansPlusPlusSeed(const Matrix& points, size_t k,
                                           Rng& rng) {
  const size_t n = points.rows();
  std::vector<double> min_sq(n, 0.0);
  std::vector<size_t> centers;
  centers.push_back(rng.NextIndex(n));
  const auto first = points.Row(centers[0]);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      min_sq[i] = SquaredL2(points.Row(i), first);
    }
  });
  DiscreteDistribution masses;
  {
    std::vector<double> initial(min_sq);
    masses.Assign(initial);
  }
  std::vector<std::vector<std::pair<size_t, double>>> improved(
      ParallelChunkCount(n));
  for (size_t c = 1; c < k; ++c) {
    if (masses.Total() <= 0.0) break;
    centers.push_back(masses.Sample(rng));
    const auto center = points.Row(centers.back());
    ParallelForChunks(n, [&](size_t chunk, size_t begin, size_t end) {
      auto& batch = improved[chunk];
      batch.clear();
      for (size_t i = begin; i < end; ++i) {
        const double sq = SquaredL2(points.Row(i), center);
        if (sq < min_sq[i]) {
          min_sq[i] = sq;
          batch.emplace_back(i, sq);
        }
      }
    });
    for (const auto& batch : improved) {
      for (const auto& [i, mass] : batch) masses.Set(i, mass);
    }
  }
  return centers;
}

template <typename Fn>
double BestOfRuns(int runs, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < runs; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.Millis());
  }
  return best;
}

struct Results {
  size_t threads = 0;
  // Dispatch latency, µs per call, across kDispatchCalls trivial bodies.
  double spawn_dispatch_us = 0.0;
  double pool_dispatch_us = 0.0;
  // Seeding end-to-end, ms.
  size_t seed_n = 0, seed_d = 0, seed_k = 0;
  double legacy_seed_1t_ms = 0.0;
  double pool_seed_1t_ms = 0.0;
  double legacy_seed_mt_ms = 0.0;
  double pool_seed_mt_ms = 0.0;
  // Discrete sampling, µs per draw over seed_n slots.
  double linear_sample_us = 0.0;
  double fenwick_sample_us = 0.0;
};

void WriteJson(const Results& r, const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"parallel\",\n  \"threads\": %zu,\n",
               r.threads);
  std::fprintf(out,
               "  \"dispatch\": {\"spawn_us_per_call\": %.3f, "
               "\"pool_us_per_call\": %.3f},\n",
               r.spawn_dispatch_us, r.pool_dispatch_us);
  std::fprintf(out,
               "  \"seeding\": {\"n\": %zu, \"d\": %zu, \"k\": %zu, "
               "\"legacy_1t_ms\": %.3f, \"pool_1t_ms\": %.3f, "
               "\"legacy_%zut_ms\": %.3f, \"pool_%zut_ms\": %.3f},\n",
               r.seed_n, r.seed_d, r.seed_k, r.legacy_seed_1t_ms,
               r.pool_seed_1t_ms, r.threads, r.legacy_seed_mt_ms, r.threads,
               r.pool_seed_mt_ms);
  std::fprintf(out,
               "  \"sampling\": {\"n\": %zu, \"linear_us_per_draw\": %.4f, "
               "\"fenwick_us_per_draw\": %.4f},\n",
               r.seed_n, r.linear_sample_us, r.fenwick_sample_us);
  // Machine-relative ratios: this is what the CI gate compares, so a
  // slower runner does not fail the build — only a regressed ratio does.
  std::fprintf(out,
               "  \"gate\": {\n"
               "    \"dispatch_speedup_pool_vs_spawn\": %.3f,\n"
               "    \"seeding_speedup_1t\": %.3f,\n"
               "    \"seeding_speedup_mt\": %.3f,\n"
               "    \"sampling_speedup_fenwick_vs_linear\": %.3f\n"
               "  }\n}\n",
               r.spawn_dispatch_us / r.pool_dispatch_us,
               r.legacy_seed_1t_ms / r.pool_seed_1t_ms,
               r.legacy_seed_mt_ms / r.pool_seed_mt_ms,
               r.linear_sample_us / r.fenwick_sample_us);
  std::fclose(out);
}

}  // namespace
}  // namespace fastcoreset

int main() {
  using namespace fastcoreset;
  const size_t threads =
      std::max<size_t>(2, static_cast<size_t>(EnvInt("FC_BENCH_THREADS", 4)));
  const int runs = std::max(1, bench::Runs());
  const double scale = bench::Scale();

  bench::Banner("Parallel substrate bench — pool dispatch + O(log n) draws",
                "persistent pool + incremental sampling beat spawn-per-call "
                "+ O(n) re-sum per center");

  Results results;
  results.threads = threads;

  // --- Dispatch latency: many calls over a just-past-cutoff range with a
  // near-trivial body, so per-call overhead dominates. The pool pays a
  // condvar wake; the baseline constructs threads every call.
  {
    const size_t n = 32768;
    const int calls = 200;
    std::vector<double> sink(n, 1.0);
    auto body = [&](size_t begin, size_t end) {
      double acc = 0.0;
      for (size_t i = begin; i < end; ++i) acc += sink[i];
      sink[begin] = acc;
    };
    const double spawn_ms = BestOfRuns(runs, [&] {
      for (int c = 0; c < calls; ++c) SpawnPerCallFor(n, threads, body);
    });
    results.spawn_dispatch_us = 1000.0 * spawn_ms / calls;
    SetNumThreads(threads);
    const double pool_ms = BestOfRuns(runs, [&] {
      for (int c = 0; c < calls; ++c) ParallelFor(n, body);
    });
    results.pool_dispatch_us = 1000.0 * pool_ms / calls;
    ResetNumThreads();
  }

  // --- k-means++ seeding end-to-end: n points, k centers. The legacy
  // replica pays ~3 spawn-join rounds and ~2 extra O(n) passes per
  // center; the pool path pays condvar wakes and O(changed log n).
  {
    const size_t n =
        std::max<size_t>(5000, static_cast<size_t>(40000 * scale));
    const size_t d = 16, k = 200;
    Rng data_rng(20240715);
    const Matrix points =
        GenerateGaussianMixture(n, d, /*kappa=*/32, /*gamma=*/0.5, data_rng);
    results.seed_n = points.rows();
    results.seed_d = d;
    results.seed_k = k;

    Rng rng(1);
    results.legacy_seed_1t_ms = BestOfRuns(runs, [&] {
      LegacyKMeansPlusPlusSeed(points, k, 1, rng);
    });
    SetNumThreads(1);
    results.pool_seed_1t_ms = BestOfRuns(runs, [&] {
      PoolKMeansPlusPlusSeed(points, k, rng);
    });
    ResetNumThreads();
    results.legacy_seed_mt_ms = BestOfRuns(runs, [&] {
      LegacyKMeansPlusPlusSeed(points, k, threads, rng);
    });
    SetNumThreads(threads);
    results.pool_seed_mt_ms = BestOfRuns(runs, [&] {
      PoolKMeansPlusPlusSeed(points, k, rng);
    });
    ResetNumThreads();

    // --- Draw latency on the same scale: O(n) linear scan with re-sum
    // vs O(log n) Fenwick draw.
    std::vector<double> weights(points.rows());
    Rng wrng(2);
    for (double& w : weights) w = wrng.NextDouble();
    const DiscreteDistribution dist(weights);
    const int draws = 2000;
    Rng draw_rng(3);
    const double linear_ms = BestOfRuns(runs, [&] {
      size_t sink = 0;
      for (int i = 0; i < draws; ++i) {
        sink += draw_rng.SampleDiscrete(weights);
      }
      if (sink == size_t(-1)) std::printf("?");  // Defeat dead-code elim.
    });
    results.linear_sample_us = 1000.0 * linear_ms / draws;
    const double fenwick_ms = BestOfRuns(runs, [&] {
      size_t sink = 0;
      for (int i = 0; i < draws; ++i) sink += dist.Sample(draw_rng);
      if (sink == size_t(-1)) std::printf("?");
    });
    results.fenwick_sample_us = 1000.0 * fenwick_ms / draws;
  }

  std::printf("dispatch (T=%zu):   spawn %8.2f us/call   pool %8.2f us/call"
              "   speedup %.2fx\n",
              threads, results.spawn_dispatch_us, results.pool_dispatch_us,
              results.spawn_dispatch_us / results.pool_dispatch_us);
  std::printf("seeding n=%zu k=%zu (1t): legacy %8.2f ms   pool %8.2f ms"
              "   speedup %.2fx\n",
              results.seed_n, results.seed_k, results.legacy_seed_1t_ms,
              results.pool_seed_1t_ms,
              results.legacy_seed_1t_ms / results.pool_seed_1t_ms);
  std::printf("seeding n=%zu k=%zu (%zut): legacy %8.2f ms   pool %8.2f ms"
              "   speedup %.2fx\n",
              results.seed_n, results.seed_k, results.threads,
              results.legacy_seed_mt_ms, results.pool_seed_mt_ms,
              results.legacy_seed_mt_ms / results.pool_seed_mt_ms);
  std::printf("sampling n=%zu:     linear %8.3f us/draw  fenwick %8.3f "
              "us/draw  speedup %.2fx\n",
              results.seed_n, results.linear_sample_us,
              results.fenwick_sample_us,
              results.linear_sample_us / results.fenwick_sample_us);

  WriteJson(results, "BENCH_parallel.json");
  std::printf("\nwrote BENCH_parallel.json (threads=%zu, runs=%d)\n",
              threads, runs);
  return 0;
}
