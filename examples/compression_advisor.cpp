// The paper's Section 5.5 takeaway as a tool: an optimistic user defaults
// to uniform sampling, a cautious one checks whether the dataset's
// clusters are balanced enough for that to be safe — but that check costs
// as much as a Fast-Coreset, so the cautious user should just build one.
//
// This example runs the "advisor" on three datasets of increasing
// difficulty and shows where each sampling strategy on the spectrum
// (uniform -> lightweight -> welterweight -> fast-coreset) starts to fail.
//
//   build/examples/compression_advisor

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/api/fastcoreset.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/common/table_printer.h"
#include "src/data/generators.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"

#include "examples/example_util.h"

namespace {

using namespace fastcoreset;

/// Cluster-size imbalance proxy: ratio of largest to smallest cluster in a
/// cheap k-means++ probe. (This probe is already O(nkd) — the point the
/// paper makes: verifying balance costs as much as doing it right.)
double ImbalanceScore(const Matrix& points, size_t k, Rng& rng) {
  const Clustering probe = KMeansPlusPlus(points, {}, k, 2, rng);
  std::vector<size_t> sizes(probe.centers.rows(), 0);
  for (size_t assignment : probe.assignment) ++sizes[assignment];
  size_t lo = points.rows(), hi = 0;
  for (size_t s : sizes) {
    if (s == 0) continue;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  return lo == 0 ? 1e9 : static_cast<double>(hi) / static_cast<double>(lo);
}

void Advise(const std::string& name, const Matrix& points, size_t k,
            Rng& rng) {
  const size_t m = 20 * k;
  const double imbalance = ImbalanceScore(points, k, rng);
  const char* advice = imbalance < 10.0
                           ? "balanced -> uniform sampling is likely safe"
                           : imbalance < 100.0
                                 ? "skewed -> use welterweight or better"
                                 : "extreme -> strong coreset required";
  std::printf("\n== %s (n=%zu, d=%zu): imbalance %.1f — %s\n", name.c_str(),
              points.rows(), points.cols(), imbalance, advice);

  // The spectrum, fastest to most accurate — every name resolves through
  // the same registry the production entry points use.
  const std::vector<std::string> spectrum = {
      "uniform", "lightweight", "welterweight", "sensitivity",
      "fast_coreset"};
  TablePrinter table;
  table.SetHeader({"method", "distortion"});
  for (size_t i = 0; i < spectrum.size(); ++i) {
    api::CoresetSpec spec;
    spec.method = spectrum[i];
    spec.k = k;
    spec.m = m;
    spec.seed = i * 7919 + 1;
    Rng local(spec.seed);
    const Coreset coreset = api::Build(spec, points, {}, local)->coreset;
    DistortionOptions probe;
    probe.k = k;
    const double distortion =
        CoresetDistortion(points, {}, coreset, probe, local);
    std::string marker = distortion > 5.0 ? "  <-- FAILS" : "";
    table.AddRow({spec.method, TablePrinter::Num(distortion) + marker});
  }
  table.Print();
}

}  // namespace

int main() {
  Rng rng(31337);
  const size_t k = 50;
  const size_t n = examples::ScaledN(40000, /*floor_n=*/4000);

  // Easy: balanced Gaussians — everything works, so take the fastest.
  const Matrix easy = GenerateGaussianMixture(n, 20, k, 0.0, rng);
  Advise("balanced mixture", easy, k, rng);

  // Medium: heavy imbalance — uniform starts missing small clusters.
  const Matrix skewed = GenerateGaussianMixture(n, 20, k, 5.0, rng);
  Advise("imbalanced mixture (gamma=5)", skewed, k, rng);

  // Hard: c-outlier — only importance-based methods survive.
  const Matrix outliers = GenerateCOutlier(n, 25, 20, 1e5, rng);
  Advise("c-outlier", outliers, k, rng);

  std::printf("\nBlueprint (paper 5.5): optimistic users may default to\n"
              "uniform sampling; checking whether that is safe costs as\n"
              "much as building a Fast-Coreset — so cautious users should\n"
              "simply build the Fast-Coreset.\n");
  return 0;
}
