// Scenario: telemetry events arrive in batches (e.g. from fleet devices)
// and we must maintain a bounded-memory summary that supports k-means
// queries at any time — the merge-&-reduce streaming pipeline of
// Section 5.4. Memory stays O(m log b) for b batches, and the summary is
// a valid coreset of everything seen so far.
//
//   build/examples/streaming_telemetry

#include <cstdio>

#include "src/api/fastcoreset.h"
#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"

#include "examples/example_util.h"

int main() {
  using namespace fastcoreset;
  Rng rng(99);

  const size_t k = 20;
  const size_t m = 30 * k;
  const size_t batch_size = examples::ScaledN(8192, /*floor_n=*/m);
  const size_t batches = 16;

  // Any registered method wraps into the streaming builder signature; the
  // spec carries k/z, the compressor supplies batches, sizes, and rng.
  api::CoresetSpec spec;
  spec.method = "sensitivity";
  spec.k = k;

  // The full stream is materialized only to audit the summary afterwards;
  // the compressor itself sees one batch at a time.
  Matrix full_stream;
  StreamingCompressor compressor(api::MakeBuilder(spec).value(), m, &rng);

  std::printf("%-8s %12s %12s %14s\n", "batch", "seen", "levels",
              "summary size");
  for (size_t b = 0; b < batches; ++b) {
    // Device behaviour drifts over time: cluster means move per batch.
    Rng batch_rng(1000 + b);
    const Matrix batch =
        GenerateGaussianMixture(batch_size, 8, k, /*gamma=*/1.0, batch_rng,
                                /*box=*/200.0 + 10.0 * b);
    compressor.Push(batch);
    full_stream.AppendRows(batch);
    if ((b + 1) % 4 == 0) {
      const Coreset snapshot = compressor.Finalize();
      std::printf("%-8zu %12zu %12zu %14zu\n", b + 1, full_stream.rows(),
                  compressor.OccupiedLevels(), snapshot.size());
    }
  }

  // Query: cluster the summary; audit against the full stream.
  const Coreset summary = compressor.Finalize();
  const Clustering seed =
      KMeansPlusPlus(summary.points, summary.weights, k, 2, rng);
  const double cost_on_stream =
      CostToCenters(full_stream, {}, seed.centers, 2);
  Rng direct_rng(5);
  const double cost_direct =
      KMeansPlusPlus(full_stream, {}, k, 2, direct_rng).total_cost;

  DistortionOptions probe;
  probe.k = k;
  const double distortion =
      CoresetDistortion(full_stream, {}, summary, probe, rng);

  std::printf("\nstream total: %zu points; summary: %zu weighted points "
              "(%zu reduce ops over %zu blocks)\n",
              full_stream.rows(), summary.size(), compressor.ReduceOps(),
              compressor.BlocksConsumed());
  std::printf("k-means cost via summary : %.4e\n", cost_on_stream);
  std::printf("k-means cost direct      : %.4e\n", cost_direct);
  std::printf("summary coreset distortion: %.3f\n", distortion);
  return 0;
}
