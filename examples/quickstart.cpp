// Quickstart: compress a large dataset with a Fast-Coreset through the
// public API (src/api/fastcoreset.h), cluster on the compression, and
// verify the solution is as good as clustering the full data — at a
// fraction of the cost.
//
//   build/examples/quickstart

#include <cstdio>

#include "src/api/fastcoreset.h"
#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/lloyd.h"
#include "src/common/timer.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"

#include "examples/example_util.h"

int main() {
  using namespace fastcoreset;
  Rng rng(2024);

  // 1. A dataset too large to cluster comfortably: 100k points, 30 dims,
  //    40 imbalanced Gaussian clusters.
  const size_t n = examples::ScaledN(100000, /*floor_n=*/6400), d = 30, k = 40;
  std::printf("Generating %zu x %zu Gaussian mixture (kappa=%zu)...\n", n, d,
              k);
  const Matrix points = GenerateGaussianMixture(n, d, k, /*gamma=*/2.0, rng);

  // 2. Build a strong coreset in near-linear time. The spec is the whole
  //    request: method, k, size, seed — same spec, same coreset, always.
  api::CoresetSpec spec;
  spec.method = "fast_coreset";
  spec.k = k;
  spec.m = 40 * k;  // The paper's default coreset size.
  spec.seed = 2024;
  const api::BuildResult result = api::Build(spec, points).value();
  const Coreset& coreset = result.coreset;
  const double coreset_seconds = result.diagnostics.total_seconds;
  std::printf("Fast-Coreset: %zu weighted points in %.2fs (%.1fx smaller)\n",
              coreset.size(), coreset_seconds,
              static_cast<double>(n) / coreset.size());

  // The diagnostics say where the time went — no bespoke timing code.
  std::printf("\nbuild diagnostics:\n%s\n",
              result.diagnostics.ToString().c_str());

  // 3. Cluster the coreset (cheap) and the full data (expensive) and
  //    compare the resulting k-means costs on the full data.
  Timer small_timer;
  const Clustering seed_small =
      KMeansPlusPlus(coreset.points, coreset.weights, k, 2, rng);
  const Clustering on_coreset =
      LloydKMeans(coreset.points, coreset.weights, seed_small.centers);
  const double small_seconds = small_timer.Seconds();

  Timer full_timer;
  const Clustering seed_full = KMeansPlusPlus(points, {}, k, 2, rng);
  const Clustering on_full = LloydKMeans(points, {}, seed_full.centers);
  const double full_seconds = full_timer.Seconds();

  const double cost_via_coreset =
      CostToCenters(points, {}, on_coreset.centers, 2);
  std::printf("%-28s %12s %10s\n", "pipeline", "k-means cost", "seconds");
  std::printf("%-28s %12.3e %10.2f\n", "cluster full data",
              on_full.total_cost, full_seconds);
  std::printf("%-28s %12.3e %10.2f\n", "coreset + cluster coreset",
              cost_via_coreset, coreset_seconds + small_seconds);

  // 4. Probe the coreset guarantee with the distortion metric.
  DistortionOptions probe;
  probe.k = k;
  const double distortion = CoresetDistortion(points, {}, coreset, probe, rng);
  std::printf("\ncoreset distortion: %.3f (1.0 = perfect, <= 1+eps = strong "
              "coreset behaviour)\n", distortion);
  return 0;
}
