// Scenario: a ride-hailing fleet wants k-median depot locations from
// hundreds of thousands of 2-D pickup coordinates. Most pickups happen
// downtown, but small far-away clusters (airports, suburbs) carry real
// demand. This is exactly the regime where uniform sampling fails
// catastrophically (the paper's Taxi dataset: ~600x worse than
// sensitivity sampling) while a Fast-Coreset keeps every cluster.
//
//   build/examples/taxi_fleet_compression

#include <cstdio>

#include "src/api/fastcoreset.h"
#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/kmedian.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"

#include "examples/example_util.h"

namespace {

using namespace fastcoreset;

/// k-median depots from a compression, evaluated on the full data.
double PlanDepots(const Matrix& pickups, const Coreset& compression,
                  size_t k, Rng& rng) {
  const Clustering seed =
      KMeansPlusPlus(compression.points, compression.weights, k, 1, rng);
  const Clustering depots = LloydKMedian(compression.points,
                                         compression.weights, seed.centers);
  return CostToCenters(pickups, {}, depots.centers, 1);
}

}  // namespace

int main() {
  Rng rng(7);
  const size_t k = 50;

  std::printf("Simulating a city of pickups (Zipf street clusters + remote "
              "airports)...\n");
  const Dataset taxi =
      MakeTaxiLike(examples::ScaledN(150000, /*floor_n=*/8000), rng);
  const Matrix& pickups = taxi.points;
  const size_t m = 20 * k;

  // Two compressions of identical size, one spec each.
  api::CoresetSpec uniform_spec;
  uniform_spec.method = "uniform";
  uniform_spec.k = k;
  uniform_spec.m = m;
  uniform_spec.z = 1;
  const Coreset uniform = api::Build(uniform_spec, pickups, {}, rng)->coreset;

  api::CoresetSpec fast_spec;
  fast_spec.method = "fast_coreset";
  fast_spec.k = k;
  fast_spec.m = m;
  fast_spec.z = 1;  // k-median: robust depot placement.
  api::FastOptions fast_options;
  fast_options.use_jl = false;  // Already 2-D.
  fast_spec.options = fast_options;
  const Coreset fast = api::Build(fast_spec, pickups, {}, rng)->coreset;

  const double cost_uniform = PlanDepots(pickups, uniform, k, rng);
  const double cost_fast = PlanDepots(pickups, fast, k, rng);

  DistortionOptions probe;
  probe.k = k;
  probe.z = 1;
  const double dist_uniform =
      CoresetDistortion(pickups, {}, uniform, probe, rng);
  const double dist_fast = CoresetDistortion(pickups, {}, fast, probe, rng);

  std::printf("\n%-16s %14s %14s\n", "compression", "k-median cost",
              "distortion");
  std::printf("%-16s %14.4e %14.2f\n", "uniform", cost_uniform, dist_uniform);
  std::printf("%-16s %14.4e %14.2f\n", "fast-coreset", cost_fast, dist_fast);
  std::printf("\nuniform / fast-coreset cost ratio: %.2fx\n",
              cost_uniform / cost_fast);
  std::printf("(the remote clusters carry little probability mass, so a "
              "uniform sample\n almost surely drops them; the coreset's "
              "importance weights cannot.)\n");
  return 0;
}
