// Shared helper for the demo binaries: FC_EXAMPLE_SCALE shrinks the
// dataset sizes (the ctest smoke tests set it to 0.05 so the demos finish
// in seconds, even under sanitizers). Default 1.0 keeps the documented
// sizes. Each call site passes a floor that keeps its k/m choices feasible.

#ifndef FASTCORESET_EXAMPLES_EXAMPLE_UTIL_H_
#define FASTCORESET_EXAMPLES_EXAMPLE_UTIL_H_

#include <algorithm>
#include <cstddef>

#include "src/common/env.h"

namespace fastcoreset {
namespace examples {

inline size_t ScaledN(size_t n, size_t floor_n) {
  const double scale = EnvDouble("FC_EXAMPLE_SCALE", 1.0);
  // Upscaling past the built-in sizes is allowed (matching the benches'
  // FC_SCALE knob), but the product must be clamped before the cast: a
  // negative, NaN, or huge value would make the float->integer
  // conversion UB.
  constexpr double kMaxN = 1e8;
  double scaled = static_cast<double>(n) * scale;
  if (!(scaled >= 0.0)) scaled = 0.0;
  if (scaled > kMaxN) scaled = kMaxN;
  return std::max(floor_n, static_cast<size_t>(scaled));
}

}  // namespace examples
}  // namespace fastcoreset

#endif  // FASTCORESET_EXAMPLES_EXAMPLE_UTIL_H_
