// Command-line clustering tool: the second half of the fc_compress
// pipeline. Reads a headerless numeric CSV — optionally with a trailing
// weight column, as written by fc_compress — runs k-means or k-median
// (k-means++/k-median++ seeding + Lloyd/Weiszfeld refinement), and writes
// the centers as CSV.
//
//   fc_cluster <input.csv> <centers_out.csv> [k] [z] [--weighted] [seed]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/kmedian.h"
#include "src/clustering/lloyd.h"
#include "src/common/timer.h"
#include "src/data/csv_loader.h"

int main(int argc, char** argv) {
  using namespace fastcoreset;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <input.csv> <centers_out.csv> [k] [z] "
                 "[--weighted] [seed]\n"
                 "  --weighted: treat the last CSV column as point weights\n",
                 argv[0]);
    return 2;
  }
  const std::string input = argv[1];
  const std::string output = argv[2];
  const size_t k = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;
  const int z = argc > 4 ? std::atoi(argv[4]) : 2;
  bool weighted = false;
  uint64_t seed = 1;
  for (int a = 5; a < argc; ++a) {
    if (std::strcmp(argv[a], "--weighted") == 0) {
      weighted = true;
    } else {
      seed = std::strtoull(argv[a], nullptr, 10);
    }
  }

  const auto raw = LoadCsv(input);
  if (!raw.has_value()) {
    std::fprintf(stderr, "error: could not parse %s\n", input.c_str());
    return 1;
  }
  if (weighted && raw->cols() < 2) {
    std::fprintf(stderr, "error: --weighted needs >= 2 columns\n");
    return 1;
  }

  Matrix points;
  std::vector<double> weights;
  if (weighted) {
    points = Matrix(raw->rows(), raw->cols() - 1);
    weights.resize(raw->rows());
    for (size_t i = 0; i < raw->rows(); ++i) {
      for (size_t j = 0; j + 1 < raw->cols(); ++j) {
        points.At(i, j) = raw->At(i, j);
      }
      weights[i] = raw->At(i, raw->cols() - 1);
      if (weights[i] <= 0.0) {
        std::fprintf(stderr, "error: non-positive weight in row %zu\n", i);
        return 1;
      }
    }
  } else {
    points = *raw;
  }
  std::printf("loaded %zu x %zu (%s) from %s\n", points.rows(),
              points.cols(), weighted ? "weighted" : "unweighted",
              input.c_str());

  Rng rng(seed);
  Timer timer;
  const Clustering seeded = KMeansPlusPlus(points, weights, k, z, rng);
  const Clustering refined =
      z == 2 ? LloydKMeans(points, weights, seeded.centers)
             : LloydKMedian(points, weights, seeded.centers);
  const double seconds = timer.Seconds();

  if (!SaveCsv(output, refined.centers)) {
    std::fprintf(stderr, "error: could not write %s\n", output.c_str());
    return 1;
  }
  std::printf("k=%zu z=%d cost=%.6e in %.2fs; centers -> %s\n", k, z,
              refined.total_cost, seconds, output.c_str());
  return 0;
}
