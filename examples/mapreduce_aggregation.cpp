// Scenario: the MapReduce pattern of Section 2.3. Data is partitioned
// randomly among w workers; each worker computes a coreset of its shard
// and ships only O(m) weighted points to the host; the union of the
// shards' coresets is a coreset of the full dataset (composability), so
// the host can cluster the tiny union instead of the full data. Total
// communication is independent of n.
//
//   build/examples/mapreduce_aggregation

#include <cstdio>
#include <vector>

#include "src/api/fastcoreset.h"
#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/lloyd.h"
#include "src/common/table_printer.h"
#include "src/common/timer.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"

#include "examples/example_util.h"

int main() {
  using namespace fastcoreset;
  Rng rng(1234);

  const size_t d = 20, k = 30;
  const size_t m_per_worker = 20 * k;
  // Floor: with 32 workers the average shard must still hold ~m points.
  const size_t n = examples::ScaledN(200000, /*floor_n=*/32 * m_per_worker);
  std::printf("Generating %zu x %zu mixture; clustering with k=%zu...\n", n,
              d, k);
  const Matrix points = GenerateGaussianMixture(n, d, k, /*gamma=*/2.5, rng);

  TablePrinter table;
  table.SetHeader({"workers", "host points", "k-means cost on P",
                   "distortion", "wall seconds"});

  Rng direct_rng(1);
  Timer direct_timer;
  const Clustering direct = LloydKMeans(
      points, {}, KMeansPlusPlus(points, {}, k, 2, direct_rng).centers);
  table.AddRow({"0 (direct)", std::to_string(n),
                TablePrinter::Num(direct.total_cost), "-",
                TablePrinter::Num(direct_timer.Seconds())});

  for (size_t workers : {2, 8, 32}) {
    Timer timer;
    // Map: random partition, one Fast-Coreset per worker. (Workers are
    // sequential here; in a real deployment they run in parallel, so the
    // wall-clock would be ~1/workers of the mapped time.)
    Rng shard_rng(100 + workers);
    std::vector<std::vector<size_t>> shards(workers);
    for (size_t i = 0; i < n; ++i) {
      shards[shard_rng.NextIndex(workers)].push_back(i);
    }
    Coreset host_union;
    host_union.points = Matrix(0, d);
    for (size_t w = 0; w < workers; ++w) {
      const Matrix shard = points.SelectRows(shards[w]);
      // The spec is exactly what a coordinator would ship to a worker:
      // method + parameters + per-worker seed, nothing else.
      api::CoresetSpec spec;
      spec.method = "fast_coreset";
      spec.k = k;
      spec.m = m_per_worker;
      spec.seed = 1000 + w;
      Coreset local = api::Build(spec, shard)->coreset;
      // Reduce: union of coresets is a coreset of the union.
      for (size_t r = 0; r < local.size(); ++r) {
        host_union.indices.push_back(
            local.indices[r] == Coreset::kSyntheticIndex
                ? Coreset::kSyntheticIndex
                : shards[w][local.indices[r]]);
      }
      host_union.weights.insert(host_union.weights.end(),
                                local.weights.begin(), local.weights.end());
      host_union.points.AppendRows(local.points);
    }

    // Host: cluster the union.
    Rng host_rng(7);
    const Clustering seed =
        KMeansPlusPlus(host_union.points, host_union.weights, k, 2, host_rng);
    const Clustering refined =
        LloydKMeans(host_union.points, host_union.weights, seed.centers);
    const double cost = CostToCenters(points, {}, refined.centers, 2);

    DistortionOptions probe;
    probe.k = k;
    const double distortion =
        CoresetDistortion(points, {}, host_union, probe, host_rng);
    table.AddRow({std::to_string(workers),
                  std::to_string(host_union.size()),
                  TablePrinter::Num(cost), TablePrinter::Num(distortion),
                  TablePrinter::Num(timer.Seconds())});
  }

  table.Print();
  std::printf("\nThe host never sees more than workers * m weighted points, "
              "yet its solution matches clustering the full data.\n");
  return 0;
}
