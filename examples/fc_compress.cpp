// Command-line compression tool: reads a headerless numeric CSV, builds a
// coreset with any method in the library, and writes the compressed rows
// plus a weight column. A downstream user can feed the output into any
// weighted clustering implementation.
//
//   fc_compress <input.csv> <output.csv> [method] [k] [m] [z] [seed]
//     method: uniform | lightweight | welterweight | sensitivity |
//             fast (default) | group
//     k: target cluster count (default 100)
//     m: coreset size (default 40 * k)
//     z: 1 = k-median, 2 = k-means (default 2)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/timer.h"
#include "src/core/fast_coreset.h"
#include "src/core/group_sampling.h"
#include "src/core/samplers.h"
#include "src/data/csv_loader.h"

int main(int argc, char** argv) {
  using namespace fastcoreset;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <input.csv> <output.csv> [method] [k] [m] [z] "
                 "[seed]\n",
                 argv[0]);
    return 2;
  }
  const std::string input = argv[1];
  const std::string output = argv[2];
  const std::string method = argc > 3 ? argv[3] : "fast";
  const size_t k = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 100;
  const size_t m = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 40 * k;
  const int z = argc > 6 ? std::atoi(argv[6]) : 2;
  const uint64_t seed = argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 1;

  const auto points = LoadCsv(input);
  if (!points.has_value()) {
    std::fprintf(stderr, "error: could not parse %s\n", input.c_str());
    return 1;
  }
  std::printf("loaded %zu x %zu from %s\n", points->rows(), points->cols(),
              input.c_str());

  Rng rng(seed);
  Timer timer;
  Coreset coreset;
  if (method == "uniform") {
    coreset = BuildCoreset(SamplerKind::kUniform, *points, {}, k, m, z, rng);
  } else if (method == "lightweight") {
    coreset =
        BuildCoreset(SamplerKind::kLightweight, *points, {}, k, m, z, rng);
  } else if (method == "welterweight") {
    coreset =
        BuildCoreset(SamplerKind::kWelterweight, *points, {}, k, m, z, rng);
  } else if (method == "sensitivity") {
    coreset =
        BuildCoreset(SamplerKind::kSensitivity, *points, {}, k, m, z, rng);
  } else if (method == "fast") {
    coreset =
        BuildCoreset(SamplerKind::kFastCoreset, *points, {}, k, m, z, rng);
  } else if (method == "group") {
    GroupSamplingOptions options;
    options.k = k;
    options.m = m;
    options.z = z;
    coreset = GroupSamplingCoreset(*points, {}, options, rng);
  } else {
    std::fprintf(stderr, "error: unknown method '%s'\n", method.c_str());
    return 2;
  }
  const double seconds = timer.Seconds();

  // Output rows: original columns plus a trailing weight column.
  Matrix out(coreset.size(), points->cols() + 1);
  for (size_t r = 0; r < coreset.size(); ++r) {
    for (size_t j = 0; j < points->cols(); ++j) {
      out.At(r, j) = coreset.points.At(r, j);
    }
    out.At(r, points->cols()) = coreset.weights[r];
  }
  if (!SaveCsv(output, out)) {
    std::fprintf(stderr, "error: could not write %s\n", output.c_str());
    return 1;
  }
  std::printf(
      "wrote %zu weighted rows (total weight %.1f, %.1fx compression) to %s "
      "in %.2fs\n",
      coreset.size(), coreset.TotalWeight(),
      static_cast<double>(points->rows()) / coreset.size(), output.c_str(),
      seconds);
  return 0;
}
