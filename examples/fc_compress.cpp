// Command-line compression tool: reads a headerless numeric CSV, builds a
// coreset with any registered method, and writes the compressed rows plus
// a weight column. A downstream user can feed the output into any
// weighted clustering implementation.
//
// The method name goes straight into the API registry, so every
// registered method (and alias) works here without this tool knowing any
// of them — and an unknown name or inconsistent request comes back as a
// readable error, not an abort.
//
//   fc_compress <input.csv> <output.csv> [method] [k] [m] [z] [seed]
//     method: any registry name — uniform | lightweight | welterweight |
//             sensitivity | fast_coreset (alias: fast, default) |
//             group_sampling (alias: group) | bico | stream_km
//     k: target cluster count (default 100)
//     m: coreset size (default 40 * k)
//     z: 1 = k-median, 2 = k-means (default 2)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/api/fastcoreset.h"
#include "src/data/csv_loader.h"

int main(int argc, char** argv) {
  using namespace fastcoreset;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <input.csv> <output.csv> [method] [k] [m] [z] "
                 "[seed]\n",
                 argv[0]);
    return 2;
  }
  const std::string input = argv[1];
  const std::string output = argv[2];

  api::CoresetSpec spec;
  spec.method = argc > 3 ? argv[3] : "fast";
  spec.k = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 100;
  spec.m = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 0;  // 0 = 40k.
  spec.z = argc > 6 ? std::atoi(argv[6]) : 2;
  spec.seed = argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 1;

  const auto points = LoadCsv(input);
  if (!points.has_value()) {
    std::fprintf(stderr, "error: could not parse %s\n", input.c_str());
    return 1;
  }
  std::printf("loaded %zu x %zu from %s\n", points->rows(), points->cols(),
              input.c_str());

  const api::FcStatusOr<api::BuildResult> result =
      api::Build(spec, *points);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 2;
  }
  const Coreset& coreset = result->coreset;

  // Output rows: original columns plus a trailing weight column.
  Matrix out(coreset.size(), points->cols() + 1);
  for (size_t r = 0; r < coreset.size(); ++r) {
    for (size_t j = 0; j < points->cols(); ++j) {
      out.At(r, j) = coreset.points.At(r, j);
    }
    out.At(r, points->cols()) = coreset.weights[r];
  }
  if (!SaveCsv(output, out)) {
    std::fprintf(stderr, "error: could not write %s\n", output.c_str());
    return 1;
  }
  std::printf(
      "wrote %zu weighted rows (total weight %.1f, %.1fx compression) to %s "
      "in %.2fs\n",
      coreset.size(), coreset.TotalWeight(),
      static_cast<double>(points->rows()) / coreset.size(), output.c_str(),
      result->diagnostics.total_seconds);
  return 0;
}
