// Determinism suite for the parallel substrate contract (parallel.h):
// chunk geometry depends only on the input size, reductions merge in
// chunk order, and all RNG consumption is serial — so every pipeline
// result is bit-identical at ANY worker count, not merely reproducible
// at a fixed one. These tests pin that guarantee end to end by running
// the kernels and the full coreset pipelines at FC_THREADS ∈ {1, 4} and
// asserting exact equality.

#include <vector>

#include <gtest/gtest.h>

#include "src/clustering/cost.h"
#include "src/clustering/kmeans_parallel.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/lloyd.h"
#include "src/common/parallel.h"
#include "src/core/fast_coreset.h"
#include "src/core/importance.h"
#include "src/core/sensitivity_sampling.h"
#include "src/data/generators.h"
#include "src/geometry/distance.h"
#include "src/geometry/quadtree.h"
#include "src/spread/crude_approx.h"
#include "src/spread/reduce_spread.h"
#include "src/service/shard_planner.h"

namespace fastcoreset {
namespace {

// Large enough that the chunk plan splits the range (engaging real
// worker threads at FC_THREADS > 1) — see kSerialCutoff in parallel.cc.
constexpr size_t kRows = 6000;

Matrix TestPoints(size_t d, uint64_t seed) {
  Rng rng(seed);
  return GenerateGaussianMixture(kRows, d, /*kappa=*/12, /*gamma=*/0.5, rng);
}

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(size_t count) { SetNumThreads(count); }
  ~ThreadCountGuard() { ResetNumThreads(); }
};

TEST(DeterminismTest, AssignToNearestBitIdenticalAcrossThreadCounts) {
  const Matrix points = TestPoints(8, 101);
  Rng rng(102);
  Matrix centers(20, 8);
  for (size_t c = 0; c < 20; ++c) {
    centers.CopyRowFrom(points, rng.NextIndex(points.rows()), c);
  }
  std::vector<size_t> idx1, idx4;
  std::vector<double> sq1, sq4;
  {
    ThreadCountGuard guard(1);
    AssignToNearest(points, centers, &idx1, &sq1);
  }
  {
    ThreadCountGuard guard(4);
    AssignToNearest(points, centers, &idx4, &sq4);
  }
  EXPECT_EQ(idx1, idx4);
  EXPECT_EQ(sq1, sq4);  // Exact, not approximate.
}

TEST(DeterminismTest, CostReductionsBitIdenticalAcrossThreadCounts) {
  const Matrix points = TestPoints(6, 103);
  Rng rng(104);
  Matrix centers(15, 6);
  for (size_t c = 0; c < 15; ++c) {
    centers.CopyRowFrom(points, rng.NextIndex(points.rows()), c);
  }
  std::vector<double> weights(points.rows());
  for (double& w : weights) w = rng.NextDouble() + 0.1;

  double cost1, cost4, median1, median4;
  {
    ThreadCountGuard guard(1);
    cost1 = CostToCenters(points, weights, centers, 2);
    median1 = CostToCenters(points, weights, centers, 1);
  }
  {
    ThreadCountGuard guard(4);
    cost4 = CostToCenters(points, weights, centers, 2);
    median4 = CostToCenters(points, weights, centers, 1);
  }
  EXPECT_EQ(cost1, cost4);
  EXPECT_EQ(median1, median4);
}

void ExpectCoresetsIdentical(const Coreset& a, const Coreset& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.points.data(), b.points.data());
}

TEST(DeterminismTest, FastCoresetBitIdenticalAcrossThreadCounts) {
  const Matrix points = TestPoints(10, 105);
  FastCoresetOptions options;
  options.k = 12;
  options.m = 240;
  Coreset coreset1, coreset4;
  {
    ThreadCountGuard guard(1);
    Rng rng(106);
    coreset1 = FastCoreset(points, {}, options, rng);
  }
  {
    ThreadCountGuard guard(4);
    Rng rng(106);
    coreset4 = FastCoreset(points, {}, options, rng);
  }
  ExpectCoresetsIdentical(coreset1, coreset4);
}

TEST(DeterminismTest, KMeansPlusPlusBitIdenticalAcrossThreadCounts) {
  // k-means++ now samples from an incrementally-updated Fenwick
  // distribution whose update batches are collected per chunk and applied
  // in chunk order — the sequence of center draws must not depend on the
  // executor count, only on the chunk plan.
  const Matrix points = TestPoints(9, 113);
  std::vector<double> weights(points.rows());
  {
    Rng wrng(114);
    for (double& w : weights) w = wrng.NextDouble() + 0.05;
  }
  for (int z : {1, 2}) {
    Clustering result1, result4;
    {
      ThreadCountGuard guard(1);
      Rng rng(115);
      result1 = KMeansPlusPlus(points, weights, 16, z, rng);
    }
    {
      ThreadCountGuard guard(4);
      Rng rng(115);
      result4 = KMeansPlusPlus(points, weights, 16, z, rng);
    }
    EXPECT_EQ(result1.assignment, result4.assignment) << "z=" << z;
    EXPECT_EQ(result1.point_costs, result4.point_costs) << "z=" << z;
    EXPECT_EQ(result1.total_cost, result4.total_cost) << "z=" << z;
    EXPECT_EQ(result1.centers.data(), result4.centers.data()) << "z=" << z;
  }
}

TEST(DeterminismTest, SensitivitySamplingBitIdenticalAcrossThreadCounts) {
  const Matrix points = TestPoints(7, 107);
  Coreset coreset1, coreset4;
  {
    ThreadCountGuard guard(1);
    Rng rng(108);
    coreset1 = SensitivitySamplingCoreset(points, {}, 10, 200, 2, rng);
  }
  {
    ThreadCountGuard guard(4);
    Rng rng(108);
    coreset4 = SensitivitySamplingCoreset(points, {}, 10, 200, 2, rng);
  }
  ExpectCoresetsIdentical(coreset1, coreset4);
}

TEST(DeterminismTest, KMeansParallelBitIdenticalAcrossThreadCounts) {
  const Matrix points = TestPoints(8, 117);
  KMeansParallelOptions options;
  options.rounds = 4;
  Clustering result1, result4;
  {
    ThreadCountGuard guard(1);
    Rng rng(118);
    result1 = KMeansParallel(points, {}, 10, options, rng);
  }
  {
    ThreadCountGuard guard(4);
    Rng rng(118);
    result4 = KMeansParallel(points, {}, 10, options, rng);
  }
  EXPECT_EQ(result1.assignment, result4.assignment);
  EXPECT_EQ(result1.total_cost, result4.total_cost);
  EXPECT_EQ(result1.centers.data(), result4.centers.data());
}

TEST(DeterminismTest, LloydBitIdenticalAcrossThreadCounts) {
  const Matrix points = TestPoints(5, 109);
  Rng rng(110);
  Matrix seeds(8, 5);
  for (size_t c = 0; c < 8; ++c) {
    seeds.CopyRowFrom(points, rng.NextIndex(points.rows()), c);
  }
  LloydOptions options;
  options.max_iters = 6;
  Clustering result1, result4;
  {
    ThreadCountGuard guard(1);
    result1 = LloydKMeans(points, {}, seeds, options);
  }
  {
    ThreadCountGuard guard(4);
    result4 = LloydKMeans(points, {}, seeds, options);
  }
  EXPECT_EQ(result1.assignment, result4.assignment);
  EXPECT_EQ(result1.total_cost, result4.total_cost);
  EXPECT_EQ(result1.centers.data(), result4.centers.data());
}

// The spread/quadtree path stores grid cells in unordered containers
// (quadtree build_map_, Crude-Approx cell counting, Reduce-Spread box
// ids). None of them may let hash-iteration order reach results — these
// tests pin that, at any thread count and across repeated runs.

TEST(DeterminismTest, FastCoresetSpreadPathBitIdenticalAcrossThreadCounts) {
  const Matrix points = TestPoints(8, 119);
  FastCoresetOptions options;
  options.k = 10;
  options.m = 200;
  options.use_spread_reduction = true;
  Coreset coreset1, coreset4;
  {
    ThreadCountGuard guard(1);
    Rng rng(120);
    coreset1 = FastCoreset(points, {}, options, rng);
  }
  {
    ThreadCountGuard guard(4);
    Rng rng(120);
    coreset4 = FastCoreset(points, {}, options, rng);
  }
  ExpectCoresetsIdentical(coreset1, coreset4);

  // Second run, same seed, same thread count: bit-equal with the first.
  {
    ThreadCountGuard guard(4);
    Rng rng(120);
    const Coreset again = FastCoreset(points, {}, options, rng);
    ExpectCoresetsIdentical(coreset4, again);
  }
}

TEST(DeterminismTest, ReduceSpreadBitIdenticalAcrossThreadCountsAndRuns) {
  const Matrix points = TestPoints(6, 121);
  const double upper_bound = 50.0;
  SpreadReduction red1, red4;
  {
    ThreadCountGuard guard(1);
    Rng rng(122);
    red1 = ReduceSpread(points, upper_bound, /*log_spread_hint=*/64, rng);
  }
  {
    ThreadCountGuard guard(4);
    Rng rng(122);
    red4 = ReduceSpread(points, upper_bound, /*log_spread_hint=*/64, rng);
  }
  EXPECT_EQ(red1.points.data(), red4.points.data());
  EXPECT_EQ(red1.box_of_point, red4.box_of_point);
  EXPECT_EQ(red1.box_shift.data(), red4.box_shift.data());
  EXPECT_EQ(red1.grid_size, red4.grid_size);
  EXPECT_EQ(red1.num_boxes, red4.num_boxes);

  {
    ThreadCountGuard guard(4);
    Rng rng(122);
    const SpreadReduction again =
        ReduceSpread(points, upper_bound, /*log_spread_hint=*/64, rng);
    EXPECT_EQ(red4.points.data(), again.points.data());
    EXPECT_EQ(red4.box_of_point, again.box_of_point);
  }
}

TEST(DeterminismTest, CrudeApproxBitIdenticalAcrossThreadCountsAndRuns) {
  const Matrix points = TestPoints(5, 123);
  CrudeApproxResult res1, res4;
  {
    ThreadCountGuard guard(1);
    Rng rng(124);
    res1 = CrudeApprox(points, /*k=*/10, rng);
  }
  {
    ThreadCountGuard guard(4);
    Rng rng(124);
    res4 = CrudeApprox(points, /*k=*/10, rng);
  }
  EXPECT_EQ(res1.upper_bound, res4.upper_bound);
  EXPECT_EQ(res1.lower_bound, res4.lower_bound);
  EXPECT_EQ(res1.split_level, res4.split_level);
  EXPECT_EQ(res1.probes, res4.probes);

  {
    ThreadCountGuard guard(4);
    Rng rng(124);
    const CrudeApproxResult again = CrudeApprox(points, /*k=*/10, rng);
    EXPECT_EQ(res4.upper_bound, again.upper_bound);
    EXPECT_EQ(res4.split_level, again.split_level);
  }
}

TEST(DeterminismTest, QuadtreeStructureIdenticalAcrossRepeatedBuilds) {
  // The quadtree's cell dictionary is an unordered_map; structure must
  // come only from insertion order (the point order), never from hash
  // iteration. Two same-seed builds must agree node for node.
  const Matrix points = TestPoints(4, 125);
  Rng rng_a(126), rng_b(126);
  const Quadtree tree_a(points, rng_a, /*max_depth=*/12);
  const Quadtree tree_b(points, rng_b, /*max_depth=*/12);
  ASSERT_EQ(tree_a.num_nodes(), tree_b.num_nodes());
  EXPECT_EQ(tree_a.shift(), tree_b.shift());
  EXPECT_EQ(tree_a.root_side(), tree_b.root_side());
  for (size_t p = 0; p < points.rows(); ++p) {
    ASSERT_EQ(tree_a.LeafOfPoint(p), tree_b.LeafOfPoint(p)) << "point " << p;
  }
  for (size_t id = 0; id < tree_a.num_nodes(); ++id) {
    const Quadtree::Node& a = tree_a.node(static_cast<int32_t>(id));
    const Quadtree::Node& b = tree_b.node(static_cast<int32_t>(id));
    ASSERT_EQ(a.level, b.level) << "node " << id;
    ASSERT_EQ(a.parent, b.parent) << "node " << id;
    ASSERT_EQ(a.is_leaf, b.is_leaf) << "node " << id;
    ASSERT_EQ(a.children, b.children) << "node " << id;
    ASSERT_EQ(a.points, b.points) << "node " << id;
  }
}

TEST(DeterminismTest, ConcurrentShardBuildsBitIdenticalToSequentialWalk) {
  // The task-graph tier runs shard builds concurrently; the schedule must
  // never reach results. Pin concurrent (parallelism = 0, all workers)
  // against the sequential reference walk (parallelism = 1) bit for bit,
  // across shard counts and thread counts.
  const Matrix points = TestPoints(7, 127);
  api::CoresetSpec spec;
  spec.method = "fast_coreset";
  spec.k = 8;
  spec.m = 160;
  spec.seed = 128;
  for (size_t shards : {1, 2, 4, 8}) {
    Coreset sequential;
    {
      ThreadCountGuard guard(1);
      auto result = service::BuildSharded(spec, points, shards,
                                          /*parallelism=*/1);
      ASSERT_TRUE(result.ok()) << result.status().message();
      sequential = std::move(result->coreset);
    }
    for (size_t threads : {1, 4}) {
      ThreadCountGuard guard(threads);
      auto concurrent = service::BuildSharded(spec, points, shards,
                                              /*parallelism=*/0);
      ASSERT_TRUE(concurrent.ok()) << concurrent.status().message();
      ExpectCoresetsIdentical(sequential, concurrent->coreset);
      // The scheduler must actually have run every node.
      EXPECT_EQ(concurrent->scheduler.tasks_executed,
                shards == 1 ? 1u : shards + 1)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(DeterminismTest, RepeatedRunsIdenticalAtFixedThreadCount) {
  const Matrix points = TestPoints(6, 111);
  FastCoresetOptions options;
  options.k = 8;
  options.m = 160;
  ThreadCountGuard guard(4);
  Rng rng_a(112), rng_b(112);
  const Coreset a = FastCoreset(points, {}, options, rng_a);
  const Coreset b = FastCoreset(points, {}, options, rng_b);
  ExpectCoresetsIdentical(a, b);
}

}  // namespace
}  // namespace fastcoreset
