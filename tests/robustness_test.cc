// Robustness suite: degenerate shapes (n = 1, d = 1, k = 1), duplicate-
// heavy inputs, extreme coordinate scales, contract violations (death
// tests on FC_CHECK), and coreset serialization round trips.

#include <cmath>
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/fastcoreset.h"
#include "src/clustering/fast_kmeans_plus_plus.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/lloyd.h"
#include "src/common/fenwick_tree.h"
#include "src/data/coreset_io.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"
#include "src/geometry/quadtree.h"
#include "src/spread/crude_approx.h"
#include "src/spread/reduce_spread.h"
#include "src/streaming/bico.h"

namespace fastcoreset {
namespace {

/// The five-method spectrum, built through the facade.
const std::vector<std::string>& Spectrum() {
  static const std::vector<std::string> methods = {
      "uniform", "lightweight", "welterweight", "sensitivity",
      "fast_coreset"};
  return methods;
}

Coreset FacadeBuild(const std::string& method, const Matrix& points,
                    size_t k, size_t m, Rng& rng) {
  api::CoresetSpec spec;
  spec.method = method;
  spec.k = k;
  spec.m = m;
  return api::Build(spec, points, {}, rng)->coreset;
}

TEST(DegenerateShapeTest, SinglePointSingleDim) {
  Matrix points(1, 1);
  points.At(0, 0) = 3.0;
  Rng rng(1);
  for (size_t i = 0; i < Spectrum().size(); ++i) {
    const std::string& method = Spectrum()[i];
    Rng local(10 + i);
    const Coreset coreset = FacadeBuild(method, points, 1, 1, local);
    ASSERT_GE(coreset.size(), 1u) << method;
    EXPECT_NEAR(coreset.TotalWeight(), 1.0, 1e-9) << method;
  }
  const Clustering clustering = KMeansPlusPlus(points, {}, 1, 2, rng);
  EXPECT_EQ(clustering.centers.rows(), 1u);
  EXPECT_EQ(clustering.total_cost, 0.0);
}

TEST(DegenerateShapeTest, KEqualsOneEverywhere) {
  Rng rng(2);
  Matrix points(100, 3);
  for (double& x : points.data()) x = rng.Uniform(0.0, 10.0);
  for (size_t i = 0; i < Spectrum().size(); ++i) {
    const std::string& method = Spectrum()[i];
    Rng local(20 + i);
    const Coreset coreset = FacadeBuild(method, points, 1, 10, local);
    EXPECT_GT(coreset.size(), 0u) << method;
  }
}

TEST(DegenerateShapeTest, OneDimensionalData) {
  Rng rng(3);
  Matrix points(500, 1);
  for (size_t i = 0; i < 500; ++i) {
    points.At(i, 0) = (i % 5) * 100.0 + rng.NextGaussian();
  }
  FastKMeansPlusPlusOptions options;
  const Clustering result = FastKMeansPlusPlus(points, {}, 5, options, rng);
  EXPECT_EQ(result.centers.rows(), 5u);
  // Five well-separated 1-D groups: near-optimal cost ~ n * sigma^2.
  EXPECT_LT(result.total_cost, 500.0 * 30.0);
}

TEST(DuplicateHeavyTest, AllSamplersSurviveMassiveDuplication) {
  // 1000 copies of each of 4 locations.
  Matrix points(4000, 2);
  for (size_t i = 0; i < 4000; ++i) {
    points.At(i, 0) = static_cast<double>(i % 4) * 50.0;
  }
  for (size_t i = 0; i < Spectrum().size(); ++i) {
    const std::string& method = Spectrum()[i];
    Rng rng(30 + i);
    const Coreset coreset = FacadeBuild(method, points, 4, 100, rng);
    EXPECT_GT(coreset.size(), 0u) << method;
    DistortionOptions probe;
    probe.k = 4;
    EXPECT_LT(CoresetDistortion(points, {}, coreset, probe, rng), 1.6)
        << method;
  }
}

TEST(ExtremeScaleTest, HugeCoordinates) {
  Rng rng(4);
  Matrix points(200, 2);
  for (double& x : points.data()) x = 1e15 + rng.Uniform(0.0, 1e12);
  Quadtree tree(points, rng);
  EXPECT_EQ(tree.num_points(), 200u);
  const CrudeApproxResult crude = CrudeApprox(points, 3, rng);
  EXPECT_GT(crude.upper_bound, 0.0);
  EXPECT_TRUE(std::isfinite(crude.upper_bound));
}

TEST(ExtremeScaleTest, TinyCoordinates) {
  Rng rng(5);
  Matrix points(200, 2);
  for (double& x : points.data()) x = 1e-12 * rng.NextDouble();
  FastKMeansPlusPlusOptions options;
  const Clustering result = FastKMeansPlusPlus(points, {}, 4, options, rng);
  EXPECT_GE(result.centers.rows(), 1u);
  EXPECT_TRUE(std::isfinite(result.total_cost));
}

TEST(ExtremeScaleTest, MixedScalesThroughSpreadReduction) {
  // Spread 1e15 ~ 2^50: inside CrudeApprox's documented 2^60 resolution.
  // (Beyond that the within-cluster structure is below the probe floor
  // and CrudeApprox correctly reports the degenerate OPT ~ 0 case, tested
  // separately.)
  Rng rng(6);
  Matrix points(100, 1);
  for (size_t i = 0; i < 50; ++i) points.At(i, 0) = 1e-3 * (i % 7);
  for (size_t i = 50; i < 100; ++i) points.At(i, 0) = 1e12 + 1e-3 * (i % 7);
  const CrudeApproxResult crude = CrudeApprox(points, 2, rng);
  ASSERT_GT(crude.upper_bound, 0.0);
  const SpreadReduction reduction =
      ReduceSpread(points, crude.upper_bound, 80.0, rng);
  EXPECT_EQ(reduction.points.rows(), 100u);
  for (double x : reduction.points.data()) EXPECT_TRUE(std::isfinite(x));
}

TEST(ExtremeScaleTest, BeyondResolutionIsDegenerateNotWrong) {
  // Spread 1e21 > 2^60: the sub-resolution structure is invisible, so
  // CrudeApprox must return the documented degenerate result rather than
  // a bogus bound.
  Rng rng(60);
  Matrix points(100, 1);
  for (size_t i = 0; i < 50; ++i) points.At(i, 0) = 1e-9 * (i % 7);
  for (size_t i = 50; i < 100; ++i) points.At(i, 0) = 1e12 + 1e-9 * (i % 7);
  const CrudeApproxResult crude = CrudeApprox(points, 2, rng);
  EXPECT_EQ(crude.upper_bound, 0.0);
  EXPECT_EQ(crude.split_level, -1);
}

TEST(ContractDeathTest, ChecksFireOnBadArguments) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Rng rng(7);
  Matrix points(10, 2);
  EXPECT_DEATH(
      { (void)KMeansPlusPlus(points, {}, 0, 2, rng); }, "FC_CHECK");
  EXPECT_DEATH(
      { (void)KMeansPlusPlus(points, {}, 2, 3, rng); }, "FC_CHECK");
  std::vector<double> short_weights(3, 1.0);
  EXPECT_DEATH(
      { (void)KMeansPlusPlus(points, short_weights, 2, 2, rng); },
      "FC_CHECK");
  EXPECT_DEATH({ FenwickTree tree(3); (void)tree.Sample(rng); },
               "all-zero FenwickTree");
  Bico bico(2);
  const std::vector<double> p = {0.0, 0.0};
  EXPECT_DEATH({ bico.Insert(p, 0.0); }, "FC_CHECK");
}

TEST(CoresetIoTest, RoundTripPreservesPointsAndWeights) {
  Rng rng(8);
  Matrix points(300, 4);
  for (double& x : points.data()) x = rng.Uniform(-100.0, 100.0);
  const Coreset original = FacadeBuild("sensitivity", points, 5, 60, rng);
  const std::string path = "/tmp/fc_coreset_io_test.csv";
  ASSERT_TRUE(SaveCoresetCsv(path, original));
  const auto loaded = LoadCoresetCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->points.cols(), 4u);
  for (size_t r = 0; r < original.size(); ++r) {
    EXPECT_NEAR(loaded->weights[r], original.weights[r],
                1e-4 * original.weights[r]);
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(loaded->points.At(r, j), original.points.At(r, j), 1e-3);
    }
  }
  std::remove(path.c_str());
}

TEST(CoresetIoTest, LoadedCoresetStillClusters) {
  Rng rng(9);
  const Matrix points = GenerateGaussianMixture(5000, 5, 8, 1.0, rng);
  const Coreset original =
      FacadeBuild("fast_coreset", points, 8, 300, rng);
  const std::string path = "/tmp/fc_coreset_io_test2.csv";
  ASSERT_TRUE(SaveCoresetCsv(path, original));
  const auto loaded = LoadCoresetCsv(path);
  ASSERT_TRUE(loaded.has_value());
  DistortionOptions probe;
  probe.k = 8;
  // CSV rounding costs a little precision; the coreset must stay valid.
  EXPECT_LT(CoresetDistortion(points, {}, *loaded, probe, rng), 1.5);
  std::remove(path.c_str());
}

TEST(CoresetIoTest, RejectsNonPositiveWeights) {
  const std::string path = "/tmp/fc_coreset_io_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("1.0,2.0,0.0\n", f);  // Zero weight.
    fclose(f);
  }
  EXPECT_FALSE(LoadCoresetCsv(path).has_value());
  std::remove(path.c_str());
}

TEST(NoiseRobustnessTest, DistortionStableUnderPerturbation) {
  // The same coreset pipeline on perturbed data should give a similar
  // distortion (no chaotic dependence on coordinates).
  Rng rng(10);
  const Matrix base = GenerateGaussianMixture(8000, 6, 10, 1.0, rng);
  Matrix shifted = base;
  AddUniformNoise(&shifted, 1e-6, rng);
  DistortionOptions probe;
  probe.k = 10;
  Rng rng_a(11), rng_b(11);
  const Coreset coreset_a = FacadeBuild("fast_coreset", base, 10, 400, rng_a);
  const Coreset coreset_b =
      FacadeBuild("fast_coreset", shifted, 10, 400, rng_b);
  Rng probe_a(12), probe_b(12);
  const double d_a = CoresetDistortion(base, {}, coreset_a, probe, probe_a);
  const double d_b =
      CoresetDistortion(shifted, {}, coreset_b, probe, probe_b);
  EXPECT_NEAR(d_a, d_b, 0.2);
}

}  // namespace
}  // namespace fastcoreset
