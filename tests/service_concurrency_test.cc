// Multi-threaded stress over CoresetService: N application threads hammer
// one shared service with interleaved register / build / evict / stats
// while the builds themselves parallelize on the persistent pool. This is
// the workload the TSan CI job (tsan preset, FC_THREADS=4) exists for:
// any data race in CoresetCache, DatasetStore, Registry, the thread pool,
// or the protocol layer shows up here. The assertions pin the lock-free
// observable contracts — cache counters add up, concurrent identical
// requests stay bit-identical, and the NDJSON register path never aborts
// under a concurrent Remove (the protocol.cc TOCTOU fix).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/dataset_store.h"
#include "src/service/fingerprint.h"
#include "src/service/protocol.h"
#include "src/service/service.h"

namespace fastcoreset {
namespace {

using service::BuildRequest;
using service::CoresetCache;
using service::CoresetService;
using service::ServiceOptions;
using service::SyntheticSpec;

constexpr size_t kSharedDatasets = 4;
constexpr size_t kThreads = 8;
constexpr size_t kRounds = 10;

SyntheticSpec SmallMixture(uint64_t seed) {
  SyntheticSpec spec;
  spec.generator = "gaussian_mixture";
  spec.n = 1200;
  spec.d = 4;
  spec.kappa = 4;
  spec.seed = seed;
  return spec;
}

std::string SharedName(size_t index) {
  return "shared" + std::to_string(index);
}

BuildRequest SharedRequest(size_t dataset_index) {
  BuildRequest request;
  request.dataset = SharedName(dataset_index);
  request.spec.method = "sensitivity";
  request.spec.k = 4;
  request.spec.m = 80;
  request.spec.z = 2;
  // One fixed seed per dataset: every thread that builds this dataset
  // must observe the same bit-identical coreset, cached or rebuilt.
  request.spec.seed = 1000 + dataset_index;
  return request;
}

void RegisterShared(CoresetService& service) {
  for (size_t i = 0; i < kSharedDatasets; ++i) {
    ASSERT_TRUE(service.datasets()
                    .RegisterSynthetic(SharedName(i), SmallMixture(50 + i))
                    .ok());
  }
}

TEST(ServiceConcurrencyTest, ConcurrentBuildsAreConsistent) {
  CoresetService service(ServiceOptions{/*cache_capacity=*/8});
  RegisterShared(service);

  // First fingerprint wins; every later build of the same dataset must
  // match it exactly.
  std::atomic<uint64_t> expected[kSharedDatasets] = {};
  std::atomic<size_t> cached_lookups{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t dataset = (t + round) % kSharedDatasets;
        BuildRequest request = SharedRequest(dataset);
        // A few bypass builds keep the rebuild path racing the cache.
        request.use_cache = (t + round) % 3 != 0;
        api::FcStatusOr<service::BuildResponse> response =
            service.Build(request);
        if (!response.ok()) {
          ++failures;
          continue;
        }
        if (request.use_cache) ++cached_lookups;
        const uint64_t fingerprint =
            service::FingerprintCoreset(response->coreset);
        uint64_t seen = 0;
        if (!expected[dataset].compare_exchange_strong(seen, fingerprint)) {
          if (seen != fingerprint) ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u)
      << "concurrent builds of one (dataset, spec) disagreed bit-for-bit";

  // Counter consistency: every cache-enabled build did exactly one
  // Lookup, so hits + misses must equal the lookups the threads issued
  // (bypass builds never touch the counters).
  const CoresetCache::Stats stats = service.CacheStats();
  EXPECT_EQ(stats.hits + stats.misses, cached_lookups.load());
  EXPECT_GE(stats.misses, kSharedDatasets);  // Someone built each first.
  EXPECT_LE(stats.entries, stats.capacity);
}

TEST(ServiceConcurrencyTest, InterleavedRegisterBuildEvictStats) {
  CoresetService service(ServiceOptions{/*cache_capacity=*/4});
  RegisterShared(service);

  std::atomic<size_t> cached_lookups{0};
  std::atomic<size_t> unexpected{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string own = "private_t" + std::to_string(t);
      for (size_t round = 0; round < kRounds; ++round) {
        switch ((t + round) % 4) {
          case 0: {
            // Shared-dataset cached build (never removed: must succeed).
            api::FcStatusOr<service::BuildResponse> response =
                service.Build(SharedRequest(round % kSharedDatasets));
            if (response.ok()) {
              ++cached_lookups;
            } else {
              ++unexpected;
            }
            break;
          }
          case 1: {
            // Thread-private register -> build -> remove lifecycle.
            if (!service.datasets()
                     .RegisterSynthetic(own, SmallMixture(900 + t))
                     .ok()) {
              ++unexpected;
              break;
            }
            BuildRequest request = SharedRequest(0);
            request.dataset = own;
            request.use_cache = false;  // Bypass: no counter bookkeeping.
            if (!service.Build(request).ok()) ++unexpected;
            if (!service.datasets().Remove(own)) ++unexpected;
            break;
          }
          case 2: {
            // Evict + stats churn; both must stay well-formed mid-storm.
            if (!service.EvictDataset(SharedName(round % kSharedDatasets))
                     .ok()) {
              ++unexpected;
            }
            const CoresetCache::Stats stats = service.CacheStats();
            if (stats.entries > stats.capacity) ++unexpected;
            if (service.datasets().Names().size() < kSharedDatasets) {
              ++unexpected;
            }
            break;
          }
          default: {
            // NDJSON register racing another thread's Remove of the same
            // name: responses may be ok or duplicate-name/not-found
            // errors, but the line is always well-formed JSON and the
            // server never aborts (regression for the HandleRegister
            // .value() TOCTOU).
            const std::string contested =
                "contested" + std::to_string(round % 2);
            const std::string line =
                "{\"verb\":\"register\",\"name\":\"" + contested +
                "\",\"points\":[[0,1],[2,3],[4,5]]}";
            const std::string response =
                service::HandleRequestLine(service, line);
            if (service::ParseJson(response).ok()) {
              service.datasets().Remove(contested);
            } else {
              ++unexpected;
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(unexpected.load(), 0u);
  const CoresetCache::Stats stats = service.CacheStats();
  EXPECT_EQ(stats.hits + stats.misses, cached_lookups.load());
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_EQ(service.datasets().Names().size(), kSharedDatasets);
}

TEST(ServiceConcurrencyTest, MixedShardedBuildsThroughSchedulerAgree) {
  // Concurrent application threads drive sharded builds through the
  // task-graph scheduler with varying parallelism budgets — the budget
  // and the shard count of OTHER requests in flight must never reach a
  // build's bits. Bypass the cache so every request really schedules a
  // graph; all fingerprints for one (dataset, shards) pair must agree.
  CoresetService service(ServiceOptions{/*cache_capacity=*/0});
  RegisterShared(service);

  constexpr size_t kShardChoices[] = {1, 2, 4};
  std::atomic<uint64_t> expected[kSharedDatasets][3] = {};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t dataset = (t + round) % kSharedDatasets;
        const size_t shard_pick = (t * kRounds + round) % 3;
        BuildRequest request = SharedRequest(dataset);
        request.shards = kShardChoices[shard_pick];
        request.parallelism = (t + round) % 3;  // 0 = all, 1, 2.
        request.use_cache = false;
        api::FcStatusOr<service::BuildResponse> response =
            service.Build(request);
        if (!response.ok()) {
          ++failures;
          continue;
        }
        // The scheduler ran one node per shard (+ merge when shards > 1).
        const size_t shards = response->diagnostics.shard_count;
        const size_t expected_tasks = shards == 1 ? 1 : shards + 1;
        if (response->diagnostics.scheduler.tasks_executed !=
            expected_tasks) {
          ++failures;
          continue;
        }
        const uint64_t fingerprint =
            service::FingerprintCoreset(response->coreset);
        uint64_t seen = 0;
        if (!expected[dataset][shard_pick].compare_exchange_strong(
                seen, fingerprint)) {
          if (seen != fingerprint) ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u)
      << "a parallelism budget or a concurrent request changed the bits";

  // Scheduler totals add up: every request ran exactly one graph.
  const CoresetService::SchedulerTotals totals = service.SchedulerStats();
  EXPECT_EQ(totals.graphs_run, kThreads * kRounds);
  EXPECT_GE(totals.tasks_executed, totals.graphs_run);
  EXPECT_GE(totals.max_concurrent_shards, 1u);
}

}  // namespace
}  // namespace fastcoreset
