// Tests for src/core: importance machinery and the five samplers
// (tests/api_test.cc covers the facade that fronts them).

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/core/fast_coreset.h"
#include "src/core/importance.h"
#include "src/core/lightweight_coreset.h"
#include "src/core/sensitivity_sampling.h"
#include "src/core/uniform_sampling.h"
#include "src/core/welterweight_coreset.h"
#include "src/data/generators.h"

namespace fastcoreset {
namespace {

Matrix Blobs(size_t blobs, size_t per_blob, size_t d, Rng& rng,
             double box = 500.0) {
  Matrix points(blobs * per_blob, d);
  std::vector<double> center(d);
  size_t row_idx = 0;
  for (size_t b = 0; b < blobs; ++b) {
    for (double& x : center) x = rng.Uniform(0.0, box);
    for (size_t p = 0; p < per_blob; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) row[j] = center[j] + rng.NextGaussian();
    }
  }
  return points;
}

TEST(ImportanceTest, SensitivitiesSumToTwiceClusterCount) {
  Rng rng(1);
  const Matrix points = Blobs(4, 50, 2, rng);
  const Clustering solution = KMeansPlusPlus(points, {}, 4, 2, rng);
  const ImportanceScores scores = ComputeSensitivities(
      points, {}, solution.assignment, solution.centers, 2);
  // Sum over each cluster of (cost ratio + weight ratio) = 2 per cluster.
  EXPECT_NEAR(scores.total, 2.0 * 4.0, 1e-6);
  for (double s : scores.sigma) EXPECT_GE(s, 0.0);
}

TEST(ImportanceTest, OutlierGetsHighScore) {
  // 99 points at origin + 1 far outlier, 1 cluster: the outlier holds
  // nearly all the cost mass.
  Matrix points(100, 1);
  points.At(99, 0) = 1000.0;
  Matrix center(1, 1);
  center.At(0, 0) = 10.0;
  const std::vector<size_t> assignment(100, 0);
  const ImportanceScores scores =
      ComputeSensitivities(points, {}, assignment, center, 2);
  for (size_t i = 0; i < 99; ++i) EXPECT_LT(scores.sigma[i], scores.sigma[99]);
  EXPECT_GT(scores.sigma[99], 0.9);
}

// The core unbiasedness property: E[cost(Ω, C)] = cost(P, C) for a fixed
// candidate solution C.
TEST(ImportanceTest, WeightedEstimatorIsUnbiased) {
  Rng rng(2);
  const Matrix points = Blobs(3, 60, 2, rng);
  const Clustering solution = KMeansPlusPlus(points, {}, 3, 2, rng);
  const ImportanceScores scores = ComputeSensitivities(
      points, {}, solution.assignment, solution.centers, 2);

  // Probe solution: a *different* random clustering.
  Rng probe_rng(3);
  const Clustering probe = KMeansPlusPlus(points, {}, 5, 2, probe_rng);
  const double true_cost = CostToCenters(points, {}, probe.centers, 2);

  double estimate_sum = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    Rng trial_rng(100 + t);
    const Coreset coreset =
        SampleByImportance(points, {}, scores, 40, trial_rng);
    estimate_sum +=
        CostToCenters(coreset.points, coreset.weights, probe.centers, 2);
  }
  EXPECT_NEAR(estimate_sum / trials / true_cost, 1.0, 0.15);
}

TEST(ImportanceTest, TotalWeightConcentratesAroundN) {
  Rng rng(4);
  const Matrix points = Blobs(4, 100, 3, rng);
  const Clustering solution = KMeansPlusPlus(points, {}, 4, 2, rng);
  const ImportanceScores scores = ComputeSensitivities(
      points, {}, solution.assignment, solution.centers, 2);
  double total = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    Rng trial_rng(200 + t);
    total += SampleByImportance(points, {}, scores, 100, trial_rng)
                 .TotalWeight();
  }
  EXPECT_NEAR(total / trials / static_cast<double>(points.rows()), 1.0, 0.1);
}

TEST(ImportanceTest, DuplicateDrawsAreMerged) {
  // Tiny dataset + many samples: indices must be unique in the output.
  Matrix points(3, 1);
  points.At(1, 0) = 1.0;
  points.At(2, 0) = 2.0;
  ImportanceScores scores;
  scores.sigma = {1.0, 1.0, 1.0};
  scores.total = 3.0;
  Rng rng(5);
  const Coreset coreset = SampleByImportance(points, {}, scores, 100, rng);
  EXPECT_LE(coreset.size(), 3u);
  std::vector<size_t> sorted = coreset.indices;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  EXPECT_NEAR(coreset.TotalWeight(), 3.0, 1e-9);
}

TEST(ImportanceTest, DriftedTargetNeverHitsZeroSigmaPoint) {
  // Regression: the cumulative sweep could attribute a drifted target to
  // a point with sigma == 0 (a zero-width interval), whose coreset weight
  // then divides by zero. Model the drift with a `total` slightly above
  // the true sigma sum and a zero-sigma trailing point.
  Matrix points(3, 1);
  points.At(0, 0) = 1.0;
  points.At(1, 0) = 2.0;
  points.At(2, 0) = 3.0;
  ImportanceScores scores;
  scores.sigma = {1.0, 1.0, 0.0};
  scores.total = 2.5;  // > 1 + 1: every target above 2 overshoots.
  Rng rng(7);
  const Coreset coreset = SampleByImportance(points, {}, scores, 64, rng);
  double weight_sum = 0.0;
  for (size_t r = 0; r < coreset.size(); ++r) {
    EXPECT_NE(coreset.indices[r], 2u);  // sigma == 0 is unsampleable.
    EXPECT_TRUE(std::isfinite(coreset.weights[r]));
    weight_sum += coreset.weights[r];
  }
  EXPECT_GT(weight_sum, 0.0);
}

TEST(ImportanceTest, LeadingZeroSigmaPointIsSkipped) {
  Matrix points(3, 1);
  ImportanceScores scores;
  scores.sigma = {0.0, 2.0, 1.0};
  scores.total = 3.0;
  Rng rng(11);
  const Coreset coreset = SampleByImportance(points, {}, scores, 64, rng);
  for (size_t r = 0; r < coreset.size(); ++r) {
    EXPECT_NE(coreset.indices[r], 0u);
    EXPECT_TRUE(std::isfinite(coreset.weights[r]));
  }
}

TEST(ImportanceTest, DegenerateAllPointsOnCenterCluster) {
  // Every point sits exactly on the single center, so the cost term of
  // eq. (1) vanishes and sigma reduces to w_i / W — zero for zero-weight
  // points. Sampling must never pick those (infinite weight) and the
  // pipeline must stay finite end to end.
  const size_t n = 64;
  Matrix points(n, 2);  // All at the origin.
  Matrix center(1, 2);
  const std::vector<size_t> assignment(n, 0);
  std::vector<double> weights(n, 1.0);
  weights[0] = 0.0;
  weights[n - 1] = 0.0;
  const ImportanceScores scores =
      ComputeSensitivities(points, weights, assignment, center, 2);
  EXPECT_EQ(scores.sigma[0], 0.0);
  EXPECT_EQ(scores.sigma[n - 1], 0.0);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const Coreset coreset =
        SampleByImportance(points, weights, scores, 16, rng);
    for (size_t r = 0; r < coreset.size(); ++r) {
      EXPECT_NE(coreset.indices[r], 0u);
      EXPECT_NE(coreset.indices[r], n - 1);
      EXPECT_TRUE(std::isfinite(coreset.weights[r]));
    }
  }
}

TEST(ImportanceTest, CenterCorrectionRestoresClusterWeights) {
  Rng rng(6);
  const Matrix points = Blobs(3, 50, 2, rng);
  const Clustering solution = KMeansPlusPlus(points, {}, 3, 2, rng);
  const ImportanceScores scores = ComputeSensitivities(
      points, {}, solution.assignment, solution.centers, 2);
  Coreset coreset = SampleByImportance(points, {}, scores, 30, rng);
  const double eps = 0.1;
  ApplyCenterCorrection(points, {}, solution.assignment, solution.centers,
                        eps, &coreset);
  // After correction, total weight >= n (each cluster topped up to at
  // least (1+eps) * cluster weight when undersampled).
  EXPECT_GE(coreset.TotalWeight(), 150.0 - 1e-6);
  EXPECT_LE(coreset.TotalWeight(), (1.0 + eps) * 150.0 + 150.0);
}

TEST(UniformTest, UnweightedWithoutReplacement) {
  Rng rng(7);
  Matrix points(100, 2);
  for (double& x : points.data()) x = rng.Uniform(0.0, 1.0);
  const Coreset coreset = UniformSamplingCoreset(points, {}, 20, rng);
  EXPECT_EQ(coreset.size(), 20u);
  for (double w : coreset.weights) EXPECT_NEAR(w, 5.0, 1e-12);
  std::vector<size_t> sorted = coreset.indices;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(UniformTest, MLargerThanNReturnsEverything) {
  Rng rng(8);
  Matrix points(10, 1);
  const Coreset coreset = UniformSamplingCoreset(points, {}, 50, rng);
  EXPECT_EQ(coreset.size(), 10u);
  EXPECT_NEAR(coreset.TotalWeight(), 10.0, 1e-12);
}

TEST(UniformTest, WeightedInputPreservesTotalWeight) {
  Rng rng(9);
  Matrix points(50, 1);
  for (size_t i = 0; i < 50; ++i) points.At(i, 0) = static_cast<double>(i);
  std::vector<double> weights(50, 2.0);
  const Coreset coreset = UniformSamplingCoreset(points, weights, 25, rng);
  EXPECT_NEAR(coreset.TotalWeight(), 100.0, 1e-9);
}

TEST(UniformTest, MissesOutliersOnCOutlierData) {
  // The paper's central negative result for uniform sampling: on the
  // c-outlier dataset, a small uniform sample almost surely misses all c
  // outliers.
  Rng rng(10);
  const size_t n = 20000, c = 10;
  const Matrix points = GenerateCOutlier(n, c, 5, 1e6, rng);
  const Coreset coreset = UniformSamplingCoreset(points, {}, 100, rng);
  size_t outliers_sampled = 0;
  for (size_t idx : coreset.indices) {
    if (idx >= n - c) ++outliers_sampled;
  }
  EXPECT_EQ(outliers_sampled, 0u);
}

TEST(SensitivityTest, CapturesOutliersOnCOutlierData) {
  Rng rng(11);
  const size_t n = 20000, c = 10;
  const Matrix points = GenerateCOutlier(n, c, 5, 1e6, rng);
  const Coreset coreset =
      SensitivitySamplingCoreset(points, {}, /*k=*/20, /*m=*/200, 2, rng);
  size_t outliers_sampled = 0;
  for (size_t idx : coreset.indices) {
    if (idx >= n - c) ++outliers_sampled;
  }
  EXPECT_GT(outliers_sampled, 0u);
}

TEST(LightweightTest, SizeAndWeightSum) {
  Rng rng(12);
  const Matrix points = Blobs(5, 100, 3, rng);
  const Coreset coreset = LightweightCoreset(points, {}, 100, 2, rng);
  EXPECT_LE(coreset.size(), 100u);
  EXPECT_GT(coreset.size(), 50u);
  EXPECT_NEAR(coreset.TotalWeight(), 500.0, 150.0);
}

TEST(LightweightTest, BiasedTowardFarFromMean) {
  // Points at distance 0 and R from the mean: far points should be
  // sampled with much higher probability per point.
  Matrix points(1000, 1);
  for (size_t i = 0; i < 10; ++i) points.At(i, 0) = 1000.0;
  Rng rng(13);
  const Coreset coreset = LightweightCoreset(points, {}, 50, 2, rng);
  size_t far_sampled = 0;
  for (size_t idx : coreset.indices) {
    if (idx < 10) ++far_sampled;
  }
  EXPECT_GT(far_sampled, 5u);  // 10 far points carry ~half the sigma mass.
}

TEST(WelterweightTest, DefaultJIsLogK) {
  EXPECT_EQ(DefaultWelterweightJ(100), 7u);  // ceil(log2 100)
  EXPECT_EQ(DefaultWelterweightJ(2), 1u);
  EXPECT_EQ(DefaultWelterweightJ(1), 1u);
}

TEST(WelterweightTest, JEqualsOneMatchesLightweightShape) {
  Rng rng(14);
  const Matrix points = Blobs(4, 100, 2, rng);
  const Coreset coreset =
      WelterweightCoreset(points, {}, /*k=*/16, /*j=*/1, 80, 2, rng);
  EXPECT_GT(coreset.size(), 0u);
  EXPECT_NEAR(coreset.TotalWeight(), 400.0, 120.0);
}

TEST(FastCoresetTest, EndToEndSizeAndWeights) {
  Rng rng(15);
  const Matrix points = Blobs(8, 200, 10, rng);
  FastCoresetOptions options;
  options.k = 8;
  options.m = 300;
  const Coreset coreset = FastCoreset(points, {}, options, rng);
  EXPECT_LE(coreset.size(), 300u);
  EXPECT_GT(coreset.size(), 100u);
  EXPECT_NEAR(coreset.TotalWeight(), 1600.0, 400.0);
  for (double w : coreset.weights) EXPECT_GT(w, 0.0);
}

TEST(FastCoresetTest, CapturesOutliers) {
  Rng rng(16);
  const size_t n = 20000, c = 10;
  const Matrix points = GenerateCOutlier(n, c, 5, 1e6, rng);
  FastCoresetOptions options;
  options.k = 20;
  options.m = 200;
  const Coreset coreset = FastCoreset(points, {}, options, rng);
  size_t outliers_sampled = 0;
  for (size_t idx : coreset.indices) {
    if (idx != Coreset::kSyntheticIndex && idx >= n - c) ++outliers_sampled;
  }
  EXPECT_GT(outliers_sampled, 0u);
}

TEST(FastCoresetTest, DefaultMIs40K) {
  Rng rng(17);
  const Matrix points = Blobs(4, 400, 3, rng);
  FastCoresetOptions options;
  options.k = 4;
  options.m = 0;  // default 40k = 160
  const Coreset coreset = FastCoreset(points, {}, options, rng);
  EXPECT_LE(coreset.size(), 160u);
  EXPECT_GT(coreset.size(), 80u);
}

TEST(FastCoresetTest, KMedianMode) {
  Rng rng(18);
  const Matrix points = Blobs(5, 100, 4, rng);
  FastCoresetOptions options;
  options.k = 5;
  options.m = 150;
  options.z = 1;
  const Coreset coreset = FastCoreset(points, {}, options, rng);
  EXPECT_GT(coreset.size(), 0u);
  EXPECT_NEAR(coreset.TotalWeight(), 500.0, 150.0);
}

TEST(FastCoresetTest, SpreadReductionPathProducesValidCoreset) {
  Rng rng(19);
  const Matrix points = GenerateSpreadDataset(5000, 30, rng);
  FastCoresetOptions options;
  options.k = 10;
  options.m = 200;
  options.use_spread_reduction = true;
  options.use_jl = false;  // 2-D input.
  const Coreset coreset = FastCoreset(points, {}, options, rng);
  EXPECT_GT(coreset.size(), 0u);
  // Coreset points must be original dataset rows (not spread-reduced).
  for (size_t r = 0; r < coreset.size(); ++r) {
    if (coreset.indices[r] == Coreset::kSyntheticIndex) continue;
    EXPECT_EQ(coreset.points.At(r, 0), points.At(coreset.indices[r], 0));
  }
  EXPECT_NEAR(coreset.TotalWeight(), 5000.0, 1500.0);
}

TEST(FastCoresetTest, CenterCorrectionAddsSyntheticRows) {
  Rng rng(20);
  const Matrix points = Blobs(4, 100, 3, rng);
  FastCoresetOptions options;
  options.k = 4;
  options.m = 50;
  options.center_correction = true;
  const Coreset coreset = FastCoreset(points, {}, options, rng);
  size_t synthetic = 0;
  for (size_t idx : coreset.indices) {
    if (idx == Coreset::kSyntheticIndex) ++synthetic;
  }
  EXPECT_GT(synthetic, 0u);
  EXPECT_LE(synthetic, 4u);
}

TEST(CoresetTest, TotalWeightSurvivesMixedMagnitudes) {
  // Adversarial mix: one huge weight followed by many tiny ones. Naive
  // left-to-right summation absorbs every +1.0 into 1e16 (ulp 2) and
  // returns exactly 1e16; Kahan compensation keeps all of them.
  Coreset coreset;
  coreset.weights.assign(10000, 1.0);
  coreset.weights.insert(coreset.weights.begin(), 1.0e16);
  EXPECT_EQ(coreset.TotalWeight(), 1.0e16 + 10000.0);
}

TEST(CoresetTest, TotalWeightMatchesLongDoubleReference) {
  // Alternating magnitudes, the shape synthetic center-correction rows
  // produce: heavy representatives interleaved with light samples.
  Rng rng(99);
  Coreset coreset;
  long double reference = 0.0L;
  for (int i = 0; i < 4096; ++i) {
    const double w =
        (i % 2 == 0) ? rng.Uniform(1e11, 1e12) : rng.Uniform(1e-3, 1e-2);
    coreset.weights.push_back(w);
    reference += static_cast<long double>(w);
  }
  const double kahan = coreset.TotalWeight();
  // Kahan stays within a couple of ulps of the extended-precision
  // reference.
  EXPECT_NEAR(kahan, static_cast<double>(reference),
              std::abs(static_cast<double>(reference)) * 1e-15);
  // The tiny terms must not have been dropped wholesale: each one sits
  // below half an ulp of the ~1e15 running total (so naive summation
  // discards every single one), yet their combined mass (~2048 * 5e-3 ≈
  // 10) is far above that ulp (~0.125) — a correct total therefore
  // differs from the heavy-terms-only sum.
  long double heavy_only = 0.0L;
  for (size_t i = 0; i < coreset.weights.size(); i += 2) {
    heavy_only += static_cast<long double>(coreset.weights[i]);
  }
  EXPECT_NE(kahan, static_cast<double>(heavy_only));
}

}  // namespace
}  // namespace fastcoreset
