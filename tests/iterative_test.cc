// Tests for TreeAssign and the iterative Fast-Coreset (Section 8.4).

#include <vector>

#include <gtest/gtest.h>

#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/tree_assign.h"
#include "src/core/iterative_coreset.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"
#include "src/geometry/distance.h"

namespace fastcoreset {
namespace {

Matrix Blobs(size_t blobs, size_t per_blob, size_t d, Rng& rng,
             double box = 2000.0) {
  Matrix points(blobs * per_blob, d);
  std::vector<double> center(d);
  size_t row_idx = 0;
  for (size_t b = 0; b < blobs; ++b) {
    for (double& x : center) x = rng.Uniform(0.0, box);
    for (size_t p = 0; p < per_blob; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) row[j] = center[j] + rng.NextGaussian();
    }
  }
  return points;
}

TEST(TreeAssignTest, AssignmentsValidAndCostsConsistent) {
  Rng rng(1);
  const Matrix points = Blobs(5, 100, 3, rng);
  Rng center_rng(2);
  const Matrix centers = KMeansPlusPlus(points, {}, 5, 2, center_rng).centers;
  const Clustering result = TreeAssign(points, {}, centers, 2, rng);
  ASSERT_EQ(result.assignment.size(), points.rows());
  for (size_t i = 0; i < points.rows(); ++i) {
    ASSERT_LT(result.assignment[i], centers.rows());
    EXPECT_NEAR(result.point_costs[i],
                SquaredL2(points.Row(i), centers.Row(result.assignment[i])),
                1e-9);
  }
}

TEST(TreeAssignTest, CostWithinTreeDistortionOfExact) {
  Rng rng(3);
  const Matrix points = Blobs(6, 150, 3, rng);
  Rng center_rng(4);
  const Matrix centers = KMeansPlusPlus(points, {}, 6, 2, center_rng).centers;
  const Clustering approx = TreeAssign(points, {}, centers, 2, rng);
  const double exact = CostToCenters(points, {}, centers, 2);
  // Exact is a lower bound; relative slack because the batched cost kernel
  // evaluates distances in the norm-cached form, which rounds differently
  // in the last ulps than the per-point form TreeAssign reports.
  EXPECT_GE(approx.total_cost, exact * (1.0 - 1e-9));
  // d = 3, modest spread: the tree assignment should stay within a
  // moderate polylog factor.
  EXPECT_LT(approx.total_cost, 500.0 * exact + 1e-9);
}

TEST(TreeAssignTest, WellSeparatedBlobsAssignedToOwnCenters) {
  // Blobs far apart with one center each: the tree must route every point
  // to its own blob's center (any cross-blob assignment would show up as
  // a huge cost).
  Rng rng(5);
  const size_t blobs = 4, per = 100;
  const Matrix points = Blobs(blobs, per, 2, rng, /*box=*/1e6);
  Matrix centers(blobs, 2);
  for (size_t b = 0; b < blobs; ++b) {
    std::vector<size_t> rows(per);
    for (size_t p = 0; p < per; ++p) rows[p] = b * per + p;
    const auto mean = points.SelectRows(rows).ColumnMeans();
    centers.At(b, 0) = mean[0];
    centers.At(b, 1) = mean[1];
  }
  const Clustering result = TreeAssign(points, {}, centers, 2, rng);
  // Every point within intra-blob distance of its assigned center.
  for (size_t i = 0; i < points.rows(); ++i) {
    EXPECT_LT(result.point_costs[i], 100.0);
  }
}

TEST(TreeAssignTest, SingleCenterTrivial) {
  Rng rng(6);
  Matrix points(50, 2);
  for (double& x : points.data()) x = rng.Uniform(0.0, 10.0);
  Matrix center(1, 2);
  const Clustering result = TreeAssign(points, {}, center, 1, rng);
  for (size_t a : result.assignment) EXPECT_EQ(a, 0u);
}

TEST(IterativeCoresetTest, OneRoundEqualsPlainFastCoreset) {
  Rng data_rng(7);
  const Matrix points = GenerateGaussianMixture(8000, 8, 10, 1.0, data_rng);
  IterativeCoresetOptions options;
  options.base.k = 10;
  options.base.m = 400;
  options.rounds = 1;
  Rng rng_a(50), rng_b(50);
  const Coreset iterative = IterativeFastCoreset(points, {}, options, rng_a);
  const Coreset plain = FastCoreset(points, {}, options.base, rng_b);
  ASSERT_EQ(iterative.size(), plain.size());
  for (size_t r = 0; r < plain.size(); ++r) {
    EXPECT_EQ(iterative.indices[r], plain.indices[r]);
  }
}

TEST(IterativeCoresetTest, MoreRoundsKeepLowDistortion) {
  Rng data_rng(8);
  const Matrix points = GenerateGaussianMixture(12000, 8, 15, 2.0, data_rng);
  IterativeCoresetOptions options;
  options.base.k = 15;
  options.base.m = 600;
  options.rounds = 3;
  Rng rng(60);
  const Coreset coreset = IterativeFastCoreset(points, {}, options, rng);
  EXPECT_GT(coreset.size(), 0u);
  EXPECT_NEAR(coreset.TotalWeight() / 12000.0, 1.0, 0.2);
  DistortionOptions probe;
  probe.k = 15;
  EXPECT_LT(CoresetDistortion(points, {}, coreset, probe, rng), 1.5);
}

TEST(IterativeCoresetTest, KMedianRounds) {
  Rng data_rng(9);
  const Matrix points = GenerateGaussianMixture(6000, 5, 8, 1.0, data_rng);
  IterativeCoresetOptions options;
  options.base.k = 8;
  options.base.m = 300;
  options.base.z = 1;
  options.rounds = 2;
  Rng rng(70);
  const Coreset coreset = IterativeFastCoreset(points, {}, options, rng);
  DistortionOptions probe;
  probe.k = 8;
  probe.z = 1;
  EXPECT_LT(CoresetDistortion(points, {}, coreset, probe, rng), 1.5);
}

TEST(CoresetFromAssignmentTest, ArbitraryPartitionWorks) {
  // Even a mediocre partition (round-robin) yields a valid unbiased
  // compression — just with worse constants.
  Rng rng(10);
  const Matrix points = Blobs(4, 200, 3, rng, /*box=*/100.0);
  std::vector<size_t> assignment(points.rows());
  for (size_t i = 0; i < points.rows(); ++i) assignment[i] = i % 4;
  const Coreset coreset =
      CoresetFromAssignment(points, {}, assignment, 4, 300, 2, rng);
  EXPECT_NEAR(coreset.TotalWeight() / 800.0, 1.0, 0.25);
}

}  // namespace
}  // namespace fastcoreset
