// Tests for src/streaming: merge-&-reduce composition, BICO, StreamKM++.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/fastcoreset.h"
#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"
#include "src/streaming/bico.h"
#include "src/streaming/merge_reduce.h"
#include "src/streaming/streamkm.h"

namespace fastcoreset {
namespace {

Matrix Blobs(size_t blobs, size_t per_blob, size_t d, Rng& rng,
             double box = 500.0) {
  Matrix points(blobs * per_blob, d);
  std::vector<double> center(d);
  size_t row_idx = 0;
  for (size_t b = 0; b < blobs; ++b) {
    for (double& x : center) x = rng.Uniform(0.0, box);
    for (size_t p = 0; p < per_blob; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) row[j] = center[j] + rng.NextGaussian();
    }
  }
  return points;
}

/// Facade builder for streaming composition tests.
CoresetBuilder SpecBuilder(const std::string& method, size_t k) {
  api::CoresetSpec spec;
  spec.method = method;
  spec.k = k;
  return api::MakeBuilder(spec).value();
}

TEST(MergeReduceTest, LevelsFollowBinaryCounter) {
  Rng rng(1);
  const Matrix points = Blobs(2, 400, 2, rng);
  StreamingCompressor compressor(
      SpecBuilder("uniform", 4), /*m=*/50, &rng);
  size_t pushed = 0;
  for (size_t start = 0; start + 100 <= points.rows(); start += 100) {
    std::vector<size_t> rows(100);
    for (size_t i = 0; i < 100; ++i) rows[i] = start + i;
    compressor.Push(points.SelectRows(rows));
    ++pushed;
    EXPECT_EQ(compressor.OccupiedLevels(),
              static_cast<size_t>(__builtin_popcountll(pushed)));
  }
  EXPECT_EQ(compressor.BlocksConsumed(), 8u);
}

TEST(MergeReduceTest, GlobalIndicesAreCorrect) {
  Rng rng(2);
  Matrix points(600, 1);
  for (size_t i = 0; i < 600; ++i) points.At(i, 0) = static_cast<double>(i);
  const Coreset coreset = StreamingCompress(
      points, {}, SpecBuilder("uniform", 4),
      /*block_size=*/128, /*m=*/40, rng);
  for (size_t r = 0; r < coreset.size(); ++r) {
    ASSERT_NE(coreset.indices[r], Coreset::kSyntheticIndex);
    EXPECT_EQ(coreset.points.At(r, 0),
              points.At(coreset.indices[r], 0));
  }
}

TEST(MergeReduceTest, TotalWeightConcentratesAroundN) {
  Rng rng(3);
  const Matrix points = Blobs(4, 500, 3, rng);
  double total = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng trial(100 + t);
    const Coreset coreset = StreamingCompress(
        points, {}, SpecBuilder("sensitivity", 8),
        /*block_size=*/256, /*m=*/120, trial);
    total += coreset.TotalWeight();
  }
  EXPECT_NEAR(total / trials / 2000.0, 1.0, 0.15);
}

TEST(MergeReduceTest, StreamingCoresetHasLowDistortion) {
  // Composition preserves the coreset property (stacked epsilons).
  Rng rng(4);
  const Matrix points = Blobs(6, 800, 4, rng);
  const Coreset coreset = StreamingCompress(
      points, {}, SpecBuilder("sensitivity", 12),
      /*block_size=*/600, /*m=*/500, rng);
  DistortionOptions options;
  options.k = 12;
  const double distortion =
      CoresetDistortion(points, {}, coreset, options, rng);
  EXPECT_LT(distortion, 1.5);
}

TEST(MergeReduceTest, SingleBlockStreamStillWorks) {
  Rng rng(5);
  const Matrix points = Blobs(2, 100, 2, rng);
  StreamingCompressor compressor(
      SpecBuilder("uniform", 4), 50, &rng);
  compressor.Push(points);
  const Coreset coreset = compressor.Finalize();
  // Finalize re-reduces the single level-0 coreset; the weighted reduction
  // samples with replacement and merges duplicates, so the size is at most
  // m but the total weight is conserved in expectation.
  EXPECT_LE(coreset.size(), 50u);
  EXPECT_GE(coreset.size(), 15u);
  EXPECT_NEAR(coreset.TotalWeight(), 200.0, 60.0);
}

TEST(MergeReduceTest, WeightedBlocksFlowThrough) {
  Rng rng(6);
  Matrix points(200, 1);
  for (size_t i = 0; i < 200; ++i) points.At(i, 0) = static_cast<double>(i);
  const std::vector<double> weights(200, 3.0);
  const Coreset coreset = StreamingCompress(
      points, weights, SpecBuilder("uniform", 4),
      /*block_size=*/64, /*m=*/30, rng);
  EXPECT_NEAR(coreset.TotalWeight(), 600.0, 60.0);
}

TEST(BicoTest, FeatureBudgetRespected) {
  Rng rng(7);
  const Matrix points = Blobs(10, 500, 3, rng);
  BicoOptions options;
  options.max_features = 100;
  Bico bico(3, options);
  bico.InsertAll(points);
  EXPECT_LE(bico.NumFeatures(), 100u);
  EXPECT_GT(bico.NumFeatures(), 5u);
}

TEST(BicoTest, WeightConservation) {
  Rng rng(8);
  const Matrix points = Blobs(5, 300, 2, rng);
  Bico bico(2);
  bico.InsertAll(points);
  const Coreset coreset = bico.ExtractCoreset();
  EXPECT_NEAR(coreset.TotalWeight(), 1500.0, 1e-6);
}

TEST(BicoTest, CentroidOfSingleClusterIsItsMean) {
  Rng rng(9);
  Matrix points(500, 2);
  for (double& x : points.data()) x = rng.NextGaussian();
  BicoOptions options;
  options.max_features = 1;  // Forced to merge everything.
  Bico bico(2, options);
  bico.InsertAll(points);
  const Coreset coreset = bico.ExtractCoreset();
  ASSERT_GE(coreset.size(), 1u);
  // Weighted centroid of the extract equals the data mean.
  std::vector<double> centroid(2, 0.0);
  double total = 0.0;
  for (size_t r = 0; r < coreset.size(); ++r) {
    total += coreset.weights[r];
    for (size_t j = 0; j < 2; ++j) {
      centroid[j] += coreset.weights[r] * coreset.points.At(r, j);
    }
  }
  const auto mean = points.ColumnMeans();
  EXPECT_NEAR(centroid[0] / total, mean[0], 1e-6);
  EXPECT_NEAR(centroid[1] / total, mean[1], 1e-6);
}

TEST(BicoTest, WeightedInsertions) {
  Bico bico(1);
  const std::vector<double> p1 = {0.0};
  const std::vector<double> p2 = {10.0};
  bico.Insert(p1, 5.0);
  bico.Insert(p2, 1.0);
  const Coreset coreset = bico.ExtractCoreset();
  EXPECT_NEAR(coreset.TotalWeight(), 6.0, 1e-9);
}

TEST(BicoTest, PreservesKMeansCostOnEasyData) {
  // The CF summary should let k-means++ solve the blobs about as well as
  // on the raw data (BICO's positive case).
  Rng rng(10);
  const Matrix points = Blobs(5, 1000, 2, rng);
  BicoOptions options;
  options.max_features = 500;
  Bico bico(2, options);
  bico.InsertAll(points);
  const Coreset coreset = bico.ExtractCoreset();

  Rng solve_rng(11);
  const Clustering on_coreset =
      KMeansPlusPlus(coreset.points, coreset.weights, 5, 2, solve_rng);
  const double cost_full = CostToCenters(points, {}, on_coreset.centers, 2);
  Rng direct_rng(12);
  const double cost_direct =
      KMeansPlusPlus(points, {}, 5, 2, direct_rng).total_cost;
  EXPECT_LT(cost_full, 10.0 * cost_direct);
}

TEST(BicoTest, RebuildDoublesThreshold) {
  Rng rng(13);
  const Matrix points = Blobs(50, 40, 2, rng, /*box=*/5000.0);
  BicoOptions options;
  options.max_features = 20;
  Bico bico(2, options);
  bico.InsertAll(points);
  EXPECT_GT(bico.rebuilds(), 0u);
  EXPECT_LE(bico.NumFeatures(), 20u);
}

TEST(StreamKmTest, ReduceProducesWeightedRepresentatives) {
  Rng rng(14);
  const Matrix points = Blobs(4, 250, 3, rng);
  const Coreset coreset = StreamKmReduce(points, {}, 60, rng);
  EXPECT_EQ(coreset.size(), 60u);
  EXPECT_NEAR(coreset.TotalWeight(), 1000.0, 1e-6);
}

TEST(StreamKmTest, SmallInputPassesThrough) {
  Rng rng(15);
  Matrix points(10, 2);
  for (double& x : points.data()) x = rng.Uniform(0.0, 1.0);
  const Coreset coreset = StreamKmReduce(points, {}, 50, rng);
  EXPECT_EQ(coreset.size(), 10u);
  for (double w : coreset.weights) EXPECT_EQ(w, 1.0);
}

TEST(StreamKmTest, StreamingViaMergeReduce) {
  Rng rng(16);
  const Matrix points = Blobs(5, 600, 3, rng);
  const Coreset coreset = StreamingCompress(
      points, {}, MakeStreamKmBuilder(), /*block_size=*/512, /*m=*/200, rng);
  EXPECT_EQ(coreset.size(), 200u);
  EXPECT_NEAR(coreset.TotalWeight(), 3000.0, 1e-6);
  DistortionOptions options;
  options.k = 5;
  const double distortion =
      CoresetDistortion(points, {}, coreset, options, rng);
  EXPECT_LT(distortion, 3.0);
}

}  // namespace
}  // namespace fastcoreset
