// Tests for src/service: dataset store fingerprints, canonical spec keys,
// shard planning and deterministic sharded builds (bit-identical at any
// FC_THREADS), the LRU coreset cache (hits prove no rebuild, eviction
// under capacity pressure), the service error model (nothing aborts), and
// the fc_serve JSON protocol surface.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/parallel.h"
#include "src/data/generators.h"
#include "src/service/coreset_cache.h"
#include "src/service/dataset_store.h"
#include "src/service/fingerprint.h"
#include "src/service/json.h"
#include "src/service/protocol.h"
#include "src/service/service.h"
#include "src/service/shard_planner.h"
#include "src/service/spec_key.h"

namespace fastcoreset {
namespace {

using service::BuildRequest;
using service::CoresetService;
using service::JsonValue;
using service::ServiceOptions;

Matrix TestMixture(size_t n = 400, size_t d = 6, size_t kappa = 4) {
  Rng rng(12345);
  return GenerateGaussianMixture(n, d, kappa, /*gamma=*/1.0, rng);
}

void ExpectBitIdentical(const Coreset& a, const Coreset& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  ASSERT_EQ(a.indices.size(), b.indices.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.indices[i], b.indices[i]) << label << " index row " << i;
    EXPECT_EQ(a.weights[i], b.weights[i]) << label << " weight row " << i;
    for (size_t j = 0; j < a.points.cols(); ++j) {
      EXPECT_EQ(a.points.At(i, j), b.points.At(i, j))
          << label << " point " << i << "," << j;
    }
  }
}

/// Scoped worker-count override (same pattern as determinism_test).
struct ThreadCountGuard {
  explicit ThreadCountGuard(size_t count) { SetNumThreads(count); }
  ~ThreadCountGuard() { ResetNumThreads(); }
};

api::CoresetSpec SmallSpec(const std::string& method = "fast_coreset",
                           uint64_t seed = 7) {
  api::CoresetSpec spec;
  spec.method = method;
  spec.k = 4;
  spec.m = 60;
  spec.z = 2;
  spec.seed = seed;
  return spec;
}

BuildRequest SmallRequest(const std::string& dataset, uint64_t seed = 7,
                          size_t shards = 1) {
  BuildRequest request;
  request.dataset = dataset;
  request.spec = SmallSpec("fast_coreset", seed);
  request.shards = shards;
  return request;
}

/// Registers the standard mixture under "mixture" (services hold mutexes
/// and are not movable, so the helper fills an existing instance).
void AddMixture(CoresetService& svc) {
  const api::FcStatus status =
      svc.datasets().RegisterMatrix("mixture", TestMixture());
  FC_CHECK(status.ok());
}

// ---------------------------------------------------------------- store

TEST(DatasetStoreTest, FingerprintTracksContentNotName) {
  service::DatasetStore store;
  ASSERT_TRUE(store.RegisterMatrix("a", TestMixture()).ok());
  ASSERT_TRUE(store.RegisterMatrix("b", TestMixture()).ok());
  Matrix other = TestMixture();
  other.At(0, 0) += 1.0;
  ASSERT_TRUE(store.RegisterMatrix("c", std::move(other)).ok());

  const uint64_t fp_a = store.Get("a").value()->fingerprint;
  EXPECT_EQ(fp_a, store.Get("b").value()->fingerprint)
      << "same content must share a fingerprint across names";
  EXPECT_NE(fp_a, store.Get("c").value()->fingerprint)
      << "one flipped cell must change the fingerprint";
}

TEST(DatasetStoreTest, DuplicateEmptyAndUnknownAreErrors) {
  service::DatasetStore store;
  ASSERT_TRUE(store.RegisterMatrix("a", TestMixture(50)).ok());
  EXPECT_EQ(store.RegisterMatrix("a", TestMixture(50)).code(),
            api::FcErrorCode::kInvalidArgument);
  EXPECT_EQ(store.RegisterMatrix("empty", Matrix()).code(),
            api::FcErrorCode::kInvalidArgument);
  EXPECT_EQ(store.RegisterMatrix("", TestMixture(50)).code(),
            api::FcErrorCode::kInvalidArgument);

  const auto missing = store.Get("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), api::FcErrorCode::kNotFound);
  // The message lists what IS registered.
  EXPECT_NE(missing.status().message().find("a"), std::string::npos);

  EXPECT_TRUE(store.Remove("a"));
  EXPECT_FALSE(store.Remove("a"));
}

TEST(DatasetStoreTest, CsvAndSyntheticSourcesRegister) {
  const std::string path = "/tmp/fc_service_store_test.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("1,2\n3,4\n5,6\n", f);
    fclose(f);
  }
  service::DatasetStore store;
  ASSERT_TRUE(store.RegisterCsv("csv", path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(store.Get("csv").value()->points.rows(), 3u);
  EXPECT_EQ(store.RegisterCsv("missing", "/tmp/fc_no_such_file.csv").code(),
            api::FcErrorCode::kInvalidArgument);

  service::SyntheticSpec synthetic;
  synthetic.generator = "gaussian_mixture";
  synthetic.n = 200;
  synthetic.d = 3;
  synthetic.kappa = 2;
  ASSERT_TRUE(store.RegisterSynthetic("g", synthetic).ok());
  EXPECT_EQ(store.Get("g").value()->points.rows(), 200u);
  // Same spec = same content = same fingerprint.
  ASSERT_TRUE(store.RegisterSynthetic("g2", synthetic).ok());
  EXPECT_EQ(store.Get("g").value()->fingerprint,
            store.Get("g2").value()->fingerprint);

  synthetic.generator = "warp_drive";
  EXPECT_EQ(store.RegisterSynthetic("bad", synthetic).code(),
            api::FcErrorCode::kInvalidArgument);
}

// ------------------------------------------------------------- spec key

TEST(SpecKeyTest, CanonicalizesAliasesDefaultsAndOptions) {
  const std::string base = service::CanonicalSpecKey(SmallSpec()).value();

  // Alias and canonical name key identically.
  api::CoresetSpec alias = SmallSpec("fast");
  EXPECT_EQ(service::CanonicalSpecKey(alias).value(), base);

  // Monostate and explicitly defaulted options key identically.
  api::CoresetSpec defaulted = SmallSpec();
  defaulted.options = api::FastOptions{};
  EXPECT_EQ(service::CanonicalSpecKey(defaulted).value(), base);

  // m = 0 resolves to the 40k default.
  api::CoresetSpec m_zero = SmallSpec();
  m_zero.m = 0;
  api::CoresetSpec m_explicit = SmallSpec();
  m_explicit.m = 160;
  EXPECT_EQ(service::CanonicalSpecKey(m_zero).value(),
            service::CanonicalSpecKey(m_explicit).value());

  // welterweight j = 0 resolves to the paper default.
  api::CoresetSpec j_default = SmallSpec("welterweight");
  api::CoresetSpec j_explicit = SmallSpec("welterweight");
  api::WelterweightOptions j_options;
  j_options.j = 2;  // ceil(log2 4)
  j_explicit.options = j_options;
  EXPECT_EQ(service::CanonicalSpecKey(j_default).value(),
            service::CanonicalSpecKey(j_explicit).value());

  // Anything that changes the build changes the key.
  std::set<std::string> keys;
  keys.insert(base);
  for (auto mutate : {+[](api::CoresetSpec* s) { s->k = 5; },
                      +[](api::CoresetSpec* s) { s->m = 61; },
                      +[](api::CoresetSpec* s) { s->z = 1; },
                      +[](api::CoresetSpec* s) { s->seed = 8; },
                      +[](api::CoresetSpec* s) {
                        api::FastOptions options;
                        options.use_jl = false;
                        s->options = options;
                      },
                      +[](api::CoresetSpec* s) {
                        s->weights.assign(400, 2.0);
                      }}) {
    api::CoresetSpec spec = SmallSpec();
    mutate(&spec);
    EXPECT_TRUE(keys.insert(service::CanonicalSpecKey(spec).value()).second)
        << "mutated spec collided with a previous key";
  }

  EXPECT_EQ(service::CanonicalSpecKey(SmallSpec("no_such")).status().code(),
            api::FcErrorCode::kNotFound);
}

/// Out-of-tree algorithm that reuses a built-in options tag — the case
/// the key serializer cannot canonicalize and must still keep
/// value-faithful.
class EchoUniformAlgorithm : public api::CoresetAlgorithm {
 public:
  std::string_view Name() const override { return "test_echo_uniform"; }
  api::FcStatus ValidateSpec(const api::CoresetSpec&) const override {
    return api::FcStatus::Ok();  // Accepts any options tag.
  }
  Coreset Build(const api::CoresetSpec&, const Matrix& points,
                const std::vector<double>& weights, size_t m, Rng& rng,
                api::BuildDiagnostics*) const override {
    return UniformLike(points, weights, m, rng);
  }

 private:
  static Coreset UniformLike(const Matrix& points,
                             const std::vector<double>& weights, size_t m,
                             Rng& rng) {
    api::CoresetSpec spec;
    spec.method = "uniform";
    spec.m = m;
    return api::Build(spec, points, weights, rng)->coreset;
  }
};

FC_REGISTER_CORESET_ALGORITHM("test_echo_uniform", EchoUniformAlgorithm);

TEST(SpecKeyTest, ExternalMethodKeysAreValueFaithful) {
  api::CoresetSpec low = SmallSpec("test_echo_uniform");
  api::GroupOptions low_options;
  low_options.eps = 0.1;
  low.options = low_options;

  api::CoresetSpec high = low;
  api::GroupOptions high_options;
  high_options.eps = 0.9;
  high.options = high_options;

  // Different option values through an unknown method must never share a
  // cache key (a shared key would serve the wrong coreset as a "hit").
  EXPECT_NE(service::CanonicalSpecKey(low).value(),
            service::CanonicalSpecKey(high).value());
  // Different tags differ too, and monostate has its own key.
  api::CoresetSpec tagless = SmallSpec("test_echo_uniform");
  EXPECT_NE(service::CanonicalSpecKey(tagless).value(),
            service::CanonicalSpecKey(low).value());
}

// ------------------------------------------------------------- sharding

TEST(ShardPlannerTest, PlanCoversRowsExactlyAndClamps) {
  for (const auto& [rows, requested] : std::vector<std::pair<size_t, size_t>>{
           {100, 1}, {100, 4}, {101, 4}, {7, 16}, {1, 3}}) {
    const auto plan = service::PlanShards(rows, requested);
    EXPECT_EQ(plan.size(), service::EffectiveShardCount(rows, requested));
    EXPECT_LE(plan.size(), rows);
    size_t expected_begin = 0;
    size_t min_rows = rows, max_rows = 0;
    for (const auto& range : plan) {
      EXPECT_EQ(range.begin, expected_begin);
      EXPECT_GT(range.rows(), 0u);
      min_rows = std::min(min_rows, range.rows());
      max_rows = std::max(max_rows, range.rows());
      expected_begin = range.end;
    }
    EXPECT_EQ(expected_begin, rows);
    EXPECT_LE(max_rows - min_rows, 1u) << "shards must be near-equal";
  }
}

TEST(ShardPlannerTest, DerivedSeedsAreDistinctAcrossShardsAndDomains) {
  std::set<uint64_t> seeds;
  for (uint64_t base : {0ull, 1ull, 2ull, 42ull}) {
    for (uint64_t i = 0; i < 8; ++i) {
      EXPECT_TRUE(seeds
                      .insert(service::DeriveBuildSeed(
                          base, service::kShardSeedDomain, i))
                      .second);
    }
    EXPECT_TRUE(seeds
                    .insert(service::DeriveBuildSeed(
                        base, service::kMergeSeedDomain, 4))
                    .second);
  }
}

TEST(ShardedBuildTest, ShardedCoresetsAreThreadInvariantAndSeedStable) {
  const Matrix points = TestMixture();
  for (size_t shards : {size_t{1}, size_t{4}}) {
    Coreset serial, threaded;
    {
      ThreadCountGuard guard(1);
      serial = service::BuildSharded(SmallSpec(), points, shards)->coreset;
    }
    {
      ThreadCountGuard guard(4);
      threaded = service::BuildSharded(SmallSpec(), points, shards)->coreset;
    }
    ExpectBitIdentical(serial, threaded,
                       "shards=" + std::to_string(shards) +
                           " FC_THREADS 1 vs 4");
    // Same (seed, shard_count) = same coreset on a rebuild.
    const Coreset again =
        service::BuildSharded(SmallSpec(), points, shards)->coreset;
    ExpectBitIdentical(serial, again,
                       "shards=" + std::to_string(shards) + " rebuild");
  }
}

TEST(ShardedBuildTest, ShardDiagnosticsAndIndicesCoverTheDataset) {
  const Matrix points = TestMixture();
  const auto result = service::BuildSharded(SmallSpec(), points, 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->shards.size(), 4u);
  uint64_t previous_seed = 0;
  for (const auto& shard : result->shards) {
    EXPECT_EQ(shard.build.input_rows, 100u);
    EXPECT_FALSE(shard.build.stages.empty())
        << "per-shard stage times must be reported";
    EXPECT_NE(shard.seed, previous_seed);
    previous_seed = shard.seed;
  }
  EXPECT_TRUE(result->has_merge);
  EXPECT_EQ(result->merge.stream_blocks, 4u);
  EXPECT_GT(result->merge.stream_reduce_ops, 0u);
  // Shard rows + merge re-reduction rows.
  EXPECT_GT(result->points_processed, 400u);

  // Sampled indices must refer to original dataset rows within the
  // owning shard's range (synthetic rows excepted).
  for (size_t i = 0; i < result->coreset.size(); ++i) {
    const size_t index = result->coreset.indices[i];
    if (index == Coreset::kSyntheticIndex) continue;
    ASSERT_LT(index, points.rows());
    for (size_t j = 0; j < points.cols(); ++j) {
      EXPECT_EQ(result->coreset.points.At(i, j), points.At(index, j))
          << "coreset row " << i << " does not match dataset row " << index;
    }
  }

  // Different shard counts are different (both valid) coresets.
  const auto unsharded = service::BuildSharded(SmallSpec(), points, 1);
  EXPECT_NE(service::FingerprintCoreset(result->coreset),
            service::FingerprintCoreset(unsharded->coreset));
}

TEST(ShardedBuildTest, SingleShardMatchesPlainApiBuild) {
  const Matrix points = TestMixture();
  const auto sharded = service::BuildSharded(SmallSpec(), points, 1);
  const auto plain = api::Build(SmallSpec(), points);
  ExpectBitIdentical(sharded->coreset, plain->coreset,
                     "shards=1 vs api::Build");
}

// ---------------------------------------------------------------- cache

TEST(ServiceTest, CacheHitReturnsIdenticalCoresetWithoutRebuilding) {
  CoresetService svc;
  AddMixture(svc);

  const auto first = svc.Build(SmallRequest("mixture", 7, 2));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->diagnostics.cache_status, "miss");
  EXPECT_EQ(first->diagnostics.shards.size(), 2u);
  EXPECT_GT(first->diagnostics.points_processed, 0u);
  EXPECT_GT(first->diagnostics.build_seconds, 0.0);

  const auto second = svc.Build(SmallRequest("mixture", 7, 2));
  ASSERT_TRUE(second.ok());
  // The diagnostics prove no rebuild happened...
  EXPECT_EQ(second->diagnostics.cache_status, "hit");
  EXPECT_TRUE(second->diagnostics.shards.empty());
  EXPECT_EQ(second->diagnostics.points_processed, 0u);
  EXPECT_EQ(second->diagnostics.build_seconds, 0.0);
  // ...and the coreset is the first build, bit for bit.
  ExpectBitIdentical(first->coreset, second->coreset, "cache hit");

  const auto stats = svc.CacheStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // use_cache=false bypasses but still rebuilds the same bits.
  BuildRequest bypass = SmallRequest("mixture", 7, 2);
  bypass.use_cache = false;
  const auto rebuilt = svc.Build(bypass);
  EXPECT_EQ(rebuilt->diagnostics.cache_status, "bypass");
  ExpectBitIdentical(first->coreset, rebuilt->coreset, "bypass rebuild");
  EXPECT_EQ(svc.CacheStats().hits, 1u) << "bypass must not touch the cache";
}

TEST(ServiceTest, LruEvictionUnderCapacityPressure) {
  CoresetService svc(ServiceOptions{/*cache_capacity=*/2});
  AddMixture(svc);

  ASSERT_TRUE(svc.Build(SmallRequest("mixture", 1)).ok());
  ASSERT_TRUE(svc.Build(SmallRequest("mixture", 2)).ok());
  // Touch seed=1 so seed=2 is the LRU victim when seed=3 arrives.
  EXPECT_EQ(svc.Build(SmallRequest("mixture", 1))->diagnostics.cache_status,
            "hit");
  ASSERT_TRUE(svc.Build(SmallRequest("mixture", 3)).ok());

  auto stats = svc.CacheStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(svc.Build(SmallRequest("mixture", 1))->diagnostics.cache_status,
            "hit")
      << "recently-used entry must survive";
  EXPECT_EQ(svc.Build(SmallRequest("mixture", 2))->diagnostics.cache_status,
            "miss")
      << "LRU entry must have been evicted";

  // Explicit dataset eviction drops its entries and reports the count.
  const auto evicted = svc.EvictDataset("mixture");
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(evicted.value(), 2u);
  EXPECT_EQ(svc.Build(SmallRequest("mixture", 1))->diagnostics.cache_status,
            "miss");
  EXPECT_EQ(svc.EvictDataset("nope").status().code(),
            api::FcErrorCode::kNotFound);
}

TEST(ServiceTest, ZeroCapacityDisablesCaching) {
  CoresetService svc(ServiceOptions{/*cache_capacity=*/0});
  AddMixture(svc);
  EXPECT_EQ(svc.Build(SmallRequest("mixture"))->diagnostics.cache_status,
            "bypass");
  EXPECT_EQ(svc.Build(SmallRequest("mixture"))->diagnostics.cache_status,
            "bypass");
  EXPECT_EQ(svc.CacheStats().entries, 0u);
}

// ---------------------------------------------------------- error model

TEST(ServiceTest, InvalidRequestsSurfaceStatusesWithoutAborting) {
  CoresetService svc;
  AddMixture(svc);

  BuildRequest unknown_dataset = SmallRequest("no_such_dataset");
  EXPECT_EQ(svc.Build(unknown_dataset).status().code(),
            api::FcErrorCode::kNotFound);

  BuildRequest bad_method = SmallRequest("mixture");
  bad_method.spec.method = "no_such_method";
  EXPECT_EQ(svc.Build(bad_method).status().code(),
            api::FcErrorCode::kNotFound);

  BuildRequest bad_z = SmallRequest("mixture");
  bad_z.spec.z = 3;
  EXPECT_EQ(svc.Build(bad_z).status().code(),
            api::FcErrorCode::kInvalidArgument);

  BuildRequest mismatched_options = SmallRequest("mixture");
  mismatched_options.spec.method = "uniform";
  mismatched_options.spec.options = api::WelterweightOptions{};
  EXPECT_EQ(svc.Build(mismatched_options).status().code(),
            api::FcErrorCode::kInvalidArgument);

  BuildRequest zero_shards = SmallRequest("mixture");
  zero_shards.shards = 0;
  EXPECT_EQ(svc.Build(zero_shards).status().code(),
            api::FcErrorCode::kInvalidArgument);

  BuildRequest short_weights = SmallRequest("mixture");
  short_weights.spec.weights.assign(3, 1.0);
  EXPECT_EQ(svc.Build(short_weights).status().code(),
            api::FcErrorCode::kInvalidArgument);

  // Nothing above poisoned the service: a valid request still works.
  EXPECT_TRUE(svc.Build(SmallRequest("mixture")).ok());
  // And none of the failures were cached or counted as traffic.
  EXPECT_EQ(svc.CacheStats().entries, 1u);
}

TEST(ServiceTest, ShardCountClampsToRowsAndKeysTheClampedValue) {
  CoresetService svc;
  Matrix tiny(3, 2);
  tiny.At(0, 0) = 1.0;
  tiny.At(1, 0) = 2.0;
  tiny.At(2, 1) = 3.0;
  ASSERT_TRUE(svc.datasets().RegisterMatrix("tiny", std::move(tiny)).ok());

  BuildRequest request = SmallRequest("tiny", 7, /*shards=*/16);
  request.spec.k = 1;
  request.spec.m = 2;
  const auto first = svc.Build(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->diagnostics.shard_count, 3u) << "16 shards clamp to rows";

  // A literally-equal request at a different requested count that clamps
  // to the same effective count is the same cached build.
  request.shards = 5;
  const auto second = svc.Build(request);
  EXPECT_EQ(second->diagnostics.cache_status, "hit");
}

// ------------------------------------------------------------- protocol

TEST(JsonTest, ParsesAndRejects) {
  const auto value =
      service::ParseJson(R"({"a":[1,2.5,-3e2],"b":"x\ny","c":{"d":true},)"
                         R"("e":null})");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(value->Find("a")->array().size(), 3u);
  EXPECT_EQ(value->Find("a")->array()[2].number_value(), -300.0);
  EXPECT_EQ(value->Find("b")->string_value(), "x\ny");
  EXPECT_TRUE(value->Find("c")->Find("d")->bool_value());
  EXPECT_TRUE(value->Find("e")->is_null());
  EXPECT_EQ(value->Find("missing"), nullptr);

  EXPECT_TRUE(service::ParseJson(R"("Aé")").value().string_value() ==
              "A\xc3\xa9");

  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\":1,\"a\":2}", "01x", "1 2",
        "\"unterminated", "{\"a\":1}extra", "nul", "[1e400]",
        // Strict number grammar: strtod would take all of these.
        "+5", ".5", "5.", "01", "-01", "1e", "1e+", "-", "[.5]"}) {
    EXPECT_FALSE(service::ParseJson(bad).ok()) << "accepted: " << bad;
  }

  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(service::ParseJson(deep).ok()) << "depth cap must kick in";

  std::string escaped;
  service::AppendJsonString(&escaped, "a\"b\\c\nd\x01");
  EXPECT_EQ(escaped, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(JsonTest, HardenedAgainstHostileInput) {
  // Depth cap holds for every nesting shape, and the deepest legal
  // nesting still parses (the cap is a limit, not an off-by-one).
  for (const char open : {'[', '{'}) {
    std::string deep;
    for (int i = 0; i < 80; ++i) {
      deep += open;
      if (open == '{') deep += "\"k\":";
    }
    EXPECT_FALSE(service::ParseJson(deep).ok()) << "depth cap: " << open;
  }
  std::string nested = "1";
  for (int i = 0; i < 60; ++i) nested = "[" + nested + "]";
  EXPECT_TRUE(service::ParseJson(nested).ok()) << "60 levels must parse";

  // Long and overflowing numeric literals: rejected, not rounded to inf.
  EXPECT_FALSE(service::ParseJson("1e309").ok());
  EXPECT_FALSE(service::ParseJson("-1e309").ok());
  EXPECT_FALSE(service::ParseJson(std::string(400, '9')).ok());
  // Long-but-finite literals are fine (denormal underflow is not an
  // error; strtod rounds).
  EXPECT_TRUE(service::ParseJson("1e-400").ok());
  EXPECT_TRUE(
      service::ParseJson("0." + std::string(5000, '1')).ok());

  // Raw invalid UTF-8 in strings is a parse error, never passed through.
  for (const std::string bad : {
           std::string("\"\x80\""),          // stray continuation byte
           std::string("\"\xc3(\""),         // truncated 2-byte sequence
           std::string("\"\xc0\xaf\""),      // overlong '/'
           std::string("\"\xe0\x80\x80\""),  // overlong NUL
           std::string("\"\xed\xa0\x80\""),  // raw-encoded surrogate
           std::string("\"\xf4\x90\x80\x80\""),  // > U+10FFFF
           std::string("\"\xf8\x88\x80\x80\x80\""),  // 5-byte form
           std::string("\"\xc3"),            // cut at end of input
       }) {
    EXPECT_FALSE(service::ParseJson(bad).ok())
        << "accepted invalid UTF-8: " << bad;
  }
  // Well-formed multi-byte sequences round-trip untouched.
  EXPECT_EQ(service::ParseJson("\"\xe2\x82\xac\"").value().string_value(),
            "\xe2\x82\xac");  // €
  EXPECT_EQ(
      service::ParseJson("\"\xf0\x9f\x98\x80\"").value().string_value(),
      "\xf0\x9f\x98\x80");  // 😀 (4-byte)

  // \u escapes: lone surrogate halves are rejected; a proper pair
  // combines into one 4-byte UTF-8 code point (not CESU-8).
  EXPECT_FALSE(service::ParseJson(R"("\ud83d")").ok());
  EXPECT_FALSE(service::ParseJson(R"("\ude00")").ok());
  EXPECT_FALSE(service::ParseJson(R"("\ud83dx")").ok());
  EXPECT_FALSE(service::ParseJson(R"("\ud83dA")").ok());
  EXPECT_FALSE(service::ParseJson(R"("\ud83d\ud83d")").ok());
  EXPECT_EQ(
      service::ParseJson(R"("\ud83d\ude00")").value().string_value(),
      "\xf0\x9f\x98\x80");  // Pair combines to U+1F600, one 4-byte char.
  EXPECT_EQ(service::ParseJson(R"("\u20ac")").value().string_value(),
            "\xe2\x82\xac");

  // Malformed escapes stay recoverable errors.
  for (const char* bad : {R"("\u12")", R"("\u12gh")", R"("\q")", R"("\)"}) {
    EXPECT_FALSE(service::ParseJson(bad).ok()) << "accepted: " << bad;
  }

  // A hostile request line produces an error response, never a crash.
  CoresetService svc;
  const std::string response = service::HandleRequestLine(
      svc, "{\"verb\":\"register\",\"name\":\"\xff\xfe\"}");
  const auto parsed = service::ParseJson(response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->Find("ok")->bool_value());
}

TEST(ProtocolTest, SpecFromJsonMarshalsFieldsAndOptions) {
  const auto request = service::ParseJson(
      R"({"method":"welterweight","k":6,"m":80,"z":1,"seed":11,)"
      R"("options":{"j":3}})");
  ASSERT_TRUE(request.ok());
  const auto spec = service::SpecFromJson(request.value());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->method, "welterweight");
  EXPECT_EQ(spec->k, 6u);
  EXPECT_EQ(spec->m, 80u);
  EXPECT_EQ(spec->z, 1);
  EXPECT_EQ(spec->seed, 11u);
  EXPECT_EQ(std::get<api::WelterweightOptions>(spec->options).j, 3u);

  // Unknown option keys and options on option-less methods are errors.
  const auto bad_key = service::ParseJson(
      R"({"method":"welterweight","options":{"jay":3}})");
  EXPECT_FALSE(service::SpecFromJson(bad_key.value()).ok());
  const auto no_options =
      service::ParseJson(R"({"method":"uniform","options":{"x":1}})");
  EXPECT_FALSE(service::SpecFromJson(no_options.value()).ok());
  const auto fractional_k = service::ParseJson(R"({"k":2.5})");
  EXPECT_FALSE(service::SpecFromJson(fractional_k.value()).ok());
}

TEST(ProtocolTest, EndToEndRegisterBuildHitStatsEvict) {
  CoresetService svc;

  const auto Handle = [&](const std::string& line) {
    const std::string response = service::HandleRequestLine(svc, line);
    auto parsed = service::ParseJson(response);
    FC_CHECK_MSG(parsed.ok(), response.c_str());
    return std::move(parsed.value());
  };

  const JsonValue registered = Handle(
      R"({"verb":"register","name":"p","points":)"
      R"([[0,0],[1,0],[0,1],[9,9],[9,8],[8,9],[5,5],[5,6]]})");
  ASSERT_TRUE(registered.Find("ok")->bool_value())
      << registered.Find("message")->string_value();
  EXPECT_EQ(registered.Find("rows")->number_value(), 8.0);

  const std::string build_line =
      R"({"verb":"build","dataset":"p","method":"uniform","k":2,"m":4,)"
      R"("seed":5,"shards":2})";
  const JsonValue first = Handle(build_line);
  ASSERT_TRUE(first.Find("ok")->bool_value())
      << first.Find("message")->string_value();
  EXPECT_EQ(first.Find("cache")->string_value(), "miss");
  EXPECT_EQ(first.Find("shards")->number_value(), 2.0);

  const JsonValue second = Handle(build_line);
  EXPECT_EQ(second.Find("cache")->string_value(), "hit");
  EXPECT_EQ(second.Find("points_processed")->number_value(), 0.0);
  EXPECT_EQ(second.Find("coreset_fingerprint")->string_value(),
            first.Find("coreset_fingerprint")->string_value())
      << "cache hit must be bit-identical";

  const JsonValue stats = Handle(R"({"verb":"stats"})");
  EXPECT_EQ(stats.Find("cache")->Find("hits")->number_value(), 1.0);
  EXPECT_EQ(stats.Find("cache")->Find("misses")->number_value(), 1.0);
  EXPECT_EQ(stats.Find("datasets")->array().size(), 1u);

  const JsonValue evicted =
      Handle(R"({"verb":"evict","dataset":"p"})");
  ASSERT_TRUE(evicted.Find("ok")->bool_value());
  EXPECT_EQ(evicted.Find("evicted")->number_value(), 1.0);
  EXPECT_EQ(Handle(build_line).Find("cache")->string_value(), "miss");
}

TEST(ServiceTest, TransportLoadGaugesFlowIntoStats) {
  CoresetService svc;

  const auto Transport = [&]() {
    const std::string response =
        service::HandleRequestLine(svc, R"({"verb":"stats"})");
    auto parsed = service::ParseJson(response);
    FC_CHECK_MSG(parsed.ok(), response.c_str());
    FC_CHECK_MSG(parsed->Find("transport") != nullptr, response.c_str());
    return *parsed->Find("transport");
  };

  // Without an attached transport every gauge reads zero.
  const JsonValue idle = Transport();
  EXPECT_EQ(idle.Find("queue_depth")->number_value(), 0.0);
  EXPECT_EQ(idle.Find("sessions_active")->number_value(), 0.0);
  EXPECT_EQ(idle.Find("requests_rejected")->number_value(), 0.0);

  // Gauges are last-write-wins; the rejection counter accumulates.
  svc.ReportTransportLoad(3, 2);
  svc.AddTransportRejections(5);
  svc.AddTransportRejections(2);
  const CoresetService::TransportStats load = svc.TransportLoad();
  EXPECT_EQ(load.queue_depth, 3u);
  EXPECT_EQ(load.sessions_active, 2u);
  EXPECT_EQ(load.requests_rejected, 7u);

  const JsonValue busy = Transport();
  EXPECT_EQ(busy.Find("queue_depth")->number_value(), 3.0);
  EXPECT_EQ(busy.Find("sessions_active")->number_value(), 2.0);
  EXPECT_EQ(busy.Find("requests_rejected")->number_value(), 7.0);

  svc.ReportTransportLoad(0, 0);
  const JsonValue drained = Transport();
  EXPECT_EQ(drained.Find("queue_depth")->number_value(), 0.0);
  EXPECT_EQ(drained.Find("sessions_active")->number_value(), 0.0);
  EXPECT_EQ(drained.Find("requests_rejected")->number_value(), 7.0)
      << "rejections are lifetime totals, not gauges";
}

TEST(ProtocolTest, IdEchoAndOverloadResponse) {
  CoresetService svc;

  // A string or numeric "id" is echoed verbatim, on success and error.
  const auto with_string_id = service::ParseJson(
      service::HandleRequestLine(svc, R"({"verb":"stats","id":"req-7"})"));
  ASSERT_TRUE(with_string_id.ok());
  EXPECT_TRUE(with_string_id->Find("ok")->bool_value());
  EXPECT_EQ(with_string_id->Find("id")->string_value(), "req-7");

  const auto with_number_id = service::ParseJson(
      service::HandleRequestLine(svc, R"({"verb":"warp","id":42})"));
  ASSERT_TRUE(with_number_id.ok());
  EXPECT_FALSE(with_number_id->Find("ok")->bool_value());
  EXPECT_EQ(with_number_id->Find("id")->number_value(), 42.0);

  // Any other id type is rejected (and carries no echo to mis-match).
  const auto bad_id = service::ParseJson(
      service::HandleRequestLine(svc, R"({"verb":"stats","id":[1]})"));
  ASSERT_TRUE(bad_id.ok());
  EXPECT_FALSE(bad_id->Find("ok")->bool_value());
  EXPECT_EQ(bad_id->Find("code")->string_value(), "invalid_argument");
  EXPECT_EQ(bad_id->Find("id"), nullptr);

  // The admission-control rejection is a valid protocol line carrying
  // the gauges that triggered the shed.
  const auto overload =
      service::ParseJson(service::OverloadResponse(9, 8));
  ASSERT_TRUE(overload.ok());
  EXPECT_EQ(overload->Find("v")->number_value(), 1.0);
  EXPECT_FALSE(overload->Find("ok")->bool_value());
  EXPECT_EQ(overload->Find("code")->string_value(), "unavailable");
  EXPECT_EQ(overload->Find("queue_depth")->number_value(), 9.0);
  EXPECT_EQ(overload->Find("queue_limit")->number_value(), 8.0);
  EXPECT_FALSE(overload->Find("message")->string_value().empty());
}

TEST(ProtocolTest, MalformedRequestsGetErrorResponsesNotCrashes) {
  CoresetService svc;
  for (const char* line :
       {"not json at all", "[1,2,3]", R"({"verb":"warp"})",
        R"({"verb":"build"})", R"({"verb":"build","dataset":"nope","k":1})",
        R"({"verb":"register","name":"x"})",
        R"({"verb":"register","name":"x","points":[[1,2],[3]]})",
        R"({"verb":"build","dataset":"d","k":-1})",
        R"({"verb":"build","dataset":"d","typo_field":1})",
        R"({"verb":"evict"})"}) {
    const std::string response = service::HandleRequestLine(svc, line);
    const auto parsed = service::ParseJson(response);
    ASSERT_TRUE(parsed.ok()) << "unparseable response: " << response;
    EXPECT_FALSE(parsed.value().Find("ok")->bool_value()) << line;
    EXPECT_FALSE(parsed.value().Find("message")->string_value().empty())
        << line;
  }
}

// Service builds honour the library-wide thread-invariance contract end
// to end (the acceptance matrix: shards x FC_THREADS).
TEST(ServiceTest, ServedCoresetsAreBitIdenticalAcrossThreadCounts) {
  for (size_t shards : {size_t{1}, size_t{4}}) {
    Coreset serial, threaded;
    {
      ThreadCountGuard guard(1);
      CoresetService svc;
  AddMixture(svc);
      serial = svc.Build(SmallRequest("mixture", 7, shards))->coreset;
    }
    {
      ThreadCountGuard guard(4);
      CoresetService svc;
  AddMixture(svc);
      threaded = svc.Build(SmallRequest("mixture", 7, shards))->coreset;
    }
    ExpectBitIdentical(serial, threaded,
                       "served shards=" + std::to_string(shards) +
                           " FC_THREADS 1 vs 4");
  }
}

}  // namespace
}  // namespace fastcoreset
