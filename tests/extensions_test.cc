// Tests for the beyond-the-paper extensions: group sampling (STOC'21
// construction) and HST tree-greedy seeding (Section 8.4).

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/tree_greedy.h"
#include "src/core/fast_coreset.h"
#include "src/core/group_sampling.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"
#include "src/geometry/distance.h"

namespace fastcoreset {
namespace {

Matrix Blobs(size_t blobs, size_t per_blob, size_t d, Rng& rng,
             double box = 500.0) {
  Matrix points(blobs * per_blob, d);
  std::vector<double> center(d);
  size_t row_idx = 0;
  for (size_t b = 0; b < blobs; ++b) {
    for (double& x : center) x = rng.Uniform(0.0, box);
    for (size_t p = 0; p < per_blob; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) row[j] = center[j] + rng.NextGaussian();
    }
  }
  return points;
}

TEST(GroupSamplingTest, TotalWeightConcentratesAroundN) {
  Rng rng(1);
  const Matrix points = Blobs(6, 200, 4, rng);
  double total = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Rng trial(100 + t);
    GroupSamplingOptions options;
    options.k = 6;
    options.m = 200;
    total += GroupSamplingCoreset(points, {}, options, trial).TotalWeight();
  }
  EXPECT_NEAR(total / trials / 1200.0, 1.0, 0.1);
}

TEST(GroupSamplingTest, CloseRepresentativesAreSynthetic) {
  Rng rng(2);
  const Matrix points = Blobs(4, 150, 3, rng);
  GroupSamplingOptions options;
  options.k = 4;
  options.m = 100;
  const Coreset coreset = GroupSamplingCoreset(points, {}, options, rng);
  size_t synthetic = 0;
  for (size_t idx : coreset.indices) {
    if (idx == Coreset::kSyntheticIndex) ++synthetic;
  }
  // Close-point representatives exist (most blob mass is near a center).
  EXPECT_GT(synthetic, 0u);
  EXPECT_LE(synthetic, 4u);
}

TEST(GroupSamplingTest, LowDistortionOnBlobs) {
  Rng rng(3);
  const Matrix points = Blobs(8, 400, 6, rng);
  GroupSamplingOptions options;
  options.k = 8;
  options.m = 400;
  const Coreset coreset = GroupSamplingCoreset(points, {}, options, rng);
  DistortionOptions probe;
  probe.k = 8;
  EXPECT_LT(CoresetDistortion(points, {}, coreset, probe, rng), 1.5);
}

TEST(GroupSamplingTest, CapturesOutliers) {
  Rng rng(4);
  const size_t n = 20000, c = 10;
  const Matrix points = GenerateCOutlier(n, c, 5, 1e6, rng);
  GroupSamplingOptions options;
  options.k = 20;
  options.m = 200;
  const Coreset coreset = GroupSamplingCoreset(points, {}, options, rng);
  // Either an outlier point was sampled, or an outlier-cluster center
  // representative carries its weight; check via cost coverage: a probe
  // centered only on the main blob must still see the outliers' cost.
  Matrix main_blob_center(1, 5);
  const double coreset_cost =
      CostToCenters(coreset.points, coreset.weights, main_blob_center, 2);
  const double full_cost = CostToCenters(points, {}, main_blob_center, 2);
  EXPECT_NEAR(coreset_cost / full_cost, 1.0, 0.3);
}

TEST(GroupSamplingTest, UnbiasedCostEstimator) {
  Rng rng(5);
  const Matrix points = Blobs(5, 200, 3, rng);
  Rng probe_rng(6);
  const Clustering probe = KMeansPlusPlus(points, {}, 7, 2, probe_rng);
  const double true_cost = CostToCenters(points, {}, probe.centers, 2);
  double estimate = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    Rng trial(700 + t);
    GroupSamplingOptions options;
    options.k = 5;
    options.m = 150;
    const Coreset coreset = GroupSamplingCoreset(points, {}, options, trial);
    estimate += CostToCenters(coreset.points, coreset.weights, probe.centers,
                              2);
  }
  // Close points snap to their center, which introduces a small bias of
  // order eps * average cost; allow 20%.
  EXPECT_NEAR(estimate / trials / true_cost, 1.0, 0.2);
}

TEST(GroupSamplingTest, KMedianMode) {
  Rng rng(7);
  const Matrix points = Blobs(5, 200, 3, rng);
  GroupSamplingOptions options;
  options.k = 5;
  options.m = 200;
  options.z = 1;
  const Coreset coreset = GroupSamplingCoreset(points, {}, options, rng);
  DistortionOptions probe;
  probe.k = 5;
  probe.z = 1;
  EXPECT_LT(CoresetDistortion(points, {}, coreset, probe, rng), 1.5);
}

TEST(TreeGreedyTest, AssignmentsValidAndCostsConsistent) {
  Rng rng(8);
  const Matrix points = Blobs(6, 100, 3, rng);
  TreeGreedyOptions options;
  const Clustering result = TreeGreedySeeding(points, {}, 6, options, rng);
  ASSERT_GT(result.centers.rows(), 0u);
  ASSERT_EQ(result.assignment.size(), points.rows());
  for (size_t i = 0; i < points.rows(); ++i) {
    ASSERT_LT(result.assignment[i], result.centers.rows());
    EXPECT_NEAR(result.point_costs[i],
                SquaredL2(points.Row(i),
                          result.centers.Row(result.assignment[i])),
                1e-9);
  }
}

TEST(TreeGreedyTest, SeparatedBlobsGetSeparated) {
  Rng rng(9);
  const Matrix points = Blobs(5, 100, 2, rng, /*box=*/5000.0);
  TreeGreedyOptions options;
  const Clustering result = TreeGreedySeeding(points, {}, 5, options, rng);
  // With well-separated blobs the greedy should isolate them: intra-blob
  // cost only, so every point's cost is small relative to separation.
  Rng ref_rng(10);
  const double reference =
      KMeansPlusPlus(points, {}, 5, 2, ref_rng).total_cost;
  EXPECT_LT(result.total_cost, 100.0 * reference + 1.0);
}

TEST(TreeGreedyTest, ClusterCountNearK) {
  Rng rng(11);
  const Matrix points = Blobs(20, 50, 4, rng);
  TreeGreedyOptions options;
  const Clustering result = TreeGreedySeeding(points, {}, 12, options, rng);
  EXPECT_GE(result.centers.rows(), 6u);
  // Bicriteria: at most k plus one node's fan-out.
  EXPECT_LE(result.centers.rows(), 12u + 16u);
}

TEST(TreeGreedyTest, FewerLeavesThanK) {
  Matrix points(10, 2);  // Two distinct locations.
  for (size_t i = 5; i < 10; ++i) points.At(i, 0) = 100.0;
  Rng rng(12);
  TreeGreedyOptions options;
  options.max_depth = 20;
  const Clustering result = TreeGreedySeeding(points, {}, 8, options, rng);
  EXPECT_LE(result.centers.rows(), 8u);
  EXPECT_GE(result.centers.rows(), 2u);
  EXPECT_LT(result.total_cost, 1.0);
}

TEST(TreeGreedyTest, WeightedPointsShiftCenters) {
  Matrix points(2, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 1.0;
  Rng rng(13);
  TreeGreedyOptions options;
  const Clustering result =
      TreeGreedySeeding(points, {3.0, 1.0}, 1, options, rng);
  ASSERT_EQ(result.centers.rows(), 1u);
  EXPECT_NEAR(result.centers.At(0, 0), 0.25, 0.05);
}

TEST(TreeGreedyTest, KMedianModeUsesGeometricMedians) {
  Rng rng(14);
  const Matrix points = Blobs(4, 100, 2, rng);
  TreeGreedyOptions options;
  options.z = 1;
  const Clustering result = TreeGreedySeeding(points, {}, 4, options, rng);
  EXPECT_EQ(result.z, 1);
  for (size_t i = 0; i < points.rows(); ++i) {
    EXPECT_NEAR(result.point_costs[i],
                L2(points.Row(i), result.centers.Row(result.assignment[i])),
                1e-9);
  }
}

TEST(FastCoresetSeederTest, TreeGreedySeederProducesValidCoreset) {
  Rng rng(15);
  const Matrix points = Blobs(8, 300, 8, rng);
  FastCoresetOptions options;
  options.k = 8;
  options.m = 300;
  options.seeder = FastCoresetSeeder::kTreeGreedy;
  const Coreset coreset = FastCoreset(points, {}, options, rng);
  EXPECT_GT(coreset.size(), 0u);
  DistortionOptions probe;
  probe.k = 8;
  EXPECT_LT(CoresetDistortion(points, {}, coreset, probe, rng), 1.5);
}

}  // namespace
}  // namespace fastcoreset
