// Tests for src/spread: Crude-Approx (Algorithm 2) and Reduce-Spread
// (Algorithm 3).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/data/generators.h"
#include "src/geometry/bounding_box.h"
#include "src/geometry/distance.h"
#include "src/spread/crude_approx.h"
#include "src/spread/reduce_spread.h"

namespace fastcoreset {
namespace {

Matrix Blobs(size_t blobs, size_t per_blob, size_t d, Rng& rng,
             double box = 1000.0) {
  Matrix points(blobs * per_blob, d);
  std::vector<double> center(d);
  size_t row_idx = 0;
  for (size_t b = 0; b < blobs; ++b) {
    for (double& x : center) x = rng.Uniform(0.0, box);
    for (size_t p = 0; p < per_blob; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) row[j] = center[j] + rng.NextGaussian();
    }
  }
  return points;
}

TEST(CountDistinctCellsTest, CoarseGridOneCellFineGridAll) {
  Matrix points(4, 2);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 1.0;
  points.At(2, 0) = 2.0;
  points.At(3, 0) = 3.0;
  const std::vector<double> shift = {-0.1, -0.1};
  EXPECT_EQ(CountDistinctCells(points, shift, 100.0), 1u);
  EXPECT_EQ(CountDistinctCells(points, shift, 0.5), 4u);
}

TEST(CountDistinctCellsTest, MonotoneInRefinement) {
  Rng rng(1);
  Matrix points(100, 3);
  for (double& x : points.data()) x = rng.Uniform(0.0, 50.0);
  const std::vector<double> shift = {-1.0, -1.0, -1.0};
  size_t prev = 0;
  for (double side = 64.0; side >= 0.5; side /= 2.0) {
    const size_t count = CountDistinctCells(points, shift, side);
    EXPECT_GE(count, prev);
    prev = count;
  }
}

TEST(CrudeApproxTest, BoundsBracketTrueOptimum) {
  Rng rng(2);
  const size_t blobs = 5, per = 40;
  const Matrix points = Blobs(blobs, per, 2, rng);
  const size_t n = points.rows();

  // Reference OPT for k-median: k-means++ (z=1) cost is a constant-factor
  // proxy on well-separated blobs.
  Rng seed_rng(3);
  const double opt_proxy =
      KMeansPlusPlus(points, {}, blobs, 1, seed_rng).total_cost;

  const CrudeApproxResult crude = CrudeApprox(points, blobs, rng);
  ASSERT_GT(crude.upper_bound, 0.0);
  // Upper bound must dominate OPT (tree distances dominate Euclidean).
  EXPECT_GE(crude.upper_bound, opt_proxy / 4.0);
  // And stay within the poly(n, d, log Δ) envelope of Lemma 4.2 — the
  // bound is O(n) * OPT_tree with OPT_tree <= O(d log Δ) OPT.
  const double spread = ComputeSpreadExact(points);
  const double envelope = 64.0 * static_cast<double>(n) * 2.0 *
                          (std::log2(spread) + 1.0) * opt_proxy;
  EXPECT_LE(crude.upper_bound, envelope);
}

TEST(CrudeApproxTest, DegenerateFewDistinctPoints) {
  Matrix points(10, 2);  // All identical.
  Rng rng(4);
  const CrudeApproxResult crude = CrudeApprox(points, 3, rng);
  EXPECT_EQ(crude.upper_bound, 0.0);
  EXPECT_EQ(crude.split_level, -1);
}

TEST(CrudeApproxTest, ProbeCountIsLogLogScale) {
  Rng rng(5);
  const Matrix points = Blobs(4, 50, 2, rng);
  const CrudeApproxResult crude = CrudeApprox(points, 4, rng);
  // Binary + exponential search over <= 60 levels: a handful of probes,
  // not O(levels).
  EXPECT_LE(crude.probes, 16);
  EXPECT_GE(crude.probes, 2);
}

TEST(CrudeApproxTest, KEqualsOneStillWorks) {
  Rng rng(6);
  const Matrix points = Blobs(2, 30, 2, rng);
  const CrudeApproxResult crude = CrudeApprox(points, 1, rng);
  EXPECT_GT(crude.upper_bound, 0.0);
  EXPECT_GE(crude.upper_bound, crude.lower_bound);
}

TEST(ReduceSpreadTest, ShrinksHugeGaps) {
  // Two tight groups separated by a massive gap: diameter must shrink by
  // orders of magnitude while intra-group geometry is preserved.
  Rng rng(7);
  const size_t per = 50;
  Matrix points(2 * per, 2);
  for (size_t i = 0; i < per; ++i) {
    points.At(i, 0) = rng.Uniform(0.0, 1.0);
    points.At(i, 1) = rng.Uniform(0.0, 1.0);
    points.At(per + i, 0) = 1e9 + rng.Uniform(0.0, 1.0);
    points.At(per + i, 1) = rng.Uniform(0.0, 1.0);
  }
  // A reasonable upper bound on OPT for k=2: intra-group cost ~ per * 1.
  const double upper = 200.0;
  const SpreadReduction reduction = ReduceSpread(points, upper, 40.0, rng);

  const BoundingBox before = ComputeBoundingBox(points);
  const BoundingBox after = ComputeBoundingBox(reduction.points);
  EXPECT_LT(after.Diagonal(), before.Diagonal() / 100.0);
  EXPECT_EQ(reduction.num_boxes, 2u);

  // Intra-group pairwise distances preserved up to rounding.
  for (size_t i = 0; i < per; i += 7) {
    for (size_t j = i + 1; j < per; j += 11) {
      const double orig = L2(points.Row(i), points.Row(j));
      const double reduced =
          L2(reduction.points.Row(i), reduction.points.Row(j));
      EXPECT_NEAR(reduced, orig, 1e-3 + 4.0 * reduction.grid_size);
    }
  }
}

TEST(ReduceSpreadTest, CostOfSolutionsPreserved) {
  // Lemma 4.5: a solution on P' maps back to a solution on P with the same
  // cost up to additive OPT/n-scale error.
  Rng rng(8);
  const Matrix points = Blobs(3, 60, 2, rng, /*box=*/1e7);
  const double upper = 1e5;  // Generous upper bound on OPT (blob sigma 1).
  const SpreadReduction reduction = ReduceSpread(points, upper, 50.0, rng);

  Rng solve_rng(9);
  const Clustering on_reduced =
      KMeansPlusPlus(reduction.points, {}, 3, 1, solve_rng);
  const double cost_reduced = on_reduced.total_cost;

  const Matrix restored =
      RestoreCenters(reduction, on_reduced.centers, on_reduced.assignment);
  const double cost_original = CostToCenters(points, {}, restored, 1);
  // Rounding error per point <= grid diagonal; totals should agree within
  // a small relative + additive slack.
  const double slack =
      0.05 * cost_reduced +
      4.0 * reduction.grid_size * std::sqrt(2.0) * points.rows() + 1e-6;
  EXPECT_NEAR(cost_original, cost_reduced, slack);
}

TEST(ReduceSpreadTest, SpreadPolynomialAfterReduction) {
  Rng rng(10);
  // Pathological spread: pairs at distance 1e-6 and groups 1e9 apart.
  Matrix points(40, 1);
  for (size_t i = 0; i < 20; ++i) {
    points.At(i, 0) = static_cast<double>(i % 5) * 1e-6;
    points.At(20 + i, 0) = 1e9 + static_cast<double>(i % 5) * 1e-6;
  }
  const double upper = 1.0;  // OPT ~ tiny for k >= 2.
  const SpreadReduction reduction = ReduceSpread(points, upper, 60.0, rng);
  const double spread_after = ComputeSpreadExact(reduction.points);
  // poly(n, d, log Δ) with n=40: definitely below 1e12 (original: 1e15).
  EXPECT_LT(spread_after, 1e12);
  EXPECT_GT(reduction.grid_size, 0.0);
}

TEST(ReduceSpreadTest, ZeroUpperBoundIsIdentity) {
  Rng rng(11);
  Matrix points(5, 2);
  for (double& x : points.data()) x = rng.Uniform(0.0, 1.0);
  const SpreadReduction reduction = ReduceSpread(points, 0.0, 10.0, rng);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(reduction.points.At(i, 0), points.At(i, 0));
  }
  EXPECT_EQ(reduction.num_boxes, 1u);
}

TEST(ReduceSpreadTest, AdjacencyPreserved) {
  // Proposition 4.4(2): boxes adjacent before stay adjacent; non-adjacent
  // stay non-adjacent (in particular, distinct boxes never merge).
  Rng rng(12);
  Matrix points(30, 1);
  for (size_t i = 0; i < 10; ++i) {
    points.At(i, 0) = rng.Uniform(0.0, 1.0);
    points.At(10 + i, 0) = 1e6 + rng.Uniform(0.0, 1.0);
    points.At(20 + i, 0) = 9e8 + rng.Uniform(0.0, 1.0);
  }
  const SpreadReduction reduction = ReduceSpread(points, 20.0, 40.0, rng);
  ASSERT_EQ(reduction.num_boxes, 3u);
  // Groups remain separated by at least ~r after reduction.
  const double gap_ab = std::abs(reduction.points.At(10, 0) -
                                 reduction.points.At(0, 0));
  const double gap_bc = std::abs(reduction.points.At(20, 0) -
                                 reduction.points.At(10, 0));
  EXPECT_GT(gap_ab, reduction.box_side * 0.5);
  EXPECT_GT(gap_bc, reduction.box_side * 0.5);
}

TEST(SpreadPipelineTest, CrudeApproxFeedsReduceSpread) {
  // End-to-end Theorem 4.6 smoke: U from Crude-Approx produces a valid
  // spread reduction on a huge-spread instance.
  Rng rng(13);
  const Matrix points = GenerateSpreadDataset(2000, 40, rng);
  const CrudeApproxResult crude = CrudeApprox(points, 10, rng);
  ASSERT_GT(crude.upper_bound, 0.0);
  const SpreadReduction reduction =
      ReduceSpread(points, crude.upper_bound, 60.0, rng);
  EXPECT_EQ(reduction.points.rows(), points.rows());
  // The reduction never increases the bounding-box diagonal.
  EXPECT_LE(ComputeBoundingBox(reduction.points).Diagonal(),
            ComputeBoundingBox(points).Diagonal() * 1.001);
}

}  // namespace
}  // namespace fastcoreset
