// Tests for the public facade (src/api/fastcoreset.h): registry coverage,
// spec validation and the recoverable-error model, seed determinism
// (including thread invariance), and per-method option round-trips.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/fastcoreset.h"
#include "src/common/parallel.h"
#include "src/core/fast_coreset.h"
#include "src/core/welterweight_coreset.h"
#include "src/data/generators.h"

namespace fastcoreset {
namespace {

/// Small Gaussian mixture every registered method can digest.
Matrix TestMixture(size_t n = 400, size_t d = 6, size_t kappa = 4) {
  Rng rng(12345);
  return GenerateGaussianMixture(n, d, kappa, /*gamma=*/1.0, rng);
}

void ExpectBitIdentical(const Coreset& a, const Coreset& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  ASSERT_EQ(a.indices.size(), b.indices.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.indices[i], b.indices[i]) << label << " index row " << i;
    EXPECT_EQ(a.weights[i], b.weights[i]) << label << " weight row " << i;
    for (size_t j = 0; j < a.points.cols(); ++j) {
      EXPECT_EQ(a.points.At(i, j), b.points.At(i, j))
          << label << " point " << i << "," << j;
    }
  }
}

/// Scoped worker-count override (same pattern as determinism_test).
struct ThreadCountGuard {
  explicit ThreadCountGuard(size_t count) { SetNumThreads(count); }
  ~ThreadCountGuard() { ResetNumThreads(); }
};

api::CoresetSpec SmallSpec(const std::string& method, uint64_t seed = 7) {
  api::CoresetSpec spec;
  spec.method = method;
  spec.k = 4;
  spec.m = 60;
  spec.z = 2;
  spec.seed = seed;
  return spec;
}

TEST(RegistryTest, ListsSpectrumAndStreamingBuilders) {
  const std::vector<std::string> names = api::Registry::Instance().Names();
  for (const char* required :
       {"uniform", "lightweight", "welterweight", "sensitivity",
        "fast_coreset", "group_sampling", "bico", "stream_km"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), required) !=
                names.end())
        << "missing registry entry: " << required;
  }
}

TEST(RegistryTest, AliasesResolveToCanonicalAlgorithms) {
  auto& registry = api::Registry::Instance();
  EXPECT_EQ(registry.Get("fast").value()->Name(), "fast_coreset");
  EXPECT_EQ(registry.Get("group").value()->Name(), "group_sampling");
  EXPECT_EQ(registry.Get("streamkm").value()->Name(), "stream_km");
  EXPECT_TRUE(registry.Contains("fast"));
  // Aliases are not listed as names.
  const std::vector<std::string> names = registry.Names();
  EXPECT_TRUE(std::find(names.begin(), names.end(), "fast") == names.end());
}

TEST(RegistryTest, EveryRegisteredMethodBuildsAValidCoreset) {
  const Matrix points = TestMixture();
  for (const std::string& name : api::Registry::Instance().Names()) {
    const api::FcStatusOr<api::BuildResult> result =
        api::Build(SmallSpec(name), points);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    const Coreset& coreset = result->coreset;
    EXPECT_GT(coreset.size(), 0u) << name;
    EXPECT_EQ(coreset.points.cols(), points.cols()) << name;
    for (double w : coreset.weights) EXPECT_GE(w, 0.0) << name;
    // Unbiased weighting concentrates the total weight around n.
    EXPECT_NEAR(coreset.TotalWeight(), 400.0, 200.0) << name;

    const api::BuildDiagnostics& diag = result->diagnostics;
    EXPECT_EQ(diag.method, name);
    EXPECT_EQ(diag.input_rows, 400u) << name;
    EXPECT_EQ(diag.points_processed, 400u) << name;
    EXPECT_EQ(diag.bytes_processed, 400u * 6u * sizeof(double)) << name;
    EXPECT_EQ(diag.m_effective, 60u) << name;
    EXPECT_EQ(diag.output_rows, coreset.size()) << name;
    EXPECT_FALSE(diag.stages.empty()) << name;
    EXPECT_GE(diag.total_seconds, 0.0) << name;
    EXPECT_FALSE(diag.ToString().empty()) << name;
  }
}

TEST(RegistryTest, EveryRegisteredMethodIsSeedDeterministic) {
  const Matrix points = TestMixture();
  for (const std::string& name : api::Registry::Instance().Names()) {
    const Coreset first = api::Build(SmallSpec(name), points)->coreset;
    const Coreset second = api::Build(SmallSpec(name), points)->coreset;
    ExpectBitIdentical(first, second, name + " same-seed rebuild");
  }
}

TEST(RegistryTest, EveryRegisteredMethodIsThreadInvariant) {
  const Matrix points = TestMixture();
  for (const std::string& name : api::Registry::Instance().Names()) {
    Coreset serial, threaded;
    {
      ThreadCountGuard guard(1);
      serial = api::Build(SmallSpec(name), points)->coreset;
    }
    {
      ThreadCountGuard guard(4);
      threaded = api::Build(SmallSpec(name), points)->coreset;
    }
    ExpectBitIdentical(serial, threaded, name + " FC_THREADS 1 vs 4");
  }
}

TEST(ErrorModelTest, UnknownMethodIsNotFoundNotAbort) {
  const Matrix points = TestMixture(50);
  const auto result = api::Build(SmallSpec("no_such_method"), points);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), api::FcErrorCode::kNotFound);
  // The message names the registered methods, so a typo is self-serving.
  EXPECT_NE(result.status().message().find("fast_coreset"),
            std::string::npos);
}

TEST(ErrorModelTest, InvalidSpecsAreRejectedNotAborted) {
  const Matrix points = TestMixture(50);

  api::CoresetSpec bad_z = SmallSpec("uniform");
  bad_z.z = 3;
  EXPECT_EQ(api::Build(bad_z, points).status().code(),
            api::FcErrorCode::kInvalidArgument);

  api::CoresetSpec bad_k = SmallSpec("uniform");
  bad_k.k = 0;
  EXPECT_EQ(api::Build(bad_k, points).status().code(),
            api::FcErrorCode::kInvalidArgument);

  api::CoresetSpec bad_j = SmallSpec("welterweight");
  api::WelterweightOptions j_options;
  j_options.j = 100;  // > k = 4.
  bad_j.options = j_options;
  EXPECT_EQ(api::Build(bad_j, points).status().code(),
            api::FcErrorCode::kInvalidArgument);

  // The options tag must match the method — the old BuildCoreset(j = ...)
  // silently ignored j for four of five methods; now it is an error.
  api::CoresetSpec mismatched = SmallSpec("uniform");
  mismatched.options = api::WelterweightOptions{};
  const auto mismatch_result = api::Build(mismatched, points);
  ASSERT_FALSE(mismatch_result.ok());
  EXPECT_EQ(mismatch_result.status().code(),
            api::FcErrorCode::kInvalidArgument);

  api::CoresetSpec bico_median = SmallSpec("bico");
  bico_median.z = 1;
  EXPECT_EQ(api::Build(bico_median, points).status().code(),
            api::FcErrorCode::kInvalidArgument);

  api::CoresetSpec negative_weight = SmallSpec("uniform");
  negative_weight.weights.assign(points.rows(), 1.0);
  negative_weight.weights[3] = -1.0;
  EXPECT_EQ(api::Build(negative_weight, points).status().code(),
            api::FcErrorCode::kInvalidArgument);

  api::CoresetSpec short_weights = SmallSpec("uniform");
  short_weights.weights.assign(points.rows() - 1, 1.0);
  EXPECT_EQ(api::Build(short_weights, points).status().code(),
            api::FcErrorCode::kInvalidArgument);

  const Matrix empty(0, 0);
  EXPECT_EQ(api::Build(SmallSpec("uniform"), empty).status().code(),
            api::FcErrorCode::kInvalidArgument);

  // Spec-reachable values that used to reach internal FC_CHECK aborts.
  api::CoresetSpec big_eps = SmallSpec("group_sampling");
  api::GroupOptions group_options;
  group_options.eps = 9.0;  // Core requires eps < 8.
  big_eps.options = group_options;
  EXPECT_EQ(api::Build(big_eps, points).status().code(),
            api::FcErrorCode::kInvalidArgument);

  api::CoresetSpec zero_total = SmallSpec("lightweight");
  zero_total.weights.assign(points.rows(), 0.0);
  EXPECT_EQ(api::Build(zero_total, points).status().code(),
            api::FcErrorCode::kInvalidArgument);

  api::CoresetSpec bico_zero = SmallSpec("bico");
  bico_zero.weights.assign(points.rows(), 1.0);
  bico_zero.weights[7] = 0.0;  // The CF tree rejects massless points.
  EXPECT_EQ(api::Build(bico_zero, points).status().code(),
            api::FcErrorCode::kInvalidArgument);

  // ValidateSpec alone runs the same checks without building.
  EXPECT_FALSE(api::ValidateSpec(mismatched).ok());
  EXPECT_TRUE(api::ValidateSpec(SmallSpec("uniform")).ok());
}

TEST(SpecRoundTripTest, WelterweightJReachesTheSampler) {
  const Matrix points = TestMixture();
  const uint64_t seed = 99;

  api::CoresetSpec spec = SmallSpec("welterweight", seed);
  api::WelterweightOptions options;
  options.j = 3;
  spec.options = options;
  const api::BuildResult via_facade = api::Build(spec, points).value();
  EXPECT_EQ(via_facade.diagnostics.j_effective, 3u);

  // Round-trip: the facade's j = 3 build equals the direct call...
  Rng direct_rng(seed);
  const Coreset direct = WelterweightCoreset(points, {}, /*k=*/4, /*j=*/3,
                                             /*m=*/60, /*z=*/2, direct_rng);
  ExpectBitIdentical(via_facade.coreset, direct, "welterweight j=3");

  // ...and differs from the j = 1 build, so j demonstrably arrives.
  api::CoresetSpec one_spec = spec;
  api::WelterweightOptions one;
  one.j = 1;
  one_spec.options = one;
  const Coreset j_one = api::Build(one_spec, points)->coreset;
  Rng j_one_direct_rng(seed);
  const Coreset j_one_direct = WelterweightCoreset(
      points, {}, 4, 1, 60, 2, j_one_direct_rng);
  ExpectBitIdentical(j_one, j_one_direct, "welterweight j=1");
  bool any_difference = j_one.size() != via_facade.coreset.size();
  for (size_t i = 0; !any_difference && i < j_one.size(); ++i) {
    any_difference = j_one.indices[i] != via_facade.coreset.indices[i];
  }
  EXPECT_TRUE(any_difference) << "j=1 and j=3 built identical coresets";

  // Default j reports the paper's ceil(log2 k).
  const api::BuildResult defaulted =
      api::Build(SmallSpec("welterweight", seed), points).value();
  EXPECT_EQ(defaulted.diagnostics.j_effective, DefaultWelterweightJ(4));
}

TEST(SpecRoundTripTest, FastSpreadReductionReachesAlgorithmOne) {
  // A huge-spread instance: the regime Section 4 targets, where
  // Reduce-Spread genuinely reshapes the seeding proxy. (On a benign
  // mixture the reduced space can yield the same partition and an
  // identical sample, which would make the difference check vacuous.)
  Rng spread_rng(8);
  const Matrix points = GenerateSpreadDataset(400, /*r=*/20, spread_rng);
  const uint64_t seed = 41;

  api::CoresetSpec spec = SmallSpec("fast_coreset", seed);
  api::FastOptions options;
  options.use_jl = false;
  options.use_spread_reduction = true;
  spec.options = options;
  const Coreset via_facade = api::Build(spec, points)->coreset;

  FastCoresetOptions core;
  core.k = 4;
  core.m = 60;
  core.z = 2;
  core.use_jl = false;
  core.use_spread_reduction = true;
  Rng direct_rng(seed);
  const Coreset direct = FastCoreset(points, {}, core, direct_rng);
  ExpectBitIdentical(via_facade, direct, "fast_coreset spread reduction");

  // Spread reduction consumes rng (Crude-Approx) before seeding, so the
  // flag's arrival is observable against the default build.
  api::CoresetSpec plain_spec = SmallSpec("fast_coreset", seed);
  api::FastOptions plain;
  plain.use_jl = false;
  plain_spec.options = plain;
  const Coreset without = api::Build(plain_spec, points)->coreset;
  bool any_difference = without.size() != via_facade.size();
  for (size_t i = 0; !any_difference && i < without.size(); ++i) {
    any_difference = without.indices[i] != via_facade.indices[i];
  }
  EXPECT_TRUE(any_difference)
      << "use_spread_reduction did not change the build";
}

TEST(StreamingFacadeTest, BuildStreamingReportsComposition) {
  const Matrix points = TestMixture(600);
  api::CoresetSpec spec = SmallSpec("uniform", 17);
  const api::FcStatusOr<api::BuildResult> result =
      api::BuildStreaming(spec, points, /*block_size=*/100);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const api::BuildDiagnostics& diag = result->diagnostics;
  EXPECT_EQ(diag.stream_blocks, 6u);
  EXPECT_GT(diag.stream_reduce_ops, 0u);
  // Merge-&-reduce reprocesses rows: accounting must exceed the input.
  EXPECT_GT(diag.points_processed, 600u);
  EXPECT_NEAR(result->coreset.TotalWeight(), 600.0, 300.0);

  // Deterministic under the spec seed.
  const api::BuildResult again =
      api::BuildStreaming(spec, points, 100).value();
  ExpectBitIdentical(result->coreset, again.coreset, "streaming rebuild");

  EXPECT_EQ(api::BuildStreaming(spec, points, 0).status().code(),
            api::FcErrorCode::kInvalidArgument);
}

TEST(StreamingFacadeTest, MakeBuilderRejectsInvalidSpecsUpfront) {
  api::CoresetSpec bad = SmallSpec("stream_km");
  bad.z = 1;
  EXPECT_EQ(api::MakeBuilder(bad).status().code(),
            api::FcErrorCode::kInvalidArgument);
  EXPECT_EQ(api::MakeBuilder(SmallSpec("missing")).status().code(),
            api::FcErrorCode::kNotFound);
}

}  // namespace
}  // namespace fastcoreset
