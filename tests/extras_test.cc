// Tests for the second wave of extensions: parallel kernels, k-means||,
// AFK-MC^2, the weighted reservoir, and the quality report.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/fastcoreset.h"
#include "src/clustering/afkmc2.h"
#include "src/clustering/cost.h"
#include "src/clustering/kmeans_parallel.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/common/parallel.h"
#include "src/data/generators.h"
#include "src/eval/quality_report.h"
#include "src/geometry/distance.h"
#include "src/streaming/reservoir.h"

namespace fastcoreset {
namespace {

Matrix Blobs(size_t blobs, size_t per_blob, size_t d, Rng& rng,
             double box = 500.0) {
  Matrix points(blobs * per_blob, d);
  std::vector<double> center(d);
  size_t row_idx = 0;
  for (size_t b = 0; b < blobs; ++b) {
    for (double& x : center) x = rng.Uniform(0.0, box);
    for (size_t p = 0; p < per_blob; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) row[j] = center[j] + rng.NextGaussian();
    }
  }
  return points;
}

class ThreadGuard {
 public:
  explicit ThreadGuard(size_t n) { SetNumThreads(n); }
  ~ThreadGuard() { SetNumThreads(1); }
};

TEST(ParallelTest, ForCoversRangeExactlyOnce) {
  ThreadGuard guard(4);
  const size_t n = 100000;
  std::vector<int> hits(n, 0);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (size_t i = 0; i < n; i += 997) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelTest, ReduceMatchesSerialSum) {
  ThreadGuard guard(8);
  const size_t n = 50000;
  std::vector<double> xs(n);
  Rng rng(1);
  for (double& x : xs) x = rng.Uniform(0.0, 1.0);
  const double parallel = ParallelReduce(n, [&](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) partial += xs[i];
    return partial;
  });
  double serial = 0.0;
  for (double x : xs) serial += x;
  EXPECT_NEAR(parallel, serial, 1e-7 * serial);
}

TEST(ParallelTest, CostToCentersAgreesAcrossThreadCounts) {
  Rng rng(2);
  const Matrix points = Blobs(5, 400, 8, rng);
  const Matrix centers = Blobs(5, 1, 8, rng);
  SetNumThreads(1);
  const double serial = CostToCenters(points, {}, centers, 2);
  SetNumThreads(6);
  const double parallel = CostToCenters(points, {}, centers, 2);
  SetNumThreads(1);
  EXPECT_NEAR(parallel, serial, 1e-9 * serial);
}

TEST(ParallelTest, ZeroThreadsMeansHardwareConcurrency) {
  SetNumThreads(0);
  EXPECT_GE(GetNumThreads(), 1u);
  SetNumThreads(1);
}

TEST(KMeansParallelTest, RecoversSeparatedBlobs) {
  Rng rng(3);
  const Matrix points = Blobs(8, 150, 4, rng);
  KMeansParallelOptions options;
  const Clustering result = KMeansParallel(points, {}, 8, options, rng);
  EXPECT_EQ(result.centers.rows(), 8u);
  Rng ref_rng(4);
  const double reference = KMeansPlusPlus(points, {}, 8, 2, ref_rng).total_cost;
  EXPECT_LT(result.total_cost, 5.0 * reference);
}

TEST(KMeansParallelTest, AssignmentsAreNearest) {
  Rng rng(5);
  const Matrix points = Blobs(4, 100, 3, rng);
  KMeansParallelOptions options;
  const Clustering result = KMeansParallel(points, {}, 4, options, rng);
  for (size_t i = 0; i < points.rows(); ++i) {
    const NearestCenter nearest =
        FindNearestCenter(points.Row(i), result.centers);
    EXPECT_NEAR(result.point_costs[i], nearest.sq_dist, 1e-9);
  }
}

TEST(KMeansParallelTest, KMedianMode) {
  Rng rng(6);
  const Matrix points = Blobs(4, 100, 3, rng);
  KMeansParallelOptions options;
  options.z = 1;
  const Clustering result = KMeansParallel(points, {}, 4, options, rng);
  EXPECT_EQ(result.z, 1);
  EXPECT_GT(result.total_cost, 0.0);
}

TEST(Afkmc2Test, RecoversSeparatedBlobs) {
  Rng rng(7);
  const Matrix points = Blobs(6, 200, 4, rng);
  Afkmc2Options options;
  const Clustering result = Afkmc2(points, {}, 6, options, rng);
  EXPECT_EQ(result.centers.rows(), 6u);
  Rng ref_rng(8);
  const double reference = KMeansPlusPlus(points, {}, 6, 2, ref_rng).total_cost;
  EXPECT_LT(result.total_cost, 10.0 * reference);
}

TEST(Afkmc2Test, LongerChainsHelpOnAverage) {
  Rng data_rng(9);
  const Matrix points = Blobs(10, 100, 4, data_rng);
  auto mean_cost = [&](size_t chain) {
    double total = 0.0;
    for (int t = 0; t < 10; ++t) {
      Rng rng(100 + t);
      Afkmc2Options options;
      options.chain_length = chain;
      total += Afkmc2(points, {}, 10, options, rng).total_cost;
    }
    return total / 10.0;
  };
  // Chain length 1 is nearly proposal-only; 500 approximates true D^2.
  EXPECT_LT(mean_cost(500), 1.5 * mean_cost(1) + 1e-9);
}

TEST(Afkmc2Test, DuplicateHeavyInputDoesNotLoop) {
  Matrix points(100, 2);  // All identical.
  Rng rng(10);
  Afkmc2Options options;
  const Clustering result = Afkmc2(points, {}, 5, options, rng);
  EXPECT_GE(result.centers.rows(), 1u);
  EXPECT_NEAR(result.total_cost, 0.0, 1e-9);
}

TEST(ReservoirTest, HoldsAtMostCapacity) {
  Rng rng(11);
  WeightedReservoir reservoir(50, 3, &rng);
  Matrix batch(500, 3);
  for (double& x : batch.data()) x = rng.NextGaussian();
  reservoir.OfferAll(batch);
  EXPECT_EQ(reservoir.size(), 50u);
  EXPECT_NEAR(reservoir.StreamWeight(), 500.0, 1e-9);
  const Coreset coreset = reservoir.Extract();
  EXPECT_EQ(coreset.size(), 50u);
  EXPECT_NEAR(coreset.TotalWeight(), 500.0, 1e-6);
}

TEST(ReservoirTest, UnweightedInclusionIsUniform) {
  // Every stream position should appear with probability m/n.
  const size_t n = 2000, m = 100;
  std::vector<int> appearances(n, 0);
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    Rng rng(500 + t);
    WeightedReservoir reservoir(m, 1, &rng);
    Matrix stream(n, 1);
    for (size_t i = 0; i < n; ++i) stream.At(i, 0) = static_cast<double>(i);
    reservoir.OfferAll(stream);
    const Coreset coreset = reservoir.Extract();
    for (size_t idx : coreset.indices) ++appearances[idx];
  }
  // Expected appearances = trials * m / n = 15. Check first/middle/last
  // deciles are all close (no positional bias).
  auto decile_mean = [&](size_t begin) {
    double sum = 0.0;
    for (size_t i = begin; i < begin + n / 10; ++i) sum += appearances[i];
    return sum / (n / 10.0);
  };
  const double expected = trials * static_cast<double>(m) / n;
  EXPECT_NEAR(decile_mean(0), expected, 0.15 * expected);
  EXPECT_NEAR(decile_mean(n / 2), expected, 0.15 * expected);
  EXPECT_NEAR(decile_mean(n - n / 10), expected, 0.15 * expected);
}

TEST(ReservoirTest, HeavyWeightAlmostAlwaysKept) {
  int kept = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    Rng rng(900 + t);
    WeightedReservoir reservoir(10, 1, &rng);
    Matrix stream(500, 1);
    std::vector<double> weights(500, 1.0);
    stream.At(250, 0) = 42.0;
    weights[250] = 1e5;  // One overwhelmingly heavy item mid-stream.
    reservoir.OfferAll(stream, weights);
    const Coreset coreset = reservoir.Extract();
    for (size_t idx : coreset.indices) {
      if (idx == 250) {
        ++kept;
        break;
      }
    }
  }
  EXPECT_GT(kept, 195);
}

TEST(ReservoirTest, ShortStreamKeepsEverything) {
  Rng rng(12);
  WeightedReservoir reservoir(100, 2, &rng);
  Matrix stream(30, 2);
  reservoir.OfferAll(stream);
  EXPECT_EQ(reservoir.size(), 30u);
  const Coreset coreset = reservoir.Extract();
  EXPECT_NEAR(coreset.TotalWeight(), 30.0, 1e-9);
}

TEST(QualityReportTest, GoodCoresetPasses) {
  Rng rng(13);
  const Matrix points = Blobs(6, 300, 5, rng);
  api::CoresetSpec spec;
  spec.method = "fast_coreset";
  spec.k = 6;
  spec.m = 300;
  const Coreset coreset = api::Build(spec, points, {}, rng)->coreset;
  DistortionOptions options;
  options.k = 6;
  const QualityReport report =
      EvaluateCoreset(points, {}, coreset, options, 3, rng);
  EXPECT_TRUE(report.Passes()) << report.ToString();
  EXPECT_LT(report.weight_error, 0.2);
  EXPECT_EQ(report.clusters_covered, report.clusters_total);
  EXPECT_GE(report.multi_probe, report.distortion - 1e-12);
}

TEST(QualityReportTest, DroppedClusterFails) {
  Rng rng(14);
  const size_t n = 4000;
  Matrix points(n, 1);
  for (size_t i = 0; i < n - 30; ++i) points.At(i, 0) = rng.NextGaussian();
  for (size_t i = n - 30; i < n; ++i) points.At(i, 0) = 1e5;
  std::vector<size_t> rows(100);
  for (size_t i = 0; i < 100; ++i) rows[i] = i;
  Coreset bad;
  bad.indices = rows;
  bad.points = points.SelectRows(rows);
  bad.weights.assign(100, static_cast<double>(n) / 100.0);
  DistortionOptions options;
  options.k = 2;
  const QualityReport report =
      EvaluateCoreset(points, {}, bad, options, 3, rng);
  EXPECT_FALSE(report.Passes()) << report.ToString();
  EXPECT_LT(report.clusters_covered, report.clusters_total);
  EXPECT_EQ(report.min_cluster_mass, 0.0);
}

TEST(QualityReportTest, ToStringMentionsVerdict) {
  QualityReport report;
  report.distortion = 1.1;
  report.clusters_total = 3;
  report.clusters_covered = 3;
  EXPECT_NE(report.ToString().find("PASS"), std::string::npos);
  report.clusters_covered = 2;
  EXPECT_NE(report.ToString().find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace fastcoreset
