// Tests for src/clustering: cost, k-means++, Fast-kmeans++, Lloyd,
// k-median / Weiszfeld.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/clustering/cost.h"
#include "src/clustering/fast_kmeans_plus_plus.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/kmedian.h"
#include "src/clustering/lloyd.h"
#include "src/geometry/distance.h"

namespace fastcoreset {
namespace {

/// `blobs` well-separated unit-variance Gaussian blobs in d dims.
Matrix SeparatedBlobs(size_t blobs, size_t per_blob, size_t d, Rng& rng,
                      double separation = 100.0) {
  Matrix points(blobs * per_blob, d);
  std::vector<double> center(d);
  size_t row_idx = 0;
  for (size_t b = 0; b < blobs; ++b) {
    for (double& x : center) x = rng.Uniform(0.0, separation * blobs);
    for (size_t p = 0; p < per_blob; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) row[j] = center[j] + rng.NextGaussian();
    }
  }
  return points;
}

TEST(CostTest, CostToCentersHandMade) {
  Matrix points(2, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 4.0;
  Matrix centers(1, 1);
  centers.At(0, 0) = 1.0;
  EXPECT_NEAR(CostToCenters(points, {}, centers, 2), 1.0 + 9.0, 1e-12);
  EXPECT_NEAR(CostToCenters(points, {}, centers, 1), 1.0 + 3.0, 1e-12);
  EXPECT_NEAR(CostToCenters(points, {2.0, 1.0}, centers, 2), 2.0 + 9.0,
              1e-12);
}

TEST(CostTest, AssignmentCostAtLeastNearestCost) {
  Rng rng(1);
  Matrix points(20, 2);
  for (double& x : points.data()) x = rng.Uniform(0.0, 10.0);
  Matrix centers(3, 2);
  for (double& x : centers.data()) x = rng.Uniform(0.0, 10.0);
  // Deliberately bad assignment: everything to center 0.
  const std::vector<size_t> all_zero(20, 0);
  EXPECT_GE(AssignmentCost(points, {}, centers, all_zero, 2),
            CostToCenters(points, {}, centers, 2) - 1e-9);
}

TEST(CostTest, RefreshAssignmentComputesNearest) {
  Matrix points(3, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 10.0;
  points.At(2, 0) = 11.0;
  Clustering clustering;
  clustering.z = 2;
  clustering.centers = Matrix(2, 1);
  clustering.centers.At(0, 0) = 0.0;
  clustering.centers.At(1, 0) = 10.0;
  RefreshAssignment(points, {}, &clustering);
  EXPECT_EQ(clustering.assignment[0], 0u);
  EXPECT_EQ(clustering.assignment[1], 1u);
  EXPECT_EQ(clustering.assignment[2], 1u);
  EXPECT_NEAR(clustering.total_cost, 1.0, 1e-12);
}

TEST(KMeansPlusPlusTest, RecoverSeparatedBlobs) {
  Rng rng(2);
  const Matrix points = SeparatedBlobs(5, 100, 3, rng);
  const Clustering result = KMeansPlusPlus(points, {}, 5, 2, rng);
  EXPECT_EQ(result.centers.rows(), 5u);
  // With separation 500 >> intra-blob sigma 1, cost should be ~ n * d.
  EXPECT_LT(result.total_cost, 500.0 * 3 * 20.0);
  // Every blob got a center: max point cost stays intra-blob.
  for (double c : result.point_costs) EXPECT_LT(c, 200.0);
}

TEST(KMeansPlusPlusTest, AssignmentIsNearestCenter) {
  Rng rng(3);
  const Matrix points = SeparatedBlobs(3, 50, 2, rng);
  const Clustering result = KMeansPlusPlus(points, {}, 3, 2, rng);
  for (size_t i = 0; i < points.rows(); ++i) {
    const NearestCenter nearest =
        FindNearestCenter(points.Row(i), result.centers);
    EXPECT_NEAR(result.point_costs[i], nearest.sq_dist, 1e-9);
  }
}

TEST(KMeansPlusPlusTest, KGreaterThanNReturnsAllPoints) {
  Rng rng(4);
  Matrix points(4, 2);
  for (double& x : points.data()) x = rng.Uniform(0.0, 1.0);
  const Clustering result = KMeansPlusPlus(points, {}, 10, 2, rng);
  EXPECT_EQ(result.centers.rows(), 4u);
  EXPECT_NEAR(result.total_cost, 0.0, 1e-9);
}

TEST(KMeansPlusPlusTest, AllDuplicatePointsYieldDistinctIndexCenters) {
  // k == n with every point identical: the D^z mass is zero after the
  // first draw, so every remaining center comes from the fallback. It
  // must pick k distinct indices (k centers, cost 0) without spinning.
  Matrix points(3, 2);
  for (double& x : points.data()) x = 7.0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Clustering result = KMeansPlusPlus(points, {}, 3, 2, rng);
    EXPECT_EQ(result.centers.rows(), 3u);
    EXPECT_NEAR(result.total_cost, 0.0, 1e-12);
  }
}

TEST(KMeansPlusPlusTest, ZeroMassFallbackDoesNotRedrawChosenCenter) {
  // Regression: {a, a, a, b} with k = 3. After {a, b} are chosen the
  // remaining mass is zero and the third center comes from the fallback,
  // which used to draw over *all* indices — re-picking b's index with
  // probability 1/4 and emitting the unique point b as a duplicate
  // center. Excluding chosen indices, b can appear exactly once.
  Matrix points(4, 2);
  points.At(3, 0) = 5.0;
  points.At(3, 1) = 5.0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const Clustering result = KMeansPlusPlus(points, {}, 3, 2, rng);
    ASSERT_EQ(result.centers.rows(), 3u);
    int b_rows = 0;
    for (size_t c = 0; c < 3; ++c) {
      if (result.centers.At(c, 0) == 5.0) ++b_rows;
    }
    EXPECT_EQ(b_rows, 1) << "seed " << seed;
    EXPECT_NEAR(result.total_cost, 0.0, 1e-12);
  }
}

TEST(KMeansPlusPlusTest, WeightsBiasSeeding) {
  // Two distant locations; one has overwhelming weight. The first center
  // lands there almost surely.
  Matrix points(2, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 100.0;
  int first_heavy = 0;
  for (int t = 0; t < 200; ++t) {
    Rng rng(500 + t);
    const Clustering result =
        KMeansPlusPlus(points, {1e6, 1.0}, 1, 2, rng);
    if (std::abs(result.centers.At(0, 0)) < 1.0) ++first_heavy;
  }
  EXPECT_GT(first_heavy, 195);
}

TEST(KMeansPlusPlusTest, KMedianVariantRuns) {
  Rng rng(5);
  const Matrix points = SeparatedBlobs(4, 50, 2, rng);
  const Clustering result = KMeansPlusPlus(points, {}, 4, 1, rng);
  EXPECT_EQ(result.z, 1);
  EXPECT_EQ(result.centers.rows(), 4u);
  for (double c : result.point_costs) EXPECT_LT(c, 50.0);  // dist, not sq.
}

// D^2 seeding is an O(log k) approximation in expectation; check a crude
// constant-factor version against a planted optimal on easy data.
TEST(KMeansPlusPlusTest, CostWithinLogFactorOfPlanted) {
  Rng rng(6);
  const size_t blobs = 8, per = 80, d = 4;
  const Matrix points = SeparatedBlobs(blobs, per, d, rng);
  // Planted solution: blob means.
  Matrix planted(blobs, d);
  for (size_t b = 0; b < blobs; ++b) {
    std::vector<size_t> rows(per);
    for (size_t p = 0; p < per; ++p) rows[p] = b * per + p;
    const Matrix blob = points.SelectRows(rows);
    const auto mean = blob.ColumnMeans();
    for (size_t j = 0; j < d; ++j) planted.At(b, j) = mean[j];
  }
  const double planted_cost = CostToCenters(points, {}, planted, 2);

  double total = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng trial_rng(700 + t);
    total += KMeansPlusPlus(points, {}, blobs, 2, trial_rng).total_cost;
  }
  EXPECT_LT(total / trials, 30.0 * planted_cost);
}

TEST(FastKMeansPlusPlusTest, ProducesValidAssignments) {
  Rng rng(7);
  const Matrix points = SeparatedBlobs(5, 100, 3, rng);
  FastKMeansPlusPlusOptions options;
  const Clustering result = FastKMeansPlusPlus(points, {}, 5, options, rng);
  EXPECT_EQ(result.centers.rows(), 5u);
  ASSERT_EQ(result.assignment.size(), points.rows());
  for (size_t i = 0; i < points.rows(); ++i) {
    ASSERT_LT(result.assignment[i], result.centers.rows());
    EXPECT_NEAR(result.point_costs[i],
                SquaredL2(points.Row(i),
                          result.centers.Row(result.assignment[i])),
                1e-9);
  }
}

TEST(FastKMeansPlusPlusTest, CostComparableToStandardSeeding) {
  Rng rng(8);
  const Matrix points = SeparatedBlobs(10, 100, 3, rng);
  double fast_total = 0.0, std_total = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    Rng fast_rng(800 + t), std_rng(900 + t);
    FastKMeansPlusPlusOptions options;
    fast_total +=
        FastKMeansPlusPlus(points, {}, 10, options, fast_rng).total_cost;
    std_total += KMeansPlusPlus(points, {}, 10, 2, std_rng).total_cost;
  }
  // Tree-metric seeding pays an O(d^z log k) style factor after dimension
  // reduction, i.e. roughly d * log Δ * log k here (d = 3, log Δ ~ 20,
  // log k ~ 3); we cap at a generous constant times that envelope.
  EXPECT_LT(fast_total, 500.0 * std_total + 1e-9);
}

TEST(FastKMeansPlusPlusTest, FewerDistinctPointsThanK) {
  Matrix points(6, 2);  // Three distinct locations, duplicated.
  for (int i = 0; i < 3; ++i) {
    points.At(2 * i, 0) = 10.0 * i;
    points.At(2 * i + 1, 0) = 10.0 * i;
  }
  Rng rng(9);
  FastKMeansPlusPlusOptions options;
  options.max_depth = 20;  // Duplicates share leaves at max depth.
  const Clustering result = FastKMeansPlusPlus(points, {}, 6, options, rng);
  EXPECT_LE(result.centers.rows(), 6u);
  EXPECT_GE(result.centers.rows(), 3u);
  EXPECT_LT(result.total_cost, 1e-6);
}

TEST(FastKMeansPlusPlusTest, DuplicatedPointsNeverYieldDuplicateCenters) {
  // Regression companion to the FenwickTree zero-mass fix: with heavy
  // exact duplication, a covered point sampled through float drift used
  // to be accepted as a center, silently duplicating an existing one
  // while uncovered points remained. Three distinct locations, each
  // duplicated five-fold, k = 3: the seeder must return three *distinct*
  // centers every time.
  Matrix points(15, 2);
  for (size_t g = 0; g < 3; ++g) {
    for (size_t r = 0; r < 5; ++r) {
      points.At(g * 5 + r, 0) = static_cast<double>(g) * 10.0;
      points.At(g * 5 + r, 1) = 1.0;
    }
  }
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const Clustering result =
        FastKMeansPlusPlus(points, {}, 3, FastKMeansPlusPlusOptions{}, rng);
    ASSERT_EQ(result.centers.rows(), 3u);
    std::set<double> xs;
    for (size_t c = 0; c < 3; ++c) xs.insert(result.centers.At(c, 0));
    EXPECT_EQ(xs.size(), 3u) << "seed " << seed;
    EXPECT_NEAR(result.total_cost, 0.0, 1e-12);
  }
}

TEST(FastKMeansPlusPlusTest, KMedianModeUsesPlainDistances) {
  Rng rng(10);
  const Matrix points = SeparatedBlobs(4, 60, 2, rng);
  FastKMeansPlusPlusOptions options;
  options.z = 1;
  const Clustering result = FastKMeansPlusPlus(points, {}, 4, options, rng);
  EXPECT_EQ(result.z, 1);
  for (size_t i = 0; i < points.rows(); ++i) {
    EXPECT_NEAR(result.point_costs[i],
                L2(points.Row(i), result.centers.Row(result.assignment[i])),
                1e-9);
  }
}

TEST(FastKMeansPlusPlusTest, RejectionSamplingOffStillWorks) {
  Rng rng(11);
  const Matrix points = SeparatedBlobs(6, 50, 2, rng);
  FastKMeansPlusPlusOptions options;
  options.rejection_sampling = false;
  const Clustering result = FastKMeansPlusPlus(points, {}, 6, options, rng);
  EXPECT_EQ(result.centers.rows(), 6u);
  EXPECT_GT(result.total_cost, 0.0);
}

TEST(FastKMeansPlusPlusTest, WeightedSeedingFavoursHeavyRegions) {
  // 100 light points at x=0, 1 heavy point at x=1000 with weight 1e6.
  Matrix points(101, 1);
  std::vector<double> weights(101, 1.0);
  points.At(100, 0) = 1000.0;
  weights[100] = 1e6;
  int heavy_first = 0;
  for (int t = 0; t < 50; ++t) {
    Rng rng(1100 + t);
    FastKMeansPlusPlusOptions options;
    const Clustering result =
        FastKMeansPlusPlus(points, weights, 1, options, rng);
    if (result.centers.At(0, 0) > 500.0) ++heavy_first;
  }
  EXPECT_GT(heavy_first, 45);
}

TEST(LloydTest, CostMonotoneNonIncreasing) {
  Rng rng(12);
  const Matrix points = SeparatedBlobs(4, 100, 3, rng);
  const Clustering seed = KMeansPlusPlus(points, {}, 4, 2, rng);
  LloydOptions options;
  options.max_iters = 10;
  const Clustering refined = LloydKMeans(points, {}, seed.centers, options);
  EXPECT_LE(refined.total_cost, seed.total_cost + 1e-9);
}

TEST(LloydTest, ConvergesToBlobMeansOnEasyData) {
  Rng rng(13);
  const Matrix points = SeparatedBlobs(3, 200, 2, rng);
  const Clustering seed = KMeansPlusPlus(points, {}, 3, 2, rng);
  const Clustering refined = LloydKMeans(points, {}, seed.centers);
  // Optimal cost ~ n * d * sigma^2 = 600 * 2; allow generous slack.
  EXPECT_LT(refined.total_cost, 3.0 * 600.0 * 2.0);
}

TEST(LloydTest, WeightedCentroids) {
  // Two points, weight 3 at x=0 and weight 1 at x=4: 1-means center at 1.
  Matrix points(2, 1);
  points.At(1, 0) = 4.0;
  Matrix init(1, 1);
  init.At(0, 0) = 2.0;
  const Clustering result = LloydKMeans(points, {3.0, 1.0}, init);
  EXPECT_NEAR(result.centers.At(0, 0), 1.0, 1e-9);
}

TEST(LloydTest, EmptyClusterReseeded) {
  Rng rng(14);
  const Matrix points = SeparatedBlobs(2, 100, 2, rng);
  // Three centers, two stacked far away: one will start empty.
  Matrix init(3, 2);
  for (size_t j = 0; j < 2; ++j) {
    init.At(0, j) = points.At(0, j);
    init.At(1, j) = 1e6;
    init.At(2, j) = 1e6;
  }
  const Clustering result = LloydKMeans(points, {}, init);
  // All centers ended up used or harmless; cost must be small since k=3
  // suffices for 2 blobs.
  EXPECT_LT(result.total_cost, 100.0 * 2.0 * 2.0 * 10.0);
}

TEST(WeiszfeldTest, MedianOfSymmetricPointsIsCenter) {
  Matrix points(4, 2);
  points.At(0, 0) = 1.0;
  points.At(1, 0) = -1.0;
  points.At(2, 1) = 1.0;
  points.At(3, 1) = -1.0;
  const auto median = GeometricMedian(points, {}, {0, 1, 2, 3});
  EXPECT_NEAR(median[0], 0.0, 1e-5);
  EXPECT_NEAR(median[1], 0.0, 1e-5);
}

TEST(WeiszfeldTest, MedianRobustToOutlierUnlikeMean) {
  // 9 points at 0, 1 point at 100: median stays near 0, mean at 10.
  Matrix points(10, 1);
  points.At(9, 0) = 100.0;
  std::vector<size_t> all(10);
  for (size_t i = 0; i < 10; ++i) all[i] = i;
  const auto median = GeometricMedian(points, {}, all, /*max_iters=*/100);
  EXPECT_LT(std::abs(median[0]), 1.0);
}

TEST(WeiszfeldTest, WeightsShiftTheMedian) {
  Matrix points(2, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 10.0;
  // Heavier weight on the right point pulls the median (for two points the
  // geometric median sits at the heavier point).
  const auto median = GeometricMedian(points, {1.0, 5.0}, {0, 1}, 200);
  EXPECT_GT(median[0], 8.0);
}

TEST(KMedianTest, CostMonotoneAndAssignmentsValid) {
  Rng rng(15);
  const Matrix points = SeparatedBlobs(4, 80, 2, rng);
  const Clustering seed = KMeansPlusPlus(points, {}, 4, 1, rng);
  const Clustering refined = LloydKMedian(points, {}, seed.centers);
  EXPECT_EQ(refined.z, 1);
  EXPECT_LE(refined.total_cost, seed.total_cost + 1e-9);
  for (size_t a : refined.assignment) EXPECT_LT(a, 4u);
}

}  // namespace
}  // namespace fastcoreset
