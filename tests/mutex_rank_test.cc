// Dynamic cross-check of the PR 9 lock-rank hierarchy (src/common/mutex.h):
// ordered acquisition must be silent, an inversion must abort — but only
// in builds where FC_MUTEX_RANK_CHECKS is compiled in (assert-enabled or
// sanitizer builds; release builds discard the ranks entirely).

#include <gtest/gtest.h>

#include "src/common/mutex.h"

// Death tests fork; under TSan the forked child inherits a runtime whose
// background threads did not survive the fork and can hang, so the
// inversion test is exercised by the plain debug and ASan suites instead.
#if defined(__SANITIZE_THREAD__)
#define FC_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FC_TEST_UNDER_TSAN 1
#endif
#endif
#ifndef FC_TEST_UNDER_TSAN
#define FC_TEST_UNDER_TSAN 0
#endif

namespace fastcoreset {
namespace {

TEST(MutexRankTest, OrderedNestingIsSilent) {
  Mutex outer{lock_rank::kServiceScheduler};
  Mutex inner{lock_rank::kPoolDispatch};
  MutexLock hold_outer(outer);
  MutexLock hold_inner(inner);
  SUCCEED();
}

TEST(MutexRankTest, FullTierChainInOrderIsSilent) {
  Mutex scheduler{lock_rank::kServiceScheduler};
  Mutex store{lock_rank::kDatasetStore};
  Mutex cache{lock_rank::kCoresetCache};
  Mutex registry{lock_rank::kRegistry};
  Mutex graph{lock_rank::kTaskGraph};
  Mutex pool{lock_rank::kPoolDispatch};
  MutexLock l1(scheduler);
  MutexLock l2(store);
  MutexLock l3(cache);
  MutexLock l4(registry);
  MutexLock l5(graph);
  MutexLock l6(pool);
  SUCCEED();
}

TEST(MutexRankTest, UnrankedMutexesAreExempt) {
  // Default-constructed (rank 0) mutexes opt out: tests and short-lived
  // locals may nest freely in any order. Static storage so the reversed
  // acquisition order cannot alias the stack slots of another test's
  // mutexes in TSan's per-address deadlock graph.
  static Mutex a;
  static Mutex b;
  MutexLock hold_b(b);
  MutexLock hold_a(a);
  SUCCEED();
}

TEST(MutexRankTest, SequentialReacquisitionIsSilent) {
  // Lock-release-lock of the same ranked mutex must not trip the check:
  // the first hold is popped before the second acquisition.
  Mutex graph{lock_rank::kTaskGraph};
  {
    MutexLock hold(graph);
  }
  MutexLock hold_again(graph);
  SUCCEED();
}

TEST(MutexRankDeathTest, InversionAborts) {
#if FC_MUTEX_RANK_CHECKS && !FC_TEST_UNDER_TSAN
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Mutex inner{lock_rank::kPoolDispatch};
        Mutex outer{lock_rank::kServiceScheduler};
        MutexLock hold_inner(inner);
        MutexLock hold_outer(outer);
      },
      "lock-rank inversion");
#else
  GTEST_SKIP() << "rank checks compiled out (release) or running under "
                  "TSan (death tests fork)";
#endif
}

TEST(MutexRankDeathTest, EqualRankNestingAborts) {
#if FC_MUTEX_RANK_CHECKS && !FC_TEST_UNDER_TSAN
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Mutex first{lock_rank::kTaskGraph};
        Mutex second{lock_rank::kTaskGraph};
        MutexLock hold_first(first);
        MutexLock hold_second(second);
      },
      "lock-rank inversion");
#else
  GTEST_SKIP() << "rank checks compiled out (release) or running under "
                  "TSan (death tests fork)";
#endif
}

}  // namespace
}  // namespace fastcoreset
