// Tests for src/common: rng, fenwick tree, stats, table printer, env.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/env.h"
#include "src/common/fenwick_tree.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"

namespace fastcoreset {
namespace {

TEST(RngTest, DeterministicAcrossReseed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  a.Reseed(42);
  Rng c(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), c.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextIndexBoundsAndCoverage) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.NextIndex(10);
    EXPECT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values hit over 1000 draws.
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, SampleDiscreteMatchesWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsAPermutationPrefix) {
  Rng rng(17);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(FenwickTest, PrefixSumsMatchBruteForce) {
  Rng rng(23);
  const size_t n = 257;
  FenwickTree tree(n);
  std::vector<double> reference(n, 0.0);
  for (int round = 0; round < 500; ++round) {
    const size_t i = rng.NextIndex(n);
    const double v = rng.NextDouble() * 10.0;
    tree.Set(i, v);
    reference[i] = v;
  }
  double acc = 0.0;
  for (size_t i = 0; i <= n; ++i) {
    EXPECT_NEAR(tree.PrefixSum(i), acc, 1e-9);
    if (i < n) acc += reference[i];
  }
}

TEST(FenwickTest, UpperBoundFindsCorrectSlot) {
  FenwickTree tree(4);
  tree.Set(0, 1.0);
  tree.Set(1, 0.0);
  tree.Set(2, 2.0);
  tree.Set(3, 1.0);
  EXPECT_EQ(tree.UpperBound(0.5), 0u);
  EXPECT_EQ(tree.UpperBound(1.5), 2u);  // Skips the zero-weight slot.
  EXPECT_EQ(tree.UpperBound(2.9), 2u);
  EXPECT_EQ(tree.UpperBound(3.5), 3u);
}

TEST(FenwickTest, UpperBoundDriftNeverLandsOnZeroMassSlot) {
  // Regression: a target that drifts to (or past) Total() used to be
  // clamped onto the *last slot* even when that slot held zero mass,
  // returning an index the distribution gives probability zero — in
  // Fast-kmeans++ that is a covered point accepted as a duplicate center.
  FenwickTree tree(2);
  tree.Set(0, 1.0);
  tree.Set(1, 0.0);
  EXPECT_EQ(tree.UpperBound(1.0), 0u);  // target == Total(), zero tail.
  EXPECT_EQ(tree.UpperBound(1.5), 0u);  // past Total().

  // Longer zero-mass tail (the common shape: covered suffix).
  FenwickTree tail(5);
  tail.Set(0, 0.5);
  tail.Set(1, 2.5);
  for (size_t i = 2; i < 5; ++i) tail.Set(i, 0.0);
  EXPECT_EQ(tail.UpperBound(3.0), 1u);
  EXPECT_EQ(tail.UpperBound(100.0), 1u);
}

TEST(FenwickTest, UpperBoundZeroPrefixFallsForward) {
  // All mass behind the landing slot is zero: the only valid answer is
  // ahead of it.
  FenwickTree tree(4);
  tree.Set(0, 0.0);
  tree.Set(1, 0.0);
  tree.Set(2, 0.0);
  tree.Set(3, 4.0);
  EXPECT_EQ(tree.UpperBound(0.0), 3u);
  EXPECT_EQ(tree.UpperBound(3.9), 3u);
}

TEST(FenwickTest, SampleProportionalToWeights) {
  Rng rng(29);
  FenwickTree tree(3);
  tree.Set(0, 2.0);
  tree.Set(1, 0.0);
  tree.Set(2, 6.0);
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[tree.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
}

TEST(FenwickTest, SetOverwritesNotAccumulates) {
  FenwickTree tree(2);
  tree.Set(0, 5.0);
  tree.Set(0, 1.0);
  EXPECT_NEAR(tree.Total(), 1.0, 1e-12);
  EXPECT_NEAR(tree.Get(0), 1.0, 1e-12);
}

TEST(StatsTest, RunningStatMeanVariance) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_NEAR(stat.Mean(), 5.0, 1e-12);
  EXPECT_NEAR(stat.Variance(), 4.0, 1e-12);
  EXPECT_EQ(stat.Count(), 8u);
  EXPECT_EQ(stat.Min(), 2.0);
  EXPECT_EQ(stat.Max(), 9.0);
}

TEST(StatsTest, VectorHelpersMatchRunningStat) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 10.0};
  RunningStat stat;
  for (double x : xs) stat.Add(x);
  EXPECT_NEAR(Mean(xs), stat.Mean(), 1e-12);
  EXPECT_NEAR(Variance(xs), stat.Variance(), 1e-12);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
  RunningStat stat;
  EXPECT_EQ(stat.Mean(), 0.0);
  EXPECT_EQ(stat.Variance(), 0.0);
}

TEST(TablePrinterTest, AlignsColumnsAndPadsShortRows) {
  TablePrinter table;
  table.SetHeader({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsCompactly) {
  EXPECT_EQ(TablePrinter::Num(1.0), "1");
  EXPECT_EQ(TablePrinter::Num(614.2, 3), "614.2");
  const std::string big = TablePrinter::Num(3.2e9, 2);
  EXPECT_NE(big.find("e"), std::string::npos);
}

TEST(TablePrinterTest, MeanVarUsesPlusMinus) {
  const std::string s = TablePrinter::MeanVar(1.07, 0.0);
  EXPECT_NE(s.find("±"), std::string::npos);
}

TEST(EnvTest, FallbacksAndParsing) {
  ::unsetenv("FC_TEST_ENV_VAR");
  EXPECT_EQ(EnvInt("FC_TEST_ENV_VAR", 7), 7);
  EXPECT_EQ(EnvDouble("FC_TEST_ENV_VAR", 1.5), 1.5);
  ::setenv("FC_TEST_ENV_VAR", "42", 1);
  EXPECT_EQ(EnvInt("FC_TEST_ENV_VAR", 7), 42);
  ::setenv("FC_TEST_ENV_VAR", "2.25", 1);
  EXPECT_EQ(EnvDouble("FC_TEST_ENV_VAR", 1.5), 2.25);
  ::setenv("FC_TEST_ENV_VAR", "not-a-number", 1);
  EXPECT_EQ(EnvInt("FC_TEST_ENV_VAR", 7), 7);
  ::unsetenv("FC_TEST_ENV_VAR");
}

}  // namespace
}  // namespace fastcoreset
