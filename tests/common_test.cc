// Tests for src/common: rng, fenwick tree, stats, table printer, env.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/discrete_distribution.h"
#include "src/common/env.h"
#include "src/common/fenwick_tree.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table_printer.h"

namespace fastcoreset {
namespace {

TEST(RngTest, DeterministicAcrossReseed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  a.Reseed(42);
  Rng c(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), c.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextIndexBoundsAndCoverage) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.NextIndex(10);
    EXPECT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // All values hit over 1000 draws.
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, SampleDiscreteMatchesWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsAPermutationPrefix) {
  Rng rng(17);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(19);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(FenwickTest, PrefixSumsMatchBruteForce) {
  Rng rng(23);
  const size_t n = 257;
  FenwickTree tree(n);
  std::vector<double> reference(n, 0.0);
  for (int round = 0; round < 500; ++round) {
    const size_t i = rng.NextIndex(n);
    const double v = rng.NextDouble() * 10.0;
    tree.Set(i, v);
    reference[i] = v;
  }
  double acc = 0.0;
  for (size_t i = 0; i <= n; ++i) {
    EXPECT_NEAR(tree.PrefixSum(i), acc, 1e-9);
    if (i < n) acc += reference[i];
  }
}

TEST(FenwickTest, UpperBoundFindsCorrectSlot) {
  FenwickTree tree(4);
  tree.Set(0, 1.0);
  tree.Set(1, 0.0);
  tree.Set(2, 2.0);
  tree.Set(3, 1.0);
  EXPECT_EQ(tree.UpperBound(0.5), 0u);
  EXPECT_EQ(tree.UpperBound(1.5), 2u);  // Skips the zero-weight slot.
  EXPECT_EQ(tree.UpperBound(2.9), 2u);
  EXPECT_EQ(tree.UpperBound(3.5), 3u);
}

TEST(FenwickTest, UpperBoundDriftNeverLandsOnZeroMassSlot) {
  // Regression: a target that drifts to (or past) Total() used to be
  // clamped onto the *last slot* even when that slot held zero mass,
  // returning an index the distribution gives probability zero — in
  // Fast-kmeans++ that is a covered point accepted as a duplicate center.
  FenwickTree tree(2);
  tree.Set(0, 1.0);
  tree.Set(1, 0.0);
  EXPECT_EQ(tree.UpperBound(1.0), 0u);  // target == Total(), zero tail.
  EXPECT_EQ(tree.UpperBound(1.5), 0u);  // past Total().

  // Longer zero-mass tail (the common shape: covered suffix).
  FenwickTree tail(5);
  tail.Set(0, 0.5);
  tail.Set(1, 2.5);
  for (size_t i = 2; i < 5; ++i) tail.Set(i, 0.0);
  EXPECT_EQ(tail.UpperBound(3.0), 1u);
  EXPECT_EQ(tail.UpperBound(100.0), 1u);
}

TEST(FenwickTest, UpperBoundZeroPrefixFallsForward) {
  // All mass behind the landing slot is zero: the only valid answer is
  // ahead of it.
  FenwickTree tree(4);
  tree.Set(0, 0.0);
  tree.Set(1, 0.0);
  tree.Set(2, 0.0);
  tree.Set(3, 4.0);
  EXPECT_EQ(tree.UpperBound(0.0), 3u);
  EXPECT_EQ(tree.UpperBound(3.9), 3u);
}

TEST(FenwickTest, SampleProportionalToWeights) {
  Rng rng(29);
  FenwickTree tree(3);
  tree.Set(0, 2.0);
  tree.Set(1, 0.0);
  tree.Set(2, 6.0);
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[tree.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
}

TEST(FenwickTest, SetOverwritesNotAccumulates) {
  FenwickTree tree(2);
  tree.Set(0, 5.0);
  tree.Set(0, 1.0);
  EXPECT_NEAR(tree.Total(), 1.0, 1e-12);
  EXPECT_NEAR(tree.Get(0), 1.0, 1e-12);
}

TEST(FenwickTest, BulkBuildMatchesRepeatedSet) {
  Rng rng(31);
  const size_t n = 513;  // Off power-of-two to exercise the last level.
  std::vector<double> values(n);
  for (double& v : values) v = rng.NextDouble() * 3.0;
  const FenwickTree bulk(values);
  FenwickTree incremental(n);
  for (size_t i = 0; i < n; ++i) incremental.Set(i, values[i]);
  ASSERT_EQ(bulk.size(), n);
  for (size_t i = 0; i <= n; ++i) {
    EXPECT_NEAR(bulk.PrefixSum(i), incremental.PrefixSum(i), 1e-9);
  }
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(bulk.Get(i), values[i]);
}

TEST(FenwickTest, AssignReplacesExistingMass) {
  FenwickTree tree(size_t{3});
  tree.Set(0, 7.0);
  tree.Assign({1.0, 2.0, 3.0});
  EXPECT_NEAR(tree.Total(), 6.0, 1e-12);
  EXPECT_NEAR(tree.PrefixSum(2), 3.0, 1e-12);
  tree.Assign({4.0, 0.0, 0.0, 0.0, 1.0});  // Resizes too.
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_NEAR(tree.Total(), 5.0, 1e-12);
}

TEST(RngTest, SampleDiscreteWithPrecomputedTotalMatchesDistribution) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.SampleDiscrete(weights, 4.0)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleDiscreteOverloadsConsumeIdenticalRngState) {
  // The total-taking overload must draw exactly like the summing one so
  // callers can switch without perturbing seeded experiment streams.
  const std::vector<double> weights = {0.5, 1.5, 0.0, 2.0};
  Rng summing(41), precomputed(41);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(summing.SampleDiscrete(weights),
              precomputed.SampleDiscrete(weights, 4.0));
  }
}

TEST(DiscreteDistributionTest, SampleMatchesWeights) {
  Rng rng(43);
  const DiscreteDistribution dist(std::vector<double>{2.0, 0.0, 6.0});
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(DiscreteDistributionTest, IncrementalSetTracksEvolvingMass) {
  // The k-means++ pattern: masses only ever shrink as centers cover
  // points; retired slots must become unsampleable immediately.
  Rng rng(47);
  DiscreteDistribution dist(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(dist.Total(), 10.0, 1e-12);
  dist.Set(3, 0.0);  // "Chosen center": mass retires.
  dist.Set(1, 0.5);  // Improved min-distance.
  EXPECT_NEAR(dist.Total(), 4.5, 1e-12);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(dist.Sample(rng), 3u);
}

TEST(DiscreteDistributionTest, AssignReusesStorageAcrossRounds) {
  DiscreteDistribution dist;
  EXPECT_EQ(dist.size(), 0u);
  dist.Assign({1.0, 1.0});
  EXPECT_EQ(dist.size(), 2u);
  dist.Assign({0.0, 5.0, 0.0});
  EXPECT_EQ(dist.size(), 3u);
  Rng rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.Sample(rng), 1u);
  dist.Reset(4);
  EXPECT_EQ(dist.size(), 4u);
  EXPECT_EQ(dist.Total(), 0.0);
}

TEST(DiscreteDistributionTest, BulkBuildSamplingAgreesWithLinearScan) {
  // The Fenwick draw and Rng::SampleDiscrete walk the same cumulative
  // distribution; over a shared RNG stream they must pick identical slots
  // (both map target = u * total through the same prefix sums).
  Rng fenwick_rng(59), linear_rng(59);
  std::vector<double> weights(257);
  Rng wrng(61);
  for (double& w : weights) {
    w = wrng.NextDouble() < 0.2 ? 0.0 : wrng.NextDouble();
  }
  weights[0] = 0.0;  // Zero-mass prefix and suffix edge cases.
  weights.back() = 0.0;
  const DiscreteDistribution dist(weights);
  double total = 0.0;
  for (double w : weights) total += w;
  int disagreements = 0;
  for (int i = 0; i < 5000; ++i) {
    const size_t a = dist.Sample(fenwick_rng);
    const size_t b = linear_rng.SampleDiscrete(weights, dist.Total());
    // Identical up to boundary rounding: the Fenwick prefix sums round
    // differently from the serial sweep, so a target landing within one
    // ulp of a slot boundary may resolve to the neighbouring positive
    // slot. Anything more than a hair apart is a real bug.
    if (a != b) ++disagreements;
  }
  EXPECT_LE(disagreements, 5);
  (void)total;
}

TEST(StatsTest, RunningStatMeanVariance) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_NEAR(stat.Mean(), 5.0, 1e-12);
  EXPECT_NEAR(stat.Variance(), 4.0, 1e-12);
  EXPECT_EQ(stat.Count(), 8u);
  EXPECT_EQ(stat.Min(), 2.0);
  EXPECT_EQ(stat.Max(), 9.0);
}

TEST(StatsTest, VectorHelpersMatchRunningStat) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 10.0};
  RunningStat stat;
  for (double x : xs) stat.Add(x);
  EXPECT_NEAR(Mean(xs), stat.Mean(), 1e-12);
  EXPECT_NEAR(Variance(xs), stat.Variance(), 1e-12);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
  RunningStat stat;
  EXPECT_EQ(stat.Mean(), 0.0);
  EXPECT_EQ(stat.Variance(), 0.0);
}

TEST(TablePrinterTest, AlignsColumnsAndPadsShortRows) {
  TablePrinter table;
  table.SetHeader({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsCompactly) {
  EXPECT_EQ(TablePrinter::Num(1.0), "1");
  EXPECT_EQ(TablePrinter::Num(614.2, 3), "614.2");
  const std::string big = TablePrinter::Num(3.2e9, 2);
  EXPECT_NE(big.find("e"), std::string::npos);
}

TEST(TablePrinterTest, MeanVarUsesPlusMinus) {
  const std::string s = TablePrinter::MeanVar(1.07, 0.0);
  EXPECT_NE(s.find("±"), std::string::npos);
}

TEST(EnvTest, FallbacksAndParsing) {
  ::unsetenv("FC_TEST_ENV_VAR");
  EXPECT_EQ(EnvInt("FC_TEST_ENV_VAR", 7), 7);
  EXPECT_EQ(EnvDouble("FC_TEST_ENV_VAR", 1.5), 1.5);
  ::setenv("FC_TEST_ENV_VAR", "42", 1);
  EXPECT_EQ(EnvInt("FC_TEST_ENV_VAR", 7), 42);
  ::setenv("FC_TEST_ENV_VAR", "2.25", 1);
  EXPECT_EQ(EnvDouble("FC_TEST_ENV_VAR", 1.5), 2.25);
  ::setenv("FC_TEST_ENV_VAR", "not-a-number", 1);
  EXPECT_EQ(EnvInt("FC_TEST_ENV_VAR", 7), 7);
  ::unsetenv("FC_TEST_ENV_VAR");
}

}  // namespace
}  // namespace fastcoreset
