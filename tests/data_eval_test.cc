// Tests for src/data (generators, real-like stand-ins, CSV) and src/eval
// (distortion metric, harness).

#include <cstdio>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/fastcoreset.h"
#include "src/clustering/cost.h"
#include "src/data/coreset_io.h"
#include "src/data/csv_loader.h"
#include "src/data/generators.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"
#include "src/eval/harness.h"
#include "src/geometry/bounding_box.h"
#include "src/geometry/distance.h"

namespace fastcoreset {
namespace {

TEST(GeneratorsTest, COutlierShape) {
  Rng rng(1);
  const Matrix points = GenerateCOutlier(1000, 25, 10, 1e4, rng);
  EXPECT_EQ(points.rows(), 1000u);
  EXPECT_EQ(points.cols(), 10u);
  // First n - c points near origin, last c far away.
  EXPECT_LT(L2(points.Row(0), std::vector<double>(10, 0.0)), 1.0);
  EXPECT_GT(L2(points.Row(999), std::vector<double>(10, 0.0)), 1e3);
}

TEST(GeneratorsTest, GeometricMassDecaysByFactorR) {
  Rng rng(2);
  const Matrix points = GenerateGeometric(/*k=*/4, /*c=*/64, /*r=*/2, 20, rng);
  // Sizes: 256, 128, 64, ..., 1 — total 511.
  EXPECT_EQ(points.rows(), 511u);
  // Count points per vertex via the dominant coordinate.
  std::vector<size_t> counts(20, 0);
  for (size_t i = 0; i < points.rows(); ++i) {
    const auto row = points.Row(i);
    size_t argmax = 0;
    for (size_t j = 1; j < 20; ++j) {
      if (row[j] > row[argmax]) argmax = j;
    }
    ++counts[argmax];
  }
  EXPECT_EQ(counts[0], 256u);
  EXPECT_EQ(counts[1], 128u);
  EXPECT_EQ(counts[8], 1u);
}

TEST(GeneratorsTest, GaussianMixtureBalancedWhenGammaZero) {
  Rng rng(3);
  const Matrix points = GenerateGaussianMixture(10000, 5, 10, 0.0, rng);
  EXPECT_EQ(points.rows(), 10000u);
}

TEST(GeneratorsTest, GaussianMixtureImbalanceGrowsWithGamma) {
  // With gamma = 5 the construction should produce much more uneven sizes
  // than gamma = 0. We can't observe sizes directly, but the generator is
  // deterministic given the rng: regenerate with instrumentation via the
  // noise-free structure — instead we check the dataset remains valid and
  // distinct across gamma (smoke + shape).
  Rng rng_a(4), rng_b(4);
  const Matrix balanced = GenerateGaussianMixture(5000, 5, 20, 0.0, rng_a);
  const Matrix skewed = GenerateGaussianMixture(5000, 5, 20, 5.0, rng_b);
  EXPECT_EQ(balanced.rows(), skewed.rows());
  // Same seed, different gamma => different data.
  bool any_diff = false;
  for (size_t i = 0; i < 100 && !any_diff; ++i) {
    any_diff = balanced.At(i, 0) != skewed.At(i, 0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, BenchmarkHasThreeOffsetSimplices) {
  Rng rng(5);
  const size_t k = 20;
  const Matrix points = GenerateBenchmark(6000, k, rng);
  // k1=10, k2=5, k3=5 -> total dim (11 + 6 + 6) = 23.
  EXPECT_EQ(points.cols(), 23u);
  EXPECT_GT(points.rows(), 5000u);
  EXPECT_LE(points.rows(), 6000u);
}

TEST(GeneratorsTest, SpreadDatasetSpreadGrowsWithR) {
  Rng rng(6);
  const Matrix small_r = GenerateSpreadDataset(500, 10, rng);
  const Matrix large_r = GenerateSpreadDataset(500, 30, rng);
  // Min distance shrinks as 0.5^r along the special column.
  EXPECT_GT(ComputeSpreadExact(large_r), ComputeSpreadExact(small_r) * 100.0);
}

TEST(GeneratorsTest, NoiseMakesPointsUnique) {
  Rng rng(7);
  Matrix points(500, 3);  // All zeros.
  AddUniformNoise(&points, 1e-3, rng);
  EXPECT_GT(MinNonzeroDistance(points), 0.0);
}

TEST(RealLikeTest, SuiteShapesAndNames) {
  Rng rng(8);
  const auto suite = RealLikeSuite(0.1, rng);
  ASSERT_EQ(suite.size(), 7u);
  std::set<std::string> names;
  for (const auto& dataset : suite) {
    names.insert(dataset.name);
    EXPECT_GE(dataset.points.rows(), 1000u);
    EXPECT_GT(dataset.points.cols(), 0u);
    EXPECT_GT(dataset.default_k, 0u);
  }
  EXPECT_EQ(names.size(), 7u);
  EXPECT_TRUE(names.count("Taxi"));
  EXPECT_TRUE(names.count("Star"));
}

TEST(RealLikeTest, TaxiHasRemoteMass) {
  Rng rng(9);
  const Dataset taxi = MakeTaxiLike(20000, rng);
  // Some points far outside the [0,100]^2 city box.
  size_t remote = 0;
  for (size_t i = 0; i < taxi.points.rows(); ++i) {
    if (std::abs(taxi.points.At(i, 0)) > 1000.0) ++remote;
  }
  EXPECT_GT(remote, 10u);
  EXPECT_LT(remote, taxi.points.rows() / 100);
}

TEST(RealLikeTest, StarMassOverwhelminglyDark) {
  Rng rng(10);
  const Dataset star = MakeStarLike(20000, rng);
  size_t dark = 0;
  for (size_t i = 0; i < star.points.rows(); ++i) {
    if (std::abs(star.points.At(i, 0)) < 50.0) ++dark;
  }
  EXPECT_GT(static_cast<double>(dark) / star.points.rows(), 0.98);
}

TEST(RealLikeTest, ArtificialSuiteContainsFourDatasets) {
  Rng rng(11);
  const auto suite = ArtificialSuite(0.05, rng);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "c-outlier");
  EXPECT_EQ(suite[3].name, "Benchmark");
}

TEST(CsvTest, RoundTrip) {
  Rng rng(12);
  Matrix points(7, 3);
  for (double& x : points.data()) x = rng.Uniform(-5.0, 5.0);
  const std::string path = "/tmp/fc_csv_test.csv";
  ASSERT_TRUE(SaveCsv(path, points));
  const auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->rows(), 7u);
  ASSERT_EQ(loaded->cols(), 3u);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      // %.17g writes round-trip exactly, not merely approximately.
      EXPECT_EQ(loaded->At(i, j), points.At(i, j));
    }
  }
  std::remove(path.c_str());
}

TEST(CoresetIoTest, RoundTripIsBitIdenticalForMixedMagnitudeWeights) {
  // The adversarial weight profile coreset serialization must survive:
  // heavy synthetic representatives (~1e12) interleaved with light
  // sampled points (~1e-3), the shape center-correction rows produce.
  // Before the %.17g fix, the default 6-digit CSV precision rounded
  // every weight, shifting TotalWeight() by ~1e6 on this profile.
  Rng rng(77);
  Coreset coreset;
  coreset.points = Matrix(64, 3);
  for (double& x : coreset.points.data()) x = rng.Uniform(-1e6, 1e6);
  coreset.indices.assign(64, Coreset::kSyntheticIndex);
  for (int i = 0; i < 64; ++i) {
    coreset.weights.push_back(i % 2 == 0 ? rng.Uniform(1e11, 1e12)
                                         : rng.Uniform(1e-3, 1e-2));
  }

  const std::string path = "/tmp/fc_coreset_io_test.csv";
  ASSERT_TRUE(SaveCoresetCsv(path, coreset));
  const std::optional<Coreset> loaded = LoadCoresetCsv(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), coreset.size());
  for (size_t i = 0; i < coreset.size(); ++i) {
    EXPECT_EQ(loaded->weights[i], coreset.weights[i]) << "weight " << i;
    for (size_t j = 0; j < coreset.points.cols(); ++j) {
      EXPECT_EQ(loaded->points.At(i, j), coreset.points.At(i, j))
          << "point " << i << "," << j;
    }
  }
  // Bit-identical weights imply the Kahan total survives persistence.
  EXPECT_EQ(loaded->TotalWeight(), coreset.TotalWeight());
}

TEST(CsvTest, RejectsMissingAndMalformedFiles) {
  EXPECT_FALSE(LoadCsv("/tmp/fc_does_not_exist_12345.csv").has_value());
  const std::string path = "/tmp/fc_csv_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("1,2,3\n4,5\n", f);  // Ragged.
    fclose(f);
  }
  EXPECT_FALSE(LoadCsv(path).has_value());
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("1,abc,3\n", f);  // Non-numeric.
    fclose(f);
  }
  EXPECT_FALSE(LoadCsv(path).has_value());
  std::remove(path.c_str());
}

TEST(DistortionTest, FullDatasetAsCoresetHasDistortionOne) {
  Rng rng(13);
  Matrix points(300, 2);
  for (double& x : points.data()) x = rng.Uniform(0.0, 100.0);
  Coreset identity;
  identity.points = points;
  identity.weights = UnitWeights(300);
  identity.indices.resize(300);
  for (size_t i = 0; i < 300; ++i) identity.indices[i] = i;
  DistortionOptions options;
  options.k = 5;
  EXPECT_NEAR(CoresetDistortion(points, {}, identity, options, rng), 1.0,
              1e-9);
}

TEST(DistortionTest, DistortionAtLeastOne) {
  Rng rng(14);
  Matrix points(500, 3);
  for (double& x : points.data()) x = rng.Uniform(0.0, 10.0);
  api::CoresetSpec spec;
  spec.method = "uniform";
  spec.k = 5;
  spec.m = 50;
  const Coreset coreset = api::Build(spec, points, {}, rng)->coreset;
  DistortionOptions options;
  options.k = 5;
  EXPECT_GE(CoresetDistortion(points, {}, coreset, options, rng), 1.0);
}

TEST(DistortionTest, DetectsDroppedCluster) {
  // Coreset that deliberately omits a far-away cluster: distortion blows
  // up because the solver can't place a center there.
  Rng rng(15);
  const size_t n = 2000;
  Matrix points(n, 1);
  for (size_t i = 0; i < n - 20; ++i) points.At(i, 0) = rng.NextGaussian();
  for (size_t i = n - 20; i < n; ++i) points.At(i, 0) = 1e5;

  // Uniform sample from the main blob only.
  std::vector<size_t> rows(100);
  for (size_t i = 0; i < 100; ++i) rows[i] = i;
  Coreset bad;
  bad.indices = rows;
  bad.points = points.SelectRows(rows);
  bad.weights.assign(100, static_cast<double>(n) / 100.0);

  DistortionOptions options;
  options.k = 2;
  EXPECT_GT(CoresetDistortion(points, {}, bad, options, rng), 10.0);
}

TEST(DistortionTest, KMedianModeWorks) {
  Rng rng(16);
  Matrix points(400, 2);
  for (double& x : points.data()) x = rng.Uniform(0.0, 50.0);
  api::CoresetSpec spec;
  spec.method = "sensitivity";
  spec.k = 4;
  spec.m = 80;
  spec.z = 1;
  const Coreset coreset = api::Build(spec, points, {}, rng)->coreset;
  DistortionOptions options;
  options.k = 4;
  options.z = 1;
  const double distortion =
      CoresetDistortion(points, {}, coreset, options, rng);
  EXPECT_GE(distortion, 1.0);
  EXPECT_LT(distortion, 2.0);
}

TEST(HarnessTest, RunTrialsIsDeterministicAndCounts) {
  const auto trial = [](Rng& rng) { return rng.NextDouble(); };
  const TrialStats a = RunTrials(5, 42, trial);
  const TrialStats b = RunTrials(5, 42, trial);
  EXPECT_EQ(a.value.Count(), 5u);
  EXPECT_EQ(a.value.Mean(), b.value.Mean());
  const TrialStats c = RunTrials(5, 43, trial);
  EXPECT_NE(a.value.Mean(), c.value.Mean());
}

}  // namespace
}  // namespace fastcoreset
