// Tests for src/geometry: matrix, distances, bounding box, JL, quadtree.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/geometry/bounding_box.h"
#include "src/geometry/distance.h"
#include "src/geometry/jl_projection.h"
#include "src/geometry/matrix.h"
#include "src/geometry/quadtree.h"

namespace fastcoreset {
namespace {

Matrix RandomPoints(size_t n, size_t d, Rng& rng, double box = 10.0) {
  Matrix points(n, d);
  for (double& x : points.data()) x = rng.Uniform(0.0, box);
  return points;
}

TEST(MatrixTest, AtAndRowAgree) {
  Matrix m(3, 2);
  m.At(1, 0) = 5.0;
  m.At(1, 1) = -2.0;
  const auto row = m.Row(1);
  EXPECT_EQ(row[0], 5.0);
  EXPECT_EQ(row[1], -2.0);
}

TEST(MatrixTest, SelectRowsPreservesOrder) {
  Matrix m(4, 1);
  for (size_t i = 0; i < 4; ++i) m.At(i, 0) = static_cast<double>(i);
  const Matrix sel = m.SelectRows({3, 0, 2});
  EXPECT_EQ(sel.rows(), 3u);
  EXPECT_EQ(sel.At(0, 0), 3.0);
  EXPECT_EQ(sel.At(1, 0), 0.0);
  EXPECT_EQ(sel.At(2, 0), 2.0);
}

TEST(MatrixTest, AppendRowsGrowsAndAdoptsCols) {
  Matrix empty;
  Matrix m(2, 3);
  m.At(0, 0) = 1.0;
  empty.AppendRows(m);
  EXPECT_EQ(empty.rows(), 2u);
  EXPECT_EQ(empty.cols(), 3u);
  empty.AppendRows(m);
  EXPECT_EQ(empty.rows(), 4u);
  EXPECT_EQ(empty.At(2, 0), 1.0);
}

TEST(MatrixTest, ColumnMeans) {
  Matrix m(2, 2);
  m.At(0, 0) = 1.0;
  m.At(0, 1) = 4.0;
  m.At(1, 0) = 3.0;
  m.At(1, 1) = 0.0;
  const auto means = m.ColumnMeans();
  EXPECT_NEAR(means[0], 2.0, 1e-12);
  EXPECT_NEAR(means[1], 2.0, 1e-12);
}

TEST(MatrixTest, CopyRowFrom) {
  Matrix a(1, 2), b(2, 2);
  a.At(0, 0) = 7.0;
  a.At(0, 1) = 8.0;
  b.CopyRowFrom(a, 0, 1);
  EXPECT_EQ(b.At(1, 0), 7.0);
  EXPECT_EQ(b.At(1, 1), 8.0);
  EXPECT_EQ(b.At(0, 0), 0.0);
}

TEST(DistanceTest, KnownValues) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_NEAR(SquaredL2(a, b), 25.0, 1e-12);
  EXPECT_NEAR(L2(a, b), 5.0, 1e-12);
  EXPECT_NEAR(DistPow(a, b, 1), 5.0, 1e-12);
  EXPECT_NEAR(DistPow(a, b, 2), 25.0, 1e-12);
}

TEST(DistanceTest, FindNearestCenterPicksClosest) {
  Matrix centers(3, 1);
  centers.At(0, 0) = 0.0;
  centers.At(1, 0) = 10.0;
  centers.At(2, 0) = 4.0;
  const std::vector<double> p = {5.0};
  const NearestCenter nearest = FindNearestCenter(p, centers);
  EXPECT_EQ(nearest.index, 2u);
  EXPECT_NEAR(nearest.sq_dist, 1.0, 1e-12);
}

TEST(DistanceTest, AssignToNearestCoversAllPoints) {
  Rng rng(1);
  const Matrix points = RandomPoints(50, 3, rng);
  const Matrix centers = RandomPoints(5, 3, rng);
  std::vector<size_t> assignment;
  std::vector<double> sq;
  AssignToNearest(points, centers, &assignment, &sq);
  ASSERT_EQ(assignment.size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    // Verify optimality against brute force.
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_LE(sq[i], SquaredL2(points.Row(i), centers.Row(c)) + 1e-12);
    }
  }
}

TEST(DistanceTest, RowSquaredNormsMatchDots) {
  Rng rng(17);
  const Matrix m = RandomPoints(37, 5, rng);
  const std::vector<double> norms = m.RowSquaredNorms();
  ASSERT_EQ(norms.size(), 37u);
  const std::vector<double> origin(5, 0.0);
  for (size_t i = 0; i < m.rows(); ++i) {
    EXPECT_NEAR(norms[i], SquaredL2(m.Row(i), origin), 1e-9);
  }
}

// Property test: the blocked norm-cached kernel must agree with the
// scalar SquaredL2 reference on every point — same argmin (including the
// lowest-index tie-breaking) and squared distances to tight relative
// tolerance — across shapes that exercise partial blocks, partial center
// tiles and multiple dimension strips.
TEST(DistanceTest, BatchNearestCenterMatchesScalarReference) {
  Rng rng(23);
  const struct {
    size_t n, d, k;
  } shapes[] = {
      {1, 1, 1},    {7, 3, 2},     {64, 16, 16},  {65, 16, 17},
      {200, 5, 10}, {130, 70, 33}, {96, 129, 40},
  };
  for (const auto& shape : shapes) {
    const Matrix points = RandomPoints(shape.n, shape.d, rng, 100.0);
    const Matrix centers = RandomPoints(shape.k, shape.d, rng, 100.0);
    const std::vector<double> center_norms = centers.RowSquaredNorms();
    std::vector<size_t> index(shape.n);
    std::vector<double> sq(shape.n);
    BatchNearestCenter(points, 0, shape.n, centers, center_norms,
                       std::span<size_t>(index), std::span<double>(sq));
    for (size_t i = 0; i < shape.n; ++i) {
      const NearestCenter reference =
          FindNearestCenter(points.Row(i), centers);
      EXPECT_EQ(index[i], reference.index)
          << "n=" << shape.n << " d=" << shape.d << " k=" << shape.k
          << " i=" << i;
      const double tolerance = 1e-9 * (1.0 + reference.sq_dist);
      EXPECT_NEAR(sq[i], reference.sq_dist, tolerance);
    }
  }
}

TEST(DistanceTest, BatchNearestCenterBreaksTiesTowardLowerIndex) {
  // Duplicate centers produce exactly equal distances in both forms; the
  // batch kernel must report the first copy, like FindNearestCenter.
  Matrix centers(4, 2);
  for (size_t c = 0; c < 4; ++c) {
    centers.At(c, 0) = 3.0;
    centers.At(c, 1) = -1.0;
  }
  Matrix points(2, 2);
  points.At(0, 0) = 3.0;
  points.At(0, 1) = -1.0;
  points.At(1, 0) = 100.0;
  const std::vector<double> norms = centers.RowSquaredNorms();
  std::vector<size_t> index(2);
  std::vector<double> sq(2);
  BatchNearestCenter(points, 0, 2, centers, norms,
                     std::span<size_t>(index), std::span<double>(sq));
  EXPECT_EQ(index[0], 0u);
  EXPECT_EQ(index[1], 0u);
  EXPECT_NEAR(sq[0], 0.0, 1e-12);
}

TEST(DistanceTest, BatchNearestCenterSubRangeMatchesFullRange) {
  // Results must not depend on how the row range is partitioned (the
  // ParallelFor contract): computing [0, n) in one call or in arbitrary
  // sub-ranges yields bit-identical outputs.
  Rng rng(29);
  const size_t n = 150, d = 9, k = 21;
  const Matrix points = RandomPoints(n, d, rng);
  const Matrix centers = RandomPoints(k, d, rng);
  const std::vector<double> norms = centers.RowSquaredNorms();
  std::vector<size_t> full_idx(n), part_idx(n);
  std::vector<double> full_sq(n), part_sq(n);
  BatchNearestCenter(points, 0, n, centers, norms,
                     std::span<size_t>(full_idx), std::span<double>(full_sq));
  const size_t cuts[] = {0, 13, 64, 77, 150};
  for (size_t s = 0; s + 1 < std::size(cuts); ++s) {
    const size_t begin = cuts[s], end = cuts[s + 1];
    BatchNearestCenter(
        points, begin, end, centers, norms,
        std::span<size_t>(part_idx.data() + begin, end - begin),
        std::span<double>(part_sq.data() + begin, end - begin));
  }
  EXPECT_EQ(full_idx, part_idx);
  EXPECT_EQ(full_sq, part_sq);
}

TEST(BoundingBoxTest, BoxAndDiagonal) {
  Matrix m(2, 2);
  m.At(0, 0) = -1.0;
  m.At(0, 1) = 0.0;
  m.At(1, 0) = 2.0;
  m.At(1, 1) = 4.0;
  const BoundingBox box = ComputeBoundingBox(m);
  EXPECT_EQ(box.lo[0], -1.0);
  EXPECT_EQ(box.hi[1], 4.0);
  EXPECT_NEAR(box.MaxSide(), 4.0, 1e-12);
  EXPECT_NEAR(box.Diagonal(), 5.0, 1e-12);
}

TEST(BoundingBoxTest, SpreadOfScaledGrid) {
  Matrix m(3, 1);
  m.At(0, 0) = 0.0;
  m.At(1, 0) = 1.0;
  m.At(2, 0) = 100.0;
  EXPECT_NEAR(ComputeSpreadExact(m), 100.0, 1e-9);
  EXPECT_NEAR(MinNonzeroDistance(m), 1.0, 1e-12);
}

TEST(JlTest, TargetDimClampedToOriginal) {
  EXPECT_EQ(JlTargetDim(100, 0.5, 5), 5u);
  EXPECT_GT(JlTargetDim(100, 0.5, 1000), 5u);
  EXPECT_LE(JlTargetDim(100, 0.5, 1000), 1000u);
}

TEST(JlTest, IdentityWhenTargetNotSmaller) {
  Rng rng(2);
  const Matrix points = RandomPoints(10, 4, rng);
  const Matrix projected = JlProject(points, 4, rng);
  EXPECT_EQ(projected.cols(), 4u);
  EXPECT_EQ(projected.At(3, 2), points.At(3, 2));
}

// Property test: JL approximately preserves pairwise squared distances on
// average (per-pair concentration within a generous factor).
TEST(JlTest, DistancePreservationOnAverage) {
  Rng rng(3);
  const size_t n = 40, d = 512;
  Matrix points(n, d);
  for (double& x : points.data()) x = rng.NextGaussian();
  const Matrix projected = JlProject(points, 64, rng);
  ASSERT_EQ(projected.cols(), 64u);

  double ratio_sum = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double orig = SquaredL2(points.Row(i), points.Row(j));
      const double proj = SquaredL2(projected.Row(i), projected.Row(j));
      const double ratio = proj / orig;
      EXPECT_GT(ratio, 0.3) << "pair (" << i << "," << j << ")";
      EXPECT_LT(ratio, 2.5) << "pair (" << i << "," << j << ")";
      ratio_sum += ratio;
      ++pairs;
    }
  }
  EXPECT_NEAR(ratio_sum / pairs, 1.0, 0.15);
}

TEST(JlTest, GaussianSketchAlsoPreserves) {
  Rng rng(4);
  const size_t n = 20, d = 256;
  Matrix points(n, d);
  for (double& x : points.data()) x = rng.NextGaussian();
  const Matrix projected =
      JlProject(points, 64, rng, JlSketch::kGaussian);
  double ratio_sum = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      ratio_sum += SquaredL2(projected.Row(i), projected.Row(j)) /
                   SquaredL2(points.Row(i), points.Row(j));
      ++pairs;
    }
  }
  EXPECT_NEAR(ratio_sum / pairs, 1.0, 0.2);
}

TEST(QuadtreeTest, EveryPointHasALeafAndParentsChainToRoot) {
  Rng rng(5);
  const Matrix points = RandomPoints(200, 3, rng);
  Quadtree tree(points, rng);
  EXPECT_EQ(tree.num_points(), 200u);
  for (size_t i = 0; i < 200; ++i) {
    int32_t v = tree.LeafOfPoint(i);
    EXPECT_TRUE(tree.node(v).is_leaf);
    int steps = 0;
    while (tree.node(v).parent != -1) {
      const int32_t parent = tree.node(v).parent;
      EXPECT_EQ(tree.node(parent).level, tree.node(v).level - 1);
      v = parent;
      ASSERT_LT(++steps, 100);
    }
    EXPECT_EQ(v, tree.root());
  }
}

TEST(QuadtreeTest, LeavesPartitionThePoints) {
  Rng rng(6);
  const Matrix points = RandomPoints(300, 2, rng);
  Quadtree tree(points, rng);
  std::set<uint32_t> seen;
  for (size_t id = 0; id < tree.num_nodes(); ++id) {
    const auto& node = tree.node(static_cast<int32_t>(id));
    if (!node.is_leaf) {
      EXPECT_TRUE(node.points.empty());
      continue;
    }
    for (uint32_t p : node.points) {
      EXPECT_TRUE(seen.insert(p).second) << "point in two leaves";
      EXPECT_EQ(tree.LeafOfPoint(p), static_cast<int32_t>(id));
    }
  }
  EXPECT_EQ(seen.size(), 300u);
}

// The defining HST property: tree distance dominates Euclidean distance.
TEST(QuadtreeTest, TreeDistanceDominatesEuclidean) {
  Rng rng(7);
  const Matrix points = RandomPoints(100, 4, rng);
  Quadtree tree(points, rng);
  for (size_t i = 0; i < 100; i += 7) {
    for (size_t j = i + 1; j < 100; j += 11) {
      const double euclid = L2(points.Row(i), points.Row(j));
      const double in_tree = tree.TreeDistance(i, j);
      if (in_tree == 0.0) {
        // Co-located at max depth: must be genuinely close.
        EXPECT_LT(euclid, 1e-6);
      } else {
        EXPECT_GE(in_tree, euclid * 0.999);
      }
    }
  }
}

// Lemma 2.2 (statistical): expected tree distance within O(d log Δ) of
// the Euclidean distance. We check the average over random shifts.
TEST(QuadtreeTest, ExpectedTreeDistortionBounded) {
  Rng data_rng(8);
  const size_t d = 2;
  const Matrix points = RandomPoints(50, d, data_rng, 100.0);
  const double spread_log = std::log2(ComputeSpreadExact(points)) + 1.0;

  double total_ratio = 0.0;
  int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    Quadtree tree(points, rng);
    double ratio_sum = 0.0;
    int pairs = 0;
    for (size_t i = 0; i < 50; i += 3) {
      for (size_t j = i + 1; j < 50; j += 5) {
        const double euclid = L2(points.Row(i), points.Row(j));
        if (euclid < 1e-9) continue;
        ratio_sum += tree.TreeDistance(i, j) / euclid;
        ++pairs;
      }
    }
    total_ratio += ratio_sum / pairs;
  }
  const double mean_ratio = total_ratio / trials;
  EXPECT_GE(mean_ratio, 1.0);
  // Constant slack over the O(d log Δ) bound.
  EXPECT_LE(mean_ratio, 16.0 * d * spread_log);
}

TEST(QuadtreeTest, CellSideHalvesPerLevel) {
  Rng rng(9);
  const Matrix points = RandomPoints(10, 2, rng);
  Quadtree tree(points, rng);
  EXPECT_NEAR(tree.CellSide(1), tree.root_side() / 2.0, 1e-12);
  EXPECT_NEAR(tree.CellSide(5), tree.root_side() / 32.0, 1e-12);
}

TEST(QuadtreeTest, IdenticalPointsShareALeaf) {
  Matrix points(5, 2);  // All at the origin-ish (identical).
  Rng rng(10);
  Quadtree tree(points, rng, /*max_depth=*/12);
  const int32_t leaf = tree.LeafOfPoint(0);
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(tree.LeafOfPoint(i), leaf);
    EXPECT_EQ(tree.TreeDistance(0, i), 0.0);
  }
  EXPECT_EQ(tree.node(leaf).level, 12);
}

TEST(QuadtreeTest, DepthAdaptsToSpread) {
  // Two well-separated groups of two close points each: the tree must go
  // deep enough to separate close pairs but stays shallow elsewhere.
  Matrix points(4, 1);
  points.At(0, 0) = 0.0;
  points.At(1, 0) = 1e-4;
  points.At(2, 0) = 1.0;
  points.At(3, 0) = 1.0 + 1e-4;
  Rng rng(11);
  Quadtree tree(points, rng, /*max_depth=*/60);
  // Close pairs separate ~13-16 levels down (2 / 1e-4 = 2e4 ~ 2^14.3).
  EXPECT_NE(tree.LeafOfPoint(0), tree.LeafOfPoint(1));
  const int lca_close = tree.LcaLevel(0, 1);
  const int lca_far = tree.LcaLevel(0, 2);
  EXPECT_GT(lca_close, lca_far);
  EXPECT_GE(lca_close, 10);
}

// Lemma 4.3-flavoured property: the probability that two points at
// distance delta are in different cells of side r is at most d*delta/r.
// We pin the root scale with a far-away third point and measure how often
// a close pair (delta = 0.01) separates at a coarse level (side 0.625):
// the bound gives p <= 0.016.
TEST(QuadtreeTest, SeparationProbabilityScalesWithDistance) {
  Matrix points(3, 1);
  points.At(0, 0) = 5.0;
  points.At(1, 0) = 5.01;   // Close pair, delta = 0.01.
  points.At(2, 0) = 10.0;   // Anchors base = 10 -> root side 20.

  int separated_coarse = 0;   // LCA above level 5 (side 0.625).
  int separated_fine = 0;     // LCA above level 10 (side ~0.0195).
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    Rng rng(200 + t);
    Quadtree tree(points, rng, /*max_depth=*/30);
    const int lca = tree.LcaLevel(0, 1);
    if (lca < 5) ++separated_coarse;
    if (lca < 10) ++separated_fine;
  }
  // Coarse: bound 0.016 * 3000 = 48; allow 3x statistical slack.
  EXPECT_LT(separated_coarse, 150);
  // Fine: bound 0.512 — separation must actually happen at fine levels
  // (the probability is also at least ~delta/side/2 for dyadic shifts).
  EXPECT_GT(separated_fine, 300);
}

TEST(CellHashTest, DistinctCoordsDistinctKeys) {
  std::vector<int64_t> a = {1, 2, 3};
  std::vector<int64_t> b = {1, 2, 4};
  EXPECT_FALSE(HashCell(0, a) == HashCell(0, b));
  EXPECT_FALSE(HashCell(0, a) == HashCell(1, a));
  EXPECT_TRUE(HashCell(3, a) == HashCell(3, a));
}

}  // namespace
}  // namespace fastcoreset
