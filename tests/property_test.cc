// Parameterized property suites (TEST_P sweeps) covering the invariants
// that must hold across the whole configuration space:
//   - every sampler x objective x size: distortion bounded on benign data,
//     total weight concentrated around n, indices valid;
//   - every seeder x objective: assignments consistent with reported costs;
//   - quadtree invariants across dimensions and depth caps;
//   - merge-&-reduce invariants across block sizes.

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/fastcoreset.h"
#include "src/clustering/cost.h"
#include "src/clustering/fast_kmeans_plus_plus.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/tree_greedy.h"
#include "src/core/group_sampling.h"
#include "src/data/generators.h"
#include "src/eval/distortion.h"
#include "src/geometry/distance.h"
#include "src/geometry/quadtree.h"
#include "src/streaming/merge_reduce.h"

namespace fastcoreset {
namespace {

Matrix BenignBlobs(size_t n, size_t d, size_t blobs, uint64_t seed) {
  Rng rng(seed);
  return GenerateGaussianMixture(n, d, blobs, /*gamma=*/0.5, rng);
}

// ---------------------------------------------------------------------
// Sampler sweep: kind x z x m.

using SamplerParam = std::tuple<const char*, int, size_t>;

/// Spec for one sweep point; all sampler properties build through the
/// facade, so the sweep also covers the registry dispatch path.
api::CoresetSpec SweepSpec(const SamplerParam& param, size_t k) {
  api::CoresetSpec spec;
  spec.method = std::get<0>(param);
  spec.k = k;
  spec.m = std::get<2>(param);
  spec.z = std::get<1>(param);
  return spec;
}

class SamplerProperty : public ::testing::TestWithParam<SamplerParam> {};

TEST_P(SamplerProperty, DistortionBoundedOnBenignData) {
  const Matrix points = BenignBlobs(8000, 10, 10, 1);
  Rng rng(2);
  const Coreset coreset =
      api::Build(SweepSpec(GetParam(), 10), points, {}, rng)->coreset;
  DistortionOptions probe;
  probe.k = 10;
  probe.z = std::get<1>(GetParam());
  EXPECT_LT(CoresetDistortion(points, {}, coreset, probe, rng), 2.0);
}

TEST_P(SamplerProperty, WeightsPositiveAndTotalNearN) {
  const Matrix points = BenignBlobs(8000, 10, 10, 3);
  Rng rng(4);
  const Coreset coreset =
      api::Build(SweepSpec(GetParam(), 10), points, {}, rng)->coreset;
  for (double w : coreset.weights) EXPECT_GT(w, 0.0);
  EXPECT_NEAR(coreset.TotalWeight() / 8000.0, 1.0, 0.25);
}

TEST_P(SamplerProperty, IndicesValidAndPointsMatchSource) {
  const Matrix points = BenignBlobs(4000, 6, 8, 5);
  Rng rng(6);
  const Coreset coreset =
      api::Build(SweepSpec(GetParam(), 8), points, {}, rng)->coreset;
  ASSERT_EQ(coreset.indices.size(), coreset.size());
  ASSERT_EQ(coreset.weights.size(), coreset.size());
  for (size_t r = 0; r < coreset.size(); ++r) {
    if (coreset.indices[r] == Coreset::kSyntheticIndex) continue;
    ASSERT_LT(coreset.indices[r], points.rows());
    EXPECT_EQ(coreset.points.At(r, 0), points.At(coreset.indices[r], 0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplersObjectivesSizes, SamplerProperty,
    ::testing::Combine(::testing::Values("uniform", "lightweight",
                                         "welterweight", "sensitivity",
                                         "fast_coreset"),
                       ::testing::Values(1, 2),
                       ::testing::Values(size_t{200}, size_t{800})),
    [](const ::testing::TestParamInfo<SamplerParam>& info) {
      return std::string(std::get<0>(info.param)) + "_z" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Seeder sweep: algorithm x z.

enum class Seeder { kKmpp, kFastKmpp, kTreeGreedy };

std::string SeederLabel(Seeder seeder) {
  switch (seeder) {
    case Seeder::kKmpp:
      return "Kmpp";
    case Seeder::kFastKmpp:
      return "FastKmpp";
    case Seeder::kTreeGreedy:
      return "TreeGreedy";
  }
  return "Unknown";
}

using SeederParam = std::tuple<Seeder, int>;

class SeederProperty : public ::testing::TestWithParam<SeederParam> {};

TEST_P(SeederProperty, ReportedCostsMatchAssignment) {
  const auto [seeder, z] = GetParam();
  const Matrix points = BenignBlobs(3000, 5, 6, 7);
  Rng rng(8);
  Clustering result;
  switch (seeder) {
    case Seeder::kKmpp:
      result = KMeansPlusPlus(points, {}, 6, z, rng);
      break;
    case Seeder::kFastKmpp: {
      FastKMeansPlusPlusOptions options;
      options.z = z;
      result = FastKMeansPlusPlus(points, {}, 6, options, rng);
      break;
    }
    case Seeder::kTreeGreedy: {
      TreeGreedyOptions options;
      options.z = z;
      result = TreeGreedySeeding(points, {}, 6, options, rng);
      break;
    }
  }
  ASSERT_GT(result.centers.rows(), 0u);
  double total = 0.0;
  for (size_t i = 0; i < points.rows(); ++i) {
    ASSERT_LT(result.assignment[i], result.centers.rows());
    const double expected = DistPow(
        points.Row(i), result.centers.Row(result.assignment[i]), z);
    EXPECT_NEAR(result.point_costs[i], expected, 1e-9 + 1e-9 * expected);
    total += result.point_costs[i];
  }
  EXPECT_NEAR(result.total_cost, total, 1e-6 * (1.0 + total));
}

TEST_P(SeederProperty, CostWithinPolylogOfReference) {
  const auto [seeder, z] = GetParam();
  const Matrix points = BenignBlobs(3000, 5, 6, 9);
  Rng ref_rng(10);
  const double reference =
      KMeansPlusPlus(points, {}, 6, z, ref_rng).total_cost;
  double total = 0.0;
  const int trials = 3;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    switch (seeder) {
      case Seeder::kKmpp:
        total += KMeansPlusPlus(points, {}, 6, z, rng).total_cost;
        break;
      case Seeder::kFastKmpp: {
        FastKMeansPlusPlusOptions options;
        options.z = z;
        total += FastKMeansPlusPlus(points, {}, 6, options, rng).total_cost;
        break;
      }
      case Seeder::kTreeGreedy: {
        TreeGreedyOptions options;
        options.z = z;
        total += TreeGreedySeeding(points, {}, 6, options, rng).total_cost;
        break;
      }
    }
  }
  EXPECT_LT(total / trials, 500.0 * reference + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllSeeders, SeederProperty,
    ::testing::Combine(::testing::Values(Seeder::kKmpp, Seeder::kFastKmpp,
                                         Seeder::kTreeGreedy),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<SeederParam>& info) {
      return SeederLabel(std::get<0>(info.param)) + "_z" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Quadtree sweep: dimension x depth cap.

using QuadtreeParam = std::tuple<size_t, int>;

class QuadtreeProperty : public ::testing::TestWithParam<QuadtreeParam> {};

TEST_P(QuadtreeProperty, PartitionAndDomination) {
  const auto [d, depth] = GetParam();
  Rng data_rng(11);
  Matrix points(500, d);
  for (double& x : points.data()) x = data_rng.Uniform(0.0, 100.0);
  Rng rng(12);
  Quadtree tree(points, rng, depth);

  // Partition: every point in exactly one leaf.
  std::vector<int> seen(points.rows(), 0);
  for (size_t id = 0; id < tree.num_nodes(); ++id) {
    const auto& node = tree.node(static_cast<int32_t>(id));
    EXPECT_LE(node.level, depth);
    for (uint32_t p : node.points) ++seen[p];
  }
  for (int count : seen) EXPECT_EQ(count, 1);

  // Domination: tree distance >= Euclidean (or genuinely co-located).
  for (size_t i = 0; i < points.rows(); i += 53) {
    for (size_t j = i + 1; j < points.rows(); j += 79) {
      const double euclid = L2(points.Row(i), points.Row(j));
      const double in_tree = tree.TreeDistance(i, j);
      if (in_tree == 0.0) {
        EXPECT_LT(euclid,
                  std::sqrt(static_cast<double>(d)) * tree.CellSide(depth) +
                      1e-12);
      } else {
        EXPECT_GE(in_tree, euclid * 0.999);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndDepths, QuadtreeProperty,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{8},
                                         size_t{32}),
                       ::testing::Values(4, 12, 40)),
    [](const ::testing::TestParamInfo<QuadtreeParam>& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_depth" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Merge-&-reduce sweep over block sizes.

class MergeReduceProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(MergeReduceProperty, IndicesGlobalAndWeightConserved) {
  const size_t block = GetParam();
  Rng data_rng(13);
  Matrix points(3000, 2);
  for (size_t i = 0; i < points.rows(); ++i) {
    points.At(i, 0) = static_cast<double>(i);  // Identifiable rows.
    points.At(i, 1) = data_rng.NextGaussian();
  }
  Rng rng(14);
  const Coreset coreset = StreamingCompress(
      points, {},
      [] {
        api::CoresetSpec spec;
        spec.method = "sensitivity";
        spec.k = 6;
        return api::MakeBuilder(spec).value();
      }(),
      block, /*m=*/300, rng);
  for (size_t r = 0; r < coreset.size(); ++r) {
    if (coreset.indices[r] == Coreset::kSyntheticIndex) continue;
    ASSERT_LT(coreset.indices[r], points.rows());
    EXPECT_EQ(coreset.points.At(r, 0),
              points.At(coreset.indices[r], 0));
  }
  EXPECT_NEAR(coreset.TotalWeight() / 3000.0, 1.0, 0.35);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, MergeReduceProperty,
                         ::testing::Values(size_t{301}, size_t{512},
                                           size_t{1000}, size_t{3000}),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "block" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Group sampling eps sweep.

class GroupSamplingProperty : public ::testing::TestWithParam<double> {};

TEST_P(GroupSamplingProperty, DistortionAndWeightAcrossEps) {
  const double eps = GetParam();
  const Matrix points = BenignBlobs(6000, 8, 8, 15);
  Rng rng(16);
  GroupSamplingOptions options;
  options.k = 8;
  options.m = 400;
  options.eps = eps;
  const Coreset coreset = GroupSamplingCoreset(points, {}, options, rng);
  EXPECT_NEAR(coreset.TotalWeight() / 6000.0, 1.0, 0.2);
  DistortionOptions probe;
  probe.k = 8;
  EXPECT_LT(CoresetDistortion(points, {}, coreset, probe, rng), 2.0);
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, GroupSamplingProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "eps" +
                                  std::to_string(static_cast<int>(
                                      info.param * 10));
                         });

}  // namespace
}  // namespace fastcoreset
