// End-to-end integration tests across modules: full pipelines, coreset
// composability, determinism, high-dimensional (JL) paths, the full-depth
// quadtree mode and the strict multi-probe distortion metric.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/fastcoreset.h"
#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/lloyd.h"
#include "src/core/fast_coreset.h"
#include "src/data/generators.h"
#include "src/data/real_like.h"
#include "src/eval/distortion.h"
#include "src/geometry/quadtree.h"
#include "src/spread/crude_approx.h"
#include "src/streaming/merge_reduce.h"

namespace fastcoreset {
namespace {

TEST(PipelineTest, CompressClusterMatchesDirectClustering) {
  Rng rng(1);
  const Matrix points = GenerateGaussianMixture(30000, 15, 20, 1.5, rng);
  FastCoresetOptions options;
  options.k = 20;
  options.m = 800;
  const Coreset coreset = FastCoreset(points, {}, options, rng);

  Rng solve_rng(2);
  const Clustering on_coreset = LloydKMeans(
      coreset.points, coreset.weights,
      KMeansPlusPlus(coreset.points, coreset.weights, 20, 2, solve_rng)
          .centers);
  const double via_coreset =
      CostToCenters(points, {}, on_coreset.centers, 2);

  Rng direct_rng(3);
  const Clustering direct = LloydKMeans(
      points, {}, KMeansPlusPlus(points, {}, 20, 2, direct_rng).centers);

  EXPECT_LT(via_coreset, 1.3 * direct.total_cost);
}

TEST(PipelineTest, HighDimensionalJlPath) {
  // MNIST-like: 784 dims force the JL branch inside FastCoreset.
  Rng rng(4);
  const Dataset mnist = MakeMnistLike(4000, rng);
  FastCoresetOptions options;
  options.k = 10;
  options.m = 400;
  ASSERT_TRUE(options.use_jl);
  const Coreset coreset = FastCoreset(mnist.points, {}, options, rng);
  DistortionOptions probe;
  probe.k = 10;
  EXPECT_LT(CoresetDistortion(mnist.points, {}, coreset, probe, rng), 1.5);
}

// The coreset property composes: the union of coresets of two halves is a
// coreset of the whole.
TEST(PipelineTest, CoresetUnionIsCoresetOfUnion) {
  Rng rng(5);
  const Matrix points = GenerateGaussianMixture(20000, 10, 15, 1.0, rng);
  std::vector<size_t> first_half, second_half;
  for (size_t i = 0; i < points.rows(); ++i) {
    (i % 2 == 0 ? first_half : second_half).push_back(i);
  }
  const Matrix a = points.SelectRows(first_half);
  const Matrix b = points.SelectRows(second_half);

  Coreset coreset_union;
  coreset_union.points = Matrix(0, points.cols());
  for (const Matrix* part : {&a, &b}) {
    FastCoresetOptions options;
    options.k = 15;
    options.m = 400;
    const Coreset local = FastCoreset(*part, {}, options, rng);
    coreset_union.points.AppendRows(local.points);
    coreset_union.weights.insert(coreset_union.weights.end(),
                                 local.weights.begin(), local.weights.end());
    coreset_union.indices.insert(coreset_union.indices.end(),
                                 local.indices.size(),
                                 Coreset::kSyntheticIndex);
  }

  DistortionOptions probe;
  probe.k = 15;
  EXPECT_LT(CoresetDistortion(points, {}, coreset_union, probe, rng), 1.3);
}

TEST(DeterminismTest, SameSeedSameCoreset) {
  Rng data_rng(6);
  const Matrix points = GenerateGaussianMixture(5000, 8, 10, 1.0, data_rng);
  FastCoresetOptions options;
  options.k = 10;
  options.m = 200;
  Rng rng_a(99), rng_b(99);
  const Coreset a = FastCoreset(points, {}, options, rng_a);
  const Coreset b = FastCoreset(points, {}, options, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a.indices[r], b.indices[r]);
    EXPECT_EQ(a.weights[r], b.weights[r]);
  }
}

TEST(DeterminismTest, StreamingPipelineDeterministic) {
  Rng data_rng(7);
  const Matrix points = GenerateGaussianMixture(6000, 5, 8, 0.5, data_rng);
  auto run = [&](uint64_t seed) {
    Rng rng(seed);
    api::CoresetSpec spec;
    spec.method = "sensitivity";
    spec.k = 8;
    return StreamingCompress(points, {}, api::MakeBuilder(spec).value(),
                             1024, 200, rng);
  };
  const Coreset a = run(5), b = run(5), c = run(6);
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) EXPECT_EQ(a.indices[r], b.indices[r]);
  // Different seed should (generically) give a different sample.
  bool differs = a.size() != c.size();
  for (size_t r = 0; !differs && r < a.size(); ++r) {
    differs = a.indices[r] != c.indices[r];
  }
  EXPECT_TRUE(differs);
}

TEST(FullDepthQuadtreeTest, AllLeavesAtMaxDepth) {
  Rng rng(8);
  Matrix points(200, 2);
  for (double& x : points.data()) x = rng.Uniform(0.0, 10.0);
  Quadtree tree(points, rng, QuadtreeOptions{12, /*full_depth=*/true});
  for (size_t i = 0; i < points.rows(); ++i) {
    EXPECT_EQ(tree.node(tree.LeafOfPoint(i)).level, 12);
  }
  // Full-depth trees are strictly larger than adaptive ones.
  Rng rng2(8);
  Quadtree adaptive(points, rng2, QuadtreeOptions{12, false});
  EXPECT_GT(tree.num_nodes(), adaptive.num_nodes());
}

TEST(MultiProbeDistortionTest, AtLeastSingleProbeDistortion) {
  Rng rng(9);
  const Matrix points = GenerateGaussianMixture(8000, 8, 10, 1.0, rng);
  api::CoresetSpec spec;
  spec.method = "fast_coreset";
  spec.k = 10;
  spec.m = 400;
  const Coreset coreset = api::Build(spec, points, {}, rng)->coreset;
  DistortionOptions options;
  options.k = 10;
  Rng probe_rng_a(10), probe_rng_b(10);
  const double single =
      CoresetDistortion(points, {}, coreset, options, probe_rng_a);
  const double multi =
      MaxDistortionOverProbes(points, {}, coreset, options, 5, probe_rng_b);
  EXPECT_GE(multi, single - 1e-12);
  // A strong coreset stays bounded under extra probes too.
  EXPECT_LT(multi, 1.5);
}

TEST(MultiProbeDistortionTest, ExposesMissingClusterFasterThanSingle) {
  // Coreset missing a far cluster: a probe seeded on the full data places
  // a center at the missing cluster and the coreset cost collapses there.
  Rng rng(11);
  const size_t n = 5000;
  Matrix points(n, 1);
  for (size_t i = 0; i < n - 15; ++i) points.At(i, 0) = rng.NextGaussian();
  for (size_t i = n - 15; i < n; ++i) points.At(i, 0) = 1e4;

  std::vector<size_t> rows(200);
  for (size_t i = 0; i < 200; ++i) rows[i] = i;
  Coreset bad;
  bad.indices = rows;
  bad.points = points.SelectRows(rows);
  bad.weights.assign(200, static_cast<double>(n) / 200.0);

  DistortionOptions options;
  options.k = 2;
  const double multi =
      MaxDistortionOverProbes(points, {}, bad, options, 5, rng);
  EXPECT_GT(multi, 10.0);
}

TEST(CrudeApproxIntegrationTest, FeedsFastCoresetOnPathologicalSpread) {
  Rng rng(12);
  // Pathological spread instance end-to-end through the full pipeline.
  const Matrix points = GenerateSpreadDataset(20000, 45, rng);
  const CrudeApproxResult crude = CrudeApprox(points, 50, rng);
  ASSERT_GT(crude.upper_bound, 0.0);

  FastCoresetOptions options;
  options.k = 50;
  options.m = 1000;
  options.use_jl = false;
  options.use_spread_reduction = true;
  const Coreset coreset = FastCoreset(points, {}, options, rng);
  DistortionOptions probe;
  probe.k = 50;
  EXPECT_LT(CoresetDistortion(points, {}, coreset, probe, rng), 2.0);
}

TEST(WeightedEndToEndTest, PreWeightedInputFlowsThroughEverything) {
  // Simulate a pre-aggregated input (e.g. the output of another coreset).
  Rng rng(13);
  const Matrix points = GenerateGaussianMixture(4000, 6, 8, 1.0, rng);
  std::vector<double> weights(points.rows());
  for (double& w : weights) w = 1.0 + 4.0 * rng.NextDouble();
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;

  const std::vector<std::string> spectrum = {
      "uniform", "lightweight", "welterweight", "sensitivity",
      "fast_coreset"};
  for (size_t s = 0; s < spectrum.size(); ++s) {
    api::CoresetSpec spec;
    spec.method = spectrum[s];
    spec.k = 8;
    spec.m = 300;
    Rng local(200 + s);
    const Coreset coreset = api::Build(spec, points, weights, local)->coreset;
    EXPECT_NEAR(coreset.TotalWeight() / total_weight, 1.0, 0.25)
        << spec.method;
    DistortionOptions probe;
    probe.k = 8;
    EXPECT_LT(CoresetDistortion(points, weights, coreset, probe, local), 2.0)
        << spec.method;
  }
}

}  // namespace
}  // namespace fastcoreset
