// Tests for the persistent thread pool behind ParallelFor/ParallelReduce
// (parallel.cc): lazy initialization, reentrancy (nested dispatches run
// inline instead of deadlocking), worker counts exceeding the chunk
// count, repeated init/teardown via ShutdownThreadPool, and exact
// coverage of the chunk partition under stealing.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/parallel.h"

namespace fastcoreset {
namespace {

// Large enough that the chunk plan splits the range and the pool engages
// (see kSerialCutoff in parallel.cc).
constexpr size_t kRows = 100000;

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(size_t count) { SetNumThreads(count); }
  ~ThreadCountGuard() { ResetNumThreads(); }
};

double SerialReferenceSum(size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += static_cast<double>(i % 97);
  return total;
}

TEST(ThreadPoolTest, PoolSpinsUpLazilyAndExecutesEveryIndexOnce) {
  ThreadCountGuard guard(4);
  ShutdownThreadPool();
  EXPECT_EQ(ThreadPoolWorkerCount(), 0u);

  std::vector<std::atomic<uint32_t>> visits(kRows);
  for (auto& v : visits) v.store(0);
  ParallelFor(kRows, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  // 4 requested executors = the caller + 3 pool workers.
  EXPECT_EQ(ThreadPoolWorkerCount(), 3u);
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadCountGuard guard(4);
  std::atomic<size_t> inner_total{0};
  ParallelFor(kRows, [&](size_t begin, size_t end) {
    // A nested dispatch from inside a chunk body must run serially on
    // this thread — if it tried to re-enter the pool it would park on
    // workers that are already busy here.
    size_t local = 0;
    ParallelFor(end - begin, [&](size_t inner_begin, size_t inner_end) {
      local += inner_end - inner_begin;
    });
    inner_total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(inner_total.load(), kRows);
}

TEST(ThreadPoolTest, ReduceNestedInsideForIsCorrect) {
  ThreadCountGuard guard(4);
  std::atomic<int> mismatches{0};
  ParallelFor(kRows, [&](size_t begin, size_t end) {
    const double nested = ParallelReduce(
        end - begin, [&](size_t inner_begin, size_t inner_end) {
          return static_cast<double>(inner_end - inner_begin);
        });
    if (nested != static_cast<double>(end - begin)) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadPoolTest, ThreadCountAboveChunkCountIsSafe) {
  // kRows/4096-ish chunks but far more requested workers: executor count
  // is clamped to the chunk count, extra pool capacity just idles.
  ThreadCountGuard guard(64);
  const double expected = SerialReferenceSum(kRows);
  const double total = ParallelReduce(kRows, [](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      partial += static_cast<double>(i % 97);
    }
    return partial;
  });
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, RepeatedInitTeardownCycles) {
  for (int cycle = 0; cycle < 5; ++cycle) {
    ThreadCountGuard guard(3);
    const double total =
        ParallelReduce(kRows, [](size_t begin, size_t end) {
          double partial = 0.0;
          for (size_t i = begin; i < end; ++i) {
            partial += static_cast<double>(i % 97);
          }
          return partial;
        });
    EXPECT_EQ(total, SerialReferenceSum(kRows));
    EXPECT_GT(ThreadPoolWorkerCount(), 0u);
    ShutdownThreadPool();
    EXPECT_EQ(ThreadPoolWorkerCount(), 0u);
  }
}

TEST(ThreadPoolTest, GrowAndShrinkThreadCountAcrossDispatches) {
  ShutdownThreadPool();
  const double expected = SerialReferenceSum(kRows);
  auto body = [](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      partial += static_cast<double>(i % 97);
    }
    return partial;
  };
  for (size_t threads : {2, 8, 3, 1, 6}) {
    ThreadCountGuard guard(threads);
    EXPECT_EQ(ParallelReduce(kRows, body), expected)
        << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, SerialPathBypassesPoolEntirely) {
  ShutdownThreadPool();
  ThreadCountGuard guard(1);
  double total = 0.0;  // Unsynchronized on purpose: serial execution.
  ParallelFor(kRows, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) total += 1.0;
  });
  EXPECT_EQ(total, static_cast<double>(kRows));
  EXPECT_EQ(ThreadPoolWorkerCount(), 0u);
}

TEST(ThreadPoolTest, ChunkIndicesMatchPlanAtAnyThreadCount) {
  const size_t chunks = ParallelChunkCount(kRows);
  for (size_t threads : {1, 4, 16}) {
    ThreadCountGuard guard(threads);
    std::vector<std::atomic<uint32_t>> seen(chunks);
    for (auto& s : seen) s.store(0);
    std::atomic<bool> bounds_ok{true};
    ParallelForChunks(kRows, [&](size_t chunk, size_t begin, size_t end) {
      if (chunk >= chunks || begin >= end || end > kRows) {
        bounds_ok.store(false);
      } else {
        seen[chunk].fetch_add(1, std::memory_order_relaxed);
      }
    });
    EXPECT_TRUE(bounds_ok.load());
    for (size_t c = 0; c < chunks; ++c) {
      ASSERT_EQ(seen[c].load(), 1u) << "chunk " << c;
    }
  }
}

}  // namespace
}  // namespace fastcoreset
