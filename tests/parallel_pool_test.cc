// Tests for the persistent thread pool behind ParallelFor/ParallelReduce
// (parallel.cc) and the task-graph tier above it (task_graph.cc): lazy
// initialization, reentrancy (nested dispatches run inline instead of
// deadlocking), worker counts exceeding the chunk count, repeated
// init/teardown via ShutdownThreadPool, exact coverage of the chunk
// partition under stealing, concurrent independent dispatches, budget
// scoping, and shutdown racing a running task graph.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/parallel.h"
#include "src/common/task_graph.h"

namespace fastcoreset {
namespace {

// Large enough that the chunk plan splits the range and the pool engages
// (see kSerialCutoff in parallel.cc).
constexpr size_t kRows = 100000;

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(size_t count) { SetNumThreads(count); }
  ~ThreadCountGuard() { ResetNumThreads(); }
};

double SerialReferenceSum(size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += static_cast<double>(i % 97);
  return total;
}

TEST(ThreadPoolTest, PoolSpinsUpLazilyAndExecutesEveryIndexOnce) {
  ThreadCountGuard guard(4);
  ShutdownThreadPool();
  EXPECT_EQ(ThreadPoolWorkerCount(), 0u);

  std::vector<std::atomic<uint32_t>> visits(kRows);
  for (auto& v : visits) v.store(0);
  ParallelFor(kRows, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  // 4 requested executors = the caller + 3 pool workers.
  EXPECT_EQ(ThreadPoolWorkerCount(), 3u);
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadCountGuard guard(4);
  std::atomic<size_t> inner_total{0};
  ParallelFor(kRows, [&](size_t begin, size_t end) {
    // A nested dispatch from inside a chunk body must run serially on
    // this thread — if it tried to re-enter the pool it would park on
    // workers that are already busy here.
    size_t local = 0;
    ParallelFor(end - begin, [&](size_t inner_begin, size_t inner_end) {
      local += inner_end - inner_begin;
    });
    inner_total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(inner_total.load(), kRows);
}

TEST(ThreadPoolTest, ReduceNestedInsideForIsCorrect) {
  ThreadCountGuard guard(4);
  std::atomic<int> mismatches{0};
  ParallelFor(kRows, [&](size_t begin, size_t end) {
    const double nested = ParallelReduce(
        end - begin, [&](size_t inner_begin, size_t inner_end) {
          return static_cast<double>(inner_end - inner_begin);
        });
    if (nested != static_cast<double>(end - begin)) ++mismatches;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadPoolTest, ThreadCountAboveChunkCountIsSafe) {
  // kRows/4096-ish chunks but far more requested workers: executor count
  // is clamped to the chunk count, extra pool capacity just idles.
  ThreadCountGuard guard(64);
  const double expected = SerialReferenceSum(kRows);
  const double total = ParallelReduce(kRows, [](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      partial += static_cast<double>(i % 97);
    }
    return partial;
  });
  EXPECT_EQ(total, expected);
}

TEST(ThreadPoolTest, RepeatedInitTeardownCycles) {
  for (int cycle = 0; cycle < 5; ++cycle) {
    ThreadCountGuard guard(3);
    const double total =
        ParallelReduce(kRows, [](size_t begin, size_t end) {
          double partial = 0.0;
          for (size_t i = begin; i < end; ++i) {
            partial += static_cast<double>(i % 97);
          }
          return partial;
        });
    EXPECT_EQ(total, SerialReferenceSum(kRows));
    EXPECT_GT(ThreadPoolWorkerCount(), 0u);
    ShutdownThreadPool();
    EXPECT_EQ(ThreadPoolWorkerCount(), 0u);
  }
}

TEST(ThreadPoolTest, GrowAndShrinkThreadCountAcrossDispatches) {
  ShutdownThreadPool();
  const double expected = SerialReferenceSum(kRows);
  auto body = [](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      partial += static_cast<double>(i % 97);
    }
    return partial;
  };
  for (size_t threads : {2, 8, 3, 1, 6}) {
    ThreadCountGuard guard(threads);
    EXPECT_EQ(ParallelReduce(kRows, body), expected)
        << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, SerialPathBypassesPoolEntirely) {
  ShutdownThreadPool();
  ThreadCountGuard guard(1);
  double total = 0.0;  // Unsynchronized on purpose: serial execution.
  ParallelFor(kRows, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) total += 1.0;
  });
  EXPECT_EQ(total, static_cast<double>(kRows));
  EXPECT_EQ(ThreadPoolWorkerCount(), 0u);
}

TEST(ThreadPoolTest, ChunkIndicesMatchPlanAtAnyThreadCount) {
  const size_t chunks = ParallelChunkCount(kRows);
  for (size_t threads : {1, 4, 16}) {
    ThreadCountGuard guard(threads);
    std::vector<std::atomic<uint32_t>> seen(chunks);
    for (auto& s : seen) s.store(0);
    std::atomic<bool> bounds_ok{true};
    ParallelForChunks(kRows, [&](size_t chunk, size_t begin, size_t end) {
      if (chunk >= chunks || begin >= end || end > kRows) {
        bounds_ok.store(false);
      } else {
        seen[chunk].fetch_add(1, std::memory_order_relaxed);
      }
    });
    EXPECT_TRUE(bounds_ok.load());
    for (size_t c = 0; c < chunks; ++c) {
      ASSERT_EQ(seen[c].load(), 1u) << "chunk " << c;
    }
  }
}

TEST(ThreadPoolTest, ConcurrentIndependentDispatchesAreBothExact) {
  // Two threads each drive their own ParallelReduce through the shared
  // pool at the same time — the multi-task dispatch path (tasks_ vector,
  // PickTaskLocked) must keep the two chunk ranges fully separate.
  ThreadCountGuard guard(4);
  const double expected = SerialReferenceSum(kRows);
  auto body = [](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      partial += static_cast<double>(i % 97);
    }
    return partial;
  };
  for (int round = 0; round < 10; ++round) {
    double other = 0.0;
    std::thread concurrent([&] { other = ParallelReduce(kRows, body); });
    const double mine = ParallelReduce(kRows, body);
    concurrent.join();
    ASSERT_EQ(mine, expected) << "round " << round;
    ASSERT_EQ(other, expected) << "round " << round;
  }
}

TEST(ThreadPoolTest, BudgetScopeOfOneForcesSerialExecution) {
  ShutdownThreadPool();
  ThreadCountGuard guard(8);
  {
    ParallelBudgetScope scope(1);
    double total = 0.0;  // Unsynchronized on purpose: must run serially.
    ParallelFor(kRows, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) total += 1.0;
    });
    EXPECT_EQ(total, static_cast<double>(kRows));
    // The serial path never touches the pool, so no workers spin up.
    EXPECT_EQ(ThreadPoolWorkerCount(), 0u);
  }
  // Scope gone: the same dispatch engages the pool again.
  EXPECT_EQ(ParallelReduce(kRows,
                           [](size_t begin, size_t end) {
                             double partial = 0.0;
                             for (size_t i = begin; i < end; ++i) {
                               partial += static_cast<double>(i % 97);
                             }
                             return partial;
                           }),
            SerialReferenceSum(kRows));
  EXPECT_GT(ThreadPoolWorkerCount(), 0u);
}

TEST(ThreadPoolTest, NestedBudgetScopesOnlyTighten) {
  ThreadCountGuard guard(8);
  ParallelBudgetScope outer(1);
  {
    // An inner scope asking for MORE budget than the outer must not win:
    // a node granted a 1-thread slice cannot widen itself back out.
    ParallelBudgetScope inner(8);
    double total = 0.0;  // Unsynchronized on purpose.
    ParallelFor(kRows, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) total += 1.0;
    });
    EXPECT_EQ(total, static_cast<double>(kRows));
  }
}

TEST(TaskGraphTest, DependenciesExecuteBeforeDependents) {
  ThreadCountGuard guard(4);
  // A diamond: 0 -> {1, 2} -> 3. Each node records the order stamp it
  // ran at; edges must be respected at any schedule.
  std::atomic<size_t> stamp{0};
  size_t order[4] = {0, 0, 0, 0};
  TaskGraph graph;
  const TaskGraph::TaskId a = graph.AddTask(
      [&] { order[0] = stamp.fetch_add(1, std::memory_order_relaxed); });
  const TaskGraph::TaskId b = graph.AddTask(
      [&] { order[1] = stamp.fetch_add(1, std::memory_order_relaxed); },
      {a});
  const TaskGraph::TaskId c = graph.AddTask(
      [&] { order[2] = stamp.fetch_add(1, std::memory_order_relaxed); },
      {a});
  graph.AddTask(
      [&] { order[3] = stamp.fetch_add(1, std::memory_order_relaxed); },
      {b, c});
  const TaskGraph::RunStats stats = graph.Run();
  EXPECT_EQ(stats.tasks_executed, 4u);
  EXPECT_LT(order[0], order[1]);
  EXPECT_LT(order[0], order[2]);
  EXPECT_LT(order[1], order[3]);
  EXPECT_LT(order[2], order[3]);
}

TEST(TaskGraphTest, SequentialBudgetWalksInSubmissionOrder) {
  ThreadCountGuard guard(4);
  // parallelism = 1 is the sequential reference walk: independent nodes
  // run in exactly the order they were added (min-heap on task id).
  std::vector<size_t> ran;
  TaskGraph graph;
  for (size_t i = 0; i < 8; ++i) {
    graph.AddTask([&ran, i] { ran.push_back(i); });
  }
  const TaskGraph::RunStats stats = graph.Run(/*parallelism=*/1);
  EXPECT_EQ(stats.parallelism, 1u);
  EXPECT_EQ(stats.max_concurrent_tasks, 1u);
  ASSERT_EQ(ran.size(), 8u);
  for (size_t i = 0; i < ran.size(); ++i) EXPECT_EQ(ran[i], i);
}

TEST(TaskGraphTest, StatsCountersReflectTheRun) {
  ThreadCountGuard guard(4);
  std::atomic<size_t> executed{0};
  TaskGraph graph;
  std::vector<TaskGraph::TaskId> roots;
  for (size_t i = 0; i < 6; ++i) {
    roots.push_back(graph.AddTask(
        [&] { executed.fetch_add(1, std::memory_order_relaxed); }));
  }
  graph.AddTask([&] { executed.fetch_add(1, std::memory_order_relaxed); },
                roots);
  const TaskGraph::RunStats stats = graph.Run(/*parallelism=*/2);
  EXPECT_EQ(executed.load(), 7u);
  EXPECT_EQ(stats.tasks_executed, 7u);
  EXPECT_EQ(stats.parallelism, 2u);
  EXPECT_GE(stats.max_concurrent_tasks, 1u);
  EXPECT_LE(stats.max_concurrent_tasks, 2u);
  // All 6 roots were ready before any executed.
  EXPECT_GE(stats.queue_high_water, 6u);
}

TEST(TaskGraphTest, NodesDispatchingParallelWorkCompose) {
  ThreadCountGuard guard(4);
  // Each node runs its own ParallelReduce on a budget slice; results must
  // be exact regardless of how the slices interleave on the pool.
  constexpr size_t kNodes = 6;
  const double expected = SerialReferenceSum(kRows);
  double sums[kNodes] = {0};
  TaskGraph graph;
  for (size_t node = 0; node < kNodes; ++node) {
    graph.AddTask([&sums, node] {
      sums[node] = ParallelReduce(kRows, [](size_t begin, size_t end) {
        double partial = 0.0;
        for (size_t i = begin; i < end; ++i) {
          partial += static_cast<double>(i % 97);
        }
        return partial;
      });
    });
  }
  graph.Run();
  for (size_t node = 0; node < kNodes; ++node) {
    EXPECT_EQ(sums[node], expected) << "node " << node;
  }
}

TEST(TaskGraphTest, ShutdownRacingARunningGraphNeverDeadlocks) {
  // The drain-safety regression: ShutdownThreadPool() fired while graph
  // nodes are mid-flight (some queued, some dispatching chunk work into
  // the pool). Every dispatcher participates in its own dispatch and
  // steals all queues, so the graph must complete exactly even when the
  // pool's workers vanish underneath it — serially if need be.
  for (int round = 0; round < 5; ++round) {
    ThreadCountGuard guard(4);
    constexpr size_t kNodes = 8;
    std::atomic<size_t> done{0};
    double sums[kNodes] = {0};
    const double expected = SerialReferenceSum(kRows);
    TaskGraph graph;
    std::vector<TaskGraph::TaskId> deps;
    for (size_t node = 0; node < kNodes; ++node) {
      // A dependency chain every other node: keeps nodes queued (not yet
      // ready) while shutdown fires, exercising the queued-node path.
      std::vector<TaskGraph::TaskId> node_deps;
      if (node % 2 == 1) node_deps.push_back(deps.back());
      deps.push_back(graph.AddTask(
          [&sums, &done, node] {
            sums[node] =
                ParallelReduce(kRows, [](size_t begin, size_t end) {
                  double partial = 0.0;
                  for (size_t i = begin; i < end; ++i) {
                    partial += static_cast<double>(i % 97);
                  }
                  return partial;
                });
            done.fetch_add(1, std::memory_order_relaxed);
          },
          node_deps));
    }
    std::thread runner([&graph] { graph.Run(); });
    // Fire teardown mid-run (no sleep: the race window is the point —
    // some rounds hit it early, some late).
    ShutdownThreadPool();
    runner.join();
    ASSERT_EQ(done.load(), kNodes) << "round " << round;
    for (size_t node = 0; node < kNodes; ++node) {
      ASSERT_EQ(sums[node], expected) << "round " << round << " node "
                                      << node;
    }
    // The pool must still be usable after the race.
    EXPECT_EQ(ParallelReduce(kRows,
                             [](size_t begin, size_t end) {
                               double partial = 0.0;
                               for (size_t i = begin; i < end; ++i) {
                                 partial += static_cast<double>(i % 97);
                               }
                               return partial;
                             }),
              expected);
    ShutdownThreadPool();
  }
}

}  // namespace
}  // namespace fastcoreset
