// The socket transport end to end: Session framing/ordering as a pure
// state machine, then NetServer over real loopback sockets — concurrent
// clients, pipelining, queue saturation (every request answered, shed
// requests get the structured "unavailable" error, nothing dropped
// mid-response), graceful drain with an in-flight build, per-client
// limits, and the session cap. Runs under the TSan preset like the rest
// of the service concurrency coverage: the poll thread, the worker
// pool, and client threads all race here on purpose.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/net/net_server.h"
#include "src/net/session.h"
#include "src/service/json.h"
#include "src/service/protocol.h"
#include "src/service/service.h"

namespace fastcoreset {
namespace {

using net::NetServer;
using net::NetServerOptions;
using net::Session;
using net::SessionLimits;
using service::CoresetService;
using service::JsonValue;

// ---------------------------------------------------------------------
// Session: framing and response ordering without any sockets.
// ---------------------------------------------------------------------

TEST(SessionTest, FramesLinesAcrossChunkBoundariesAndCrlf) {
  Session session(1, -1, SessionLimits{});
  const std::string wire = "{\"a\":1}\r\n{\"b\":2}\n{\"c\"";
  // Feed one byte at a time: framing must be chunking-invariant.
  for (char byte : wire) session.IngestBytes(&byte, 1);

  auto first = session.NextRequest();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->sequence, 0u);
  EXPECT_EQ(first->line, "{\"a\":1}");
  auto second = session.NextRequest();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->line, "{\"b\":2}");
  EXPECT_FALSE(session.NextRequest().has_value()) << "partial line held";

  // Half-close frames the unterminated tail, like getline at EOF.
  session.NoteReadClosed();
  auto last = session.NextRequest();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->line, "{\"c\"");
}

TEST(SessionTest, ResponsesFlushStrictlyInRequestOrder) {
  Session session(1, -1, SessionLimits{});
  const std::string wire = "one\ntwo\nthree\n";
  session.IngestBytes(wire.data(), wire.size());
  auto a = session.NextRequest();
  auto b = session.NextRequest();
  auto c = session.NextRequest();
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(session.open_requests(), 3u);

  // Completions land out of order; the wire order must not.
  session.CompleteRequest(c->sequence, "R3");
  EXPECT_FALSE(session.HasOutput()) << "later response must be parked";
  session.CompleteRequest(a->sequence, "R1");
  session.CompleteRequest(b->sequence, "R2");
  ASSERT_TRUE(session.HasOutput());
  EXPECT_EQ(std::string(session.OutputData(), session.OutputSize()),
            "R1\nR2\nR3\n");
  session.ConsumeOutput(session.OutputSize());
  EXPECT_TRUE(session.Drained());
}

TEST(SessionTest, OversizedLineBecomesMarkerInItsArrivalSlot) {
  SessionLimits limits;
  limits.max_line_bytes = 8;
  Session session(1, -1, limits);
  const std::string wire =
      "short\n" + std::string(100, 'x') + "\nafter\n";
  session.IngestBytes(wire.data(), wire.size());

  auto first = session.NextRequest();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->line, "short");
  EXPECT_FALSE(first->oversized);
  auto marker = session.NextRequest();
  ASSERT_TRUE(marker.has_value());
  EXPECT_TRUE(marker->oversized);
  EXPECT_TRUE(marker->line.empty());
  auto after = session.NextRequest();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->line, "after");

  // The endless-line variant triggers without ever seeing a newline.
  Session streaming(2, -1, limits);
  const std::string torrent(1000, 'y');
  streaming.IngestBytes(torrent.data(), torrent.size());
  auto shed = streaming.NextRequest();
  ASSERT_TRUE(shed.has_value());
  EXPECT_TRUE(shed->oversized);
  // The tail keeps draining without buffering; the next real line works.
  const std::string tail = "zzz\nok\n";
  streaming.IngestBytes(tail.data(), tail.size());
  auto ok = streaming.NextRequest();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->line, "ok");
}

TEST(SessionTest, InflightCapAndBackpressureGateReads) {
  SessionLimits limits;
  limits.max_inflight = 2;
  Session session(1, -1, limits);
  const std::string wire = "a\nb\nc\n";
  session.IngestBytes(wire.data(), wire.size());
  EXPECT_FALSE(session.WantsRead()) << "framed backlog pauses reads";

  auto a = session.NextRequest();
  auto b = session.NextRequest();
  ASSERT_TRUE(a && b);
  EXPECT_FALSE(session.NextRequest().has_value()) << "in-flight cap";
  session.CompleteRequest(a->sequence, "ra");
  auto c = session.NextRequest();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->line, "c");
  session.CompleteRequest(b->sequence, "rb");
  session.CompleteRequest(c->sequence, "rc");
  EXPECT_TRUE(session.WantsRead());
}

// ---------------------------------------------------------------------
// NetServer over real loopback sockets.
// ---------------------------------------------------------------------

/// A started daemon plus the thread running its poll loop.
class TestServer {
 public:
  explicit TestServer(NetServerOptions options)
      : server_(service_, options) {
    const api::FcStatus status = server_.Start();
    FC_CHECK_MSG(status.ok(), status.ToString().c_str());
    serve_thread_ = std::thread([this] { server_.Serve(); });
  }

  ~TestServer() {
    if (serve_thread_.joinable()) Drain();
  }

  void Drain() {
    server_.RequestDrain();
    serve_thread_.join();
  }

  uint16_t port() const { return server_.port(); }
  NetServer& server() { return server_; }
  CoresetService& service() { return service_; }

 private:
  CoresetService service_;
  NetServer server_;
  std::thread serve_thread_;
};

/// Blocking loopback client socket with a receive timeout so a server
/// bug fails the test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    FC_CHECK_MSG(fd_ >= 0, "socket");
    timeval timeout{};
    timeout.tv_sec = 120;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    FC_CHECK_MSG(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0,
                 "connect");
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      FC_CHECK_MSG(n > 0, "send");
      sent += static_cast<size_t>(n);
    }
  }

  void HalfClose() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until `lines` complete lines arrived or the peer closed.
  std::vector<std::string> ReadLines(size_t lines) {
    while (CountLines() < lines) {
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      received_.append(buf, static_cast<size_t>(n));
    }
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i < received_.size() && out.size() < lines; ++i) {
      if (received_[i] != '\n') continue;
      out.push_back(received_.substr(start, i - start));
      start = i + 1;
    }
    received_.erase(0, start);
    return out;
  }

  /// True once the server closed the connection (recv returns 0).
  bool WaitPeerClosed() {
    char buf[256];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
      received_.append(buf, static_cast<size_t>(n));
    }
  }

 private:
  size_t CountLines() const {
    size_t count = 0;
    for (char byte : received_) count += byte == '\n';
    return count;
  }

  int fd_ = -1;
  std::string received_;
};

JsonValue MustParse(const std::string& line) {
  auto parsed = service::ParseJson(line);
  FC_CHECK_MSG(parsed.ok(), line.c_str());
  return std::move(parsed.value());
}

bool IsOk(const JsonValue& response) {
  return response.Find("ok") != nullptr &&
         response.Find("ok")->bool_value();
}

std::string ErrorCode(const JsonValue& response) {
  const JsonValue* code = response.Find("code");
  return code == nullptr ? std::string() : code->string_value();
}

const char* const kRegisterLine =
    "{\"verb\":\"register\",\"name\":\"g\",\"synthetic\":{"
    "\"generator\":\"gaussian_mixture\",\"n\":4000,\"d\":4,\"kappa\":4,"
    "\"seed\":3}}\n";

std::string BuildLine(uint64_t seed) {
  return "{\"verb\":\"build\",\"dataset\":\"g\",\"method\":\"sensitivity\","
         "\"k\":4,\"m\":100,\"seed\":" +
         std::to_string(seed) + ",\"id\":" + std::to_string(seed) + "}\n";
}

TEST(NetServerTest, ConcurrentClientsGetOrderedCompleteResponses) {
  NetServerOptions options;
  options.workers = 3;
  TestServer server(options);

  {
    TestClient registrar(server.port());
    registrar.Send(kRegisterLine);
    const auto ack = registrar.ReadLines(1);
    ASSERT_EQ(ack.size(), 1u);
    ASSERT_TRUE(IsOk(MustParse(ack[0]))) << ack[0];
  }

  constexpr size_t kClients = 6;
  constexpr size_t kRequestsPerClient = 4;  // == default max_inflight
  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &server, &responses] {
      TestClient client(server.port());
      std::string burst;
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        burst += BuildLine(100 + c * kRequestsPerClient + r);
      }
      client.Send(burst);  // pipelined: all requests before any read
      responses[c] = client.ReadLines(kRequestsPerClient);
    });
  }
  for (std::thread& thread : clients) thread.join();

  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), kRequestsPerClient) << "client " << c;
    for (size_t r = 0; r < kRequestsPerClient; ++r) {
      const JsonValue response = MustParse(responses[c][r]);
      EXPECT_EQ(response.Find("v")->number_value(), 1.0);
      ASSERT_TRUE(IsOk(response)) << responses[c][r];
      // The echoed id proves responses arrive in request order even
      // with several workers completing builds concurrently.
      EXPECT_EQ(response.Find("id")->number_value(),
                static_cast<double>(100 + c * kRequestsPerClient + r));
    }
  }

  server.Drain();
  const CoresetService::TransportStats load =
      server.service().TransportLoad();
  EXPECT_EQ(load.queue_depth, 0u);
  EXPECT_EQ(load.sessions_active, 0u);
}

TEST(NetServerTest, SaturatedQueueShedsWithStructuredUnavailable) {
  NetServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  TestServer server(options);

  {
    TestClient registrar(server.port());
    registrar.Send(kRegisterLine);
    ASSERT_TRUE(IsOk(MustParse(registrar.ReadLines(1).at(0))));
  }

  constexpr size_t kClients = 8;
  constexpr size_t kRequestsPerClient = 4;
  std::vector<std::vector<std::string>> responses(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([c, &server, &responses] {
      TestClient client(server.port());
      std::string burst;
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        burst += BuildLine(1000 + c * kRequestsPerClient + r);
      }
      client.Send(burst);
      responses[c] = client.ReadLines(kRequestsPerClient);
    });
  }
  for (std::thread& thread : clients) thread.join();

  // The contract under overload: every request gets exactly one valid
  // protocol response — success or a structured "unavailable" — and no
  // connection is dropped mid-stream.
  size_t served = 0;
  size_t shed = 0;
  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), kRequestsPerClient)
        << "client " << c << " lost responses";
    for (const std::string& line : responses[c]) {
      const JsonValue response = MustParse(line);
      EXPECT_EQ(response.Find("v")->number_value(), 1.0) << line;
      if (IsOk(response)) {
        ++served;
        continue;
      }
      ASSERT_EQ(ErrorCode(response), "unavailable") << line;
      EXPECT_GE(response.Find("queue_limit")->number_value(), 1.0);
      ++shed;
    }
  }
  EXPECT_GT(served, 0u) << "admission control must not starve everyone";
  EXPECT_GT(shed, 0u) << "32 pipelined builds, queue=1, one worker — "
                         "saturation must shed";

  server.Drain();
  EXPECT_GE(server.service().TransportLoad().requests_rejected, shed);
}

TEST(NetServerTest, DrainFinishesInFlightBuildBeforeExiting) {
  NetServerOptions options;
  options.workers = 1;
  TestServer server(options);

  TestClient client(server.port());
  client.Send(kRegisterLine);
  ASSERT_TRUE(IsOk(MustParse(client.ReadLines(1).at(0))));

  // A cache-missing build is dispatched, then drain is requested while
  // it (most likely) executes. Either way the already-admitted request
  // must complete and its response must be flushed before Serve returns.
  client.Send(BuildLine(7));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Drain();  // returns only after the drain completed

  const auto lines = client.ReadLines(1);
  ASSERT_EQ(lines.size(), 1u) << "drain must flush the pending response";
  const JsonValue response = MustParse(lines[0]);
  EXPECT_TRUE(IsOk(response)) << lines[0];
  EXPECT_TRUE(client.WaitPeerClosed());
}

TEST(NetServerTest, OversizedLineGetsErrorAndConnectionSurvives) {
  NetServerOptions options;
  options.session.max_line_bytes = 64;
  TestServer server(options);

  TestClient client(server.port());
  client.Send(std::string(5000, 'x') + "\n{\"verb\":\"stats\"}\n");
  const auto lines = client.ReadLines(2);
  ASSERT_EQ(lines.size(), 2u);
  const JsonValue error = MustParse(lines[0]);
  EXPECT_FALSE(IsOk(error));
  EXPECT_EQ(ErrorCode(error), "invalid_argument") << lines[0];
  EXPECT_TRUE(IsOk(MustParse(lines[1]))) << lines[1];
}

TEST(NetServerTest, SessionCapRejectsExtraConnections) {
  NetServerOptions options;
  options.max_sessions = 1;
  TestServer server(options);

  TestClient first(server.port());
  first.Send("{\"verb\":\"stats\"}\n");
  ASSERT_TRUE(IsOk(MustParse(first.ReadLines(1).at(0))))
      << "first session must be admitted before the second connects";

  TestClient second(server.port());
  const auto lines = second.ReadLines(1);
  if (!lines.empty()) {
    // The rejection line is best-effort; when it arrives it must be the
    // structured unavailable error.
    EXPECT_EQ(ErrorCode(MustParse(lines[0])), "unavailable") << lines[0];
  }
  EXPECT_TRUE(second.WaitPeerClosed());
}

TEST(NetServerTest, IdleSessionsAreReaped) {
  NetServerOptions options;
  options.idle_timeout_seconds = 0.2;
  TestServer server(options);

  TestClient client(server.port());
  client.Send("{\"verb\":\"stats\"}\n");
  ASSERT_EQ(client.ReadLines(1).size(), 1u);
  // No further traffic: the server must close the connection on its own.
  EXPECT_TRUE(client.WaitPeerClosed());
}

TEST(NetServerTest, HalfCloseStillDeliversAllResponses) {
  TestServer server{NetServerOptions{}};

  TestClient client(server.port());
  client.Send("{\"verb\":\"stats\"}\n{\"verb\":\"stats\",\"id\":\"z\"}");
  client.HalfClose();  // EOF frames the trailing line, like stdio
  const auto lines = client.ReadLines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(IsOk(MustParse(lines[0])));
  const JsonValue last = MustParse(lines[1]);
  EXPECT_TRUE(IsOk(last));
  EXPECT_EQ(last.Find("id")->string_value(), "z");
  EXPECT_TRUE(client.WaitPeerClosed());
}

}  // namespace
}  // namespace fastcoreset
