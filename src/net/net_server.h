// NetServer: the multi-client socket transport of fc_serve. One poll(2)
// driven I/O thread owns all sockets (the TcpListener plus every client
// fd); a small worker pool executes requests against CoresetService.
// Between them sits a bounded global request queue — the admission
// control point: when it is full, new requests are answered immediately
// with the structured "unavailable" protocol error instead of queueing
// (shed, not dropped — the client always gets a response line).
//
// Threading model. All mutable server state (sessions, queue, counters)
// is guarded by a single mutex_ at lock_rank::kNetServer — the outermost
// rank in the tree, so workers holding it could legally call into the
// service; they deliberately don't (HandleRequestLine runs unlocked, and
// the service takes its own rank-10+ locks). The I/O thread parks in
// poll() and is woken through a self-pipe by workers (response ready)
// and by RequestDrain (signal handler) — the only async-signal-safe
// surface: an atomic store plus one write(2) on the pipe.
//
// Shutdown. RequestDrain() (SIGTERM/SIGINT) stops accepting new
// connections and new request lines, lets queued and executing builds
// finish, flushes every pending response, then Serve() returns. Clients
// mid-request get their response before their connection closes: drain
// is graceful by construction, not by timeout.
//
// This layer inherits the service layer's non-aborting contract: no
// input, client behavior, or socket error may terminate the daemon.

#ifndef FASTCORESET_NET_NET_SERVER_H_
#define FASTCORESET_NET_NET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include "src/api/status.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/net/listener.h"
#include "src/net/session.h"
#include "src/service/service.h"

namespace fastcoreset {
namespace net {

struct NetServerOptions {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port,
  /// readable via NetServer::port() once Start() succeeds.
  uint16_t port = 0;
  /// Worker threads executing requests against the service.
  size_t workers = 2;
  /// Bounded global request queue; a request arriving while the queue
  /// holds this many is shed with the "unavailable" protocol error.
  size_t max_queue = 64;
  /// Connection cap; further accepts are closed after a best-effort
  /// "unavailable" line.
  size_t max_sessions = 64;
  /// Per-client framing and pipelining limits.
  SessionLimits session;
  /// Connections with no traffic for this long are closed (<= 0
  /// disables the timeout).
  double idle_timeout_seconds = 300.0;
};

class NetServer {
 public:
  NetServer(service::CoresetService& service, NetServerOptions options)
      : service_(service), options_(options) {}
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds the listener, opens the wakeup pipe, and launches the worker
  /// pool. On error nothing is left running.
  api::FcStatus Start();

  /// Runs the poll loop on the calling thread until a drain completes.
  /// Requires a successful Start().
  void Serve();

  /// Initiates graceful drain. Async-signal-safe (atomic store + pipe
  /// write) — this is the SIGTERM/SIGINT handler's entry point; safe to
  /// call from any thread, any number of times.
  void RequestDrain();

  /// The bound listener port (valid after Start()).
  uint16_t port() const { return listener_.port(); }

 private:
  struct QueuedRequest {
    uint64_t session_id = 0;
    uint64_t sequence = 0;
    std::string line;
  };

  void WorkerLoop();
  /// Frames, admits, or sheds everything currently readable from
  /// `session`; returns false when the connection must be closed.
  bool PumpSession(Session& session) FC_REQUIRES(mutex_);
  void DispatchReadyLines(Session& session) FC_REQUIRES(mutex_);
  /// Flushes pending output; returns false on a dead socket.
  bool FlushSession(Session& session) FC_REQUIRES(mutex_);
  void CloseSession(uint64_t session_id) FC_REQUIRES(mutex_);
  void PublishTransportGauges() FC_REQUIRES(mutex_);
  bool DrainComplete() FC_REQUIRES(mutex_);
  void DrainWakePipe();

  service::CoresetService& service_;
  const NetServerOptions options_;
  TcpListener listener_;

  /// Self-pipe: [0] is polled by the I/O thread, [1] is written by
  /// workers and RequestDrain to interrupt poll().
  int wake_pipe_[2] = {-1, -1};
  /// Set by RequestDrain before the pipe write; read by the poll loop.
  std::atomic<bool> draining_{false};

  /// Rank kNetServer: the outermost lock of the tree — held briefly
  /// around state transitions, never across service calls or blocking
  /// socket I/O (see tools/lint/lock_hierarchy.toml).
  mutable Mutex mutex_ FC_ACQUIRED_AFTER(lock_rank::tier_net_server)
      FC_ACQUIRED_BEFORE(lock_rank::tier_service_scheduler){
          lock_rank::kNetServer};
  CondVar queue_cv_;  ///< Workers wait here for queue_ / stop.
  std::map<uint64_t, Session> sessions_ FC_GUARDED_BY(mutex_);
  std::deque<QueuedRequest> queue_ FC_GUARDED_BY(mutex_);
  size_t executing_ FC_GUARDED_BY(mutex_) = 0;
  uint64_t requests_rejected_ FC_GUARDED_BY(mutex_) = 0;
  uint64_t next_session_id_ FC_GUARDED_BY(mutex_) = 1;
  bool stop_workers_ FC_GUARDED_BY(mutex_) = false;

  std::vector<std::thread> workers_;
  bool started_ = false;  ///< I/O-thread only after Start().
};

}  // namespace net
}  // namespace fastcoreset

#endif  // FASTCORESET_NET_NET_SERVER_H_
