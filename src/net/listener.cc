#include "src/net/listener.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace fastcoreset {
namespace net {

namespace {

api::FcStatus Errno(const char* what) {
  return api::FcStatus::Internal(std::string(what) + ": " +
                                 std::strerror(errno));
}

}  // namespace

TcpListener::~TcpListener() { Close(); }

api::FcStatus TcpListener::Listen(uint16_t port) {
  if (fd_ >= 0) {
    return api::FcStatus::FailedPrecondition("listener is already open");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  // REUSEADDR so a drained server can restart on the same port without
  // waiting out TIME_WAIT sockets from its previous incarnation.
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const api::FcStatus status = Errno("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const api::FcStatus status = Errno("listen");
    ::close(fd);
    return status;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    const api::FcStatus status = Errno("fcntl(O_NONBLOCK)");
    ::close(fd);
    return status;
  }

  // Resolve the bound port (the kernel picked one when port == 0).
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const api::FcStatus status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return api::FcStatus::Ok();
}

int TcpListener::Accept() {
  if (fd_ < 0) return -1;
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return client;
    if (errno == EINTR) continue;
    // EAGAIN/EWOULDBLOCK: nothing pending. Anything else (ECONNABORTED,
    // EMFILE, ...) is shed the same way — the poll loop will retry, and
    // an accept failure must never take the daemon down.
    return -1;
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace fastcoreset
