// Session: the per-client state machine of the fc_serve socket
// transport. One instance per connected client, owning everything the
// NDJSON protocol needs between the socket and the service: the read
// buffer with line framing (one request per '\n'-terminated line), the
// request sequence numbers that pin response ordering, and the write
// queue the poll loop drains back to the socket.
//
// The class is deliberately socket-free: bytes go in through
// IngestBytes, complete request lines come out of NextRequest, finished
// response lines go back in through CompleteRequest (from any worker
// thread, in any order — delivery is re-sequenced so the client always
// sees responses in request order), and the flushed output comes out of
// OutputData/ConsumeOutput. That makes the framing, ordering, and limit
// logic unit-testable without a single fd. Sessions carry no lock of
// their own; NetServer serializes all access under its server mutex.
//
// Limits: a line longer than max_line_bytes is answered with a
// structured invalid_argument error in its arrival slot (the line's
// bytes are discarded as they stream in, so the buffer stays bounded and
// the connection stays usable); open_requests() is capped by max_inflight
// and, together with WantsRead, throttles how far a pipelining client
// can run ahead — backpressure, not data loss.

#ifndef FASTCORESET_NET_SESSION_H_
#define FASTCORESET_NET_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

namespace fastcoreset {
namespace net {

/// Per-client limits, set once at accept time from NetServerOptions.
struct SessionLimits {
  /// Longest accepted request line (bytes, newline excluded). Longer
  /// lines produce an error response and are discarded.
  size_t max_line_bytes = 1 << 20;
  /// Most requests a single client may have unanswered at once; further
  /// complete lines stay queued (and the server stops reading the
  /// socket) until responses drain — per-client backpressure.
  size_t max_inflight = 4;
};

class Session {
 public:
  Session(uint64_t id, int fd, SessionLimits limits)
      : id_(id), fd_(fd), limits_(limits) {}

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  const SessionLimits& limits() const { return limits_; }

  // --- read side -------------------------------------------------------

  /// Appends bytes received from the socket, framing them into request
  /// lines as they arrive. A line exceeding max_line_bytes is replaced by
  /// an oversized marker in its arrival slot and its remaining bytes are
  /// dropped until the terminating newline.
  void IngestBytes(const char* data, size_t size);

  /// The client half-closed its write side (recv returned 0): no more
  /// requests will arrive. An unterminated trailing line is framed as a
  /// final request (matching stdio getline-at-EOF semantics); buffered
  /// requests still run and their responses still flush.
  void NoteReadClosed();
  bool read_closed() const { return read_closed_; }

  /// True while the server should keep polling this socket for input:
  /// not half-closed, in-flight slots free, and no framed line already
  /// waiting for dispatch.
  bool WantsRead() const;

  /// One framed request, sequence-stamped. `oversized` requests carry no
  /// line (it was discarded) — the caller answers them with an error
  /// response via CompleteRequest, exactly like a real request. Returns
  /// nullopt when no complete line is buffered or all in-flight slots
  /// are taken.
  struct Request {
    uint64_t sequence = 0;
    std::string line;
    bool oversized = false;
  };
  std::optional<Request> NextRequest();

  // --- response side ---------------------------------------------------

  /// Hands back the response for `sequence` (any completion order).
  /// Responses are released to the write queue strictly in sequence
  /// order: a response completed out of order is parked until its
  /// predecessors land. The trailing '\n' is appended here.
  void CompleteRequest(uint64_t sequence, std::string response_line);

  /// Requests dispatched via NextRequest whose responses have not yet
  /// been released to the write queue.
  size_t open_requests() const {
    return static_cast<size_t>(next_sequence_ - next_release_);
  }

  // --- write side ------------------------------------------------------

  bool HasOutput() const { return output_.size() > write_offset_; }
  const char* OutputData() const { return output_.data() + write_offset_; }
  size_t OutputSize() const { return output_.size() - write_offset_; }
  /// Marks `bytes` of OutputData as written to the socket.
  void ConsumeOutput(size_t bytes);

  // --- lifecycle -------------------------------------------------------

  /// Nothing left to do for this client right now: no dispatched request
  /// awaiting its response, no framed line awaiting dispatch, and no
  /// pending output. With read_closed() this means the connection can be
  /// dropped.
  bool Drained() const {
    return open_requests() == 0 && ready_.empty() && !HasOutput();
  }

  /// Poll-loop bookkeeping for the idle timeout, in seconds on the
  /// server's monotonic clock.
  double last_activity_seconds = 0.0;

 private:
  struct PendingLine {
    std::string line;
    bool oversized = false;
  };

  const uint64_t id_;
  const int fd_;
  const SessionLimits limits_;

  std::string partial_;      ///< Unterminated tail of the current line.
  bool discarding_ = false;  ///< Dropping an oversized line's tail.
  bool read_closed_ = false;
  /// Framed lines (and oversized markers) in arrival order, awaiting
  /// dispatch via NextRequest.
  std::deque<PendingLine> ready_;

  uint64_t next_sequence_ = 0;  ///< Stamped onto the next NextRequest.
  uint64_t next_release_ = 0;   ///< Next sequence to release in order.
  /// Responses completed out of order, parked until releasable.
  std::map<uint64_t, std::string> parked_;

  std::string output_;
  size_t write_offset_ = 0;
};

}  // namespace net
}  // namespace fastcoreset

#endif  // FASTCORESET_NET_SESSION_H_
