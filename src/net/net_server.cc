#include "src/net/net_server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <string>
#include <utility>

#include "src/common/timer.h"
#include "src/service/protocol.h"

namespace fastcoreset {
namespace net {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One best-effort nonblocking write for sockets we are about to close
/// (session-cap and drain-time rejections). Losing it is acceptable;
/// blocking is not. Pending input is drained first so the close sends a
/// FIN, not an unread-data RST that could clip the rejection line.
void BestEffortSend(int fd, const std::string& data) {
  ::send(fd, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  char scratch[4096];
  while (::recv(fd, scratch, sizeof(scratch), MSG_DONTWAIT) > 0) {
  }
}

}  // namespace

NetServer::~NetServer() {
  // Normal shutdown happens at the end of Serve(); this covers objects
  // that were started but never served (e.g. Start() succeeded and the
  // caller bailed out before Serve()).
  {
    MutexLock lock(mutex_);
    stop_workers_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    MutexLock lock(mutex_);
    while (!sessions_.empty()) CloseSession(sessions_.begin()->first);
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  listener_.Close();
}

api::FcStatus NetServer::Start() {
  if (started_) {
    return api::FcStatus::FailedPrecondition("server is already started");
  }
  api::FcStatus status = listener_.Listen(options_.port);
  if (!status.ok()) return status;
  // A previous Serve() leaves its pipe open (see the Serve epilogue);
  // recycle it before opening a fresh one.
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (::pipe(wake_pipe_) != 0 || !SetNonBlocking(wake_pipe_[0]) ||
      !SetNonBlocking(wake_pipe_[1])) {
    listener_.Close();
    for (int& fd : wake_pipe_) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
    return api::FcStatus::Internal("failed to open the wakeup pipe");
  }
  const size_t workers = std::max<size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  started_ = true;
  return api::FcStatus::Ok();
}

void NetServer::RequestDrain() {
  // Async-signal-safe: one atomic store and one write(2). The poll loop
  // observes draining_ after the pipe wakes it.
  draining_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    // A full pipe already guarantees a pending wakeup; ignore the result
    // (there is nothing a signal handler could do about it anyway).
    const ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    static_cast<void>(ignored);
  }
}

void NetServer::DrainWakePipe() {
  char buf[64];
  while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
  }
}

void NetServer::Serve() {
  if (!started_) return;
  Timer clock;
  std::vector<pollfd> pollfds;
  std::vector<uint64_t> pollfd_sessions;  // parallel to pollfds[2..]
  bool listener_open = true;

  for (;;) {
    pollfds.clear();
    pollfd_sessions.clear();
    pollfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && listener_open) {
      // Drain step 1: stop accepting. In-flight work keeps running.
      listener_.Close();
      listener_open = false;
    }
    {
      MutexLock lock(mutex_);
      if (listener_open) {
        // Polled even at the session cap so rejects are prompt rather
        // than deferred to the next unrelated wakeup.
        pollfds.push_back(pollfd{listener_.fd(), POLLIN, 0});
      }
      for (auto& [id, session] : sessions_) {
        short events = 0;
        if (session.WantsRead()) events |= POLLIN;
        if (session.HasOutput()) events |= POLLOUT;
        if (events == 0) continue;
        pollfds.push_back(pollfd{session.fd(), events, 0});
        pollfd_sessions.push_back(id);
      }
    }

    int timeout_ms = -1;
    if (options_.idle_timeout_seconds > 0) {
      timeout_ms = static_cast<int>(std::min(
          1000.0, std::max(10.0, options_.idle_timeout_seconds * 250.0)));
    }
    const int ready = ::poll(pollfds.data(),
                             static_cast<nfds_t>(pollfds.size()), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      // poll() failing outright (EINVAL/ENOMEM) leaves no way to serve;
      // treat it as a drain request rather than spinning.
      draining_.store(true, std::memory_order_release);
    }
    if (pollfds[0].revents & POLLIN) DrainWakePipe();

    const double now = clock.Seconds();
    {
      MutexLock lock(mutex_);
      // Accept pending connections (pollfds[1] is the listener iff open).
      if (listener_open && pollfds.size() > 1 &&
          (pollfds[1].revents & POLLIN)) {
        for (;;) {
          const int client = listener_.Accept();
          if (client < 0) break;
          if (draining_.load(std::memory_order_acquire) ||
              sessions_.size() >= options_.max_sessions) {
            BestEffortSend(client, service::OverloadResponse(
                                       queue_.size(), options_.max_queue) +
                                       "\n");
            ::close(client);
            ++requests_rejected_;
            service_.AddTransportRejections(1);
            continue;
          }
          if (!SetNonBlocking(client)) {
            ::close(client);
            continue;
          }
          const uint64_t id = next_session_id_++;
          auto [it, inserted] = sessions_.emplace(
              id, Session(id, client, options_.session));
          it->second.last_activity_seconds = now;
          static_cast<void>(inserted);
        }
      }

      // Socket events for live sessions.
      for (size_t i = 0; i < pollfd_sessions.size(); ++i) {
        const pollfd& entry = pollfds[(listener_open ? 2 : 1) + i];
        auto it = sessions_.find(pollfd_sessions[i]);
        if (it == sessions_.end()) continue;
        Session& session = it->second;
        if (entry.revents & (POLLERR | POLLNVAL)) {
          CloseSession(session.id());
          continue;
        }
        if (entry.revents & (POLLIN | POLLHUP)) {
          if (!PumpSession(session)) {
            CloseSession(session.id());
            continue;
          }
          session.last_activity_seconds = now;
        }
        if (entry.revents & POLLOUT) {
          if (!FlushSession(session)) {
            CloseSession(session.id());
            continue;
          }
          session.last_activity_seconds = now;
        }
      }

      // Sweep every session: dispatch lines that were waiting for queue
      // space, flush responses parked by workers, and retire finished or
      // idle connections. O(sessions) per wakeup, and the caps keep
      // sessions small.
      std::vector<uint64_t> to_close;
      for (auto& [id, session] : sessions_) {
        DispatchReadyLines(session);
        if (!FlushSession(session)) {
          to_close.push_back(id);
          continue;
        }
        if (session.Drained() &&
            (session.read_closed() ||
             draining_.load(std::memory_order_acquire))) {
          to_close.push_back(id);
          continue;
        }
        if (options_.idle_timeout_seconds > 0 && session.Drained() &&
            now - session.last_activity_seconds >
                options_.idle_timeout_seconds) {
          to_close.push_back(id);
        }
      }
      for (const uint64_t id : to_close) CloseSession(id);
      PublishTransportGauges();

      if (DrainComplete()) {
        stop_workers_ = true;
        break;
      }
    }
    queue_cv_.NotifyAll();
  }

  // Drain step 3: everything answered and flushed — stop the workers so
  // exit is deterministic. The wake pipe stays open until the destructor:
  // RequestDrain (possibly a signal handler) may still write to it after
  // Serve returns, and closing here would race that write onto a recycled
  // fd.
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    MutexLock lock(mutex_);
    PublishTransportGauges();
  }
  listener_.Close();
  started_ = false;
}

bool NetServer::PumpSession(Session& session) {
  char buf[16384];
  while (session.WantsRead()) {
    const ssize_t n = ::recv(session.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      session.IngestBytes(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      session.NoteReadClosed();
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  DispatchReadyLines(session);
  return true;
}

void NetServer::DispatchReadyLines(Session& session) {
  while (true) {
    // NextRequest enforces the per-client in-flight cap; admission
    // control below sheds on a full queue. A shed request's
    // "unavailable" response still flows through the sequence path and
    // cannot overtake earlier in-flight responses.
    std::optional<Session::Request> request = session.NextRequest();
    if (!request.has_value()) return;
    if (request->oversized) {
      session.CompleteRequest(
          request->sequence,
          service::ErrorResponse(api::FcStatus::InvalidArgument(
              "request line exceeds the transport limit of " +
              std::to_string(session.limits().max_line_bytes) + " bytes")));
      continue;
    }
    if (draining_.load(std::memory_order_acquire) ||
        queue_.size() >= options_.max_queue) {
      session.CompleteRequest(
          request->sequence,
          service::OverloadResponse(queue_.size(), options_.max_queue));
      ++requests_rejected_;
      service_.AddTransportRejections(1);
      continue;
    }
    queue_.push_back(QueuedRequest{session.id(), request->sequence,
                                   std::move(request->line)});
    queue_cv_.NotifyOne();
  }
}

bool NetServer::FlushSession(Session& session) {
  while (session.HasOutput()) {
    const ssize_t n = ::send(session.fd(), session.OutputData(),
                             session.OutputSize(), MSG_NOSIGNAL);
    if (n > 0) {
      session.ConsumeOutput(static_cast<size_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
  return true;
}

void NetServer::CloseSession(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ::close(it->second.fd());
  sessions_.erase(it);
  // Queued requests from this session keep their slots; workers drop the
  // response when the session is gone.
}

void NetServer::PublishTransportGauges() {
  service_.ReportTransportLoad(queue_.size(), sessions_.size());
}

bool NetServer::DrainComplete() {
  if (!draining_.load(std::memory_order_acquire)) return false;
  return queue_.empty() && executing_ == 0 && sessions_.empty();
}

void NetServer::WorkerLoop() {
  for (;;) {
    QueuedRequest request;
    {
      MutexLock lock(mutex_);
      while (queue_.empty() && !stop_workers_) queue_cv_.Wait(mutex_);
      if (queue_.empty() && stop_workers_) return;
      request = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
      PublishTransportGauges();
    }

    // The expensive part runs without the transport lock: the service
    // takes its own (higher-ranked) locks and parallelizes internally.
    std::string response =
        service::HandleRequestLine(service_, request.line);

    bool wake = false;
    {
      MutexLock lock(mutex_);
      --executing_;
      auto it = sessions_.find(request.session_id);
      if (it != sessions_.end()) {
        it->second.CompleteRequest(request.sequence, std::move(response));
        wake = true;
      }
      if (draining_.load(std::memory_order_acquire)) wake = true;
    }
    if (wake && wake_pipe_[1] >= 0) {
      const char byte = 'w';
      const ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
      static_cast<void>(ignored);
    }
  }
}

}  // namespace net
}  // namespace fastcoreset
