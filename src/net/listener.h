// TcpListener: the accept side of the fc_serve socket transport. Owns a
// non-blocking loopback TCP listening socket; NetServer polls its fd and
// drains pending connections with Accept(). Deliberately minimal — every
// policy decision (admission, limits, drain) lives in NetServer, so this
// class is just the socket plumbing with FcStatus error reporting (the
// net layer inherits the service layer's non-aborting contract).

#ifndef FASTCORESET_NET_LISTENER_H_
#define FASTCORESET_NET_LISTENER_H_

#include <cstdint>

#include "src/api/status.h"

namespace fastcoreset {
namespace net {

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, read it
  /// back via port()), marks the socket non-blocking, and listens.
  /// Loopback-only by design: fc_serve has no authentication, so the
  /// daemon must not be reachable off-host.
  api::FcStatus Listen(uint16_t port);

  /// Accepts one pending connection; the returned fd is blocking (the
  /// caller decides whether to make it non-blocking). Returns -1 when no
  /// connection is pending or the listener is closed — accept errors are
  /// shed silently (the client retries; the server must not die).
  int Accept();

  void Close();

  bool listening() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The bound port (resolved after Listen, also for port 0).
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace fastcoreset

#endif  // FASTCORESET_NET_LISTENER_H_
