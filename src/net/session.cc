#include "src/net/session.h"

#include <cstring>
#include <utility>

namespace fastcoreset {
namespace net {

namespace {

/// Strips the optional '\r' of CRLF framing from line-oriented clients.
void StripCarriageReturn(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

void Session::IngestBytes(const char* data, size_t size) {
  size_t pos = 0;
  while (pos < size) {
    const void* newline = std::memchr(data + pos, '\n', size - pos);
    const size_t line_end =
        newline == nullptr
            ? size
            : static_cast<size_t>(static_cast<const char*>(newline) - data);
    if (discarding_) {
      // Inside an oversized line: drop everything up to its newline. The
      // error marker already sits in ready_ at the line's arrival slot.
      if (newline == nullptr) return;
      discarding_ = false;
      pos = line_end + 1;
      continue;
    }
    partial_.append(data + pos, line_end - pos);
    if (newline == nullptr) {
      // No newline yet — enforce the limit as bytes stream in so one
      // endless line cannot grow the buffer unbounded.
      if (partial_.size() > limits_.max_line_bytes) {
        partial_.clear();
        partial_.shrink_to_fit();
        discarding_ = true;
        ready_.push_back(PendingLine{std::string(), /*oversized=*/true});
      }
      return;
    }
    PendingLine pending;
    pending.line = std::move(partial_);
    partial_.clear();
    StripCarriageReturn(pending.line);
    if (pending.line.size() > limits_.max_line_bytes) {
      pending.line.clear();
      pending.oversized = true;
    }
    ready_.push_back(std::move(pending));
    pos = line_end + 1;
  }
}

void Session::NoteReadClosed() {
  read_closed_ = true;
  // A trailing line without a newline before EOF still counts as a
  // request, mirroring the stdio transport's getline loop. (If we were
  // mid-discard, its oversized marker is already queued.)
  if (!discarding_ && !partial_.empty()) {
    PendingLine pending;
    pending.line = std::move(partial_);
    StripCarriageReturn(pending.line);
    if (pending.line.size() > limits_.max_line_bytes) {
      pending.line.clear();
      pending.oversized = true;
    }
    ready_.push_back(std::move(pending));
  }
  partial_.clear();
  discarding_ = false;
}

bool Session::WantsRead() const {
  if (read_closed_) return false;
  if (open_requests() >= limits_.max_inflight) return false;
  // A framed line waiting for dispatch means the server is intentionally
  // holding back (queue backpressure); don't pile more input on top.
  return ready_.empty();
}

std::optional<Session::Request> Session::NextRequest() {
  if (ready_.empty()) return std::nullopt;
  if (open_requests() >= limits_.max_inflight) return std::nullopt;
  Request request;
  request.sequence = next_sequence_++;
  request.line = std::move(ready_.front().line);
  request.oversized = ready_.front().oversized;
  ready_.pop_front();
  return request;
}

void Session::CompleteRequest(uint64_t sequence, std::string response_line) {
  response_line.push_back('\n');
  parked_.emplace(sequence, std::move(response_line));
  // Release every response now contiguous with the already flushed
  // prefix; later sequences stay parked.
  auto it = parked_.begin();
  while (it != parked_.end() && it->first == next_release_) {
    output_ += it->second;
    it = parked_.erase(it);
    ++next_release_;
  }
}

void Session::ConsumeOutput(size_t bytes) {
  write_offset_ += bytes;
  if (write_offset_ >= output_.size()) {
    output_.clear();
    write_offset_ = 0;
  }
}

}  // namespace net
}  // namespace fastcoreset
