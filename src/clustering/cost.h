// Weighted clustering cost evaluation, cost_z(P, C) = sum_p w_p dist^z(p, C).

#ifndef FASTCORESET_CLUSTERING_COST_H_
#define FASTCORESET_CLUSTERING_COST_H_

#include <vector>

#include "src/clustering/types.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// cost_z(P, C): every point pays weight * dist^z to its *nearest* center.
/// `weights` may be empty (unit weights). O(n * k * d).
double CostToCenters(const Matrix& points, const std::vector<double>& weights,
                     const Matrix& centers, int z);

/// Cost of a fixed assignment (points need not be assigned to their nearest
/// center — Fast-kmeans++ produces such assignments).
double AssignmentCost(const Matrix& points, const std::vector<double>& weights,
                      const Matrix& centers,
                      const std::vector<size_t>& assignment, int z);

/// Reassigns every point to its nearest center and recomputes point costs
/// and the (weighted) total. Centers and z are taken from `clustering`.
void RefreshAssignment(const Matrix& points,
                       const std::vector<double>& weights,
                       Clustering* clustering);

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_COST_H_
