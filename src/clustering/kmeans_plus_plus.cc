#include "src/clustering/kmeans_plus_plus.h"

#include <cmath>

#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

Clustering KMeansPlusPlus(const Matrix& points,
                          const std::vector<double>& weights, size_t k,
                          int z, Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK(z == 1 || z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);
  if (k > n) k = n;

  Clustering result;
  result.z = z;
  result.centers = Matrix(k, points.cols());
  result.assignment.assign(n, 0);

  // min_sq[i] = squared distance to the closest chosen center so far.
  std::vector<double> min_sq(n, 0.0);
  std::vector<double> masses(n, 0.0);

  // First center: proportional to the weights alone.
  size_t first;
  if (weights.empty()) {
    first = rng.NextIndex(n);
  } else {
    first = rng.SampleDiscrete(weights);
  }
  result.centers.CopyRowFrom(points, first, 0);
  for (size_t i = 0; i < n; ++i) {
    min_sq[i] = SquaredL2(points.Row(i), points.Row(first));
  }

  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = z == 2 ? min_sq[i] : std::sqrt(min_sq[i]);
      masses[i] = WeightAt(weights, i) * d;
      total += masses[i];
    }
    size_t next;
    if (total <= 0.0) {
      // All mass on existing centers (duplicated points): fall back to a
      // weight-proportional draw so we still return k centers.
      next = weights.empty() ? rng.NextIndex(n) : rng.SampleDiscrete(weights);
    } else {
      next = rng.SampleDiscrete(masses);
    }
    result.centers.CopyRowFrom(points, next, c);
    const auto center = result.centers.Row(c);
    for (size_t i = 0; i < n; ++i) {
      const double sq = SquaredL2(points.Row(i), center);
      if (sq < min_sq[i]) {
        min_sq[i] = sq;
        result.assignment[i] = c;
      }
    }
  }

  result.point_costs.resize(n);
  result.total_cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.point_costs[i] = z == 2 ? min_sq[i] : std::sqrt(min_sq[i]);
    result.total_cost += WeightAt(weights, i) * result.point_costs[i];
  }
  return result;
}

}  // namespace fastcoreset
