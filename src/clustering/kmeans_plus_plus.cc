#include "src/clustering/kmeans_plus_plus.h"

#include <cmath>
#include <cstdint>

#include "src/common/parallel.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

Clustering KMeansPlusPlus(const Matrix& points,
                          const std::vector<double>& weights, size_t k,
                          int z, Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK(z == 1 || z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);
  if (k > n) k = n;

  Clustering result;
  result.z = z;
  result.centers = Matrix(k, points.cols());
  result.assignment.assign(n, 0);

  // min_sq[i] = squared distance to the closest chosen center so far.
  std::vector<double> min_sq(n, 0.0);
  std::vector<double> masses(n, 0.0);
  std::vector<uint8_t> chosen(n, 0);

  // First center: proportional to the weights alone.
  size_t first;
  if (weights.empty()) {
    first = rng.NextIndex(n);
  } else {
    first = rng.SampleDiscrete(weights);
  }
  chosen[first] = 1;
  result.centers.CopyRowFrom(points, first, 0);
  {
    const auto center = points.Row(first);
    ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        min_sq[i] = SquaredL2(points.Row(i), center);
      }
    });
  }

  for (size_t c = 1; c < k; ++c) {
    // Mass rebuild: fill masses and reduce their total in one pass (the
    // side-effect writes are disjoint per index, so ParallelReduce's
    // chunk-ordered merge keeps the total thread-invariant).
    const double total = ParallelReduce(n, [&](size_t begin, size_t end) {
      double partial = 0.0;
      for (size_t i = begin; i < end; ++i) {
        const double d = z == 2 ? min_sq[i] : std::sqrt(min_sq[i]);
        masses[i] = WeightAt(weights, i) * d;
        partial += masses[i];
      }
      return partial;
    });

    size_t next;
    if (total <= 0.0) {
      // All mass sits on already-chosen centers (duplicated points). Draw
      // weight-proportionally among the *unchosen* indices only — a plain
      // redraw could return an index that is already a center, silently
      // shrinking the effective center set below k.
      std::vector<size_t> unchosen;
      unchosen.reserve(n - c);
      double unchosen_weight = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (!chosen[i]) {
          unchosen.push_back(i);
          unchosen_weight += WeightAt(weights, i);
        }
      }
      FC_DCHECK(!unchosen.empty());  // c < k <= n distinct chosen indices.
      if (unchosen_weight > 0.0 && !weights.empty()) {
        std::vector<double> sub(unchosen.size());
        for (size_t u = 0; u < unchosen.size(); ++u) {
          sub[u] = weights[unchosen[u]];
        }
        next = unchosen[rng.SampleDiscrete(sub)];
      } else {
        // Unit weights, or every unchosen point has zero weight: uniform.
        next = unchosen[rng.NextIndex(unchosen.size())];
      }
    } else {
      next = rng.SampleDiscrete(masses);
    }
    chosen[next] = 1;
    result.centers.CopyRowFrom(points, next, c);
    const auto center = result.centers.Row(c);
    ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const double sq = SquaredL2(points.Row(i), center);
        if (sq < min_sq[i]) {
          min_sq[i] = sq;
          result.assignment[i] = c;
        }
      }
    });
  }

  result.point_costs.resize(n);
  result.total_cost = ParallelReduce(n, [&](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      result.point_costs[i] = z == 2 ? min_sq[i] : std::sqrt(min_sq[i]);
      partial += WeightAt(weights, i) * result.point_costs[i];
    }
    return partial;
  });
  return result;
}

}  // namespace fastcoreset
