#include "src/clustering/kmeans_plus_plus.h"

#include <cmath>
#include <cstdint>
#include <utility>

#include "src/common/discrete_distribution.h"
#include "src/common/parallel.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

Clustering KMeansPlusPlus(const Matrix& points,
                          const std::vector<double>& weights, size_t k,
                          int z, Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK(z == 1 || z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);
  if (k > n) k = n;

  Clustering result;
  result.z = z;
  result.centers = Matrix(k, points.cols());
  result.assignment.assign(n, 0);

  // min_sq[i] = squared distance to the closest chosen center so far.
  std::vector<double> min_sq(n, 0.0);
  std::vector<uint8_t> chosen(n, 0);

  // First center: proportional to the weights alone.
  size_t first;
  if (weights.empty()) {
    first = rng.NextIndex(n);
  } else {
    first = rng.SampleDiscrete(weights);
  }
  chosen[first] = 1;
  result.centers.CopyRowFrom(points, first, 0);
  {
    const auto center = points.Row(first);
    ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        min_sq[i] = SquaredL2(points.Row(i), center);
      }
    });
  }

  // Sampling mass w_i * D^z(i), built once in O(n) and then maintained
  // incrementally: a new center only touches the slots whose min-distance
  // it improves, so each of the k-1 rounds pays O(changed * log n) Fenwick
  // updates plus an O(log n) total/draw — not the former O(n) mass rebuild
  // plus SampleDiscrete's O(n) re-sum.
  DiscreteDistribution masses;
  {
    std::vector<double> initial(n);
    ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const double d = z == 2 ? min_sq[i] : std::sqrt(min_sq[i]);
        initial[i] = WeightAt(weights, i) * d;
      }
    });
    masses.Assign(initial);
  }

  // The parallel distance pass records improved slots per chunk; the
  // Fenwick updates are then applied on this thread in chunk order, so
  // the tree state (and every draw) is bit-identical at any thread count.
  std::vector<std::vector<std::pair<size_t, double>>> improved(
      ParallelChunkCount(n));

  for (size_t c = 1; c < k; ++c) {
    const double total = masses.Total();

    // The tree total accumulates signed update deltas, so exact-zero mass
    // can surface as a tiny positive residue. A draw from such a
    // distribution can only land on a zero-mass (already-chosen) slot —
    // the same degenerate state as total <= 0, so detect it by the
    // sampled slot's stored (exact) mass and fall through to the
    // unchosen-only draw.
    size_t next = n;
    if (total > 0.0) {
      const size_t drawn = masses.Sample(rng);
      if (masses.Get(drawn) > 0.0) next = drawn;
    }
    if (next == n) {
      // All mass sits on already-chosen centers (duplicated points). Draw
      // weight-proportionally among the *unchosen* indices only — a plain
      // redraw could return an index that is already a center, silently
      // shrinking the effective center set below k.
      std::vector<size_t> unchosen;
      unchosen.reserve(n - c);
      double unchosen_weight = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (!chosen[i]) {
          unchosen.push_back(i);
          unchosen_weight += WeightAt(weights, i);
        }
      }
      FC_DCHECK(!unchosen.empty());  // c < k <= n distinct chosen indices.
      if (unchosen_weight > 0.0 && !weights.empty()) {
        std::vector<double> sub(unchosen.size());
        for (size_t u = 0; u < unchosen.size(); ++u) {
          sub[u] = weights[unchosen[u]];
        }
        next = unchosen[rng.SampleDiscrete(sub, unchosen_weight)];
      } else {
        // Unit weights, or every unchosen point has zero weight: uniform.
        next = unchosen[rng.NextIndex(unchosen.size())];
      }
    }
    chosen[next] = 1;
    result.centers.CopyRowFrom(points, next, c);
    const auto center = result.centers.Row(c);
    ParallelForChunks(n, [&](size_t chunk, size_t begin, size_t end) {
      auto& batch = improved[chunk];
      batch.clear();
      for (size_t i = begin; i < end; ++i) {
        const double sq = SquaredL2(points.Row(i), center);
        if (sq < min_sq[i]) {
          min_sq[i] = sq;
          result.assignment[i] = c;
          const double d = z == 2 ? sq : std::sqrt(sq);
          batch.emplace_back(i, WeightAt(weights, i) * d);
        }
      }
    });
    for (const auto& batch : improved) {
      for (const auto& [i, mass] : batch) masses.Set(i, mass);
    }
  }

  result.point_costs.resize(n);
  result.total_cost = ParallelReduce(n, [&](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      result.point_costs[i] = z == 2 ? min_sq[i] : std::sqrt(min_sq[i]);
      partial += WeightAt(weights, i) * result.point_costs[i];
    }
    return partial;
  });
  return result;
}

}  // namespace fastcoreset
