#include "src/clustering/cost.h"

#include <algorithm>
#include <cmath>

#include "src/common/parallel.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

std::vector<double> UnitWeights(size_t n) {
  return std::vector<double>(n, 1.0);
}

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

double ApplyPower(double sq_dist, int z) {
  return z == 2 ? sq_dist : std::sqrt(sq_dist);
}

}  // namespace

double CostToCenters(const Matrix& points, const std::vector<double>& weights,
                     const Matrix& centers, int z) {
  FC_CHECK(z == 1 || z == 2);
  FC_CHECK(weights.empty() || weights.size() == points.rows());
  const std::vector<double> center_sq_norms = centers.RowSquaredNorms();
  return ParallelReduce(points.rows(), [&](size_t begin, size_t end) {
    // Small stack buffers so the chunk streams through the blocked kernel
    // without touching the heap.
    constexpr size_t kBuf = 256;
    size_t index[kBuf];
    double sq[kBuf];
    double partial = 0.0;
    for (size_t b0 = begin; b0 < end; b0 += kBuf) {
      const size_t b1 = std::min(end, b0 + kBuf);
      BatchNearestCenter(points, b0, b1, centers, center_sq_norms,
                         std::span<size_t>(index, b1 - b0),
                         std::span<double>(sq, b1 - b0));
      for (size_t i = b0; i < b1; ++i) {
        partial += WeightAt(weights, i) * ApplyPower(sq[i - b0], z);
      }
    }
    return partial;
  });
}

double AssignmentCost(const Matrix& points, const std::vector<double>& weights,
                      const Matrix& centers,
                      const std::vector<size_t>& assignment, int z) {
  FC_CHECK(z == 1 || z == 2);
  FC_CHECK_EQ(assignment.size(), points.rows());
  return ParallelReduce(points.rows(), [&](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const double sq =
          SquaredL2(points.Row(i), centers.Row(assignment[i]));
      partial += WeightAt(weights, i) * ApplyPower(sq, z);
    }
    return partial;
  });
}

void RefreshAssignment(const Matrix& points,
                       const std::vector<double>& weights,
                       Clustering* clustering) {
  FC_CHECK(clustering != nullptr);
  AssignToNearest(points, clustering->centers, &clustering->assignment,
                  &clustering->point_costs);
  const int z = clustering->z;
  if (z == 1) {
    ParallelFor(points.rows(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        clustering->point_costs[i] = std::sqrt(clustering->point_costs[i]);
      }
    });
  }
  clustering->total_cost =
      ParallelReduce(points.rows(), [&](size_t begin, size_t end) {
        double partial = 0.0;
        for (size_t i = begin; i < end; ++i) {
          partial += WeightAt(weights, i) * clustering->point_costs[i];
        }
        return partial;
      });
}

}  // namespace fastcoreset
