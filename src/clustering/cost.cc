#include "src/clustering/cost.h"

#include <cmath>

#include "src/common/parallel.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

std::vector<double> UnitWeights(size_t n) {
  return std::vector<double>(n, 1.0);
}

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

double ApplyPower(double sq_dist, int z) {
  return z == 2 ? sq_dist : std::sqrt(sq_dist);
}

}  // namespace

double CostToCenters(const Matrix& points, const std::vector<double>& weights,
                     const Matrix& centers, int z) {
  FC_CHECK(z == 1 || z == 2);
  FC_CHECK(weights.empty() || weights.size() == points.rows());
  return ParallelReduce(points.rows(), [&](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const NearestCenter nearest = FindNearestCenter(points.Row(i), centers);
      partial += WeightAt(weights, i) * ApplyPower(nearest.sq_dist, z);
    }
    return partial;
  });
}

double AssignmentCost(const Matrix& points, const std::vector<double>& weights,
                      const Matrix& centers,
                      const std::vector<size_t>& assignment, int z) {
  FC_CHECK(z == 1 || z == 2);
  FC_CHECK_EQ(assignment.size(), points.rows());
  double total = 0.0;
  for (size_t i = 0; i < points.rows(); ++i) {
    const double sq =
        SquaredL2(points.Row(i), centers.Row(assignment[i]));
    total += WeightAt(weights, i) * ApplyPower(sq, z);
  }
  return total;
}

void RefreshAssignment(const Matrix& points,
                       const std::vector<double>& weights,
                       Clustering* clustering) {
  FC_CHECK(clustering != nullptr);
  clustering->assignment.resize(points.rows());
  clustering->point_costs.resize(points.rows());
  clustering->total_cost = 0.0;
  for (size_t i = 0; i < points.rows(); ++i) {
    const NearestCenter nearest =
        FindNearestCenter(points.Row(i), clustering->centers);
    clustering->assignment[i] = nearest.index;
    clustering->point_costs[i] = ApplyPower(nearest.sq_dist, clustering->z);
    clustering->total_cost +=
        WeightAt(weights, i) * clustering->point_costs[i];
  }
}

}  // namespace fastcoreset
