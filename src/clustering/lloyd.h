// Weighted Lloyd's algorithm for k-means (alternating assignment /
// centroid steps), used for downstream clustering on coresets (Table 8)
// and as a general-purpose refinement.

#ifndef FASTCORESET_CLUSTERING_LLOYD_H_
#define FASTCORESET_CLUSTERING_LLOYD_H_

#include <vector>

#include "src/clustering/types.h"
#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Options for Lloyd iterations.
struct LloydOptions {
  int max_iters = 25;
  /// Stop when the relative cost improvement drops below this.
  double relative_tolerance = 1e-4;
};

/// Runs Lloyd's algorithm from `initial_centers` on a weighted point set.
/// Empty clusters are reseeded at the currently most expensive point.
/// `weights` may be empty (unit weights). Returns the refined clustering
/// (z is fixed to 2; use LloydKMedian for z = 1).
Clustering LloydKMeans(const Matrix& points,
                       const std::vector<double>& weights,
                       const Matrix& initial_centers,
                       const LloydOptions& options = LloydOptions());

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_LLOYD_H_
