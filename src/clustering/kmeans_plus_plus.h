// Standard k-means++ / k-median++ seeding (Arthur & Vassilvitskii, SODA'07),
// generalized to weighted point sets and both cost exponents.
//
// Runs in O(n * k * d): each new center is drawn proportional to
// w_p * dist^z(p, C) against the current center set, which is the O(nk)
// bottleneck the Fast-Coreset paper removes via the quadtree variant.

#ifndef FASTCORESET_CLUSTERING_KMEANS_PLUS_PLUS_H_
#define FASTCORESET_CLUSTERING_KMEANS_PLUS_PLUS_H_

#include <cstddef>
#include <vector>

#include "src/clustering/types.h"
#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// D^z-sampling seeding. `weights` may be empty (unit weights). Returns a
/// full Clustering (centers + nearest-center assignment + costs).
/// Requires 1 <= k; if k >= n every point becomes a center.
Clustering KMeansPlusPlus(const Matrix& points,
                          const std::vector<double>& weights, size_t k, int z,
                          Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_KMEANS_PLUS_PLUS_H_
