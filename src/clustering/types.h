// Shared result type for clustering algorithms.

#ifndef FASTCORESET_CLUSTERING_TYPES_H_
#define FASTCORESET_CLUSTERING_TYPES_H_

#include <cstddef>
#include <vector>

#include "src/geometry/matrix.h"

namespace fastcoreset {

/// A clustering solution: centers plus an explicit assignment of every
/// input point to one center. Algorithms in this library always produce
/// assignments (not just centers) because sensitivity sampling consumes
/// per-cluster statistics — this is exactly the property of Fast-kmeans++
/// that Algorithm 1 relies on.
struct Clustering {
  /// k x d matrix of centers.
  Matrix centers;
  /// assignment[i] = row of `centers` that point i is assigned to.
  std::vector<size_t> assignment;
  /// point_costs[i] = dist^z(point i, its assigned center), unweighted.
  std::vector<double> point_costs;
  /// Sum over points of weight * point_cost.
  double total_cost = 0.0;
  /// Cost exponent: 1 = k-median, 2 = k-means.
  int z = 2;
};

/// Convenience: a vector of n unit weights.
std::vector<double> UnitWeights(size_t n);

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_TYPES_H_
