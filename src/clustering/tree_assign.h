// Quadtree-based approximate nearest-center assignment.
//
// Assigning n points to k given centers exactly costs O(nkd) — the very
// bottleneck the paper removes from seeding. This utility removes it from
// *assignment against a fixed center set* too: points and centers are
// embedded in one randomly-shifted quadtree; covering the centers'
// root-to-leaf paths (the same lazy propagation Fast-kmeans++ uses)
// assigns every point to the center sharing its deepest covered cell, in
// O((n + k) d log Δ) total. The assignment is an HST-metric nearest
// neighbor, i.e. an O(d log Δ)-approximate Euclidean one in expectation —
// exactly the tolerance sensitivity sampling absorbs.
//
// This enables the iterative coreset construction of Section 8.4 /
// Braverman et al.: re-deriving sensitivities against an improved
// solution without ever paying O(nkd).

#ifndef FASTCORESET_CLUSTERING_TREE_ASSIGN_H_
#define FASTCORESET_CLUSTERING_TREE_ASSIGN_H_

#include "src/clustering/types.h"
#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Assigns every point to one of `centers` via a shared quadtree.
/// Returns a Clustering whose centers are `centers`, with tree-derived
/// assignments and Euclidean point costs (exponent z). `weights` may be
/// empty and only affect total_cost.
Clustering TreeAssign(const Matrix& points,
                      const std::vector<double>& weights,
                      const Matrix& centers, int z, Rng& rng,
                      int max_depth = 60);

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_TREE_ASSIGN_H_
