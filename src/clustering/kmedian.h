// Weighted k-median: Weiszfeld's algorithm for the 1-median subproblem and
// a Lloyd-style alternation for k centers. Used by Algorithm 1's step 4
// (per-cluster 1-median refinement, z = 1) and by the k-median experiments
// (Figure 4).

#ifndef FASTCORESET_CLUSTERING_KMEDIAN_H_
#define FASTCORESET_CLUSTERING_KMEDIAN_H_

#include <vector>

#include "src/clustering/types.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Approximate geometric median of the selected rows via Weiszfeld
/// iterations (started from the weighted mean). `weights` may be empty.
/// `subset` lists the participating row indices; it must be non-empty.
std::vector<double> GeometricMedian(const Matrix& points,
                                    const std::vector<double>& weights,
                                    const std::vector<size_t>& subset,
                                    int max_iters = 30, double tol = 1e-7);

/// Lloyd-style k-median refinement: alternate nearest-center assignment
/// with per-cluster Weiszfeld medians. Empty clusters are reseeded at the
/// most expensive point.
Clustering LloydKMedian(const Matrix& points,
                        const std::vector<double>& weights,
                        const Matrix& initial_centers, int max_iters = 15);

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_KMEDIAN_H_
