// Fast-kmeans++ (Cohen-Addad, Lattanzi, Norouzi-Fard, Sohler, Svensson,
// NeurIPS'20): k-means++/k-median++ seeding in a randomly-shifted quadtree
// metric, running in Õ(nd log Δ) instead of O(ndk).
//
// The key structural property — the one Algorithm 1 of the Fast-Coreset
// paper depends on — is that the seeding produces an *assignment* of every
// point to a center, not just the center set, and that this assignment is
// an O(d^z log k) approximation in expectation (an O(log^{z+1} k) one after
// Johnson-Lindenstrauss projection to O(log k) dimensions).
//
// Implementation: the D^z distribution is maintained w.r.t. the HST (tree)
// metric. A point's tree distance to the center set is determined by its
// deepest *covered* ancestor (a cell containing a center in its subtree).
// Adding a center covers its root-to-leaf path; points are updated by a
// subtree traversal that prunes at already-covered cells, so each tree node
// is re-visited at most once per level — Õ(n) total update work. Point
// masses live in a Fenwick tree for O(log n) sampling. An optional
// rejection-sampling step accepts a tree-sampled candidate with probability
// (Euclidean D^z to its assigned center) / (tree D^z), tilting the
// distribution toward the true Euclidean one as in the original paper.

#ifndef FASTCORESET_CLUSTERING_FAST_KMEANS_PLUS_PLUS_H_
#define FASTCORESET_CLUSTERING_FAST_KMEANS_PLUS_PLUS_H_

#include <cstddef>
#include <vector>

#include "src/clustering/types.h"
#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Options for FastKMeansPlusPlus.
struct FastKMeansPlusPlusOptions {
  /// Cost exponent: 1 = k-median, 2 = k-means.
  int z = 2;
  /// Quadtree depth cap. The tree only deepens where points are close, so
  /// a generous cap preserves the Õ(nd log Δ) adaptive behaviour.
  int max_depth = 60;
  /// Build the quadtree non-adaptively (every point descends to
  /// max_depth), reproducing the O(nd log Δ) embedding cost the paper's
  /// Table 1 measures. Leave false outside that experiment.
  bool full_depth_tree = false;
  /// Accept tree-sampled candidates with probability Euclidean/tree mass
  /// ratio (bounded retries), approximating true-metric D^z seeding.
  bool rejection_sampling = true;
  /// Retry budget per center for rejection sampling. Each retry costs only
  /// O(log n + d); early centers see low acceptance rates (the tree metric
  /// is flat near the root), so the budget is generous. After the budget
  /// the last candidate is accepted, falling back to pure tree sampling.
  int max_rejections = 512;
};

/// Tree-metric D^z seeding of k centers with assignments. `weights` may be
/// empty (unit weights). The returned Clustering's point_costs / total_cost
/// are *Euclidean* costs of the tree-derived assignment (so they can feed
/// sensitivity sampling directly). May return fewer than k centers only if
/// the input has fewer than k distinct points.
Clustering FastKMeansPlusPlus(const Matrix& points,
                              const std::vector<double>& weights, size_t k,
                              const FastKMeansPlusPlusOptions& options,
                              Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_FAST_KMEANS_PLUS_PLUS_H_
