#include "src/clustering/afkmc2.h"

#include <cmath>

#include "src/clustering/cost.h"
#include "src/common/discrete_distribution.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

Clustering Afkmc2(const Matrix& points, const std::vector<double>& weights,
                  size_t k, const Afkmc2Options& options, Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK(options.z == 1 || options.z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);
  FC_CHECK_GT(options.chain_length, 0u);

  // First center: weight-proportional.
  std::vector<size_t> centers;
  centers.push_back(weights.empty() ? rng.NextIndex(n)
                                    : rng.SampleDiscrete(weights));

  // Proposal q: one O(nd) pass against the first center, mixed with the
  // weight distribution for irreducibility.
  std::vector<double> dist_to_first(n);
  double cost_first = 0.0;
  double total_weight = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dist_to_first[i] =
        DistPow(points.Row(i), points.Row(centers[0]), options.z);
    cost_first += WeightAt(weights, i) * dist_to_first[i];
    total_weight += WeightAt(weights, i);
  }
  std::vector<double> proposal_density(n);
  for (size_t i = 0; i < n; ++i) {
    const double w = WeightAt(weights, i);
    double q = 0.5 * w / total_weight;
    if (cost_first > 0.0) q += 0.5 * w * dist_to_first[i] / cost_first;
    proposal_density[i] = q;
  }
  // The chain's q-distribution is fixed after this point: O(n) bulk
  // build, O(log n) per proposal draw.
  const DiscreteDistribution proposal(proposal_density);

  // dist^z to the current center set, maintained incrementally — but only
  // for points the chain visits (lazy evaluation keeps this sublinear).
  auto dist_to_centers = [&](size_t i) {
    double best = dist_to_first[i];
    for (size_t c = 1; c < centers.size(); ++c) {
      const double d = DistPow(points.Row(i), points.Row(centers[c]),
                               options.z);
      if (d < best) best = d;
    }
    return best;
  };

  for (size_t c = 1; c < k && c < n; ++c) {
    size_t state = proposal.Sample(rng);
    double state_score =
        WeightAt(weights, state) * dist_to_centers(state);
    double state_q = proposal_density[state];
    for (size_t step = 1; step < options.chain_length; ++step) {
      const size_t candidate = proposal.Sample(rng);
      const double candidate_score =
          WeightAt(weights, candidate) * dist_to_centers(candidate);
      const double candidate_q = proposal_density[candidate];
      // Metropolis-Hastings acceptance for target ∝ score, proposal q.
      const double numerator = candidate_score * state_q;
      const double denominator = state_score * candidate_q;
      if (denominator <= 0.0 ||
          rng.NextDouble() * denominator < numerator) {
        state = candidate;
        state_score = candidate_score;
        state_q = candidate_q;
      }
    }
    centers.push_back(state);
  }

  Clustering result;
  result.z = options.z;
  result.centers = Matrix(centers.size(), points.cols());
  for (size_t c = 0; c < centers.size(); ++c) {
    result.centers.CopyRowFrom(points, centers[c], c);
  }
  RefreshAssignment(points, weights, &result);
  return result;
}

}  // namespace fastcoreset
