#include "src/clustering/kmeans_parallel.h"

#include <cmath>

#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/common/parallel.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

Clustering KMeansParallel(const Matrix& points,
                          const std::vector<double>& weights, size_t k,
                          const KMeansParallelOptions& options, Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK(options.z == 1 || options.z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);
  const size_t l = options.oversampling == 0 ? 2 * k : options.oversampling;

  // Initial candidate: one weight-proportional draw.
  std::vector<size_t> candidates;
  candidates.push_back(weights.empty() ? rng.NextIndex(n)
                                       : rng.SampleDiscrete(weights));

  // min_pow[i] = dist^z to the nearest candidate so far. One fork-join
  // per *batch* of candidates (not per candidate — the substrate has no
  // pool, so each ParallelFor pays a thread spawn/join); min is
  // order-independent, so batching leaves the result unchanged.
  std::vector<double> min_pow(n);
  auto update_from = [&](const std::vector<size_t>& batch) {
    ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        double best = min_pow[i];
        for (size_t candidate : batch) {
          const double pow_dist =
              DistPow(points.Row(i), points.Row(candidate), options.z);
          if (pow_dist < best) best = pow_dist;
        }
        min_pow[i] = best;
      }
    });
  };
  {
    const auto row = points.Row(candidates[0]);
    ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        min_pow[i] = DistPow(points.Row(i), row, options.z);
      }
    });
  }

  for (int round = 0; round < options.rounds; ++round) {
    const double total = ParallelReduce(n, [&](size_t begin, size_t end) {
      double partial = 0.0;
      for (size_t i = begin; i < end; ++i) {
        partial += WeightAt(weights, i) * min_pow[i];
      }
      return partial;
    });
    if (total <= 0.0) break;  // All points covered exactly.
    const double scale = static_cast<double>(l) / total;
    std::vector<size_t> fresh;
    for (size_t i = 0; i < n; ++i) {
      const double probability = WeightAt(weights, i) * min_pow[i] * scale;
      if (probability >= 1.0 || rng.NextDouble() < probability) {
        fresh.push_back(i);
      }
    }
    if (fresh.empty()) continue;
    candidates.insert(candidates.end(), fresh.begin(), fresh.end());
    update_from(fresh);
  }

  // Weight candidates by the mass they attract, then recluster to k.
  Matrix candidate_points(candidates.size(), points.cols());
  for (size_t c = 0; c < candidates.size(); ++c) {
    candidate_points.CopyRowFrom(points, candidates[c], c);
  }
  std::vector<size_t> owner;
  std::vector<double> owner_sq;
  AssignToNearest(points, candidate_points, &owner, &owner_sq);
  std::vector<double> candidate_weight(candidates.size(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    candidate_weight[owner[i]] += WeightAt(weights, i);
  }

  const Clustering reduced = KMeansPlusPlus(candidate_points,
                                            candidate_weight, k, options.z,
                                            rng);

  Clustering result;
  result.z = options.z;
  result.centers = reduced.centers;
  RefreshAssignment(points, weights, &result);
  return result;
}

}  // namespace fastcoreset
