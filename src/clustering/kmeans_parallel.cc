#include "src/clustering/kmeans_parallel.h"

#include <cmath>
#include <utility>

#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/common/discrete_distribution.h"
#include "src/common/parallel.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

Clustering KMeansParallel(const Matrix& points,
                          const std::vector<double>& weights, size_t k,
                          const KMeansParallelOptions& options, Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK(options.z == 1 || options.z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);
  const size_t l = options.oversampling == 0 ? 2 * k : options.oversampling;

  // Initial candidate: one weight-proportional draw.
  std::vector<size_t> candidates;
  candidates.push_back(weights.empty() ? rng.NextIndex(n)
                                       : rng.SampleDiscrete(weights));

  // min_pow[i] = dist^z to the nearest candidate so far, with the
  // weighted mass w_i * min_pow[i] mirrored in a Fenwick-backed
  // distribution: each batch update only touches the slots it improves,
  // and the per-round total comes from the tree in O(log n) instead of an
  // O(n) re-reduce. Updates are collected per chunk and applied on this
  // thread in chunk order, keeping the tree thread-invariant.
  std::vector<double> min_pow(n);
  DiscreteDistribution mass(n);
  // Exact count of slots with positive mass. The tree total accumulates
  // signed update deltas, so "all points covered" can surface there as a
  // tiny residue instead of 0.0 — the count keeps the early break exact,
  // like the old ParallelReduce total was. Masses only ever shrink
  // (min_pow is monotone, weights fixed), so only positive→zero
  // transitions need tracking.
  size_t positive_slots = 0;
  std::vector<std::vector<std::pair<size_t, double>>> improved(
      ParallelChunkCount(n));
  auto update_from = [&](const std::vector<size_t>& batch) {
    ParallelForChunks(n, [&](size_t chunk, size_t begin, size_t end) {
      auto& changes = improved[chunk];
      changes.clear();
      for (size_t i = begin; i < end; ++i) {
        double best = min_pow[i];
        for (size_t candidate : batch) {
          const double pow_dist =
              DistPow(points.Row(i), points.Row(candidate), options.z);
          if (pow_dist < best) best = pow_dist;
        }
        if (best < min_pow[i]) {
          min_pow[i] = best;
          changes.emplace_back(i, WeightAt(weights, i) * best);
        }
      }
    });
    for (const auto& changes : improved) {
      for (const auto& [i, value] : changes) {
        if (mass.Get(i) > 0.0 && value <= 0.0) --positive_slots;
        mass.Set(i, value);
      }
    }
  };
  {
    const auto row = points.Row(candidates[0]);
    std::vector<double> initial(n);
    ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        min_pow[i] = DistPow(points.Row(i), row, options.z);
        initial[i] = WeightAt(weights, i) * min_pow[i];
      }
    });
    mass.Assign(initial);
    for (double value : initial) positive_slots += value > 0.0;
  }

  for (int round = 0; round < options.rounds; ++round) {
    const double total = mass.Total();
    if (positive_slots == 0 || total <= 0.0) {
      break;  // All points covered exactly.
    }
    const double scale = static_cast<double>(l) / total;
    std::vector<size_t> fresh;
    for (size_t i = 0; i < n; ++i) {
      const double probability = WeightAt(weights, i) * min_pow[i] * scale;
      if (probability >= 1.0 || rng.NextDouble() < probability) {
        fresh.push_back(i);
      }
    }
    if (fresh.empty()) continue;
    candidates.insert(candidates.end(), fresh.begin(), fresh.end());
    update_from(fresh);
  }

  // Weight candidates by the mass they attract, then recluster to k.
  Matrix candidate_points(candidates.size(), points.cols());
  for (size_t c = 0; c < candidates.size(); ++c) {
    candidate_points.CopyRowFrom(points, candidates[c], c);
  }
  std::vector<size_t> owner;
  std::vector<double> owner_sq;
  AssignToNearest(points, candidate_points, &owner, &owner_sq);
  std::vector<double> candidate_weight(candidates.size(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    candidate_weight[owner[i]] += WeightAt(weights, i);
  }

  const Clustering reduced = KMeansPlusPlus(candidate_points,
                                            candidate_weight, k, options.z,
                                            rng);

  Clustering result;
  result.z = options.z;
  result.centers = reduced.centers;
  RefreshAssignment(points, weights, &result);
  return result;
}

}  // namespace fastcoreset
