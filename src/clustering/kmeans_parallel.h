// k-means|| ("scalable k-means++", Bahmani, Moseley, Vattani, Kumar,
// Vassilvitskii, VLDB'12): the MapReduce-friendly seeding the paper's
// database framing (Section 2.3) motivates. Instead of k sequential D^2
// draws, it runs O(log n) *rounds*; each round samples every point
// independently with probability min(1, l * w_p cost(p, C) / cost(P, C)),
// producing ~l new candidates per round in one parallel pass. The
// oversampled candidate set (~l * rounds points) is weighted by the data
// it attracts and reclustered to k with classic k-means++.
//
// Included as an additional fast-seeding baseline: like Fast-kmeans++ it
// avoids the k sequential passes, but it still costs O(nd) *per round*
// against the full candidate set, so its total is O(nd l rounds) — the
// tradeoff the seeding-comparison bench quantifies.

#ifndef FASTCORESET_CLUSTERING_KMEANS_PARALLEL_H_
#define FASTCORESET_CLUSTERING_KMEANS_PARALLEL_H_

#include "src/clustering/types.h"
#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Options for k-means||.
struct KMeansParallelOptions {
  int z = 2;             ///< 1 = k-median, 2 = k-means.
  size_t oversampling = 0;  ///< l; 0 picks 2k.
  int rounds = 5;        ///< Sampling rounds (the paper's typical value).
};

/// k-means|| seeding. Returns a full Clustering with nearest-center
/// assignments against the final k centers.
Clustering KMeansParallel(const Matrix& points,
                          const std::vector<double>& weights, size_t k,
                          const KMeansParallelOptions& options, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_KMEANS_PARALLEL_H_
