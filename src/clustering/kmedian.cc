#include "src/clustering/kmedian.h"

#include <cmath>

#include "src/clustering/cost.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

std::vector<double> GeometricMedian(const Matrix& points,
                                    const std::vector<double>& weights,
                                    const std::vector<size_t>& subset,
                                    int max_iters, double tol) {
  FC_CHECK(!subset.empty());
  const size_t d = points.cols();

  // Start from the weighted mean.
  std::vector<double> median(d, 0.0);
  double total_weight = 0.0;
  for (size_t idx : subset) {
    const double w = WeightAt(weights, idx);
    total_weight += w;
    const auto row = points.Row(idx);
    for (size_t j = 0; j < d; ++j) median[j] += w * row[j];
  }
  FC_CHECK_GT(total_weight, 0.0);
  for (double& m : median) m /= total_weight;

  std::vector<double> next(d);
  for (int iter = 0; iter < max_iters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double denom = 0.0;
    for (size_t idx : subset) {
      const auto row = points.Row(idx);
      const double dist = L2(row, median);
      if (dist < 1e-12) continue;  // Weiszfeld skips coincident points.
      const double coeff = WeightAt(weights, idx) / dist;
      denom += coeff;
      for (size_t j = 0; j < d; ++j) next[j] += coeff * row[j];
    }
    if (denom <= 0.0) break;  // Median sits exactly on all points.
    double shift_sq = 0.0;
    for (size_t j = 0; j < d; ++j) {
      next[j] /= denom;
      const double delta = next[j] - median[j];
      shift_sq += delta * delta;
    }
    median = next;
    if (std::sqrt(shift_sq) < tol) break;
  }
  return median;
}

Clustering LloydKMedian(const Matrix& points,
                        const std::vector<double>& weights,
                        const Matrix& initial_centers, int max_iters) {
  const size_t n = points.rows();
  const size_t k = initial_centers.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK_EQ(initial_centers.cols(), points.cols());

  Clustering result;
  result.z = 1;
  result.centers = initial_centers;
  RefreshAssignment(points, weights, &result);

  double previous_cost = result.total_cost;
  for (int iter = 0; iter < max_iters; ++iter) {
    std::vector<std::vector<size_t>> members(k);
    for (size_t i = 0; i < n; ++i) members[result.assignment[i]].push_back(i);
    for (size_t c = 0; c < k; ++c) {
      if (members[c].empty()) {
        size_t worst = 0;
        double worst_cost = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const double cost = WeightAt(weights, i) * result.point_costs[i];
          if (cost > worst_cost) {
            worst_cost = cost;
            worst = i;
          }
        }
        result.centers.CopyRowFrom(points, worst, c);
        continue;
      }
      const std::vector<double> median =
          GeometricMedian(points, weights, members[c]);
      auto center = result.centers.Row(c);
      for (size_t j = 0; j < points.cols(); ++j) center[j] = median[j];
    }
    RefreshAssignment(points, weights, &result);
    const double improvement =
        previous_cost > 0.0
            ? (previous_cost - result.total_cost) / previous_cost
            : 0.0;
    previous_cost = result.total_cost;
    if (improvement >= 0.0 && improvement < 1e-4) break;
  }
  return result;
}

}  // namespace fastcoreset
