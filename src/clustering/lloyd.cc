#include "src/clustering/lloyd.h"

#include <algorithm>

#include "src/clustering/cost.h"
#include "src/common/parallel.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

// Weighted per-cluster sums and weights for the centroid step. Chunked
// over points with per-chunk scratch merged in chunk order, so the result
// is bit-identical at any thread count; falls back to one serial pass
// when the scratch (chunks * k * d doubles) would outweigh the win.
void AccumulateClusters(const Matrix& points,
                        const std::vector<double>& weights,
                        const std::vector<size_t>& assignment, size_t k,
                        Matrix* sums, std::vector<double>* cluster_weight) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  const size_t chunks = ParallelChunkCount(n);
  constexpr size_t kMaxScratchDoubles = size_t{1} << 22;  // 32 MiB.
  if (chunks <= 1 || chunks * (k * d + k) > kMaxScratchDoubles) {
    for (size_t i = 0; i < n; ++i) {
      const double w = WeightAt(weights, i);
      const size_t c = assignment[i];
      (*cluster_weight)[c] += w;
      const auto row = points.Row(i);
      auto sum = sums->Row(c);
      for (size_t j = 0; j < d; ++j) sum[j] += w * row[j];
    }
    return;
  }
  std::vector<double> sum_scratch(chunks * k * d, 0.0);
  std::vector<double> weight_scratch(chunks * k, 0.0);
  ParallelForChunks(n, [&](size_t chunk, size_t begin, size_t end) {
    double* chunk_sums = sum_scratch.data() + chunk * k * d;
    double* chunk_weights = weight_scratch.data() + chunk * k;
    for (size_t i = begin; i < end; ++i) {
      const double w = WeightAt(weights, i);
      const size_t c = assignment[i];
      chunk_weights[c] += w;
      const auto row = points.Row(i);
      double* sum = chunk_sums + c * d;
      for (size_t j = 0; j < d; ++j) sum[j] += w * row[j];
    }
  });
  for (size_t chunk = 0; chunk < chunks; ++chunk) {  // Fixed chunk order.
    const double* chunk_sums = sum_scratch.data() + chunk * k * d;
    const double* chunk_weights = weight_scratch.data() + chunk * k;
    for (size_t c = 0; c < k; ++c) {
      (*cluster_weight)[c] += chunk_weights[c];
      auto sum = sums->Row(c);
      for (size_t j = 0; j < d; ++j) sum[j] += chunk_sums[c * d + j];
    }
  }
}

}  // namespace

Clustering LloydKMeans(const Matrix& points,
                       const std::vector<double>& weights,
                       const Matrix& initial_centers,
                       const LloydOptions& options) {
  const size_t n = points.rows();
  const size_t k = initial_centers.rows();
  const size_t d = points.cols();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK_EQ(initial_centers.cols(), d);
  FC_CHECK(weights.empty() || weights.size() == n);

  Clustering result;
  result.z = 2;
  result.centers = initial_centers;
  RefreshAssignment(points, weights, &result);

  double previous_cost = result.total_cost;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    // Centroid step: weighted mean per cluster.
    Matrix sums(k, d);
    std::vector<double> cluster_weight(k, 0.0);
    AccumulateClusters(points, weights, result.assignment, k, &sums,
                       &cluster_weight);
    for (size_t c = 0; c < k; ++c) {
      if (cluster_weight[c] > 0.0) {
        auto sum = sums.Row(c);
        auto center = result.centers.Row(c);
        const double inv = 1.0 / cluster_weight[c];
        for (size_t j = 0; j < d; ++j) center[j] = sum[j] * inv;
      } else {
        // Empty cluster: reseed at the currently most expensive point,
        // which is the standard practical fix and strictly lowers cost.
        size_t worst = 0;
        double worst_cost = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const double cost = WeightAt(weights, i) * result.point_costs[i];
          if (cost > worst_cost) {
            worst_cost = cost;
            worst = i;
          }
        }
        result.centers.CopyRowFrom(points, worst, c);
      }
    }

    RefreshAssignment(points, weights, &result);
    const double improvement =
        previous_cost > 0.0
            ? (previous_cost - result.total_cost) / previous_cost
            : 0.0;
    previous_cost = result.total_cost;
    if (improvement >= 0.0 && improvement < options.relative_tolerance) break;
  }
  return result;
}

}  // namespace fastcoreset
