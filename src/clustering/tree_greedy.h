// Tree-greedy seeding: the Section 8.4 extension of the paper. Algorithm 1
// only needs *some* O(polylog)-approximate solution with assignments, and
// the paper sketches obtaining one by solving k-median directly on the
// quadtree's HST metric.
//
// We implement the natural top-down algorithm on the HST: every tree node
// v is a candidate group whose serving cost is bounded by
// subtree_weight(v) * TreeDistanceAtLevel(level(v))^z (all its points can
// be served within the cell diameter). Starting from the root, repeatedly
// split the group with the largest cost bound into its occupied children
// until k groups exist. Each group then becomes one cluster: its center is
// the group's weighted mean (z = 2) or geometric median (z = 1), and its
// points are assigned to it. Runs in O(nd + n log Δ + k log k), produces
// assignments, and the HST distortion bound (Lemma 2.2) gives the polylog
// approximation Fact 3.1 needs.

#ifndef FASTCORESET_CLUSTERING_TREE_GREEDY_H_
#define FASTCORESET_CLUSTERING_TREE_GREEDY_H_

#include "src/clustering/types.h"
#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Options for tree-greedy seeding.
struct TreeGreedyOptions {
  int z = 2;           ///< 1 = k-median, 2 = k-means.
  int max_depth = 60;  ///< Quadtree depth cap.
};

/// Top-down greedy k-clustering on a fresh random-shift quadtree.
/// `weights` may be empty. Bicriteria in the cluster count: normally
/// returns about k clusters, but the final split may overshoot by the
/// fan-out of one tree node (footnote 3 of the paper permits (α, β)
/// bicriteria solutions as Algorithm 1 seeds); fewer than k when the tree
/// has fewer occupied leaves.
Clustering TreeGreedySeeding(const Matrix& points,
                             const std::vector<double>& weights, size_t k,
                             const TreeGreedyOptions& options, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_TREE_GREEDY_H_
