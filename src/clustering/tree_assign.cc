#include "src/clustering/tree_assign.h"

#include <vector>

#include "src/geometry/distance.h"
#include "src/geometry/quadtree.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

Clustering TreeAssign(const Matrix& points,
                      const std::vector<double>& weights,
                      const Matrix& centers, int z, Rng& rng,
                      int max_depth) {
  const size_t n = points.rows();
  const size_t k = centers.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK_EQ(points.cols(), centers.cols());
  FC_CHECK(z == 1 || z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);

  // One tree over points and centers; centers occupy rows n .. n+k-1.
  Matrix combined = points;
  combined.AppendRows(centers);
  Quadtree tree(combined, rng, max_depth);

  std::vector<uint8_t> covered(tree.num_nodes(), 0);
  std::vector<int16_t> cov_level(n, -1);
  std::vector<uint32_t> assigned(n, 0);
  std::vector<int32_t> stack;

  for (size_t c = 0; c < k; ++c) {
    // Cover the center's path; update points in the newly covered
    // subtrees exactly as Fast-kmeans++'s seeder does.
    std::vector<int32_t> newly;
    for (int32_t v = tree.LeafOfPoint(n + c); v != -1 && !covered[v];
         v = tree.node(v).parent) {
      newly.push_back(v);
    }
    for (int32_t v : newly) covered[v] = 1;
    for (int32_t u : newly) {
      const int u_level = tree.node(u).level;
      stack.clear();
      stack.push_back(u);
      while (!stack.empty()) {
        const int32_t x = stack.back();
        stack.pop_back();
        const Quadtree::Node& node = tree.node(x);
        if (node.is_leaf) {
          for (uint32_t p : node.points) {
            if (p >= n) continue;  // Center rows are not assigned.
            if (cov_level[p] >= u_level && cov_level[p] != -1) continue;
            cov_level[p] = static_cast<int16_t>(u_level);
            assigned[p] = static_cast<uint32_t>(c);
          }
        } else {
          for (int32_t child : node.children) {
            if (!covered[child]) stack.push_back(child);
          }
        }
      }
    }
  }

  Clustering result;
  result.z = z;
  result.centers = centers;
  result.assignment.resize(n);
  result.point_costs.resize(n);
  result.total_cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.assignment[i] = assigned[i];
    result.point_costs[i] =
        DistPow(points.Row(i), centers.Row(assigned[i]), z);
    result.total_cost += WeightAt(weights, i) * result.point_costs[i];
  }
  return result;
}

}  // namespace fastcoreset
