#include "src/clustering/tree_greedy.h"

#include <cmath>
#include <queue>

#include "src/clustering/kmedian.h"
#include "src/geometry/distance.h"
#include "src/geometry/quadtree.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

Clustering TreeGreedySeeding(const Matrix& points,
                             const std::vector<double>& weights, size_t k,
                             const TreeGreedyOptions& options, Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK(options.z == 1 || options.z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);

  Quadtree tree(points, rng, options.max_depth);

  // Subtree weights, bottom-up. Children are always created after their
  // parent, so reverse id order is a valid topological order.
  std::vector<double> subtree_weight(tree.num_nodes(), 0.0);
  for (size_t id = tree.num_nodes(); id-- > 0;) {
    const auto& node = tree.node(static_cast<int32_t>(id));
    for (uint32_t p : node.points) {
      subtree_weight[id] += WeightAt(weights, p);
    }
    for (int32_t child : node.children) {
      subtree_weight[id] += subtree_weight[child];
    }
  }

  // Greedy splitting: priority = weight * (cell tree-diameter)^z, an upper
  // bound on the cost of serving the whole group from one center.
  auto bound = [&](int32_t v) {
    const auto& node = tree.node(v);
    if (node.is_leaf && node.children.empty()) {
      return 0.0;  // A leaf cannot be improved by splitting.
    }
    const double diameter = tree.TreeDistanceAtLevel(node.level);
    return subtree_weight[v] *
           (options.z == 2 ? diameter * diameter : diameter);
  };

  using Entry = std::pair<double, int32_t>;
  std::priority_queue<Entry> frontier;
  frontier.emplace(bound(tree.root()), tree.root());
  std::vector<int32_t> groups;
  while (groups.size() + frontier.size() < k && !frontier.empty()) {
    const auto [priority, v] = frontier.top();
    frontier.pop();
    if (priority <= 0.0) {
      groups.push_back(v);  // Unsplittable; keep as a final group.
      continue;
    }
    // Replace v by its occupied children (plus v's own leaf points, which
    // for internal nodes are empty by construction).
    for (int32_t child : tree.node(v).children) {
      frontier.emplace(bound(child), child);
    }
  }
  while (!frontier.empty()) {
    groups.push_back(frontier.top().second);
    frontier.pop();
  }

  // Materialize clusters: DFS each group subtree to collect its points.
  Clustering result;
  result.z = options.z;
  result.assignment.assign(n, 0);
  std::vector<std::vector<size_t>> members(groups.size());
  std::vector<int32_t> stack;
  for (size_t g = 0; g < groups.size(); ++g) {
    stack.clear();
    stack.push_back(groups[g]);
    while (!stack.empty()) {
      const int32_t v = stack.back();
      stack.pop_back();
      const auto& node = tree.node(v);
      for (uint32_t p : node.points) {
        members[g].push_back(p);
        result.assignment[p] = g;
      }
      for (int32_t child : node.children) stack.push_back(child);
    }
  }

  // Drop empty groups (possible when k exceeds occupied leaves).
  std::vector<std::vector<size_t>> occupied;
  for (auto& group : members) {
    if (!group.empty()) occupied.push_back(std::move(group));
  }
  result.centers = Matrix(occupied.size(), points.cols());
  for (size_t g = 0; g < occupied.size(); ++g) {
    auto center = result.centers.Row(g);
    if (options.z == 2) {
      double total = 0.0;
      for (size_t idx : occupied[g]) {
        const double w = WeightAt(weights, idx);
        total += w;
        const auto row = points.Row(idx);
        for (size_t j = 0; j < points.cols(); ++j) center[j] += w * row[j];
      }
      FC_CHECK_GT(total, 0.0);
      for (size_t j = 0; j < points.cols(); ++j) center[j] /= total;
    } else {
      const std::vector<double> median =
          GeometricMedian(points, weights, occupied[g]);
      for (size_t j = 0; j < points.cols(); ++j) center[j] = median[j];
    }
    for (size_t idx : occupied[g]) result.assignment[idx] = g;
  }

  result.point_costs.resize(n);
  result.total_cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.point_costs[i] =
        DistPow(points.Row(i), result.centers.Row(result.assignment[i]),
                options.z);
    result.total_cost += WeightAt(weights, i) * result.point_costs[i];
  }
  return result;
}

}  // namespace fastcoreset
