// AFK-MC^2 ("Approximate k-means++ in sublinear time", Bachem, Lucic,
// Hassani, Krause, AAAI'16 — the paper's reference [5]): k-means++
// seeding where each D^2 draw is replaced by a short Metropolis-Hastings
// chain over a precomputed proposal distribution
//     q(p) ∝ 1/2 * dist^z(p, c_1) / cost(P, c_1) + 1/2 * w_p / W.
// After the one O(nd) pass that builds q, every additional center costs
// only O(chain * d) — sublinear in n — at the price of an approximate
// D^2 distribution.
//
// The paper cites this method as a fast seeding that *cannot* yield
// strong coresets by itself; we include it so the seeding-comparison
// bench covers the full landscape the introduction describes.

#ifndef FASTCORESET_CLUSTERING_AFKMC2_H_
#define FASTCORESET_CLUSTERING_AFKMC2_H_

#include "src/clustering/types.h"
#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Options for AFK-MC^2 seeding.
struct Afkmc2Options {
  int z = 2;             ///< 1 = k-median, 2 = k-means.
  size_t chain_length = 200;  ///< Metropolis-Hastings steps per center.
};

/// AFK-MC^2 seeding of k centers with nearest-center assignments.
Clustering Afkmc2(const Matrix& points, const std::vector<double>& weights,
                  size_t k, const Afkmc2Options& options, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CLUSTERING_AFKMC2_H_
