#include "src/clustering/fast_kmeans_plus_plus.h"

#include <cmath>

#include "src/common/discrete_distribution.h"
#include "src/common/parallel.h"
#include "src/geometry/distance.h"
#include "src/geometry/quadtree.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

/// Incremental tree-metric D^z sampler over a fixed quadtree.
class TreeSeeder {
 public:
  TreeSeeder(const Matrix& points, const std::vector<double>& weights,
             const Quadtree& tree, int z)
      : points_(points),
        weights_(weights),
        tree_(tree),
        z_(z),
        covered_(tree.num_nodes(), 0),
        cov_level_(points.rows(), -1),
        assigned_(points.rows(), 0),
        masses_(points.rows()) {}

  /// Registers `point_idx` as the next center and updates every point's
  /// tree distance / assignment. Returns the center's ordinal.
  size_t AddCenter(size_t point_idx) {
    const size_t ordinal = center_points_.size();
    center_points_.push_back(point_idx);

    // Collect the not-yet-covered suffix of the root-to-leaf path.
    std::vector<int32_t> newly;
    for (int32_t v = tree_.LeafOfPoint(point_idx);
         v != -1 && !covered_[v]; v = tree_.node(v).parent) {
      newly.push_back(v);
    }
    // Mark first so each traversal below prunes at the deeper path nodes;
    // every point is then updated by exactly one traversal.
    for (int32_t v : newly) covered_[v] = 1;

    for (int32_t u : newly) {
      const int u_level = tree_.node(u).level;
      // Points whose deepest covered ancestor becomes u are exactly the
      // points of subtree(u) with no covered cell strictly below u.
      stack_.clear();
      stack_.push_back(u);
      while (!stack_.empty()) {
        const int32_t x = stack_.back();
        stack_.pop_back();
        const Quadtree::Node& node = tree_.node(x);
        if (node.is_leaf) {
          // If u itself is the leaf holding the new center, its points are
          // co-located with the center in the tree metric: distance 0.
          const double dist =
              (u == x && node.is_leaf && u_level == node.level &&
               u == tree_.LeafOfPoint(point_idx))
                  ? 0.0
                  : tree_.TreeDistanceAtLevel(u_level);
          const double dist_pow = z_ == 2 ? dist * dist : dist;
          for (uint32_t p : node.points) {
            if (cov_level_[p] >= u_level && cov_level_[p] != -1) continue;
            cov_level_[p] = u_level;
            assigned_[p] = static_cast<uint32_t>(ordinal);
            masses_.Set(p, WeightAt(weights_, p) * dist_pow);
          }
        } else {
          for (int32_t child : node.children) {
            if (!covered_[child]) stack_.push_back(child);
          }
        }
      }
    }
    return ordinal;
  }

  /// Total remaining tree-metric D^z mass.
  double TotalMass() const { return masses_.Total(); }

  /// Samples a point index proportional to the current tree-metric masses.
  size_t Sample(Rng& rng) const { return masses_.Sample(rng); }

  double MassOf(size_t p) const { return masses_.Get(p); }
  size_t AssignedOrdinal(size_t p) const { return assigned_[p]; }
  const std::vector<size_t>& center_points() const { return center_points_; }

 private:
  const Matrix& points_;
  const std::vector<double>& weights_;
  const Quadtree& tree_;
  const int z_;
  std::vector<uint8_t> covered_;
  // Deepest covered-ancestor level per point, -1 = not covered yet. Kept
  // as int32_t to match Quadtree::Node::level: a caller-supplied max_depth
  // above INT16_MAX would make an int16_t wrap negative — level 65535
  // would even collide with the -1 sentinel.
  std::vector<int32_t> cov_level_;
  std::vector<uint32_t> assigned_;
  DiscreteDistribution masses_;
  std::vector<size_t> center_points_;
  std::vector<int32_t> stack_;
};

}  // namespace

Clustering FastKMeansPlusPlus(const Matrix& points,
                              const std::vector<double>& weights, size_t k,
                              const FastKMeansPlusPlusOptions& options,
                              Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(k, 0u);
  FC_CHECK(options.z == 1 || options.z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);
  if (k > n) k = n;

  Quadtree tree(points, rng,
                QuadtreeOptions{options.max_depth, options.full_depth_tree});
  TreeSeeder seeder(points, weights, tree, options.z);

  // First center: weight-proportional draw.
  const size_t first =
      weights.empty() ? rng.NextIndex(n) : rng.SampleDiscrete(weights);
  seeder.AddCenter(first);

  for (size_t c = 1; c < k; ++c) {
    if (seeder.TotalMass() <= 0.0) break;  // No uncovered leaf remains.
    size_t candidate = seeder.Sample(rng);
    if (options.rejection_sampling) {
      for (int attempt = 0; attempt < options.max_rejections; ++attempt) {
        // Accept with probability (Euclidean D^z to the assigned center) /
        // (tree D^z). The tree distance dominates the Euclidean one, so
        // this is a valid acceptance probability; it reshapes the sampling
        // distribution toward true-metric D^z sampling.
        const double tree_pow = seeder.MassOf(candidate);
        if (tree_pow <= 0.0) {
          // Zero remaining tree mass means the candidate is co-located
          // with an existing center (covered). Accepting it would emit a
          // duplicate center while uncovered points remain, so resample.
          // Sample() only returns positive-mass slots, making this
          // unreachable after a draw — it guards the entry state.
          candidate = seeder.Sample(rng);
          continue;
        }
        const size_t assigned_center =
            seeder.center_points()[seeder.AssignedOrdinal(candidate)];
        const double true_pow = WeightAt(weights, candidate) *
                                DistPow(points.Row(candidate),
                                        points.Row(assigned_center),
                                        options.z);
        if (rng.NextDouble() * tree_pow <= true_pow) break;
        candidate = seeder.Sample(rng);
      }
    }
    seeder.AddCenter(candidate);
  }

  const std::vector<size_t>& center_points = seeder.center_points();
  Clustering result;
  result.z = options.z;
  result.centers = Matrix(center_points.size(), points.cols());
  for (size_t c = 0; c < center_points.size(); ++c) {
    result.centers.CopyRowFrom(points, center_points[c], c);
  }

  // Report Euclidean costs of the tree-derived assignment; this is what
  // Fact 3.1 consumes. O(nd), with a chunk-order-deterministic total.
  result.assignment.resize(n);
  result.point_costs.resize(n);
  result.total_cost = ParallelReduce(n, [&](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      result.assignment[i] = seeder.AssignedOrdinal(i);
      result.point_costs[i] =
          DistPow(points.Row(i), result.centers.Row(result.assignment[i]),
                  options.z);
      partial += WeightAt(weights, i) * result.point_costs[i];
    }
    return partial;
  });
  return result;
}

}  // namespace fastcoreset
