#include "src/geometry/matrix.h"

#include <algorithm>

namespace fastcoreset {

void Matrix::CopyRowFrom(const Matrix& src, size_t src_row, size_t dst_row) {
  FC_CHECK_EQ(src.cols(), cols_);
  FC_CHECK(src_row < src.rows() && dst_row < rows_);
  std::copy_n(src.data_.data() + src_row * cols_, cols_,
              data_.data() + dst_row * cols_);
}

Matrix Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    out.CopyRowFrom(*this, indices[i], i);
  }
  return out;
}

void Matrix::AppendRows(const Matrix& other) {
  if (other.empty()) return;
  if (rows_ == 0 && cols_ == 0) cols_ = other.cols();
  FC_CHECK_EQ(other.cols(), cols_);
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

std::vector<double> Matrix::RowSquaredNorms() const {
  std::vector<double> norms(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = data_.data() + i * cols_;
    double sum = 0.0;
    for (size_t j = 0; j < cols_; ++j) sum += row[j] * row[j];
    norms[i] = sum;
  }
  return norms;
}

std::vector<double> Matrix::ColumnMeans() const {
  FC_CHECK_GT(rows_, 0u);
  std::vector<double> means(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = data_.data() + i * cols_;
    for (size_t j = 0; j < cols_; ++j) means[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(rows_);
  for (double& m : means) m *= inv;
  return means;
}

}  // namespace fastcoreset
