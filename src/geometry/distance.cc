#include "src/geometry/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/parallel.h"

namespace fastcoreset {

double SquaredL2(std::span<const double> a, std::span<const double> b) {
  FC_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double L2(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredL2(a, b));
}

double DistPow(std::span<const double> a, std::span<const double> b, int z) {
  FC_DCHECK(z == 1 || z == 2);
  const double sq = SquaredL2(a, b);
  return z == 2 ? sq : std::sqrt(sq);
}

NearestCenter FindNearestCenter(std::span<const double> point,
                                const Matrix& centers) {
  FC_CHECK_GT(centers.rows(), 0u);
  NearestCenter best;
  best.sq_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers.rows(); ++c) {
    const double sq = SquaredL2(point, centers.Row(c));
    if (sq < best.sq_dist) {
      best.sq_dist = sq;
      best.index = c;
    }
  }
  return best;
}

namespace {

// Rows of points processed per block: the block's per-tile accumulator
// panel (kPointBlock x kCenterTile doubles) stays in L1 while a center
// tile streams through.
constexpr size_t kPointBlock = 64;
// Centers per tile = SIMD lanes of the accumulator panel. 16 doubles span
// 8 SSE2 / 4 AVX2 / 2 AVX-512 registers — few enough that the per-point
// accumulator row lives entirely in registers during the strip loop.
constexpr size_t kCenterTile = 16;
// Feature dimensions per strip: bounds the transposed center scratch
// (kDimStrip * kCenterTile doubles, 8 KiB) so it stays on the stack.
constexpr size_t kDimStrip = 64;

// Dot product with eight independent accumulators. A single-accumulator
// reduction serializes on the FP add latency (the compiler may not
// reassociate floating-point sums), capping throughput at ~1 element per
// 4 cycles; independent chains expose the ILP/SIMD the hardware has. The
// accumulator count and final summation order are fixed, so results are
// identical on every run and thread count (though not bit-equal to the
// single-chain SquaredL2 — hence the tolerance-based property tests).
inline double DotUnrolled(const double* a, const double* b, size_t d) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  double acc4 = 0.0, acc5 = 0.0, acc6 = 0.0, acc7 = 0.0;
  size_t j = 0;
  for (; j + 8 <= d; j += 8) {
    acc0 += a[j] * b[j];
    acc1 += a[j + 1] * b[j + 1];
    acc2 += a[j + 2] * b[j + 2];
    acc3 += a[j + 3] * b[j + 3];
    acc4 += a[j + 4] * b[j + 4];
    acc5 += a[j + 5] * b[j + 5];
    acc6 += a[j + 6] * b[j + 6];
    acc7 += a[j + 7] * b[j + 7];
  }
  for (; j < d; ++j) acc0 += a[j] * b[j];
  return ((acc0 + acc1) + (acc2 + acc3)) + ((acc4 + acc5) + (acc6 + acc7));
}

}  // namespace

// The kernel is compiled once for the baseline ISA and once for
// x86-64-v3 (AVX2 + FMA), dispatched by the loader via ifunc. Which clone
// runs is a property of the machine, not of the thread count or chunking,
// so determinism at fixed hardware is unaffected (FMA contraction does
// round differently across *machines* — bit-reproducibility was only ever
// promised per binary per host).
//
// The ifunc resolver runs before sanitizer runtimes initialize and
// segfaults at load under TSan, so multi-versioning is compiled out when
// a sanitizer is active (__SANITIZE_*__) or when the build asks for the
// dispatch-free path explicitly (-DFC_DISABLE_TARGET_CLONES, set by the
// FC_DISABLE_TARGET_CLONES CMake option / the tsan preset). The function
// body is identical either way — only the per-ISA cloning is skipped.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) &&   \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__) &&   \
    !defined(FC_DISABLE_TARGET_CLONES)
#define FC_TARGET_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3")))
#else
#define FC_TARGET_CLONES
#endif

FC_TARGET_CLONES
void BatchNearestCenter(const Matrix& points, size_t row_begin,
                        size_t row_end, const Matrix& centers,
                        std::span<const double> center_sq_norms,
                        std::span<size_t> out_index,
                        std::span<double> out_sq_dist) {
  FC_DCHECK(row_begin <= row_end && row_end <= points.rows());
  FC_DCHECK(points.cols() == centers.cols());
  FC_DCHECK(center_sq_norms.size() == centers.rows());
  FC_DCHECK(out_index.size() >= row_end - row_begin);
  FC_DCHECK(out_sq_dist.size() >= row_end - row_begin);
  FC_CHECK_GT(centers.rows(), 0u);
  const size_t d = points.cols();
  const size_t k = centers.rows();
  const double* point_data = points.data().data();
  const double* center_data = centers.data().data();

  // Per-block state: best g(c) = ‖c‖² − 2x·c (argmin over c of ‖x − c‖²
  // equals argmin of g, the ‖x‖² term being constant per point).
  double best_g[kPointBlock];
  size_t best_idx[kPointBlock];
  // Transposed strip of the current center tile: ct[j][c] lays the tile's
  // lane-c coordinate j contiguously in c, so the inner loop is a
  // broadcast-x[j] * contiguous-load FMA into register-resident lanes.
  double ct[kDimStrip][kCenterTile];
  // dots[i][c] accumulates x_i · c over the strip loop.
  double dots[kPointBlock][kCenterTile];

  for (size_t b0 = row_begin; b0 < row_end; b0 += kPointBlock) {
    const size_t b1 = std::min(row_end, b0 + kPointBlock);
    const size_t block = b1 - b0;
    std::fill_n(best_g, block, std::numeric_limits<double>::infinity());
    std::fill_n(best_idx, block, size_t{0});

    for (size_t c0 = 0; c0 < k; c0 += kCenterTile) {
      const size_t tile = std::min(kCenterTile, k - c0);
      // dots needs no prefill: the first strip (j0 == 0) starts its
      // accumulators at zero and stores, later strips accumulate on top.
      for (size_t j0 = 0; j0 < d; j0 += kDimStrip) {
        const size_t strip = std::min(kDimStrip, d - j0);
        // Transpose the (tile x strip) center panel; unused lanes stay 0
        // and accumulate 0, so the hot loop is branch-free at full width.
        for (size_t j = 0; j < strip; ++j) {
          for (size_t c = 0; c < kCenterTile; ++c) ct[j][c] = 0.0;
        }
        for (size_t c = 0; c < tile; ++c) {
          const double* row = center_data + (c0 + c) * d + j0;
          for (size_t j = 0; j < strip; ++j) ct[j][c] = row[j];
        }
        for (size_t i = 0; i < block; ++i) {
          const double* x = point_data + (b0 + i) * d + j0;
          double* di = dots[i];
#if defined(__GNUC__) || defined(__clang__)
          // Explicit SIMD via vector extensions: GCC neither
          // scalar-replaces a 16-double accumulator array nor keeps its
          // SLP-packed form in registers across the j loop (it reloads
          // and respills every lane each iteration). Vector-typed SSA
          // values are register-allocated like scalars. aligned(8) makes
          // the deref of 8-byte-aligned rows legal (emits vmovupd).
          typedef double v4df
              __attribute__((vector_size(32), aligned(8)));
          v4df acc0 = {0.0, 0.0, 0.0, 0.0};
          v4df acc1 = acc0, acc2 = acc0, acc3 = acc0;
          if (j0 != 0) {
            acc0 = *reinterpret_cast<const v4df*>(di);
            acc1 = *reinterpret_cast<const v4df*>(di + 4);
            acc2 = *reinterpret_cast<const v4df*>(di + 8);
            acc3 = *reinterpret_cast<const v4df*>(di + 12);
          }
          for (size_t j = 0; j < strip; ++j) {
            const double xj = x[j];
            const v4df xv = {xj, xj, xj, xj};
            const double* ctj = ct[j];
            acc0 += xv * *reinterpret_cast<const v4df*>(ctj);
            acc1 += xv * *reinterpret_cast<const v4df*>(ctj + 4);
            acc2 += xv * *reinterpret_cast<const v4df*>(ctj + 8);
            acc3 += xv * *reinterpret_cast<const v4df*>(ctj + 12);
          }
          *reinterpret_cast<v4df*>(di) = acc0;
          *reinterpret_cast<v4df*>(di + 4) = acc1;
          *reinterpret_cast<v4df*>(di + 8) = acc2;
          *reinterpret_cast<v4df*>(di + 12) = acc3;
#else
          if (j0 == 0) std::fill_n(di, kCenterTile, 0.0);
          for (size_t j = 0; j < strip; ++j) {
            const double xj = x[j];
            const double* ctj = ct[j];
            for (size_t c = 0; c < kCenterTile; ++c) di[c] += xj * ctj[c];
          }
#endif
        }
      }
      // Fold the finished tile into the running argmin. Strict < with
      // ascending c keeps FindNearestCenter's tie-breaking (lowest center
      // index wins).
      for (size_t i = 0; i < block; ++i) {
        double local_best = best_g[i];
        size_t local_idx = best_idx[i];
        for (size_t c = 0; c < tile; ++c) {
          const double g = center_sq_norms[c0 + c] - 2.0 * dots[i][c];
          if (g < local_best) {
            local_best = g;
            local_idx = c0 + c;
          }
        }
        best_g[i] = local_best;
        best_idx[i] = local_idx;
      }
    }

    for (size_t i = 0; i < block; ++i) {
      const double* x = point_data + (b0 + i) * d;
      const double x_norm = DotUnrolled(x, x, d);
      out_index[b0 + i - row_begin] = best_idx[i];
      // The expanded form can round slightly negative for coincident rows.
      out_sq_dist[b0 + i - row_begin] = std::max(0.0, x_norm + best_g[i]);
    }
  }
}

void AssignToNearest(const Matrix& points, const Matrix& centers,
                     std::vector<size_t>* assignment,
                     std::vector<double>* sq_dists) {
  FC_CHECK_EQ(points.cols(), centers.cols());
  assignment->resize(points.rows());
  sq_dists->resize(points.rows());
  const std::vector<double> center_sq_norms = centers.RowSquaredNorms();
  ParallelFor(points.rows(), [&](size_t begin, size_t end) {
    BatchNearestCenter(points, begin, end, centers, center_sq_norms,
                       std::span<size_t>(assignment->data() + begin,
                                         end - begin),
                       std::span<double>(sq_dists->data() + begin,
                                         end - begin));
  });
}

}  // namespace fastcoreset
