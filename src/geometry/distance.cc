#include "src/geometry/distance.h"

#include <cmath>
#include <limits>

#include "src/common/parallel.h"

namespace fastcoreset {

double SquaredL2(std::span<const double> a, std::span<const double> b) {
  FC_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double L2(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredL2(a, b));
}

double DistPow(std::span<const double> a, std::span<const double> b, int z) {
  FC_DCHECK(z == 1 || z == 2);
  const double sq = SquaredL2(a, b);
  return z == 2 ? sq : std::sqrt(sq);
}

NearestCenter FindNearestCenter(std::span<const double> point,
                                const Matrix& centers) {
  FC_CHECK_GT(centers.rows(), 0u);
  NearestCenter best;
  best.sq_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers.rows(); ++c) {
    const double sq = SquaredL2(point, centers.Row(c));
    if (sq < best.sq_dist) {
      best.sq_dist = sq;
      best.index = c;
    }
  }
  return best;
}

void AssignToNearest(const Matrix& points, const Matrix& centers,
                     std::vector<size_t>* assignment,
                     std::vector<double>* sq_dists) {
  FC_CHECK_EQ(points.cols(), centers.cols());
  assignment->resize(points.rows());
  sq_dists->resize(points.rows());
  ParallelFor(points.rows(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const NearestCenter nearest = FindNearestCenter(points.Row(i), centers);
      (*assignment)[i] = nearest.index;
      (*sq_dists)[i] = nearest.sq_dist;
    }
  });
}

}  // namespace fastcoreset
