#include "src/geometry/bounding_box.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/geometry/distance.h"

namespace fastcoreset {

double BoundingBox::MaxSide() const {
  double side = 0.0;
  for (size_t j = 0; j < lo.size(); ++j) side = std::max(side, hi[j] - lo[j]);
  return side;
}

double BoundingBox::Diagonal() const {
  double sum = 0.0;
  for (size_t j = 0; j < lo.size(); ++j) {
    const double side = hi[j] - lo[j];
    sum += side * side;
  }
  return std::sqrt(sum);
}

BoundingBox ComputeBoundingBox(const Matrix& points) {
  FC_CHECK_GT(points.rows(), 0u);
  BoundingBox box;
  box.lo.assign(points.cols(), std::numeric_limits<double>::infinity());
  box.hi.assign(points.cols(), -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < points.rows(); ++i) {
    const auto row = points.Row(i);
    for (size_t j = 0; j < points.cols(); ++j) {
      box.lo[j] = std::min(box.lo[j], row[j]);
      box.hi[j] = std::max(box.hi[j], row[j]);
    }
  }
  return box;
}

double MinNonzeroDistance(const Matrix& points) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < points.rows(); ++i) {
    for (size_t j = i + 1; j < points.rows(); ++j) {
      const double sq = SquaredL2(points.Row(i), points.Row(j));
      if (sq > 0.0 && sq < best) best = sq;
    }
  }
  return std::isinf(best) ? 0.0 : std::sqrt(best);
}

double ComputeSpreadExact(const Matrix& points) {
  if (points.rows() < 2) return 1.0;
  const double min_dist = MinNonzeroDistance(points);
  if (min_dist == 0.0) return 1.0;
  double max_sq = 0.0;
  for (size_t i = 0; i < points.rows(); ++i) {
    for (size_t j = i + 1; j < points.rows(); ++j) {
      max_sq = std::max(max_sq, SquaredL2(points.Row(i), points.Row(j)));
    }
  }
  return std::sqrt(max_sq) / min_dist;
}

}  // namespace fastcoreset
