// Hashing of integer grid-cell coordinates.
//
// Quadtree cells are identified by their integer coordinate vector at a
// given level. We never store the coordinate vectors; instead cells are
// keyed by a 128-bit hash (two independent 64-bit mixes), which makes an
// accidental collision across even billions of cells vanishingly unlikely.

#ifndef FASTCORESET_GEOMETRY_CELL_HASH_H_
#define FASTCORESET_GEOMETRY_CELL_HASH_H_

#include <cstdint>
#include <functional>
#include <span>

namespace fastcoreset {

/// 128-bit cell identifier (hash of level + integer cell coordinates).
struct CellKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const CellKey& a, const CellKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

/// std::hash adapter for CellKey.
struct CellKeyHash {
  size_t operator()(const CellKey& key) const {
    return static_cast<size_t>(key.hi ^ (key.lo * 0x9e3779b97f4a7c15ull));
  }
};

namespace internal_cell_hash {

inline uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace internal_cell_hash

/// Hashes (level, coords) into a CellKey. Two calls agree iff (with
/// overwhelming probability) level and all coordinates agree.
inline CellKey HashCell(int level, std::span<const int64_t> coords) {
  uint64_t h1 = internal_cell_hash::Mix(0x1234567893abcdefull ^
                                        static_cast<uint64_t>(level));
  uint64_t h2 = internal_cell_hash::Mix(0xfedcba9876543210ull +
                                        static_cast<uint64_t>(level));
  for (int64_t c : coords) {
    const uint64_t u = static_cast<uint64_t>(c);
    h1 = internal_cell_hash::Mix(h1 ^ u);
    h2 = internal_cell_hash::Mix(h2 + (u * 0x9e3779b97f4a7c15ull));
  }
  return CellKey{h1, h2};
}

}  // namespace fastcoreset

#endif  // FASTCORESET_GEOMETRY_CELL_HASH_H_
