// Randomly-shifted quadtree over a Euclidean point set (Section 2.4).
//
// The tree induces a hierarchically separated tree (HST) metric: the
// distance between two points is a function of the level of their lowest
// common ancestor cell, and dominates their Euclidean distance (Lemma 2.2:
// the expected tree distance is within O(d log Δ) of the true one).
//
// Construction is insertion-based: each point descends from the root,
// splitting leaf cells as they become shared, until a cell holds a single
// point or `max_depth` is reached. Cells are stored sparsely and identified
// by 128-bit coordinate hashes, so memory is proportional to the number of
// *occupied* cells, never 2^d.

#ifndef FASTCORESET_GEOMETRY_QUADTREE_H_
#define FASTCORESET_GEOMETRY_QUADTREE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/geometry/cell_hash.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Construction options.
struct QuadtreeOptions {
  /// Cap on the tree height; points still sharing a cell at max_depth are
  /// treated as co-located in the tree metric.
  int max_depth = 30;
  /// When false (default, adaptive): a cell stops splitting once it holds
  /// a single point, so depth — and cost — adapt to the local geometry.
  /// When true: every point descends to max_depth, reproducing the
  /// O(nd log Δ) construction cost of the non-adaptive embedding the
  /// paper's Table 1 measures.
  bool full_depth = false;
};

/// Randomly-shifted quadtree / HST embedding of a point set.
class Quadtree {
 public:
  /// Tree node: an occupied grid cell at some level.
  struct Node {
    int32_t level = 0;    ///< Depth; root is level 0 with side root_side().
    int32_t parent = -1;  ///< Node id of the parent cell (-1 for the root).
    bool is_leaf = true;
    std::vector<int32_t> children;  ///< Ids of occupied child cells.
    std::vector<uint32_t> points;   ///< Point indices (leaves only).
  };

  /// Builds the tree over `points` with a fresh uniform random shift.
  Quadtree(const Matrix& points, Rng& rng, const QuadtreeOptions& options);

  /// Convenience: adaptive tree with the given depth cap.
  Quadtree(const Matrix& points, Rng& rng, int max_depth = 30)
      : Quadtree(points, rng, QuadtreeOptions{max_depth, false}) {}

  Quadtree(const Quadtree&) = delete;
  Quadtree& operator=(const Quadtree&) = delete;

  size_t num_points() const { return leaf_of_point_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  int max_depth() const { return max_depth_; }
  size_t dim() const { return shift_.size(); }

  int32_t root() const { return 0; }
  const Node& node(int32_t id) const { return nodes_[id]; }

  /// Leaf cell containing point `point_idx`.
  int32_t LeafOfPoint(size_t point_idx) const {
    return leaf_of_point_[point_idx];
  }

  /// Side length of cells at `level`: root_side / 2^level.
  double CellSide(int level) const;

  /// Side length of the root cell.
  double root_side() const { return root_side_; }

  /// Random shift vector used to anchor the grid.
  const std::vector<double>& shift() const { return shift_; }

  /// HST distance between two points whose lowest common ancestor sits at
  /// `level`: twice the diagonal of a level-`level` cell (the length of the
  /// down-paths on both sides, geometrically summed). Dominates the
  /// Euclidean distance between any two points separated at that level.
  double TreeDistanceAtLevel(int level) const;

  /// Level of the lowest common ancestor of two points (max_depth if they
  /// share a leaf). Walks parent pointers: O(depth).
  int LcaLevel(size_t point_a, size_t point_b) const;

  /// Tree-metric distance between two points.
  double TreeDistance(size_t point_a, size_t point_b) const;

 private:
  /// Inserts a point, starting the descent at node `start`.
  void InsertFrom(int32_t start, uint32_t point_idx, const Matrix& points);
  /// Integer cell coordinates of a point at `level`.
  void CellCoords(std::span<const double> point, int level,
                  std::vector<int64_t>* coords) const;
  int32_t GetOrCreateChild(int32_t parent_id, std::span<const double> point);

  int max_depth_;
  bool full_depth_;
  double root_side_ = 1.0;
  std::vector<double> shift_;
  std::vector<Node> nodes_;
  std::vector<int32_t> leaf_of_point_;
  // Transient during construction: (level, coords) hash -> node id.
  std::unordered_map<CellKey, int32_t, CellKeyHash> build_map_;
};

}  // namespace fastcoreset

#endif  // FASTCORESET_GEOMETRY_QUADTREE_H_
