// Distance kernels. The library works with powers z in {1, 2}:
// z = 1 is k-median (plain Euclidean distance), z = 2 is k-means
// (squared Euclidean distance).
//
// Two tiers:
//   - Scalar reference kernels (SquaredL2, FindNearestCenter): one point
//     against one/all centers via the direct (x - c)^2 form. Exact and
//     simple; used for small inputs and as the ground truth the property
//     tests compare against.
//   - Blocked batched kernel (BatchNearestCenter): processes a block of
//     point rows against a cache-resident tile of centers using the
//     norm-cached form ‖x − c‖² = ‖x‖² − 2x·c + ‖c‖². The inner loop is a
//     contiguous dot product (one fma per element after vectorization,
//     versus sub+mul+add for the direct form) and each center tile is
//     reused across the whole point block. Every O(nkd) consumer in the
//     library routes through this kernel via ParallelFor.
//
// The batched kernel is deterministic: a point's result depends only on
// the point and the centers, never on block or chunk boundaries, so
// outputs are bit-identical at any FC_THREADS.

#ifndef FASTCORESET_GEOMETRY_DISTANCE_H_
#define FASTCORESET_GEOMETRY_DISTANCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Squared Euclidean distance between two equal-length vectors.
double SquaredL2(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
double L2(std::span<const double> a, std::span<const double> b);

/// dist^z for z in {1, 2}.
double DistPow(std::span<const double> a, std::span<const double> b, int z);

/// Result of a nearest-center query.
struct NearestCenter {
  size_t index = 0;     ///< Row index of the nearest center.
  double sq_dist = 0.;  ///< Squared Euclidean distance to it.
};

/// Nearest row of `centers` to `point` (scalar brute force over centers).
NearestCenter FindNearestCenter(std::span<const double> point,
                                const Matrix& centers);

/// Blocked nearest-center kernel over the point rows [row_begin, row_end).
/// `center_sq_norms` must be centers.RowSquaredNorms(). Results for row i
/// land at out_index[i - row_begin] / out_sq_dist[i - row_begin] (both
/// spans sized row_end - row_begin). Ties break toward the lower center
/// index, matching FindNearestCenter; squared distances are computed in
/// the norm-cached form and clamped at zero, so they match the scalar
/// kernel to floating-point tolerance (not bit-exactly).
void BatchNearestCenter(const Matrix& points, size_t row_begin,
                        size_t row_end, const Matrix& centers,
                        std::span<const double> center_sq_norms,
                        std::span<size_t> out_index,
                        std::span<double> out_sq_dist);

/// For every row of `points`, the nearest row of `centers`.
/// Writes assignment indices and squared distances (vectors are resized).
/// Runs the blocked kernel across the ParallelFor substrate.
void AssignToNearest(const Matrix& points, const Matrix& centers,
                     std::vector<size_t>* assignment,
                     std::vector<double>* sq_dists);

}  // namespace fastcoreset

#endif  // FASTCORESET_GEOMETRY_DISTANCE_H_
