// Distance kernels. The library works with powers z in {1, 2}:
// z = 1 is k-median (plain Euclidean distance), z = 2 is k-means
// (squared Euclidean distance).

#ifndef FASTCORESET_GEOMETRY_DISTANCE_H_
#define FASTCORESET_GEOMETRY_DISTANCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Squared Euclidean distance between two equal-length vectors.
double SquaredL2(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between two equal-length vectors.
double L2(std::span<const double> a, std::span<const double> b);

/// dist^z for z in {1, 2}.
double DistPow(std::span<const double> a, std::span<const double> b, int z);

/// Result of a nearest-center query.
struct NearestCenter {
  size_t index = 0;     ///< Row index of the nearest center.
  double sq_dist = 0.;  ///< Squared Euclidean distance to it.
};

/// Nearest row of `centers` to `point` (brute force over centers).
NearestCenter FindNearestCenter(std::span<const double> point,
                                const Matrix& centers);

/// For every row of `points`, the nearest row of `centers`.
/// Writes assignment indices and squared distances (vectors are resized).
void AssignToNearest(const Matrix& points, const Matrix& centers,
                     std::vector<size_t>* assignment,
                     std::vector<double>* sq_dists);

}  // namespace fastcoreset

#endif  // FASTCORESET_GEOMETRY_DISTANCE_H_
