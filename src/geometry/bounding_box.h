// Axis-aligned bounding box of a point set, used to anchor quadtree grids
// and to estimate the spread Δ.

#ifndef FASTCORESET_GEOMETRY_BOUNDING_BOX_H_
#define FASTCORESET_GEOMETRY_BOUNDING_BOX_H_

#include <vector>

#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Axis-aligned bounding box.
struct BoundingBox {
  std::vector<double> lo;  ///< Per-dimension minimum.
  std::vector<double> hi;  ///< Per-dimension maximum.

  /// Length of the longest side.
  double MaxSide() const;

  /// Euclidean length of the box diagonal (an upper bound on the diameter).
  double Diagonal() const;
};

/// Computes the bounding box of `points` in O(nd). Requires rows() > 0.
BoundingBox ComputeBoundingBox(const Matrix& points);

/// Smallest pairwise nonzero distance — exact O(n^2 d); intended for tests
/// and small inputs only. Returns 0 if all points coincide.
double MinNonzeroDistance(const Matrix& points);

/// Spread Δ = diameter / smallest nonzero distance (test helper, O(n^2 d)).
/// Returns 1 for degenerate inputs.
double ComputeSpreadExact(const Matrix& points);

}  // namespace fastcoreset

#endif  // FASTCORESET_GEOMETRY_BOUNDING_BOX_H_
