// Dense row-major point matrix: the dataset representation used across the
// library. Rows are points, columns are features. Double precision.

#ifndef FASTCORESET_GEOMETRY_MATRIX_H_
#define FASTCORESET_GEOMETRY_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/check.h"

namespace fastcoreset {

/// Dense n x d row-major matrix of doubles. Points are rows.
class Matrix {
 public:
  /// Empty 0 x 0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Wraps existing data (size must equal rows * cols).
  Matrix(size_t rows, size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    FC_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  double& At(size_t i, size_t j) {
    FC_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double At(size_t i, size_t j) const {
    FC_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Mutable view of row i.
  std::span<double> Row(size_t i) {
    FC_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  /// Read-only view of row i.
  std::span<const double> Row(size_t i) const {
    FC_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Copies row `src_row` of `src` into row `dst_row` of this matrix.
  void CopyRowFrom(const Matrix& src, size_t src_row, size_t dst_row);

  /// Returns a matrix holding the selected rows, in order.
  Matrix SelectRows(const std::vector<size_t>& indices) const;

  /// Appends all rows of `other` (column counts must match; an empty
  /// matrix adopts other's column count).
  void AppendRows(const Matrix& other);

  /// Mean of all rows (the 1-mean / centroid). Requires rows() > 0.
  std::vector<double> ColumnMeans() const;

  /// Squared L2 norm of every row. Feeds the norm-cached distance form
  /// ‖x − c‖² = ‖x‖² − 2x·c + ‖c‖² used by the batched kernels.
  std::vector<double> RowSquaredNorms() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace fastcoreset

#endif  // FASTCORESET_GEOMETRY_MATRIX_H_
