#include "src/geometry/quadtree.h"

#include <cmath>

#include "src/geometry/bounding_box.h"

namespace fastcoreset {

Quadtree::Quadtree(const Matrix& points, Rng& rng,
                   const QuadtreeOptions& options)
    : max_depth_(options.max_depth), full_depth_(options.full_depth) {
  FC_CHECK_GT(points.rows(), 0u);
  FC_CHECK_GE(max_depth_, 1);

  const BoundingBox box = ComputeBoundingBox(points);
  double base = box.MaxSide();
  if (base <= 0.0) base = 1.0;  // All points coincide; any grid works.
  root_side_ = 2.0 * base;

  // Shift each grid origin below the bounding box by a uniform offset in
  // [0, base). Every point then lies in [s_i, s_i + root_side), and the
  // offset is uniform modulo the cell side at every level >= 1, which is
  // what the separation probability of Lemma 4.3 / Lemma 2.2 needs.
  shift_.resize(points.cols());
  for (size_t j = 0; j < points.cols(); ++j) {
    shift_[j] = box.lo[j] - rng.Uniform(0.0, base);
  }

  Node root;
  root.level = 0;
  root.parent = -1;
  nodes_.push_back(root);

  leaf_of_point_.assign(points.rows(), 0);
  for (size_t i = 0; i < points.rows(); ++i) {
    InsertFrom(0, static_cast<uint32_t>(i), points);
  }
  build_map_.clear();
}

double Quadtree::CellSide(int level) const {
  return root_side_ * std::pow(0.5, level);
}

double Quadtree::TreeDistanceAtLevel(int level) const {
  // Geometric sum of the down-path edge lengths (sqrt(d) * cell side per
  // level) on both sides of the LCA.
  return 2.0 * std::sqrt(static_cast<double>(dim())) * CellSide(level);
}

int Quadtree::LcaLevel(size_t point_a, size_t point_b) const {
  int32_t a = leaf_of_point_[point_a];
  int32_t b = leaf_of_point_[point_b];
  if (a == b) return max_depth_;
  while (nodes_[a].level > nodes_[b].level) a = nodes_[a].parent;
  while (nodes_[b].level > nodes_[a].level) b = nodes_[b].parent;
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
  }
  return nodes_[a].level;
}

double Quadtree::TreeDistance(size_t point_a, size_t point_b) const {
  if (leaf_of_point_[point_a] == leaf_of_point_[point_b]) {
    // Co-located at max depth: the tree cannot distinguish them.
    return 0.0;
  }
  return TreeDistanceAtLevel(LcaLevel(point_a, point_b));
}

void Quadtree::CellCoords(std::span<const double> point, int level,
                          std::vector<int64_t>* coords) const {
  const double inv_side = std::pow(2.0, level) / root_side_;
  coords->resize(point.size());
  for (size_t j = 0; j < point.size(); ++j) {
    (*coords)[j] =
        static_cast<int64_t>(std::floor((point[j] - shift_[j]) * inv_side));
  }
}

int32_t Quadtree::GetOrCreateChild(int32_t parent_id,
                                   std::span<const double> point) {
  const int child_level = nodes_[parent_id].level + 1;
  std::vector<int64_t> coords;
  CellCoords(point, child_level, &coords);
  const CellKey key = HashCell(child_level, coords);
  auto [it, inserted] = build_map_.try_emplace(
      key, static_cast<int32_t>(nodes_.size()));
  if (inserted) {
    Node child;
    child.level = child_level;
    child.parent = parent_id;
    nodes_.push_back(child);  // May reallocate; take references after this.
    nodes_[parent_id].children.push_back(it->second);
  }
  return it->second;
}

void Quadtree::InsertFrom(int32_t start, uint32_t point_idx,
                          const Matrix& points) {
  int32_t v = start;
  while (true) {
    if (nodes_[v].is_leaf) {
      // Adaptive mode parks a point in the first empty cell it reaches;
      // full-depth mode always descends to max_depth (the paper's
      // non-adaptive embedding cost).
      if (nodes_[v].level == max_depth_ ||
          (!full_depth_ && nodes_[v].points.empty())) {
        nodes_[v].points.push_back(point_idx);
        leaf_of_point_[point_idx] = v;
        return;
      }
      // Occupied leaf above max depth: split it by pushing its points one
      // level down, then retry the insertion from the same (now internal)
      // node. Recursion descends at least one level per call, so its depth
      // is bounded by max_depth_.
      std::vector<uint32_t> moved;
      moved.swap(nodes_[v].points);
      nodes_[v].is_leaf = false;
      for (uint32_t q : moved) {
        const int32_t child = GetOrCreateChild(v, points.Row(q));
        InsertFrom(child, q, points);
      }
      continue;
    }
    v = GetOrCreateChild(v, points.Row(point_idx));
  }
}

}  // namespace fastcoreset
