#include "src/geometry/jl_projection.h"

#include <algorithm>
#include <cmath>

namespace fastcoreset {

size_t JlTargetDim(size_t k, double eps, size_t original_dim) {
  FC_CHECK_GT(eps, 0.0);
  const double dims =
      std::ceil(std::log(static_cast<double>(std::max<size_t>(k, 2))) /
                (eps * eps));
  const size_t target = static_cast<size_t>(std::max(1.0, dims));
  return std::min(target, original_dim);
}

Matrix JlProject(const Matrix& points, size_t target_dim, Rng& rng,
                 JlSketch sketch) {
  FC_CHECK_GT(target_dim, 0u);
  const size_t d = points.cols();
  if (target_dim >= d) return points;

  // Projection matrix S is d x d', scaled so E[||Sx||^2] = ||x||^2.
  const double scale = 1.0 / std::sqrt(static_cast<double>(target_dim));
  Matrix sketch_matrix(d, target_dim);
  for (size_t i = 0; i < d; ++i) {
    auto row = sketch_matrix.Row(i);
    for (size_t j = 0; j < target_dim; ++j) {
      row[j] = scale * (sketch == JlSketch::kGaussian ? rng.NextGaussian()
                                                      : rng.NextSign());
    }
  }

  Matrix projected(points.rows(), target_dim);
  for (size_t i = 0; i < points.rows(); ++i) {
    const auto src = points.Row(i);
    auto dst = projected.Row(i);
    for (size_t f = 0; f < d; ++f) {
      const double x = src[f];
      if (x == 0.0) continue;
      const auto srow = sketch_matrix.Row(f);
      for (size_t j = 0; j < target_dim; ++j) dst[j] += x * srow[j];
    }
  }
  return projected;
}

}  // namespace fastcoreset
