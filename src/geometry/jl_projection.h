// Johnson–Lindenstrauss random projection.
//
// Step 2 of Algorithm 1 (Fast-Coreset): embed the dataset into
// d' = O(log k / eps^2) dimensions so the downstream quadtree and seeding
// work is independent of the original feature count. Makarychev et al.
// (STOC'19) show this preserves k-means / k-median costs of all candidate
// solutions up to (1 ± eps).

#ifndef FASTCORESET_GEOMETRY_JL_PROJECTION_H_
#define FASTCORESET_GEOMETRY_JL_PROJECTION_H_

#include <cstddef>

#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Sketch type for the projection matrix.
enum class JlSketch {
  kGaussian,    ///< i.i.d. N(0, 1/d') entries.
  kRademacher,  ///< i.i.d. ±1/sqrt(d') entries (cheaper to generate).
};

/// Target dimension for preserving k-clustering costs: O(log k / eps^2),
/// clamped to [1, original_dim].
size_t JlTargetDim(size_t k, double eps, size_t original_dim);

/// Projects `points` to `target_dim` dimensions with a fresh random sketch.
/// If target_dim >= points.cols() the input is returned unchanged (the
/// projection can only help when it reduces dimension).
Matrix JlProject(const Matrix& points, size_t target_dim, Rng& rng,
                 JlSketch sketch = JlSketch::kRademacher);

}  // namespace fastcoreset

#endif  // FASTCORESET_GEOMETRY_JL_PROJECTION_H_
