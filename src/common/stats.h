// Small statistics helpers for repeated-run experiment reporting.

#ifndef FASTCORESET_COMMON_STATS_H_
#define FASTCORESET_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace fastcoreset {

/// Welford-style accumulator for mean/variance over streamed samples.
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  size_t Count() const { return count_; }
  double Mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (paper tables report mean ± variance).
  double Variance() const {
    return count_ ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sample vector (0 for empty input).
double Mean(const std::vector<double>& xs);

/// Population variance of a sample vector (0 for empty input).
double Variance(const std::vector<double>& xs);

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_STATS_H_
