// Environment-variable helpers used by benches to scale workloads
// (e.g. FC_SCALE=4 multiplies dataset sizes without recompiling).

#ifndef FASTCORESET_COMMON_ENV_H_
#define FASTCORESET_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace fastcoreset {

/// Reads an environment variable as double; returns `fallback` if unset
/// or unparsable.
double EnvDouble(const std::string& name, double fallback);

/// Reads an environment variable as int64; returns `fallback` if unset
/// or unparsable.
int64_t EnvInt(const std::string& name, int64_t fallback);

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_ENV_H_
