// Lightweight invariant-checking macros (exception-free error handling).
//
// FC_CHECK* terminate the process with a diagnostic on violation; they are
// always on (also in Release builds) because the library's correctness
// contracts — e.g. "weights are non-negative", "k <= n" — are cheap to test
// relative to the O(nd) work they guard. FC_DCHECK compiles out in Release.

#ifndef FASTCORESET_COMMON_CHECK_H_
#define FASTCORESET_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fastcoreset {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "FC_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace fastcoreset

#define FC_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::fastcoreset::internal_check::CheckFailed(__FILE__, __LINE__,      \
                                                 #cond, "");              \
    }                                                                     \
  } while (0)

#define FC_CHECK_MSG(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::fastcoreset::internal_check::CheckFailed(__FILE__, __LINE__,      \
                                                 #cond, msg);             \
    }                                                                     \
  } while (0)

#define FC_CHECK_GT(a, b) FC_CHECK((a) > (b))
#define FC_CHECK_GE(a, b) FC_CHECK((a) >= (b))
#define FC_CHECK_LT(a, b) FC_CHECK((a) < (b))
#define FC_CHECK_LE(a, b) FC_CHECK((a) <= (b))
#define FC_CHECK_EQ(a, b) FC_CHECK((a) == (b))
#define FC_CHECK_NE(a, b) FC_CHECK((a) != (b))

#ifdef NDEBUG
#define FC_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define FC_DCHECK(cond) FC_CHECK(cond)
#endif

#endif  // FASTCORESET_COMMON_CHECK_H_
