#include "src/common/stats.h"

namespace fastcoreset {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double mean = Mean(xs);
  double sum_sq = 0.0;
  for (double x : xs) sum_sq += (x - mean) * (x - mean);
  return sum_sq / static_cast<double>(xs.size());
}

}  // namespace fastcoreset
