// Fixed-width ASCII table output used by the benchmark harness to print
// paper-style tables (e.g. "Table 4: distortion means and variances").

#ifndef FASTCORESET_COMMON_TABLE_PRINTER_H_
#define FASTCORESET_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace fastcoreset {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; rows may differ in length (short rows are padded).
  void AddRow(std::vector<std::string> row);

  /// Renders the table (header, separator, rows) to a string.
  std::string ToString() const;

  /// Renders and writes the table to stdout.
  void Print() const;

  /// Formats a double with `digits` significant digits, compactly.
  static std::string Num(double value, int digits = 3);

  /// Formats "mean ± variance" as the paper's tables do.
  static std::string MeanVar(double mean, double variance, int digits = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_TABLE_PRINTER_H_
