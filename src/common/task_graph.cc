#include "src/common/task_graph.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/parallel.h"

namespace fastcoreset {

TaskGraph::TaskId TaskGraph::AddTask(std::function<void()> fn,
                                     const std::vector<TaskId>& deps) {
  const TaskId id = tasks_.size();
  Task task;
  task.fn = std::move(fn);
  task.pending_deps = deps.size();
  for (TaskId dep : deps) {
    // Edges must point backwards — that is the whole acyclicity proof.
    FC_CHECK_LT(dep, id);
  }
  tasks_.push_back(std::move(task));
  for (TaskId dep : deps) tasks_[dep].dependents.push_back(id);
  return id;
}

TaskGraph::RunStats TaskGraph::Run(size_t parallelism) {
  // The budget caps how many nodes run CONCURRENTLY; the chunk-tier pool
  // stays GetNumThreads() wide and is partitioned across whatever nodes
  // are in flight (see the slice in ExecutorLoop). parallelism = 1 is
  // therefore the sequential reference walk with each node on the full
  // pool — exactly the pre-scheduler behavior.
  const size_t threads = GetNumThreads();
  const size_t budget =
      parallelism == 0 ? threads : std::max<size_t>(
                                       1, std::min(parallelism, threads));
  {
    MutexLock lock(mutex_);
    for (TaskId id = 0; id < tasks_.size(); ++id) {
      if (tasks_[id].pending_deps == 0) ready_.push_back(id);
    }
    // Min-heap on task id: claims happen in id order, so parallelism = 1
    // walks the graph in exactly the order tasks were added.
    std::make_heap(ready_.begin(), ready_.end(), std::greater<TaskId>());
    queue_high_water_ = ready_.size();
  }

  // One node executor per budget unit, capped by the graph size; the
  // caller is executor 0 so a budget of 1 spawns no threads at all.
  const size_t executors = std::min(budget, std::max<size_t>(tasks_.size(), 1));
  std::vector<std::thread> helpers;
  helpers.reserve(executors - 1);
  for (size_t t = 1; t < executors; ++t) {
    helpers.emplace_back([this, threads] { ExecutorLoop(threads); });
  }
  ExecutorLoop(threads);
  for (std::thread& helper : helpers) helper.join();

  RunStats stats;
  MutexLock lock(mutex_);
  stats.tasks_executed = executed_;
  stats.max_concurrent_tasks = max_concurrent_;
  stats.queue_high_water = queue_high_water_;
  stats.parallelism = budget;
  return stats;
}

void TaskGraph::ExecutorLoop(size_t pool_width) {
  for (;;) {
    TaskId id = 0;
    size_t running_now = 0;
    {
      MutexLock lock(mutex_);
      // Park until there is a task to claim or the graph has drained.
      // No third case exists: with edges pointing backwards, the lowest
      // unexecuted id always has every dependency executed, so whenever
      // unexecuted tasks remain, one is either ready or running — and a
      // running task's completion signals this condition variable.
      while (ready_.empty() && executed_ < tasks_.size()) {
        ready_cv_.Wait(mutex_);
      }
      if (ready_.empty()) return;  // Drained: executed_ == tasks_.size().
      std::pop_heap(ready_.begin(), ready_.end(), std::greater<TaskId>());
      id = ready_.back();
      ready_.pop_back();
      ++running_;
      running_now = running_;
      max_concurrent_ = std::max(max_concurrent_, running_);
    }

    {
      // The partition: with R nodes in flight each gets a fair share of
      // the pool, pool_width / R workers (at least 1 — a node always has
      // its own thread). When the graph narrows to one running node (a
      // merge node), the slice widens back to the whole pool.
      ParallelBudgetScope scope(
          std::max<size_t>(1, pool_width / running_now));
      tasks_[id].fn();
    }

    {
      MutexLock lock(mutex_);
      --running_;
      ++executed_;
      bool new_ready = false;
      for (TaskId dependent : tasks_[id].dependents) {
        if (--tasks_[dependent].pending_deps == 0) {
          ready_.push_back(dependent);
          std::push_heap(ready_.begin(), ready_.end(),
                         std::greater<TaskId>());
          new_ready = true;
        }
      }
      queue_high_water_ = std::max(queue_high_water_, ready_.size());
      if (new_ready || executed_ == tasks_.size()) ready_cv_.NotifyAll();
    }
  }
}

}  // namespace fastcoreset
