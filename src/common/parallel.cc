#include "src/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/common/env.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace fastcoreset {

namespace {

// 0 = "not set yet": fall back to the FC_THREADS environment variable
// (default 1, serial) until SetNumThreads is called.
std::atomic<size_t> g_num_threads{0};

// Upper bound on the worker count: the pool keeps up to this many parked
// OS threads, so an accidental FC_THREADS=100000 must not turn into
// 100000 std::thread constructions (std::system_error -> std::terminate).
constexpr size_t kMaxEnvThreads = 256;

size_t EnvDefaultThreads() {
  static const size_t value = [] {
    const int64_t env = EnvInt("FC_THREADS", 1);
    if (env < 0) return size_t{1};
    if (env == 0) {
      const unsigned hardware = std::thread::hardware_concurrency();
      return hardware == 0 ? size_t{1} : size_t{hardware};
    }
    return std::min(static_cast<size_t>(env), kMaxEnvThreads);
  }();
  return value;
}

// Below this many items the chunking/thread overhead dominates.
constexpr size_t kSerialCutoff = 4096;

// Target chunk length. Equal to the serial cutoff so any range past the
// cutoff splits into at least two chunks (threads have work as soon as
// chunking kicks in); large enough that per-chunk dispatch is noise.
constexpr size_t kChunkSize = kSerialCutoff;

// Cap on the chunk count so per-chunk scratch (reduction partials) stays
// bounded on huge inputs.
constexpr size_t kMaxChunks = 1024;

struct ChunkPlan {
  size_t chunks = 1;
  size_t chunk_size = 0;
};

// The plan is a function of n ALONE. Thread count affects only which
// worker runs which chunk, never the chunk boundaries — that is the whole
// determinism story (see parallel.h).
ChunkPlan PlanChunks(size_t n) {
  if (n < kSerialCutoff) return {1, n};
  const size_t chunks =
      std::min(kMaxChunks, (n + kChunkSize - 1) / kChunkSize);
  return {chunks, (n + chunks - 1) / chunks};
}

// True on any thread currently inside a substrate dispatch (pool workers
// permanently, dispatchers for the duration of a call). A nested call
// sees the flag and runs inline instead of re-entering the pool, which
// would deadlock: the worker would park waiting for capacity that only
// it can provide.
thread_local bool tls_in_parallel_region = false;

// Per-thread executor cap installed by ParallelBudgetScope. Dispatches
// from this thread request at most this many executors; the task-graph
// tier uses it to hand each concurrent coarse task a slice of the
// worker budget. SIZE_MAX = uncapped.
thread_local size_t tls_executor_budget = SIZE_MAX;

void RunSerial(size_t n, const ChunkPlan& plan,
               const std::function<void(size_t, size_t, size_t)>& body) {
  for (size_t c = 0; c < plan.chunks; ++c) {
    const size_t begin = c * plan.chunk_size;
    const size_t end = std::min(n, begin + plan.chunk_size);
    if (begin >= end) break;
    body(c, begin, end);
  }
}

// Persistent pool. Workers are spawned lazily on the first dispatch that
// wants them, park on a condition variable between dispatches, and are
// joined either explicitly (ShutdownThreadPool) or by the singleton's
// destructor at process exit. Any number of dispatches may be in flight
// at once: each publishes its own Task (one executor group with its own
// chunk queues), the dispatcher always participates as its task's
// executor 0, and parked workers engage whichever task is still short of
// its requested executor count — so concurrent dispatchers partition the
// workers instead of serializing behind a single dispatch slot.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool pool;
    return pool;
  }

  ~ThreadPool() { Shutdown(); }

  // Executes `body` over the fixed chunk plan with up to `executors`
  // concurrent executors (the calling thread plus pool workers). Blocks
  // until every chunk has run. Safe to call from any number of
  // application threads at once.
  void Run(size_t n, const ChunkPlan& plan, size_t executors,
           const std::function<void(size_t, size_t, size_t)>& body) {
    Task task;
    task.body = &body;
    task.n = n;
    task.chunk_size = plan.chunk_size;
    task.remaining.store(plan.chunks, std::memory_order_relaxed);
    // The dispatcher is executor 0 and counts itself as active up front;
    // workers add themselves under the mutex when they engage.
    task.active.store(1, std::memory_order_relaxed);
    // Stripe the chunks across one queue per executor. Queue geometry,
    // like chunk geometry, never reaches the results: a queue only
    // decides which executor runs a chunk first.
    task.num_queues = executors;
    task.queues = std::make_unique<ChunkQueue[]>(executors);
    for (size_t q = 0; q < executors; ++q) {
      task.queues[q].next.store(q * plan.chunks / executors,
                                std::memory_order_relaxed);
      task.queues[q].end = (q + 1) * plan.chunks / executors;
    }

    {
      MutexLock lock(mutex_);
      tasks_.push_back(&task);
      // Grow toward the total deficit across every in-flight task, so a
      // second concurrent dispatch gets real workers instead of starving
      // behind the first one's group.
      size_t deficit = 0;
      for (const Task* t : tasks_) deficit += t->num_queues - 1;
      EnsureWorkersLocked(deficit);
    }
    work_cv_.NotifyAll();

    Execute(task, /*home_queue=*/0);

    MutexLock lock(mutex_);
    while (!(task.remaining.load(std::memory_order_acquire) == 0 &&
             task.active.load(std::memory_order_acquire) == 0)) {
      done_cv_.Wait(mutex_);
    }
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i] == &task) {
        tasks_.erase(tasks_.begin() + i);
        break;
      }
    }
  }
  void Shutdown() {
    std::vector<std::thread> workers;
    {
      MutexLock lock(mutex_);
      stopping_ = true;
      workers.swap(workers_);
    }
    work_cv_.NotifyAll();
    for (std::thread& worker : workers) worker.join();
    MutexLock lock(mutex_);
    stopping_ = false;  // Allow lazy re-initialization.
  }

  size_t WorkerCount() {
    MutexLock lock(mutex_);
    return workers_.size();
  }

 private:
  // Per-executor chunk queue: a half-open range of chunk indices. The
  // owner and thieves all claim via fetch_add on `next`; claims at or
  // past `end` are overshoot and simply ignored (the counter can exceed
  // `end` by at most one per executor, never near overflow).
  struct alignas(64) ChunkQueue {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };

  struct Task {
    const std::function<void(size_t, size_t, size_t)>* body = nullptr;
    size_t n = 0;
    size_t chunk_size = 0;
    std::unique_ptr<ChunkQueue[]> queues;
    size_t num_queues = 0;
    std::atomic<size_t> remaining{0};  // Chunks not yet finished.
    std::atomic<size_t> active{0};     // Executors currently inside Execute.
    size_t next_home = 0;  // Home-queue rotation; touched under mutex_ only.
  };

  // First in-flight task a worker can still help: short of its requested
  // executor count AND with unclaimed chunks left. Queue `next` counters
  // only grow, so a task whose queues are drained can never be picked —
  // which is also what makes engagement safe against Task teardown: a
  // pick implies remaining > 0, so the task's dispatcher is still parked
  // in Run() waiting for completion.
  Task* PickTaskLocked() FC_REQUIRES(mutex_) {
    for (Task* task : tasks_) {
      if (task->active.load(std::memory_order_relaxed) >= task->num_queues) {
        continue;
      }
      for (size_t q = 0; q < task->num_queues; ++q) {
        if (task->queues[q].next.load(std::memory_order_relaxed) <
            task->queues[q].end) {
          return task;
        }
      }
    }
    return nullptr;
  }

  void EnsureWorkersLocked(size_t target) FC_REQUIRES(mutex_) {
    target = std::min(target, kMaxEnvThreads - 1);
    while (workers_.size() < target) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    // Pool threads are executors by definition: any substrate call made
    // from a chunk body must run inline (see tls_in_parallel_region).
    tls_in_parallel_region = true;
    size_t home_queue = 0;
    for (;;) {
      Task* task = nullptr;
      {
        MutexLock lock(mutex_);
        while (!stopping_ && (task = PickTaskLocked()) == nullptr) {
          work_cv_.Wait(mutex_);
        }
        if (stopping_) return;
        // The active count must rise under the mutex: Run() removes its
        // task from tasks_ only while holding it, so a worker either
        // engages a still-live task or never sees it at all. PickTask
        // caps engagement at num_queues executors (one queue each,
        // dispatcher included): a pool grown for an earlier 8-executor
        // dispatch must not throw all 7 workers at a 2-executor task.
        task->active.fetch_add(1, std::memory_order_relaxed);
        home_queue = (task->next_home++ % (task->num_queues - 1)) + 1;
      }
      Execute(*task, home_queue);
    }
  }

  // Drains the executor's own queue, then steals from the others in
  // cyclic order. Signals the dispatcher when the last chunk retires and
  // the last executor leaves.
  void Execute(Task& task, size_t home_queue) {
    const size_t queues = task.num_queues;
    for (size_t offset = 0; offset < queues; ++offset) {
      ChunkQueue& queue = task.queues[(home_queue + offset) % queues];
      for (;;) {
        const size_t chunk =
            queue.next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= queue.end) break;
        const size_t begin = chunk * task.chunk_size;
        const size_t end = std::min(task.n, begin + task.chunk_size);
        if (begin < end) (*task.body)(chunk, begin, end);
        task.remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    // The dispatcher waits for remaining == 0 && active == 0, and the
    // Task dies with Run()'s stack frame as soon as that holds — so the
    // active decrement must be this executor's LAST access to the task
    // (reading it afterwards races with Task destruction under a spurious
    // done_cv_ wakeup). Read remaining first; release ordering on the
    // decrement keeps the load from sinking below it.
    const bool chunks_done =
        task.remaining.load(std::memory_order_acquire) == 0;
    const size_t prev_active =
        task.active.fetch_sub(1, std::memory_order_acq_rel);
    // Wake the dispatcher when this exit may be the completing one:
    // either every chunk had already retired, or this was the last
    // active executor — in which case all chunks are necessarily done (a
    // chunk in flight keeps its executor active), even if the remaining
    // load above raced with another executor retiring the final chunk.
    // Without the prev_active clause that race loses the only wakeup.
    if (chunks_done || prev_active == 1) {
      MutexLock lock(mutex_);
      done_cv_.NotifyAll();
    }
  }

  // Rank kPoolDispatch: the innermost lock of the tree — nothing may be
  // acquired while it is held.
  Mutex mutex_ FC_ACQUIRED_AFTER(lock_rank::tier_pool_dispatch){
      lock_rank::kPoolDispatch};
  CondVar work_cv_;  // Workers park here between tasks.
  CondVar done_cv_;  // Dispatchers wait here for their task's completion.
  std::vector<std::thread> workers_ FC_GUARDED_BY(mutex_);
  std::vector<Task*> tasks_ FC_GUARDED_BY(mutex_);  // In-flight dispatches.
  bool stopping_ FC_GUARDED_BY(mutex_) = false;
};

}  // namespace

void SetNumThreads(size_t count) {
  if (count == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    count = hardware == 0 ? 1 : hardware;
  }
  g_num_threads.store(std::min(count, kMaxEnvThreads));
}

void ResetNumThreads() { g_num_threads.store(0); }

size_t GetNumThreads() {
  const size_t set = g_num_threads.load();
  return set == 0 ? EnvDefaultThreads() : set;
}

size_t MaxParallelism() { return kMaxEnvThreads; }

ParallelBudgetScope::ParallelBudgetScope(size_t max_executors)
    : previous_(tls_executor_budget) {
  if (max_executors == 0) max_executors = 1;
  // Nesting only tightens: an inner scope cannot widen the slice its
  // caller was handed.
  tls_executor_budget = std::min(previous_, max_executors);
}

ParallelBudgetScope::~ParallelBudgetScope() {
  tls_executor_budget = previous_;
}

void ShutdownThreadPool() { ThreadPool::Instance().Shutdown(); }

size_t ThreadPoolWorkerCount() { return ThreadPool::Instance().WorkerCount(); }

size_t ParallelChunkCount(size_t n) {
  return n == 0 ? 0 : PlanChunks(n).chunks;
}

void ParallelForChunks(
    size_t n, const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  const ChunkPlan plan = PlanChunks(n);
  const size_t executors = std::min(
      {GetNumThreads(), plan.chunks, tls_executor_budget});
  if (executors <= 1 || tls_in_parallel_region) {
    RunSerial(n, plan, body);
    return;
  }
  tls_in_parallel_region = true;
  ThreadPool::Instance().Run(n, plan, executors, body);
  tls_in_parallel_region = false;
}

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body) {
  ParallelForChunks(
      n, [&body](size_t /*chunk*/, size_t begin, size_t end) {
        body(begin, end);
      });
}

double ParallelReduce(size_t n,
                      const std::function<double(size_t, size_t)>& body) {
  if (n == 0) return 0.0;
  std::vector<double> partials(ParallelChunkCount(n), 0.0);
  ParallelForChunks(n, [&](size_t chunk, size_t begin, size_t end) {
    partials[chunk] = body(begin, end);
  });
  double total = 0.0;
  for (double partial : partials) total += partial;  // Fixed chunk order.
  return total;
}

}  // namespace fastcoreset
