#include "src/common/parallel.h"

#include <algorithm>
#include <atomic>

#include "src/common/env.h"

namespace fastcoreset {

namespace {

// 0 = "not set yet": fall back to the FC_THREADS environment variable
// (default 1, serial) until SetNumThreads is called.
std::atomic<size_t> g_num_threads{0};

// Upper bound on the env-supplied worker count: ParallelFor spawns this
// many OS threads per call, so an accidental FC_THREADS=100000 must not
// turn into 100000 std::thread constructions (std::system_error ->
// std::terminate).
constexpr size_t kMaxEnvThreads = 256;

size_t EnvDefaultThreads() {
  static const size_t value = [] {
    const int64_t env = EnvInt("FC_THREADS", 1);
    if (env < 0) return size_t{1};
    if (env == 0) {
      const unsigned hardware = std::thread::hardware_concurrency();
      return hardware == 0 ? size_t{1} : size_t{hardware};
    }
    return std::min(static_cast<size_t>(env), kMaxEnvThreads);
  }();
  return value;
}

// Below this many items the thread spawn overhead dominates.
constexpr size_t kSerialCutoff = 4096;

struct ChunkPlan {
  size_t chunks = 1;
  size_t chunk_size = 0;
};

ChunkPlan PlanChunks(size_t n) {
  const size_t workers = GetNumThreads();
  if (workers <= 1 || n < kSerialCutoff) return {1, n};
  const size_t chunks = std::min(workers, n);
  return {chunks, (n + chunks - 1) / chunks};
}

}  // namespace

void SetNumThreads(size_t count) {
  if (count == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    count = hardware == 0 ? 1 : hardware;
  }
  g_num_threads.store(count);
}

void ResetNumThreads() { g_num_threads.store(0); }

size_t GetNumThreads() {
  const size_t set = g_num_threads.load();
  return set == 0 ? EnvDefaultThreads() : set;
}

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  const ChunkPlan plan = PlanChunks(n);
  if (plan.chunks == 1) {
    body(0, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(plan.chunks);
  for (size_t c = 0; c < plan.chunks; ++c) {
    const size_t begin = c * plan.chunk_size;
    const size_t end = std::min(n, begin + plan.chunk_size);
    if (begin >= end) break;
    workers.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (auto& worker : workers) worker.join();
}

double ParallelReduce(size_t n,
                      const std::function<double(size_t, size_t)>& body) {
  if (n == 0) return 0.0;
  const ChunkPlan plan = PlanChunks(n);
  if (plan.chunks == 1) return body(0, n);
  std::vector<double> partials(plan.chunks, 0.0);
  std::vector<std::thread> workers;
  workers.reserve(plan.chunks);
  for (size_t c = 0; c < plan.chunks; ++c) {
    const size_t begin = c * plan.chunk_size;
    const size_t end = std::min(n, begin + plan.chunk_size);
    if (begin >= end) break;
    workers.emplace_back(
        [&body, &partials, c, begin, end] { partials[c] = body(begin, end); });
  }
  for (auto& worker : workers) worker.join();
  double total = 0.0;
  for (double partial : partials) total += partial;  // Fixed chunk order.
  return total;
}

}  // namespace fastcoreset
