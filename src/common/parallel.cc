#include "src/common/parallel.h"

#include <algorithm>
#include <atomic>

#include "src/common/env.h"

namespace fastcoreset {

namespace {

// 0 = "not set yet": fall back to the FC_THREADS environment variable
// (default 1, serial) until SetNumThreads is called.
std::atomic<size_t> g_num_threads{0};

// Upper bound on the env-supplied worker count: ParallelForChunks spawns
// up to this many OS threads per call, so an accidental FC_THREADS=100000
// must not turn into 100000 std::thread constructions (std::system_error
// -> std::terminate).
constexpr size_t kMaxEnvThreads = 256;

size_t EnvDefaultThreads() {
  static const size_t value = [] {
    const int64_t env = EnvInt("FC_THREADS", 1);
    if (env < 0) return size_t{1};
    if (env == 0) {
      const unsigned hardware = std::thread::hardware_concurrency();
      return hardware == 0 ? size_t{1} : size_t{hardware};
    }
    return std::min(static_cast<size_t>(env), kMaxEnvThreads);
  }();
  return value;
}

// Below this many items the chunking/thread overhead dominates.
constexpr size_t kSerialCutoff = 4096;

// Target chunk length. Equal to the serial cutoff so any range past the
// cutoff splits into at least two chunks (threads have work as soon as
// chunking kicks in); large enough that per-chunk dispatch is noise.
constexpr size_t kChunkSize = kSerialCutoff;

// Cap on the chunk count so per-chunk scratch (reduction partials) stays
// bounded on huge inputs.
constexpr size_t kMaxChunks = 1024;

struct ChunkPlan {
  size_t chunks = 1;
  size_t chunk_size = 0;
};

// The plan is a function of n ALONE. Thread count affects only which
// worker runs which chunk, never the chunk boundaries — that is the whole
// determinism story (see parallel.h).
ChunkPlan PlanChunks(size_t n) {
  if (n < kSerialCutoff) return {1, n};
  const size_t chunks =
      std::min(kMaxChunks, (n + kChunkSize - 1) / kChunkSize);
  return {chunks, (n + chunks - 1) / chunks};
}

}  // namespace

void SetNumThreads(size_t count) {
  if (count == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    count = hardware == 0 ? 1 : hardware;
  }
  g_num_threads.store(count);
}

void ResetNumThreads() { g_num_threads.store(0); }

size_t GetNumThreads() {
  const size_t set = g_num_threads.load();
  return set == 0 ? EnvDefaultThreads() : set;
}

size_t ParallelChunkCount(size_t n) { return n == 0 ? 0 : PlanChunks(n).chunks; }

void ParallelForChunks(
    size_t n, const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  const ChunkPlan plan = PlanChunks(n);
  const size_t workers = std::min(GetNumThreads(), plan.chunks);
  if (workers <= 1) {
    for (size_t c = 0; c < plan.chunks; ++c) {
      const size_t begin = c * plan.chunk_size;
      const size_t end = std::min(n, begin + plan.chunk_size);
      if (begin >= end) break;
      body(c, begin, end);
    }
    return;
  }
  // Work-stealing over a shared chunk counter: chunk boundaries are fixed,
  // so the (nondeterministic) executor-to-chunk mapping is invisible in
  // the results.
  std::atomic<size_t> next_chunk{0};
  auto run = [&] {
    for (size_t c = next_chunk.fetch_add(1); c < plan.chunks;
         c = next_chunk.fetch_add(1)) {
      const size_t begin = c * plan.chunk_size;
      const size_t end = std::min(n, begin + plan.chunk_size);
      if (begin >= end) continue;
      body(c, begin, end);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 1; t < workers; ++t) threads.emplace_back(run);
  run();
  for (auto& thread : threads) thread.join();
}

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body) {
  ParallelForChunks(
      n, [&body](size_t /*chunk*/, size_t begin, size_t end) {
        body(begin, end);
      });
}

double ParallelReduce(size_t n,
                      const std::function<double(size_t, size_t)>& body) {
  if (n == 0) return 0.0;
  std::vector<double> partials(ParallelChunkCount(n), 0.0);
  ParallelForChunks(n, [&](size_t chunk, size_t begin, size_t end) {
    partials[chunk] = body(begin, end);
  });
  double total = 0.0;
  for (double partial : partials) total += partial;  // Fixed chunk order.
  return total;
}

}  // namespace fastcoreset
