// Capability-annotated mutex primitives. std::mutex carries no
// thread-safety attributes under libstdc++, so clang's -Wthread-safety
// cannot see std::lock_guard acquisitions; these thin wrappers are the
// annotated equivalents every mutex-guarded class in the tree uses:
//
//   Mutex      — std::mutex as an FC_CAPABILITY (Lock/Unlock/TryLock).
//   MutexLock  — std::lock_guard as an FC_SCOPED_CAPABILITY.
//   CondVar    — std::condition_variable over a Mutex; Wait() FC_REQUIRES
//                the mutex, so waiting without it is a compile error.
//
// All three compile to exactly the std:: operation they wrap (the
// annotations are attributes, not code), so there is no runtime cost over
// the types they replace.

#ifndef FASTCORESET_COMMON_MUTEX_H_
#define FASTCORESET_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace fastcoreset {

/// std::mutex with capability annotations. Prefer MutexLock over manual
/// Lock/Unlock pairs; TryLock is for opportunistic paths that fall back
/// to lock-free work (see ThreadPool::Run).
class FC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FC_ACQUIRE() { mutex_.lock(); }
  void Unlock() FC_RELEASE() { mutex_.unlock(); }
  bool TryLock() FC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock over a Mutex (std::lock_guard shape): acquires in the
/// constructor, releases in the destructor.
class FC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() FC_RELEASE() { mutex_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to Mutex. Wait() takes the held mutex
/// explicitly — the analysis then enforces the invariant that predicates
/// are re-checked under the lock (callers loop: `while (!pred())
/// cv.Wait(mutex);`).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, waits, and reacquires it before
  /// returning. Spurious wakeups are possible, as with std::
  /// condition_variable.
  void Wait(Mutex& mutex) FC_REQUIRES(mutex) {
    // Adopt the already-held std::mutex for the wait, then release the
    // unique_lock's ownership claim so the Mutex stays held (as the
    // caller's annotations say it is) when this returns.
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_MUTEX_H_
