// Capability-annotated mutex primitives. std::mutex carries no
// thread-safety attributes under libstdc++, so clang's -Wthread-safety
// cannot see std::lock_guard acquisitions; these thin wrappers are the
// annotated equivalents every mutex-guarded class in the tree uses:
//
//   Mutex      — std::mutex as an FC_CAPABILITY (Lock/Unlock/TryLock).
//   MutexLock  — std::lock_guard as an FC_SCOPED_CAPABILITY.
//   CondVar    — std::condition_variable over a Mutex; Wait() FC_REQUIRES
//                the mutex, so waiting without it is a compile error.
//
// Lock-rank order (PR 9). Every long-lived Mutex in the tree carries an
// integer rank from lock_rank below — lower ranks are OUTER locks,
// acquired first; a thread may only acquire a mutex whose rank is
// strictly greater than every rank it already holds. The canonical rank
// table lives in tools/lint/lock_hierarchy.toml (fc_lint's lock-order
// pass statically checks lexical acquisition patterns against it); the
// tier_* sentinels at the bottom of this header restate the same order
// as FC_ACQUIRED_BEFORE/FC_ACQUIRED_AFTER clang annotations; and in
// debug/sanitizer builds (FC_MUTEX_RANK_CHECKS) every Lock() checks the
// order dynamically against a thread-local stack of held ranks, so an
// inversion aborts at the site instead of deadlocking in production.
//
// In release builds without sanitizers all of this compiles away: the
// wrappers are exactly the std:: operation they wrap, and rank
// constructor arguments are discarded.

#ifndef FASTCORESET_COMMON_MUTEX_H_
#define FASTCORESET_COMMON_MUTEX_H_

// Dynamic rank checking is on wherever a violation can be caught cheaply
// and loudly: assert-enabled builds, and the ASan/TSan CI presets (which
// compile RelWithDebInfo, so NDEBUG alone would switch the checks off
// exactly where the concurrency suites run).
#if !defined(NDEBUG) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_ADDRESS__)
#define FC_MUTEX_RANK_CHECKS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FC_MUTEX_RANK_CHECKS 1
#else
#define FC_MUTEX_RANK_CHECKS 0
#endif
#else
#define FC_MUTEX_RANK_CHECKS 0
#endif

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

#if FC_MUTEX_RANK_CHECKS
#include <cstdio>

#include "src/common/check.h"
#endif

namespace fastcoreset {

namespace lock_rank {

// The global acquisition order, outermost first. Gaps leave room for new
// tiers (the socket daemon and tiered cache on the roadmap) without
// renumbering. Keep in sync with tools/lint/lock_hierarchy.toml — the
// fc_lint lock-order pass cross-checks every ranked Mutex declaration
// against that file.
inline constexpr int kUnranked = 0;  ///< Exempt (short-lived/test locks).
inline constexpr int kNetServer = 5;          ///< NetServer sessions/queue.
inline constexpr int kServiceScheduler = 10;  ///< CoresetService totals.
inline constexpr int kDatasetStore = 20;      ///< DatasetStore bindings.
inline constexpr int kCoresetCache = 30;      ///< CoresetCache LRU state.
inline constexpr int kRegistry = 40;          ///< api::Registry entries.
inline constexpr int kTaskGraph = 50;         ///< TaskGraph ready/running.
inline constexpr int kPoolDispatch = 60;      ///< ThreadPool dispatch.

}  // namespace lock_rank

#if FC_MUTEX_RANK_CHECKS
namespace rank_check_internal {

/// Per-thread stack of held (mutex, rank) pairs. Fixed depth: the tree
/// holds at most two ranked locks at once today; 16 is headroom, and
/// blowing it is itself a locking bug worth an abort.
struct HeldStack {
  static constexpr int kMaxDepth = 16;
  const void* mutex[kMaxDepth];
  int rank[kMaxDepth];
  int depth = 0;
};

inline HeldStack& TlsHeld() {
  thread_local HeldStack stack;
  return stack;
}

/// Call BEFORE blocking on the lock: an inversion then aborts with both
/// ranks named instead of deadlocking first.
inline void CheckAcquire(int rank) {
  if (rank == lock_rank::kUnranked) return;
  const HeldStack& held = TlsHeld();
  for (int i = 0; i < held.depth; ++i) {
    if (held.rank[i] >= rank) {
      char msg[160];
      std::snprintf(
          msg, sizeof(msg),
          "lock-rank inversion: acquiring rank %d while holding rank %d "
          "(lower = outer; see tools/lint/lock_hierarchy.toml)",
          rank, held.rank[i]);
      internal_check::CheckFailed(__FILE__, __LINE__, "lock rank order",
                                  msg);
    }
  }
}

inline void PushHeld(const void* mutex, int rank) {
  if (rank == lock_rank::kUnranked) return;
  HeldStack& held = TlsHeld();
  FC_CHECK_MSG(held.depth < HeldStack::kMaxDepth,
               "lock-rank stack overflow: more than kMaxDepth ranked "
               "locks held by one thread");
  held.mutex[held.depth] = mutex;
  held.rank[held.depth] = rank;
  ++held.depth;
}

inline void PopHeld(const void* mutex) {
  HeldStack& held = TlsHeld();
  // Search from the top: releases are almost always LIFO, but manual
  // Lock/Unlock pairs may interleave.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.mutex[i] != mutex) continue;
    for (int j = i; j + 1 < held.depth; ++j) {
      held.mutex[j] = held.mutex[j + 1];
      held.rank[j] = held.rank[j + 1];
    }
    --held.depth;
    return;
  }
  // Unranked mutexes are never pushed; unlocking one lands here.
}

}  // namespace rank_check_internal
#endif  // FC_MUTEX_RANK_CHECKS

/// std::mutex with capability annotations. Prefer MutexLock over manual
/// Lock/Unlock pairs; TryLock is for opportunistic paths that fall back
/// to lock-free work (see ThreadPool::Run). Long-lived mutexes take
/// their lock_rank tier in the constructor; the default constructor is
/// rank-exempt (tests, short-lived locals).
class FC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if FC_MUTEX_RANK_CHECKS
  explicit Mutex(int rank) : rank_(rank) {}

  void Lock() FC_ACQUIRE() {
    rank_check_internal::CheckAcquire(rank_);
    mutex_.lock();
    rank_check_internal::PushHeld(this, rank_);
  }
  void Unlock() FC_RELEASE() {
    rank_check_internal::PopHeld(this);
    mutex_.unlock();
  }
  bool TryLock() FC_TRY_ACQUIRE(true) {
    // A failed try is not an acquisition and cannot deadlock, so only a
    // successful one is rank-checked (it holds the lock like any other).
    if (!mutex_.try_lock()) return false;
    rank_check_internal::CheckAcquire(rank_);
    rank_check_internal::PushHeld(this, rank_);
    return true;
  }
#else
  explicit Mutex(int rank) { static_cast<void>(rank); }

  void Lock() FC_ACQUIRE() { mutex_.lock(); }
  void Unlock() FC_RELEASE() { mutex_.unlock(); }
  bool TryLock() FC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }
#endif

 private:
  friend class CondVar;
  std::mutex mutex_;
#if FC_MUTEX_RANK_CHECKS
  const int rank_ = lock_rank::kUnranked;
#endif
};

/// RAII lock over a Mutex (std::lock_guard shape): acquires in the
/// constructor, releases in the destructor.
class FC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() FC_RELEASE() { mutex_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to Mutex. Wait() takes the held mutex
/// explicitly — the analysis then enforces the invariant that predicates
/// are re-checked under the lock (callers loop: `while (!pred())
/// cv.Wait(mutex);`).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, waits, and reacquires it before
  /// returning. Spurious wakeups are possible, as with std::
  /// condition_variable. The rank-check stack deliberately keeps the
  /// mutex's entry during the wait: the caller still logically holds it
  /// (the annotations say so), and a blocked thread cannot acquire
  /// anything else anyway.
  void Wait(Mutex& mutex) FC_REQUIRES(mutex) {
    // Adopt the already-held std::mutex for the wait, then release the
    // unique_lock's ownership claim so the Mutex stays held (as the
    // caller's annotations say it is) when this returns.
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

namespace lock_rank {

// Never-locked sentinel mutexes restating the rank order as clang
// thread-safety facts: tier_X FC_ACQUIRED_AFTER(tier_Y) chains the
// total order, and each real ranked mutex brackets itself between its
// own tier and the next one (FC_ACQUIRED_AFTER its tier,
// FC_ACQUIRED_BEFORE the next), so transitivity orders every ranked
// pair. Clang checks these under -Wthread-safety-beta; plain
// -Wthread-safety accepts and ignores them.
inline Mutex tier_net_server;
inline Mutex tier_service_scheduler FC_ACQUIRED_AFTER(tier_net_server);
inline Mutex tier_dataset_store FC_ACQUIRED_AFTER(tier_service_scheduler);
inline Mutex tier_coreset_cache FC_ACQUIRED_AFTER(tier_dataset_store);
inline Mutex tier_registry FC_ACQUIRED_AFTER(tier_coreset_cache);
inline Mutex tier_task_graph FC_ACQUIRED_AFTER(tier_registry);
inline Mutex tier_pool_dispatch FC_ACQUIRED_AFTER(tier_task_graph);

}  // namespace lock_rank

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_MUTEX_H_
