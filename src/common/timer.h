// Wall-clock timing helper used by the experiment harness and benches.

#ifndef FASTCORESET_COMMON_TIMER_H_
#define FASTCORESET_COMMON_TIMER_H_

#include <chrono>

namespace fastcoreset {

/// Monotonic stopwatch; starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_TIMER_H_
