// Minimal data-parallel substrate. The heavy kernels (nearest-center
// assignment, cost evaluation) are embarrassingly parallel over points;
// the range [0, n) is partitioned into contiguous chunks whose geometry
// depends ONLY on n — never on the worker count — and reductions combine
// per-chunk partials in chunk index order. Worker threads merely decide
// *who executes* a chunk, not what the chunk is, so as long as the chunk
// bodies are pure (no shared RNG, disjoint writes) every result is
// bit-identical for ANY thread count, not just for a fixed one.
//
// Execution runs on a lazily-initialized persistent thread pool: the
// first multi-threaded dispatch spawns the workers once, and subsequent
// ParallelFor/ParallelReduce calls only pay a condition-variable wake
// instead of an OS thread spawn/join round. Chunks are striped across
// per-executor queues; an executor drains its own queue first and then
// steals from the others, so an uneven chunk costs only load balance,
// never the chunk plan. Workers park on a condition variable between
// dispatches and are joined cleanly at process exit (or explicitly via
// ShutdownThreadPool).
//
// The pool serves any number of CONCURRENT dispatches: each in-flight
// dispatch owns its own executor group (its own set of chunk queues),
// the dispatcher always participates in its own group, and parked
// workers join whichever group is still short of its requested executor
// count. This is what the task-graph tier (src/common/task_graph.h)
// builds on — N independent coarse tasks each dispatch their inner
// chunk loops here, capped to a slice of the worker budget via
// ParallelBudgetScope, so the groups partition the pool instead of
// serializing behind one dispatch slot.
//
// Nested parallelism is safe but serial: a body that itself calls into
// the substrate runs that inner loop inline on the calling thread — the
// reentrancy guard keeps a pool worker from ever blocking on a dispatch
// that needs the pool it occupies.
//
// Parallelism is opt-in: the global thread count defaults to 1 (serial),
// keeping single-threaded reproducibility unless the caller calls
// SetNumThreads or the FC_THREADS environment variable raises it
// (FC_THREADS=0 picks the hardware concurrency).

#ifndef FASTCORESET_COMMON_PARALLEL_H_
#define FASTCORESET_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/check.h"

namespace fastcoreset {

/// Sets the global worker count used by ParallelFor/ParallelReduce.
/// count = 0 picks the hardware concurrency.
void SetNumThreads(size_t count);

/// Discards any SetNumThreads override and returns to the FC_THREADS
/// environment default (1 when unset).
void ResetNumThreads();

/// Current global worker count (>= 1).
size_t GetNumThreads();

/// Hard upper bound on worker/executor counts accepted anywhere in the
/// substrate (SetNumThreads, FC_THREADS, parallelism budgets). Requests
/// above it are clamped by the substrate and should be rejected by
/// request-validating frontends.
size_t MaxParallelism();

/// RAII cap on the executor count dispatches from the CURRENT thread may
/// use: inside the scope, ParallelFor/ParallelReduce/ParallelForChunks
/// request at most `max_executors` executors (the calling thread plus
/// pool workers) regardless of GetNumThreads(). A cap of 0 or 1 runs
/// dispatches inline. Scopes nest; the inner scope may only tighten the
/// cap. This is how the task-graph tier hands each concurrent coarse
/// task a slice of the worker budget — chunk geometry is a function of n
/// alone, so the cap affects scheduling only, never results.
class ParallelBudgetScope {
 public:
  explicit ParallelBudgetScope(size_t max_executors);
  ~ParallelBudgetScope();
  ParallelBudgetScope(const ParallelBudgetScope&) = delete;
  ParallelBudgetScope& operator=(const ParallelBudgetScope&) = delete;

 private:
  size_t previous_;
};

/// Joins and discards the persistent pool's worker threads. The next
/// multi-threaded dispatch re-initializes the pool lazily, so this is
/// safe to call at any quiescent point (tests use it to exercise
/// repeated init/teardown; normal programs never need it — the pool
/// shuts itself down at process exit).
void ShutdownThreadPool();

/// Number of live pool worker threads (excluding the calling thread).
/// 0 before the first multi-threaded dispatch and after
/// ShutdownThreadPool.
size_t ThreadPoolWorkerCount();

/// Number of chunks [0, n) is partitioned into. A function of n alone:
/// callers sizing per-chunk scratch get the same layout at every thread
/// count, which is what makes chunk-ordered merges thread-invariant.
size_t ParallelChunkCount(size_t n);

/// Runs body(chunk, begin, end) once per chunk of [0, n). Chunks are
/// contiguous, cover the range exactly, and are numbered in range order.
/// Execution may be concurrent and in any order; chunk geometry is fixed
/// by n (see ParallelChunkCount). This is the primitive for deterministic
/// reductions: write per-chunk partials indexed by `chunk`, then merge
/// them serially in chunk order after the call returns.
void ParallelForChunks(
    size_t n, const std::function<void(size_t, size_t, size_t)>& body);

/// Runs body(begin, end) over the chunk partition of [0, n). Serial when
/// the worker count is 1 or the range is below the serial cutoff.
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

/// Parallel sum reduction: body(begin, end) returns the partial value for
/// its chunk; partials are added in chunk order, so the result is
/// bit-identical at any thread count.
double ParallelReduce(size_t n,
                      const std::function<double(size_t, size_t)>& body);

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_PARALLEL_H_
