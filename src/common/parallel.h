// Minimal data-parallel substrate. The heavy kernels (nearest-center
// assignment, cost evaluation) are embarrassingly parallel over points;
// ParallelFor splits the index range into deterministic contiguous chunks
// and ParallelReduce combines per-chunk partial results in chunk order, so
// results are bit-identical for a fixed thread count.
//
// Parallelism is opt-in: the global thread count defaults to 1 (serial),
// keeping single-threaded reproducibility unless the caller calls
// SetNumThreads or the FC_THREADS environment variable raises it
// (FC_THREADS=0 picks the hardware concurrency).

#ifndef FASTCORESET_COMMON_PARALLEL_H_
#define FASTCORESET_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/check.h"

namespace fastcoreset {

/// Sets the global worker count used by ParallelFor/ParallelReduce.
/// count = 0 picks the hardware concurrency.
void SetNumThreads(size_t count);

/// Discards any SetNumThreads override and returns to the FC_THREADS
/// environment default (1 when unset).
void ResetNumThreads();

/// Current global worker count (>= 1).
size_t GetNumThreads();

/// Runs body(begin, end) over a partition of [0, n) across the global
/// worker count. Chunks are contiguous and deterministic. Serial when the
/// worker count is 1 or the range is small.
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body);

/// Parallel sum reduction: body(begin, end) returns the partial value for
/// its chunk; partials are added in chunk order (deterministic for a
/// fixed thread count).
double ParallelReduce(size_t n,
                      const std::function<double(size_t, size_t)>& body);

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_PARALLEL_H_
