// Fenwick (binary indexed) tree over non-negative doubles, used for
// O(log n) weighted sampling with O(log n) point updates. This is the
// sampling structure backing Fast-kmeans++'s tree-metric D^z distribution,
// where point masses change as centers are inserted.

#ifndef FASTCORESET_COMMON_FENWICK_TREE_H_
#define FASTCORESET_COMMON_FENWICK_TREE_H_

#include <cstddef>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace fastcoreset {

/// Prefix-sum tree supporting point updates and sampling proportional to
/// the stored (non-negative) values.
class FenwickTree {
 public:
  /// Creates a tree over `n` slots, all initialized to zero.
  explicit FenwickTree(size_t n) : values_(n, 0.0), tree_(n + 1, 0.0) {}

  /// Creates a tree holding `values` (>= 0) via the O(n) bulk build —
  /// n single-slot Sets would cost O(n log n).
  explicit FenwickTree(const std::vector<double>& values) { Assign(values); }

  /// Replaces the whole tree with `values` (>= 0) in O(n), reusing the
  /// existing storage when the size matches.
  void Assign(const std::vector<double>& values) {
    values_ = values;
    tree_.assign(values_.size() + 1, 0.0);
    for (size_t j = 1; j < tree_.size(); ++j) {
      FC_DCHECK(values_[j - 1] >= 0.0);
      tree_[j] += values_[j - 1];
      const size_t parent = j + (j & (~j + 1));
      if (parent < tree_.size()) tree_[parent] += tree_[j];
    }
  }

  size_t size() const { return values_.size(); }

  /// Current value of slot `i`.
  double Get(size_t i) const {
    FC_DCHECK(i < values_.size());
    return values_[i];
  }

  /// Sets slot `i` to `value` (>= 0).
  void Set(size_t i, double value) {
    FC_DCHECK(i < values_.size());
    FC_DCHECK(value >= 0.0);
    const double delta = value - values_[i];
    values_[i] = value;
    for (size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of slots [0, i).
  double PrefixSum(size_t i) const {
    FC_DCHECK(i <= values_.size());
    double sum = 0.0;
    for (size_t j = i; j > 0; j -= j & (~j + 1)) sum += tree_[j];
    return sum;
  }

  /// Total mass.
  double Total() const { return PrefixSum(values_.size()); }

  /// Smallest index i such that the prefix sum through slot i exceeds
  /// `target`. Requires 0 <= target < Total(). Skips zero-weight slots.
  size_t UpperBound(double target) const {
    size_t pos = 0;
    size_t mask = 1;
    while ((mask << 1) <= values_.size()) mask <<= 1;
    for (; mask > 0; mask >>= 1) {
      const size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    // pos is the count of slots whose cumulative mass is <= target, i.e.
    // the sampled index. Floating-point drift (target rounding up to
    // Total()) can push pos past the end or onto a slot whose own mass is
    // zero — a slot that exact arithmetic can never select and whose
    // selection corrupts the sampling distribution (e.g. a covered point
    // in Fast-kmeans++). Clamp, then step to the nearest positive slot:
    // backward first (a zero slot shares its prefix sum with its
    // predecessor, so the overshot mass belongs to an earlier slot),
    // forward only if the whole prefix is massless.
    if (pos >= values_.size()) pos = values_.size() - 1;
    if (values_[pos] == 0.0) {
      size_t back = pos;
      while (back > 0 && values_[back] == 0.0) --back;
      if (values_[back] > 0.0) return back;
      size_t fwd = pos;
      while (fwd + 1 < values_.size() && values_[fwd] == 0.0) ++fwd;
      return fwd;
    }
    return pos;
  }

  /// Samples an index proportional to the stored values. Total() must be > 0.
  size_t Sample(Rng& rng) const {
    const double total = Total();
    FC_CHECK_MSG(total > 0.0, "cannot sample from an all-zero FenwickTree");
    return UpperBound(rng.NextDouble() * total);
  }

 private:
  std::vector<double> values_;
  std::vector<double> tree_;
};

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_FENWICK_TREE_H_
