#include "src/common/rng.h"

#include <cmath>
#include <numeric>

namespace fastcoreset {

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; u1 is bounded away from zero so log() is finite.
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  FC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FC_CHECK_GE(w, 0.0);
    total += w;
  }
  return SampleDiscrete(weights, total);
}

size_t Rng::SampleDiscrete(const std::vector<double>& weights, double total) {
  FC_CHECK(!weights.empty());
  FC_CHECK_MSG(total > 0.0, "all sampling weights are zero");
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    // Zero-weight slots are unsampleable: without the skip, a target of
    // exactly 0.0 (NextDouble() can return 0) would select a leading
    // zero-weight slot — the same zero-mass boundary class fixed in
    // FenwickTree::UpperBound and SampleByImportance.
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  // Floating-point slack: fall back to the last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t count) {
  FC_CHECK_LE(count, n);
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + NextIndex(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

}  // namespace fastcoreset
