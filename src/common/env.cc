#include "src/common/env.h"

#include <cstdlib>

namespace fastcoreset {

double EnvDouble(const std::string& name, double fallback) {
  // Read-only env access; the library never mutates the environment and
  // the only setenv caller (common_test's env test) is single-threaded,
  // so the getenv data race the check guards against cannot occur.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

int64_t EnvInt(const std::string& name, int64_t fallback) {
  // Read-only env access; the library never mutates the environment and
  // the only setenv caller (common_test's env test) is single-threaded,
  // so the getenv data race the check guards against cannot occur.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return end != value ? static_cast<int64_t>(parsed) : fallback;
}

}  // namespace fastcoreset
