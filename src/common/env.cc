#include "src/common/env.h"

#include <cstdlib>

namespace fastcoreset {

double EnvDouble(const std::string& name, double fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

int64_t EnvInt(const std::string& name, int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return end != value ? static_cast<int64_t>(parsed) : fallback;
}

}  // namespace fastcoreset
