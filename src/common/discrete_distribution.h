// Reusable discrete sampling distribution over non-negative weights:
// O(n) (re)build, O(log n) draw, O(log n) single-slot update. This is the
// sampling-facing wrapper around FenwickTree that the seeders and the
// sensitivity sampler share, so a mass that changes one slot at a time
// (k-means++ min-distance updates, k-means‖ round totals, Fast-kmeans++
// tree masses) costs an incremental update instead of the O(n)
// rebuild-and-re-sum that Rng::SampleDiscrete pays per draw.
//
// All mutation and sampling is serial by design: every RNG draw happens
// on the calling thread, so the substrate's determinism contract
// (bit-identical results at any FC_THREADS) extends to every consumer.
// Parallel producers hand their updates over as per-chunk batches and
// apply them on the calling thread — see KMeansPlusPlus for the pattern.

#ifndef FASTCORESET_COMMON_DISCRETE_DISTRIBUTION_H_
#define FASTCORESET_COMMON_DISCRETE_DISTRIBUTION_H_

#include <cstddef>
#include <vector>

#include "src/common/check.h"
#include "src/common/fenwick_tree.h"
#include "src/common/rng.h"

namespace fastcoreset {

/// Incrementally updatable distribution over {0, ..., n-1} with
/// unnormalized non-negative weights. Zero-weight slots are never
/// sampled (FenwickTree::UpperBound steps off them), so consumers can
/// retire a slot — a chosen center, a covered point — by zeroing it.
class DiscreteDistribution {
 public:
  DiscreteDistribution() : tree_(size_t{0}) {}

  /// All-zero distribution over `n` slots.
  explicit DiscreteDistribution(size_t n) : tree_(n) {}

  /// Builds from `weights` (>= 0) in O(n).
  explicit DiscreteDistribution(const std::vector<double>& weights)
      : tree_(weights) {}

  /// Replaces every weight in O(n), reusing storage when sizes match.
  void Assign(const std::vector<double>& weights) { tree_.Assign(weights); }

  /// Resets to an all-zero distribution over `n` slots.
  void Reset(size_t n) { tree_ = FenwickTree(n); }

  size_t size() const { return tree_.size(); }

  /// Weight of slot `i`.
  double Get(size_t i) const { return tree_.Get(i); }

  /// Sets slot `i` to `weight` (>= 0) in O(log n).
  void Set(size_t i, double weight) { tree_.Set(i, weight); }

  /// Total mass, O(log n). Callers that need a cheap emptiness test
  /// compare this against 0 — no O(n) pass involved.
  double Total() const { return tree_.Total(); }

  /// Draws a slot proportional to the weights in O(log n). Total() must
  /// be positive; consumes exactly one rng.NextDouble().
  size_t Sample(Rng& rng) const { return tree_.Sample(rng); }

  /// Smallest slot whose prefix sum exceeds `target` (see
  /// FenwickTree::UpperBound); exposed for sorted-target sweeps.
  size_t UpperBound(double target) const { return tree_.UpperBound(target); }

 private:
  FenwickTree tree_;
};

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_DISCRETE_DISTRIBUTION_H_
