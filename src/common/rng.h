// Deterministic pseudo-random number generation for the whole library.
//
// All randomized algorithms in fastcoreset take an explicit Rng& so that
// experiments are reproducible from a single seed. Rng wraps xoshiro256**,
// seeded via SplitMix64, and adds the sampling helpers the coreset
// constructions need (uniform ints/reals, Gaussians, discrete sampling from
// an unnormalized weight vector).

#ifndef FASTCORESET_COMMON_RNG_H_
#define FASTCORESET_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace fastcoreset {

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Reseed(seed); }

  /// Resets the state as if constructed with `seed`.
  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      // SplitMix64 step; guarantees a non-degenerate xoshiro state.
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n) {
    FC_CHECK_GT(n, 0u);
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < n) {
      const uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  /// +1 or -1 with equal probability.
  double NextSign() { return (NextU64() & 1) ? 1.0 : -1.0; }

  /// Samples an index proportional to `weights` (unnormalized, >= 0).
  /// O(n) including a summing pass; use DiscreteDistribution for
  /// repeated draws from an evolving mass.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// Same draw, but `total` is the caller's precomputed sum of `weights`
  /// (> 0) — skips the O(n) re-sum, leaving one O(n) sweep. Callers that
  /// already reduced the mass (e.g. a ParallelReduce total) must pass
  /// that exact value: the sweep tolerates the usual floating-point
  /// slack by falling back to the last positive-weight index.
  size_t SampleDiscrete(const std::vector<double>& weights, double total);

  /// Samples `count` indices from [0, n) without replacement (Fisher-Yates
  /// on an index array; O(n) memory). Requires count <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_RNG_H_
