#include "src/common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace fastcoreset {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<size_t> widths(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < cols) out << "  ";
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w;
    out << std::string(total + 2 * (cols - 1), '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Num(double value, int digits) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  const double magnitude = std::fabs(value);
  if (magnitude != 0.0 && (magnitude >= 1e5 || magnitude < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*g", digits + 1, value);
  }
  return buf;
}

std::string TablePrinter::MeanVar(double mean, double variance, int digits) {
  return Num(mean, digits) + " ± " + Num(variance, digits);
}

}  // namespace fastcoreset
