// Clang thread-safety-analysis attribute macros (FC_GUARDED_BY,
// FC_REQUIRES, FC_ACQUIRE/FC_RELEASE, ...). Annotating a class's shared
// state turns its locking discipline into a compile-time contract: clang
// builds add -Wthread-safety -Werror=thread-safety (see the root
// CMakeLists), so touching a FC_GUARDED_BY member without holding its
// mutex, or calling a FC_REQUIRES helper unlocked, is a build error — the
// discipline lives in the type system instead of comments. GCC has no
// analysis; every macro expands to nothing there, so annotations are
// zero-cost in the default toolchain.
//
// The annotations only bite on capability-annotated mutex types —
// libstdc++'s std::mutex is not one — so annotated classes hold their
// state under fastcoreset::Mutex / MutexLock (src/common/mutex.h), the
// FC_CAPABILITY / FC_SCOPED_CAPABILITY wrappers defined over std::mutex.
//
// Macro set and spelling follow the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).

#ifndef FASTCORESET_COMMON_THREAD_ANNOTATIONS_H_
#define FASTCORESET_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define FC_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define FC_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

/// On a class: instances are a capability (a lock) the analysis tracks.
#define FC_CAPABILITY(x) FC_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// On a class: RAII object that acquires a capability in its constructor
/// and releases it in its destructor (std::lock_guard shape).
#define FC_SCOPED_CAPABILITY FC_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// On a data member: reads and writes require holding the given mutex.
#define FC_GUARDED_BY(x) FC_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// On a pointer/smart-pointer member: the pointed-to data (not the
/// pointer itself) requires the mutex.
#define FC_PT_GUARDED_BY(x) FC_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// On a function: callers must hold the given mutex(es) exclusively.
#define FC_REQUIRES(...) \
  FC_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Legacy spelling of FC_REQUIRES (kept because call sites annotated in
/// the pre-capability vocabulary read more naturally with it).
#define FC_EXCLUSIVE_LOCKS_REQUIRED(...) \
  FC_THREAD_ANNOTATION_ATTRIBUTE(exclusive_locks_required(__VA_ARGS__))

/// On a function: acquires the mutex(es) and holds them on return.
#define FC_ACQUIRE(...) \
  FC_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// On a function: releases mutex(es) the caller holds.
#define FC_RELEASE(...) \
  FC_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// On a function returning bool: acquires the mutex when the return value
/// equals the first argument (e.g. FC_TRY_ACQUIRE(true)).
#define FC_TRY_ACQUIRE(...) \
  FC_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// On a function: callers must NOT hold the given mutex(es) (deadlock
/// guard for self-locking public entry points).
#define FC_EXCLUDES(...) \
  FC_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// On a function returning a reference to a mutex: names the capability
/// the result stands for.
#define FC_RETURN_CAPABILITY(x) \
  FC_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// On a mutex declaration: this mutex is acquired before the listed
/// mutex(es) when both are held. Together with FC_ACQUIRED_AFTER this
/// declares the global lock-rank order (src/common/mutex.h sentinels +
/// tools/lint/lock_hierarchy.toml); clang checks the order under
/// -Wthread-safety-beta, and fc_lint's lock-order pass checks it under
/// every compiler.
#define FC_ACQUIRED_BEFORE(...) \
  FC_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

/// On a mutex declaration: this mutex is acquired after the listed
/// mutex(es) when both are held (the inner lock of the pair).
#define FC_ACQUIRED_AFTER(...) \
  FC_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment saying why the discipline cannot be expressed.
#define FC_NO_THREAD_SAFETY_ANALYSIS \
  FC_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // FASTCORESET_COMMON_THREAD_ANNOTATIONS_H_
