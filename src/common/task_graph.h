// TaskGraph: the coarse dispatch tier above the chunk-parallel substrate
// (parallel.h). A TaskGraph is a DAG of tasks — shard builds, cache
// fills, merge steps — connected by dependency edges; Run() executes
// every task, respecting the edges, on up to `parallelism` node-executor
// threads (the caller participates as one of them, MapReduce-coordinator
// style: independent map tasks, a reduce task waiting on all its edges).
//
// The two tiers compose instead of fighting over the pool: each running
// task gets a ParallelBudgetScope slice of the pool, so its inner
// ParallelFor/ParallelReduce dispatches claim at most its share of the
// chunk-tier workers. With N tasks running, the pool's executor groups
// partition GetNumThreads() N ways; when only one task is left (a merge
// node, say), its slice widens back to the full pool. The `parallelism`
// budget caps N — how many tasks overlap — not the pool width, so
// parallelism = 1 reproduces the pre-scheduler behavior exactly: one
// task at a time, each internally parallel on the whole pool.
//
// Determinism contract: the scheduler decides only WHEN a task runs,
// never what it computes. Task bodies that are individually
// thread-invariant (everything built on the chunk substrate is) and
// write to disjoint slots therefore produce bit-identical results at
// any parallelism and any FC_THREADS — concurrent execution of a shard
// graph equals the sequential walk exactly. Ready tasks are claimed in
// task-id order, so even the execution *order* is deterministic at
// parallelism = 1.
//
// Error model: task functions must not throw. A failing task records
// its failure in caller-owned state (e.g. an FcStatusOr slot); the graph
// always drains every node so Run() never leaves detached work behind.
//
// Shutdown: the graph owns its node-executor threads and joins them
// before Run() returns. ShutdownThreadPool() concurrent with a running
// graph is safe — inner dispatches drain on the caller's thread (the
// dispatcher of a chunk task always participates), they just lose their
// extra workers until the pool lazily re-initializes.

#ifndef FASTCORESET_COMMON_TASK_GRAPH_H_
#define FASTCORESET_COMMON_TASK_GRAPH_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace fastcoreset {

class TaskGraph {
 public:
  using TaskId = size_t;

  /// Scheduler counters for one Run(), surfaced through the service
  /// diagnostics ("stats" verb scheduler block).
  struct RunStats {
    size_t tasks_executed = 0;       ///< Nodes the run completed.
    size_t max_concurrent_tasks = 0; ///< High-water of nodes in flight.
    size_t queue_high_water = 0;     ///< Max ready-queue length observed.
    size_t parallelism = 0;          ///< Effective node-concurrency cap.
  };

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task depending on previously added tasks. Every id in `deps`
  /// must be smaller than the new task's id — edges always point
  /// backwards, so the graph is acyclic by construction. Returns the new
  /// task's id (ids are dense, starting at 0).
  TaskId AddTask(std::function<void()> fn,
                 const std::vector<TaskId>& deps = {});

  size_t TaskCount() const { return tasks_.size(); }

  /// Runs every task, respecting dependency edges, then returns the run's
  /// scheduler counters. `parallelism` caps how many tasks run
  /// concurrently: 0 means "all workers" (GetNumThreads()); anything
  /// else is clamped to [1, GetNumThreads()]. Each running task executes
  /// under a ParallelBudgetScope slice of max(1, GetNumThreads() /
  /// running_tasks), so the two tiers together never exceed the pool by
  /// more than the integer-division slack. Blocks until the whole graph
  /// has drained. A graph may be Run() only once.
  RunStats Run(size_t parallelism = 0);

 private:
  struct Task {
    std::function<void()> fn;
    std::vector<TaskId> dependents;  ///< Tasks waiting on this one.
    size_t pending_deps = 0;         ///< Unfinished dependency count.
  };

  /// Node-executor loop: claim the lowest ready task id, run it under
  /// its pool slice (pool_width / running tasks), retire it (releasing
  /// dependents), repeat until the graph is drained.
  void ExecutorLoop(size_t pool_width);

  std::vector<Task> tasks_;  ///< Frozen at Run(); bodies touch no state.

  /// Rank kTaskGraph: above the pool-dispatch mutex (a node executor
  /// never reaches into the graph while dispatching chunks) and below
  /// every service-layer lock.
  Mutex mutex_ FC_ACQUIRED_AFTER(lock_rank::tier_task_graph)
      FC_ACQUIRED_BEFORE(lock_rank::tier_pool_dispatch){
          lock_rank::kTaskGraph};
  CondVar ready_cv_;  ///< Signaled on new ready tasks and on drain.
  std::vector<TaskId> ready_ FC_GUARDED_BY(mutex_);  ///< Sorted claim pool.
  size_t running_ FC_GUARDED_BY(mutex_) = 0;
  size_t executed_ FC_GUARDED_BY(mutex_) = 0;
  size_t max_concurrent_ FC_GUARDED_BY(mutex_) = 0;
  size_t queue_high_water_ FC_GUARDED_BY(mutex_) = 0;
};

}  // namespace fastcoreset

#endif  // FASTCORESET_COMMON_TASK_GRAPH_H_
