// Facade entry points: spec validation, one-shot and streaming builds,
// and the CoresetBuilder adapter for merge-&-reduce composition.

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/api/fastcoreset.h"
#include "src/common/timer.h"
#include "src/core/sensitivity_sampling.h"

namespace fastcoreset {
namespace api {

namespace {

/// The shared request prologue every entry point runs: common spec
/// invariants, registry lookup, and the method's own spec checks.
FcStatusOr<const CoresetAlgorithm*> ResolveAndValidate(
    const CoresetSpec& spec) {
  FcStatus status = spec.Validate();
  if (!status.ok()) return status;
  FcStatusOr<const CoresetAlgorithm*> algo =
      Registry::Instance().Get(spec.method);
  if (!algo.ok()) return algo.status();
  status = algo.value()->ValidateSpec(spec);
  if (!status.ok()) return status;
  return algo;
}

/// n-dependent request checks shared by every build path.
FcStatus ValidateInput(const Matrix& points,
                       const std::vector<double>& weights) {
  if (points.rows() == 0) {
    return FcStatus::InvalidArgument("input has no points");
  }
  if (points.cols() == 0) {
    return FcStatus::InvalidArgument("input has zero dimensions");
  }
  if (!weights.empty() && weights.size() != points.rows()) {
    return FcStatus::InvalidArgument(
        "weights size (" + std::to_string(weights.size()) +
        ") does not match input rows (" + std::to_string(points.rows()) +
        ")");
  }
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!std::isfinite(weights[i]) || weights[i] < 0.0) {
      return FcStatus::InvalidArgument(
          "weights[" + std::to_string(i) + "] must be finite and >= 0");
    }
    total += weights[i];
  }
  if (!weights.empty() && total <= 0.0) {
    // Every sampler needs positive total mass to draw from.
    return FcStatus::InvalidArgument("weights sum to zero");
  }
  return FcStatus::Ok();
}

/// The streaming CoresetBuilder closure over a resolved algorithm. The
/// registry instance outlives every closure (process-lived). The
/// CoresetBuilder signature has no status channel, so per-call inputs
/// the method cannot digest are a caller contract violation — checked
/// here with the facade's own diagnostics so the failure names the real
/// cause instead of a deep internal FC_CHECK.
CoresetBuilder BuilderFor(const CoresetAlgorithm* algorithm,
                          const CoresetSpec& spec) {
  return CoresetBuilder(
      [algorithm, spec](const Matrix& points,
                        const std::vector<double>& weights, size_t m,
                        Rng& rng) {
        FcStatus status = ValidateInput(points, weights);
        if (status.ok()) status = algorithm->ValidateInput(points, weights);
        // fc-lint: allow(no-abort-in-service): the raw CoresetBuilder
        // callable documents a pre-validated-input contract; the
        // status-returning path is api::Build, which validates first.
        FC_CHECK_MSG(status.ok(), status.ToString().c_str());
        return algorithm->Build(spec, points, weights, m, rng,
                                /*diag=*/nullptr);
      });
}

/// Pre-populates the diagnostics every build reports.
BuildDiagnostics StartDiagnostics(const CoresetAlgorithm& algo,
                                  const CoresetSpec& spec,
                                  const Matrix& points, size_t m) {
  BuildDiagnostics diag;
  diag.method = std::string(algo.Name());
  diag.seed = spec.seed;
  diag.input_rows = points.rows();
  diag.input_dims = points.cols();
  diag.points_processed = points.rows();
  diag.bytes_processed = points.rows() * points.cols() * sizeof(double);
  diag.k = spec.k;
  diag.m_requested = spec.m;
  diag.m_effective = m;
  diag.z = spec.z;
  return diag;
}

void FinishDiagnostics(const Coreset& coreset, double seconds,
                       BuildDiagnostics* diag) {
  diag->total_seconds = seconds;
  diag->output_rows = coreset.size();
  diag->output_total_weight = coreset.TotalWeight();
}

}  // namespace

FcStatus ValidateSpec(const CoresetSpec& spec) {
  return ResolveAndValidate(spec).status();
}

FcStatusOr<BuildResult> Build(const CoresetSpec& spec, const Matrix& points,
                              const std::vector<double>& weights, Rng& rng) {
  FcStatusOr<const CoresetAlgorithm*> algo = ResolveAndValidate(spec);
  if (!algo.ok()) return algo.status();

  if (!weights.empty() && !spec.weights.empty()) {
    return FcStatus::InvalidArgument(
        "weights passed both in the spec and as an argument");
  }
  const std::vector<double>& effective_weights =
      weights.empty() ? spec.weights : weights;
  FcStatus status = ValidateInput(points, effective_weights);
  if (!status.ok()) return status;
  status = algo.value()->ValidateInput(points, effective_weights);
  if (!status.ok()) return status;

  const size_t m = spec.EffectiveM();
  BuildDiagnostics diag = StartDiagnostics(*algo.value(), spec, points, m);
  diag.external_rng = true;
  Timer timer;
  Coreset coreset =
      algo.value()->Build(spec, points, effective_weights, m, rng, &diag);
  FinishDiagnostics(coreset, timer.Seconds(), &diag);
  return BuildResult{std::move(coreset), std::move(diag)};
}

FcStatusOr<BuildResult> Build(const CoresetSpec& spec, const Matrix& points) {
  Rng rng(spec.seed);
  FcStatusOr<BuildResult> result = Build(spec, points, {}, rng);
  if (result.ok()) result->diagnostics.external_rng = false;
  return result;
}

FcStatusOr<CoresetBuilder> MakeBuilder(const CoresetSpec& spec) {
  FcStatusOr<const CoresetAlgorithm*> algo = ResolveAndValidate(spec);
  if (!algo.ok()) return algo.status();
  if (!spec.weights.empty()) {
    return FcStatus::InvalidArgument(
        "spec.weights is meaningless for a streaming builder (the "
        "compressor supplies weights per call)");
  }
  return BuilderFor(algo.value(), spec);
}

FcStatusOr<BuildResult> BuildStreaming(const CoresetSpec& spec,
                                       const Matrix& points,
                                       size_t block_size) {
  if (block_size == 0) {
    return FcStatus::InvalidArgument("block_size must be >= 1");
  }
  FcStatusOr<const CoresetAlgorithm*> algo = ResolveAndValidate(spec);
  if (!algo.ok()) return algo.status();
  if (!spec.weights.empty()) {
    return FcStatus::InvalidArgument(
        "spec.weights is not supported for streaming builds (push "
        "weighted batches through StreamingCompressor directly)");
  }
  FcStatus status = ValidateInput(points, /*weights=*/{});
  if (!status.ok()) return status;

  const size_t m = spec.EffectiveM();
  BuildDiagnostics diag = StartDiagnostics(*algo.value(), spec, points, m);

  Timer timer;
  Rng rng(spec.seed);
  StreamingCompressor compressor(BuilderFor(algo.value(), spec), m, &rng);
  for (size_t start = 0; start < points.rows(); start += block_size) {
    const size_t end = std::min(points.rows(), start + block_size);
    std::vector<size_t> rows(end - start);
    for (size_t i = start; i < end; ++i) rows[i - start] = i;
    compressor.Push(points.SelectRows(rows));
  }
  diag.stages.push_back({"push_blocks", timer.Seconds()});
  diag.stream_blocks = compressor.BlocksConsumed();
  diag.stream_levels = compressor.OccupiedLevels();

  Timer finalize_timer;
  Coreset coreset = compressor.Finalize();
  diag.stages.push_back({"finalize", finalize_timer.Seconds()});
  diag.stream_reduce_ops = compressor.ReduceOps();
  diag.points_processed = compressor.BuilderRowsProcessed();
  diag.bytes_processed =
      diag.points_processed * points.cols() * sizeof(double);
  FinishDiagnostics(coreset, timer.Seconds(), &diag);
  return BuildResult{std::move(coreset), std::move(diag)};
}

Coreset SampleFromSolution(const Matrix& points,
                           const std::vector<double>& weights,
                           const Clustering& solution, size_t m, Rng& rng) {
  return SensitivitySamplingFromSolution(points, weights, solution, m, rng);
}

}  // namespace api
}  // namespace fastcoreset
