// String-keyed registry of CoresetAlgorithm implementations.
//
// Methods self-register at static-initialization time via
// FC_REGISTER_CORESET_ALGORITHM (see src/api/algorithms.cc for the
// built-in spectrum), so new methods — in-tree or out-of-tree — plug in
// without touching any dispatch switch. Lookup is by canonical name or
// alias; unknown names are a recoverable kNotFound, never an abort.

#ifndef FASTCORESET_API_REGISTRY_H_
#define FASTCORESET_API_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/api/algorithm.h"
#include "src/api/status.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace fastcoreset {
namespace api {

namespace internal {
/// No-op defined next to the built-in registrations; calling it from
/// Registry::Instance() keeps the static linker from dropping their
/// translation unit (see src/api/algorithms.cc).
void EnsureBuiltinAlgorithmsLinked();
}  // namespace internal

/// Process-wide algorithm registry. Thread-safe; instances are created
/// once per name and shared (algorithms are stateless).
class Registry {
 public:
  using Factory = std::function<std::unique_ptr<CoresetAlgorithm>()>;

  /// The singleton.
  static Registry& Instance();

  /// Registers `factory` under `name` (plus optional aliases). Duplicate
  /// names are a programming error and abort: two methods silently
  /// shadowing each other would corrupt every lookup after it.
  void Register(const std::string& name, Factory factory,
                const std::vector<std::string>& aliases = {});

  /// Looks up a method by canonical name or alias. The pointer is owned
  /// by the registry and lives for the process.
  FcStatusOr<const CoresetAlgorithm*> Get(const std::string& name) const;

  /// True when `name` (or alias) is registered.
  bool Contains(const std::string& name) const;

  /// Sorted canonical names (aliases excluded).
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    Factory factory;
    mutable std::unique_ptr<CoresetAlgorithm> instance;  ///< Lazily built.
    bool is_alias = false;
    std::string canonical;  ///< Self for canonical entries.
  };

  const Entry* Find(const std::string& name) const FC_REQUIRES(mutex_);

  /// Rank kRegistry (see tools/lint/lock_hierarchy.toml).
  mutable Mutex mutex_ FC_ACQUIRED_AFTER(lock_rank::tier_registry)
      FC_ACQUIRED_BEFORE(lock_rank::tier_task_graph){lock_rank::kRegistry};
  std::map<std::string, Entry> entries_ FC_GUARDED_BY(mutex_);
};

/// Static-initialization helper: declaring a namespace-scope
/// `RegistryRegistration` value registers the factory before main().
struct RegistryRegistration {
  RegistryRegistration(const std::string& name, Registry::Factory factory,
                       const std::vector<std::string>& aliases = {}) {
    Registry::Instance().Register(name, std::move(factory), aliases);
  }
};

/// Registers `AlgorithmT` (default-constructible) under `name`. Use at
/// namespace scope in a .cc linked into the binary:
///   FC_REGISTER_CORESET_ALGORITHM("my_method", MyAlgorithm);
#define FC_REGISTER_CORESET_ALGORITHM(name, AlgorithmT, ...)             \
  static const ::fastcoreset::api::RegistryRegistration                  \
      fc_registration_##AlgorithmT(                                      \
          name, [] {                                                     \
            return std::unique_ptr<::fastcoreset::api::CoresetAlgorithm>( \
                new AlgorithmT());                                       \
          },                                                             \
          ##__VA_ARGS__)

}  // namespace api
}  // namespace fastcoreset

#endif  // FASTCORESET_API_REGISTRY_H_
