#include "src/api/diagnostics.h"

#include <cstdio>

namespace fastcoreset {
namespace api {

namespace {

void AppendLine(std::string* out, const char* key, const std::string& value) {
  out->append(key);
  out->append("=");
  out->append(value);
  out->append("\n");
}

std::string FormatDouble(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", seconds);
  return buffer;
}

}  // namespace

std::string BuildDiagnostics::ToString() const {
  std::string out;
  AppendLine(&out, "method", method);
  AppendLine(&out, "seed",
             external_rng ? "external" : std::to_string(seed));
  AppendLine(&out, "input_rows", std::to_string(input_rows));
  AppendLine(&out, "input_dims", std::to_string(input_dims));
  AppendLine(&out, "points_processed", std::to_string(points_processed));
  AppendLine(&out, "bytes_processed", std::to_string(bytes_processed));
  AppendLine(&out, "k", std::to_string(k));
  AppendLine(&out, "m_requested", std::to_string(m_requested));
  AppendLine(&out, "m_effective", std::to_string(m_effective));
  AppendLine(&out, "z", std::to_string(z));
  if (j_effective > 0) {
    AppendLine(&out, "j_effective", std::to_string(j_effective));
  }
  AppendLine(&out, "output_rows", std::to_string(output_rows));
  AppendLine(&out, "output_total_weight",
             FormatDouble(output_total_weight));
  if (stream_blocks > 0) {
    AppendLine(&out, "stream_blocks", std::to_string(stream_blocks));
    AppendLine(&out, "stream_reduce_ops",
               std::to_string(stream_reduce_ops));
    AppendLine(&out, "stream_levels", std::to_string(stream_levels));
  }
  for (const StageTime& stage : stages) {
    AppendLine(&out, ("stage." + stage.name + "_seconds").c_str(),
               FormatDouble(stage.seconds));
  }
  AppendLine(&out, "total_seconds", FormatDouble(total_seconds));
  return out;
}

}  // namespace api
}  // namespace fastcoreset
