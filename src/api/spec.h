// CoresetSpec: the one options object for the whole sampling spectrum.
//
// A spec is request-shaped: the common knobs every method understands
// (method name, k, m, z, seed, optional input weights) plus one tagged
// per-method sub-options value. It is plain data — trivially marshalled
// from a config file, CLI flags, or a server request — and validated as a
// whole before any O(nd) work starts, returning FcStatus instead of
// FC_CHECK-aborting on inconsistent requests.
//
// The spec deliberately does not include the core per-method option
// structs (FastCoresetOptions etc.): the facade owns its own stable
// surface and maps it onto the internals, so internal option churn never
// leaks into serialized specs.

#ifndef FASTCORESET_API_SPEC_H_
#define FASTCORESET_API_SPEC_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/api/status.h"

namespace fastcoreset {
namespace api {

/// Sub-options for "uniform" (none — the tag documents intent).
struct UniformOptions {};

/// Sub-options for "lightweight" (none).
struct LightweightOptions {};

/// Sub-options for "welterweight": the interpolation knob of the paper's
/// Section 5.2 spectrum.
struct WelterweightOptions {
  /// Candidate-solution size, 1 <= j <= k. 0 picks the paper's default
  /// ceil(log2 k). j = 1 behaves like lightweight, j = k like full
  /// sensitivity sampling.
  size_t j = 0;
};

/// Sub-options for "sensitivity" (none).
struct SensitivityOptions {};

/// Seeding algorithm choices for "fast_coreset".
enum class FastSeeder {
  kFastKMeansPlusPlus,  ///< Quadtree D^z sampling (the paper's default).
  kTreeGreedy,          ///< HST top-down greedy (Section 8.4 extension).
};

/// Sub-options for "fast_coreset" (Algorithm 1). Mirrors the method-
/// specific knobs of core FastCoresetOptions; k/m/z come from the spec.
struct FastOptions {
  bool use_jl = true;       ///< JL-project before seeding.
  double jl_eps = 0.7;      ///< JL target-dimension accuracy.
  bool use_spread_reduction = false;  ///< Crude-Approx + Reduce-Spread.
  bool center_correction = false;     ///< Algorithm 1 lines 7-8 weights.
  double correction_eps = 0.1;
  FastSeeder seeder = FastSeeder::kFastKMeansPlusPlus;
  int seeding_max_depth = 60;          ///< Quadtree depth cap.
  bool seeding_full_depth_tree = false;
  bool seeding_rejection_sampling = true;
  int seeding_max_rejections = 512;
};

/// Sub-options for "group_sampling" (STOC'21 extension).
struct GroupOptions {
  double eps = 0.5;  ///< Ring-threshold parameter.
};

/// Sub-options for the streaming "bico" builder (z = 2 only).
struct BicoOptions {
  /// Clustering-feature budget before a rebuild; 0 uses the effective
  /// coreset size m.
  size_t max_features = 0;
  double initial_threshold = 0.0;  ///< 0 derives it from the first points.
  int max_depth = 16;              ///< CF-tree depth cap.
};

/// Sub-options for the streaming "stream_km" builder (none; z = 2 only).
struct StreamKmOptions {};

/// Tagged per-method sub-options. std::monostate means "the method's
/// defaults"; a non-monostate alternative must match the spec's method
/// (checked by the method's ValidateSpec), so a welterweight `j` can never
/// again silently ride into a method that ignores it.
using MethodOptions =
    std::variant<std::monostate, UniformOptions, LightweightOptions,
                 WelterweightOptions, SensitivityOptions, FastOptions,
                 GroupOptions, BicoOptions, StreamKmOptions>;

/// Short human-readable tag of a MethodOptions alternative ("default",
/// "welterweight", ...) — used in validation error messages.
std::string MethodOptionsName(const MethodOptions& options);

/// The unified build request.
struct CoresetSpec {
  /// Registry key of the compression method ("uniform", "lightweight",
  /// "welterweight", "sensitivity", "fast_coreset", "group_sampling",
  /// "bico", "stream_km", or any externally registered name/alias).
  std::string method = "fast_coreset";

  size_t k = 100;    ///< Cluster count the coreset must support.
  size_t m = 0;      ///< Coreset size; 0 picks the paper's default 40 * k.
  int z = 2;         ///< 1 = k-median, 2 = k-means.
  uint64_t seed = 1; ///< Rng seed for the seed-driven Build() entry point.

  /// Optional input weights (empty = unit). Must match the input's row
  /// count at build time.
  std::vector<double> weights;

  /// Per-method sub-options (monostate = method defaults).
  MethodOptions options;

  /// Effective coreset size: m, or the 40 * k default when m == 0.
  size_t EffectiveM() const { return m == 0 ? 40 * k : m; }

  /// Validates every method-independent invariant: k >= 1, z in {1, 2},
  /// finite non-negative weights, and the sub-option structs' own ranges
  /// (jl_eps > 0, j <= k, ...). Method-specific consistency — including
  /// "the options tag matches the method" — is checked on top by the
  /// algorithm's ValidateSpec, which Build() always runs; nothing aborts
  /// on a bad request.
  FcStatus Validate() const;
};

}  // namespace api
}  // namespace fastcoreset

#endif  // FASTCORESET_API_SPEC_H_
