// The built-in spectrum behind the registry: the paper's five compression
// methods (uniform -> lightweight -> welterweight -> sensitivity ->
// fast_coreset), the group-sampling extension, and the streaming builders
// (bico, stream_km). Each adapter maps the facade's CoresetSpec onto the
// method's internal entry point — calling it exactly once with the given
// rng, so a facade build is bit-identical to the legacy free-function path
// at the same seed (pinned by tests/api_test.cc).

#include <utility>

#include "src/api/registry.h"
#include "src/common/timer.h"
#include "src/core/fast_coreset.h"
#include "src/core/group_sampling.h"
#include "src/core/lightweight_coreset.h"
#include "src/core/sensitivity_sampling.h"
#include "src/core/uniform_sampling.h"
#include "src/core/welterweight_coreset.h"
#include "src/streaming/bico.h"
#include "src/streaming/streamkm.h"

namespace fastcoreset {
namespace api {

namespace {

/// Fetches the method's sub-options, falling back to defaults when the
/// spec holds monostate. ValidateSpec has already rejected mismatches.
template <typename OptionsT>
OptionsT OptionsOrDefault(const CoresetSpec& spec) {
  if (const OptionsT* options = std::get_if<OptionsT>(&spec.options)) {
    return *options;
  }
  return OptionsT{};
}

void RecordStage(BuildDiagnostics* diag, const char* name, double seconds) {
  if (diag != nullptr) diag->stages.push_back({name, seconds});
}

class UniformAlgorithm : public CoresetAlgorithm {
 public:
  std::string_view Name() const override { return "uniform"; }

  FcStatus ValidateSpec(const CoresetSpec& spec) const override {
    return ExpectOptions<UniformOptions>(spec);
  }

  Coreset Build(const CoresetSpec&, const Matrix& points,
                const std::vector<double>& weights, size_t m, Rng& rng,
                BuildDiagnostics* diag) const override {
    Timer timer;
    Coreset coreset = UniformSamplingCoreset(points, weights, m, rng);
    RecordStage(diag, "sample", timer.Seconds());
    return coreset;
  }
};

class LightweightAlgorithm : public CoresetAlgorithm {
 public:
  std::string_view Name() const override { return "lightweight"; }

  FcStatus ValidateSpec(const CoresetSpec& spec) const override {
    return ExpectOptions<LightweightOptions>(spec);
  }

  Coreset Build(const CoresetSpec& spec, const Matrix& points,
                const std::vector<double>& weights, size_t m, Rng& rng,
                BuildDiagnostics* diag) const override {
    if (diag != nullptr) diag->j_effective = 1;  // 1-means candidate.
    Timer timer;
    Coreset coreset = LightweightCoreset(points, weights, m, spec.z, rng);
    RecordStage(diag, "sample", timer.Seconds());
    return coreset;
  }
};

class WelterweightAlgorithm : public CoresetAlgorithm {
 public:
  std::string_view Name() const override { return "welterweight"; }

  FcStatus ValidateSpec(const CoresetSpec& spec) const override {
    return ExpectOptions<WelterweightOptions>(spec);
  }

  Coreset Build(const CoresetSpec& spec, const Matrix& points,
                const std::vector<double>& weights, size_t m, Rng& rng,
                BuildDiagnostics* diag) const override {
    const WelterweightOptions options =
        OptionsOrDefault<WelterweightOptions>(spec);
    if (diag != nullptr) {
      diag->j_effective =
          options.j == 0 ? DefaultWelterweightJ(spec.k) : options.j;
    }
    Timer timer;
    Coreset coreset = WelterweightCoreset(points, weights, spec.k, options.j,
                                          m, spec.z, rng);
    RecordStage(diag, "seed_and_sample", timer.Seconds());
    return coreset;
  }
};

class SensitivityAlgorithm : public CoresetAlgorithm {
 public:
  std::string_view Name() const override { return "sensitivity"; }

  FcStatus ValidateSpec(const CoresetSpec& spec) const override {
    return ExpectOptions<SensitivityOptions>(spec);
  }

  Coreset Build(const CoresetSpec& spec, const Matrix& points,
                const std::vector<double>& weights, size_t m, Rng& rng,
                BuildDiagnostics* diag) const override {
    if (diag != nullptr) diag->j_effective = spec.k;  // Full k-center seed.
    Timer timer;
    Coreset coreset =
        SensitivitySamplingCoreset(points, weights, spec.k, m, spec.z, rng);
    RecordStage(diag, "seed_and_sample", timer.Seconds());
    return coreset;
  }
};

class FastCoresetAlgorithm : public CoresetAlgorithm {
 public:
  std::string_view Name() const override { return "fast_coreset"; }

  FcStatus ValidateSpec(const CoresetSpec& spec) const override {
    return ExpectOptions<FastOptions>(spec);
  }

  Coreset Build(const CoresetSpec& spec, const Matrix& points,
                const std::vector<double>& weights, size_t m, Rng& rng,
                BuildDiagnostics* diag) const override {
    const FastOptions options = OptionsOrDefault<FastOptions>(spec);
    FastCoresetOptions core;
    core.k = spec.k;
    core.m = m;
    core.z = spec.z;
    core.use_jl = options.use_jl;
    core.jl_eps = options.jl_eps;
    core.use_spread_reduction = options.use_spread_reduction;
    core.center_correction = options.center_correction;
    core.correction_eps = options.correction_eps;
    core.seeder = options.seeder == FastSeeder::kTreeGreedy
                      ? FastCoresetSeeder::kTreeGreedy
                      : FastCoresetSeeder::kFastKMeansPlusPlus;
    core.seeding.max_depth = options.seeding_max_depth;
    core.seeding.full_depth_tree = options.seeding_full_depth_tree;
    core.seeding.rejection_sampling = options.seeding_rejection_sampling;
    core.seeding.max_rejections = options.seeding_max_rejections;

    FastCoresetStageTimes stage_times;
    Coreset coreset = FastCoreset(points, weights, core, rng,
                                  diag == nullptr ? nullptr : &stage_times);
    if (diag != nullptr) {
      diag->j_effective = spec.k;  // Algorithm 1 seeds a full k solution.
      diag->stages.push_back({"jl_projection", stage_times.jl_seconds});
      if (options.use_spread_reduction) {
        diag->stages.push_back(
            {"spread_reduction", stage_times.spread_seconds});
      }
      diag->stages.push_back({"seeding", stage_times.seeding_seconds});
      diag->stages.push_back(
          {"sensitivities", stage_times.sensitivity_seconds});
      diag->stages.push_back({"sampling", stage_times.sampling_seconds});
    }
    return coreset;
  }
};

class GroupSamplingAlgorithm : public CoresetAlgorithm {
 public:
  std::string_view Name() const override { return "group_sampling"; }

  FcStatus ValidateSpec(const CoresetSpec& spec) const override {
    return ExpectOptions<GroupOptions>(spec);
  }

  Coreset Build(const CoresetSpec& spec, const Matrix& points,
                const std::vector<double>& weights, size_t m, Rng& rng,
                BuildDiagnostics* diag) const override {
    const GroupOptions options = OptionsOrDefault<GroupOptions>(spec);
    GroupSamplingOptions core;
    core.k = spec.k;
    core.m = m;
    core.z = spec.z;
    core.eps = options.eps;
    if (diag != nullptr) diag->j_effective = spec.k;
    Timer timer;
    Coreset coreset = GroupSamplingCoreset(points, weights, core, rng);
    RecordStage(diag, "seed_and_sample", timer.Seconds());
    return coreset;
  }
};

class BicoAlgorithm : public CoresetAlgorithm {
 public:
  std::string_view Name() const override { return "bico"; }

  FcStatus ValidateSpec(const CoresetSpec& spec) const override {
    if (spec.z != 2) {
      return FcStatus::InvalidArgument(
          "bico supports z == 2 (k-means) only");
    }
    return ExpectOptions<api::BicoOptions>(spec);
  }

  FcStatus ValidateInput(
      const Matrix&, const std::vector<double>& weights) const override {
    // A clustering feature cannot absorb a massless point (the CF tree
    // aborts on weight == 0); the other samplers just never draw it.
    for (size_t i = 0; i < weights.size(); ++i) {
      if (weights[i] == 0.0) {
        return FcStatus::InvalidArgument(
            "bico requires strictly positive weights (weights[" +
            std::to_string(i) + "] is 0)");
      }
    }
    return FcStatus::Ok();
  }

  Coreset Build(const CoresetSpec& spec, const Matrix& points,
                const std::vector<double>& weights, size_t m, Rng&,
                BuildDiagnostics* diag) const override {
    const api::BicoOptions options =
        OptionsOrDefault<api::BicoOptions>(spec);
    fastcoreset::BicoOptions core;
    core.max_features = options.max_features == 0 ? m : options.max_features;
    core.initial_threshold = options.initial_threshold;
    core.max_depth = options.max_depth;
    Timer timer;
    Bico bico(points.cols(), core);
    bico.InsertAll(points, weights);
    RecordStage(diag, "insert", timer.Seconds());
    timer.Reset();
    Coreset coreset = bico.ExtractCoreset();
    RecordStage(diag, "extract", timer.Seconds());
    return coreset;
  }
};

class StreamKmAlgorithm : public CoresetAlgorithm {
 public:
  std::string_view Name() const override { return "stream_km"; }

  FcStatus ValidateSpec(const CoresetSpec& spec) const override {
    if (spec.z != 2) {
      return FcStatus::InvalidArgument(
          "stream_km supports z == 2 (k-means) only");
    }
    return ExpectOptions<StreamKmOptions>(spec);
  }

  Coreset Build(const CoresetSpec&, const Matrix& points,
                const std::vector<double>& weights, size_t m, Rng& rng,
                BuildDiagnostics* diag) const override {
    Timer timer;
    Coreset coreset = StreamKmReduce(points, weights, m, rng);
    RecordStage(diag, "reduce", timer.Seconds());
    return coreset;
  }
};

FC_REGISTER_CORESET_ALGORITHM("uniform", UniformAlgorithm);
FC_REGISTER_CORESET_ALGORITHM("lightweight", LightweightAlgorithm);
FC_REGISTER_CORESET_ALGORITHM("welterweight", WelterweightAlgorithm);
FC_REGISTER_CORESET_ALGORITHM("sensitivity", SensitivityAlgorithm);
FC_REGISTER_CORESET_ALGORITHM("fast_coreset", FastCoresetAlgorithm,
                              {"fast"});
FC_REGISTER_CORESET_ALGORITHM("group_sampling", GroupSamplingAlgorithm,
                              {"group"});
FC_REGISTER_CORESET_ALGORITHM("bico", BicoAlgorithm);
FC_REGISTER_CORESET_ALGORITHM("stream_km", StreamKmAlgorithm, {"streamkm"});

}  // namespace

namespace internal {

// Linker anchor: fc_api is a static library, so this translation unit —
// and with it the self-registrations above — is only linked into a binary
// if some symbol here is referenced. Registry::Instance() calls this
// no-op, guaranteeing every registry user sees the built-ins.
void EnsureBuiltinAlgorithmsLinked() {}

}  // namespace internal

}  // namespace api
}  // namespace fastcoreset
