#include "src/api/registry.h"

#include <utility>

#include "src/common/check.h"

namespace fastcoreset {
namespace api {

FcStatus CoresetAlgorithm::ValidateSpec(const CoresetSpec& spec) const {
  if (std::holds_alternative<std::monostate>(spec.options)) {
    return FcStatus::Ok();
  }
  return FcStatus::InvalidArgument(
      "method '" + spec.method + "' takes no sub-options, got '" +
      MethodOptionsName(spec.options) + "'");
}

FcStatus CoresetAlgorithm::ValidateInput(
    const Matrix& /*points*/, const std::vector<double>& /*weights*/) const {
  return FcStatus::Ok();
}

Registry& Registry::Instance() {
  internal::EnsureBuiltinAlgorithmsLinked();
  static Registry* registry = new Registry();  // Leaked: process lifetime.
  return *registry;
}

void Registry::Register(const std::string& name, Factory factory,
                        const std::vector<std::string>& aliases) {
  MutexLock lock(mutex_);
  // fc-lint: allow(no-abort-in-service): Register runs once at static
  // init from RegisterBuiltins; an empty name is a programmer error.
  FC_CHECK_MSG(!name.empty(), "registry name is empty");
  // fc-lint: allow(no-abort-in-service): duplicate registration is a
  // build-time programmer error, never reachable from a request.
  FC_CHECK_MSG(entries_.find(name) == entries_.end(),
               "duplicate registry name");
  Entry entry;
  entry.factory = std::move(factory);
  entry.canonical = name;
  entries_.emplace(name, std::move(entry));
  for (const std::string& alias : aliases) {
    // fc-lint: allow(no-abort-in-service): duplicate alias registration
    // is a build-time programmer error, never reachable from a request.
    FC_CHECK_MSG(entries_.find(alias) == entries_.end(),
                 "duplicate registry alias");
    Entry alias_entry;
    alias_entry.is_alias = true;
    alias_entry.canonical = name;
    entries_.emplace(alias, std::move(alias_entry));
  }
}

const Registry::Entry* Registry::Find(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  if (it->second.is_alias) {
    it = entries_.find(it->second.canonical);
    if (it == entries_.end()) return nullptr;
  }
  return &it->second;
}

FcStatusOr<const CoresetAlgorithm*> Registry::Get(
    const std::string& name) const {
  MutexLock lock(mutex_);
  const Entry* entry = Find(name);
  if (entry == nullptr) {
    std::string known;
    for (const auto& [key, value] : entries_) {
      if (value.is_alias) continue;
      if (!known.empty()) known += ", ";
      known += key;
    }
    return FcStatus::NotFound("no coreset method named '" + name +
                              "' (registered: " + known + ")");
  }
  if (!entry->instance) entry->instance = entry->factory();
  return FcStatusOr<const CoresetAlgorithm*>(entry->instance.get());
}

bool Registry::Contains(const std::string& name) const {
  MutexLock lock(mutex_);
  return Find(name) != nullptr;
}

std::vector<std::string> Registry::Names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [key, entry] : entries_) {
    if (!entry.is_alias) names.push_back(key);
  }
  return names;  // std::map iteration is already sorted.
}

}  // namespace api
}  // namespace fastcoreset
