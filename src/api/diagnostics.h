// Structured build diagnostics: every facade build reports what it did —
// effective parameters, rng seed, input/output volumes, and a per-stage
// wall-clock breakdown — so harnesses, benches, and (eventually) a server
// frontend can log and account builds without bespoke timing code.

#ifndef FASTCORESET_API_DIAGNOSTICS_H_
#define FASTCORESET_API_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/coreset.h"

namespace fastcoreset {
namespace api {

/// One timed pipeline stage ("seeding", "sampling", ...).
struct StageTime {
  std::string name;
  double seconds = 0.0;
};

/// What a build actually did. All fields are filled by the facade; the
/// per-stage vector additionally gets method-internal stages where the
/// core exposes them (fast_coreset reports jl/seeding/sensitivity/
/// sampling, streaming builds report per-phase reduce work).
struct BuildDiagnostics {
  std::string method;        ///< Canonical registry name used.
  uint64_t seed = 0;         ///< Rng seed (meaningful when !external_rng).
  bool external_rng = false; ///< Randomness came from a caller-owned Rng.

  size_t input_rows = 0;   ///< n of the build input.
  size_t input_dims = 0;   ///< d of the build input.
  /// Rows fed through compression, including streaming re-reductions
  /// (== input_rows for one-shot builds).
  size_t points_processed = 0;
  /// points_processed * input_dims * sizeof(double).
  size_t bytes_processed = 0;

  size_t k = 0;            ///< Effective cluster count.
  size_t m_requested = 0;  ///< spec.m as given (0 = default).
  size_t m_effective = 0;  ///< Resolved coreset size target.
  int z = 2;               ///< Cost exponent.
  /// Candidate-solution size actually used by j-center samplers
  /// (welterweight j, sensitivity k, lightweight 1); 0 when the method
  /// has no such notion.
  size_t j_effective = 0;

  size_t output_rows = 0;          ///< Coreset rows produced.
  double output_total_weight = 0;  ///< Kahan-summed coreset weight.

  /// Streaming (merge-&-reduce) builds only; 0 for one-shot builds.
  size_t stream_blocks = 0;      ///< Blocks pushed.
  size_t stream_reduce_ops = 0;  ///< Builder invocations beyond the blocks.
  size_t stream_levels = 0;      ///< Occupied levels at finalize.

  std::vector<StageTime> stages;  ///< Wall-clock per pipeline stage.
  double total_seconds = 0.0;     ///< Wall-clock of the whole build.

  /// Multi-line human-readable report (stable key=value lines).
  std::string ToString() const;
};

/// A facade build's product: the coreset plus its diagnostics.
struct BuildResult {
  Coreset coreset;
  BuildDiagnostics diagnostics;
};

}  // namespace api
}  // namespace fastcoreset

#endif  // FASTCORESET_API_DIAGNOSTICS_H_
