// Recoverable-error model for the public facade (src/api/fastcoreset.h).
//
// The internal layers use FC_CHECK for contract violations: a broken
// invariant inside the library is a bug and aborting is correct. The
// facade, in contrast, receives *requests* — specs that may come from a
// config file, a CLI flag, or (eventually) a server frontend — and a bad
// request must be reported, not fatal. FcStatus / FcStatusOr<T> are an
// `expected`-style pair: exception-free, cheap to return, and explicit at
// every call site.

#ifndef FASTCORESET_API_STATUS_H_
#define FASTCORESET_API_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace fastcoreset {
namespace api {

/// Error taxonomy for facade calls. Kept deliberately small: callers
/// branch on "which kind of bad", not on individual messages.
enum class FcErrorCode {
  kOk = 0,
  kInvalidArgument,      ///< The spec or inputs are inconsistent.
  kNotFound,             ///< No registered algorithm under that name.
  kFailedPrecondition,   ///< Inputs don't satisfy the method's needs.
  kInternal,             ///< A bug surfaced as a recoverable error.
  kUnavailable,          ///< Transient overload — retry later.
};

/// Human-readable name of an error code ("invalid_argument", ...).
std::string FcErrorCodeName(FcErrorCode code);

/// Success-or-error result of a facade call that returns no value.
class FcStatus {
 public:
  /// Success.
  FcStatus() : code_(FcErrorCode::kOk) {}

  static FcStatus Ok() { return FcStatus(); }
  static FcStatus InvalidArgument(std::string message) {
    return FcStatus(FcErrorCode::kInvalidArgument, std::move(message));
  }
  static FcStatus NotFound(std::string message) {
    return FcStatus(FcErrorCode::kNotFound, std::move(message));
  }
  static FcStatus FailedPrecondition(std::string message) {
    return FcStatus(FcErrorCode::kFailedPrecondition, std::move(message));
  }
  static FcStatus Internal(std::string message) {
    return FcStatus(FcErrorCode::kInternal, std::move(message));
  }
  /// Admission-control rejection: the request was well-formed but the
  /// server is shedding load. Clients should back off and retry.
  static FcStatus Unavailable(std::string message) {
    return FcStatus(FcErrorCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == FcErrorCode::kOk; }
  FcErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>" — for logs and CLI error output.
  std::string ToString() const {
    if (ok()) return "ok";
    return FcErrorCodeName(code_) + ": " + message_;
  }

 private:
  FcStatus(FcErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  FcErrorCode code_;
  std::string message_;
};

/// Value-or-error result of a facade call. Holds either a T or a non-ok
/// FcStatus; accessing the value of an error aborts with the status text
/// (so `Build(spec, points).value()` is safe shorthand in code that has
/// already validated its spec, e.g. benches and examples).
template <typename T>
class FcStatusOr {
 public:
  /// Implicit from a value (success).
  FcStatusOr(T value) : value_(std::move(value)) {}

  /// Implicit from a non-ok status (error). Constructing from an ok
  /// status without a value is a caller bug.
  FcStatusOr(FcStatus status) : status_(std::move(status)) {
    // fc-lint: allow(no-abort-in-service): type invariant — constructing
    // an FcStatusOr from an ok status with no value is a caller bug.
    FC_CHECK_MSG(!status_.ok(), "FcStatusOr built from ok status, no value");
  }

  bool ok() const { return value_.has_value(); }

  /// The status: Ok() when a value is held.
  const FcStatus& status() const { return status_; }

  /// The held value; aborts with the status text when this is an error.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      // fc-lint: allow(no-abort-in-service): this IS the documented abort
      // behind value(); the status-value-unchecked lint rule exists to
      // keep service code from ever reaching it unguarded.
      internal_check::CheckFailed("FcStatusOr", 0, "value()",
                                  status_.ToString().c_str());
    }
  }

  FcStatus status_;  ///< Ok() iff value_ holds a T.
  std::optional<T> value_;
};

}  // namespace api
}  // namespace fastcoreset

#endif  // FASTCORESET_API_STATUS_H_
