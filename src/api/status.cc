#include "src/api/status.h"

namespace fastcoreset {
namespace api {

std::string FcErrorCodeName(FcErrorCode code) {
  switch (code) {
    case FcErrorCode::kOk:
      return "ok";
    case FcErrorCode::kInvalidArgument:
      return "invalid_argument";
    case FcErrorCode::kNotFound:
      return "not_found";
    case FcErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case FcErrorCode::kInternal:
      return "internal";
    case FcErrorCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

}  // namespace api
}  // namespace fastcoreset
