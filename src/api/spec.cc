#include "src/api/spec.h"

#include <cmath>

namespace fastcoreset {
namespace api {

namespace {

/// Overload set for std::visit in MethodOptionsName.
struct OptionsNamer {
  std::string operator()(std::monostate) const { return "default"; }
  std::string operator()(const UniformOptions&) const { return "uniform"; }
  std::string operator()(const LightweightOptions&) const {
    return "lightweight";
  }
  std::string operator()(const WelterweightOptions&) const {
    return "welterweight";
  }
  std::string operator()(const SensitivityOptions&) const {
    return "sensitivity";
  }
  std::string operator()(const FastOptions&) const { return "fast_coreset"; }
  std::string operator()(const GroupOptions&) const {
    return "group_sampling";
  }
  std::string operator()(const BicoOptions&) const { return "bico"; }
  std::string operator()(const StreamKmOptions&) const { return "stream_km"; }
};

/// Range checks for each sub-option struct, independent of the method the
/// spec names (a malformed sub-option is invalid even when mismatched).
struct OptionsValidator {
  FcStatus operator()(std::monostate) const { return FcStatus::Ok(); }
  FcStatus operator()(const UniformOptions&) const { return FcStatus::Ok(); }
  FcStatus operator()(const LightweightOptions&) const {
    return FcStatus::Ok();
  }
  FcStatus operator()(const WelterweightOptions& o) const {
    if (o.j > k) {
      return FcStatus::InvalidArgument(
          "welterweight j (" + std::to_string(o.j) +
          ") exceeds k (" + std::to_string(k) + ")");
    }
    return FcStatus::Ok();
  }
  FcStatus operator()(const SensitivityOptions&) const {
    return FcStatus::Ok();
  }
  FcStatus operator()(const FastOptions& o) const {
    if (!(o.jl_eps > 0.0)) {
      return FcStatus::InvalidArgument("fast_coreset jl_eps must be > 0");
    }
    if (!(o.correction_eps > 0.0)) {
      return FcStatus::InvalidArgument(
          "fast_coreset correction_eps must be > 0");
    }
    if (o.seeding_max_depth < 1) {
      return FcStatus::InvalidArgument(
          "fast_coreset seeding_max_depth must be >= 1");
    }
    if (o.seeding_max_rejections < 0) {
      return FcStatus::InvalidArgument(
          "fast_coreset seeding_max_rejections must be >= 0");
    }
    return FcStatus::Ok();
  }
  FcStatus operator()(const GroupOptions& o) const {
    // The ring construction needs (eps/8)^z < 1 < (8/eps)^z, i.e.
    // 0 < eps < 8 (enforced by FC_CHECK in the core — reject here so the
    // facade reports instead of aborting).
    if (!(o.eps > 0.0 && o.eps < 8.0)) {
      return FcStatus::InvalidArgument(
          "group_sampling eps must be in (0, 8)");
    }
    return FcStatus::Ok();
  }
  FcStatus operator()(const BicoOptions& o) const {
    if (o.max_depth < 1) {
      return FcStatus::InvalidArgument("bico max_depth must be >= 1");
    }
    if (!(o.initial_threshold >= 0.0)) {
      return FcStatus::InvalidArgument(
          "bico initial_threshold must be >= 0");
    }
    return FcStatus::Ok();
  }
  FcStatus operator()(const StreamKmOptions&) const { return FcStatus::Ok(); }

  size_t k;
};

}  // namespace

std::string MethodOptionsName(const MethodOptions& options) {
  return std::visit(OptionsNamer{}, options);
}

FcStatus CoresetSpec::Validate() const {
  if (method.empty()) {
    return FcStatus::InvalidArgument("spec.method is empty");
  }
  if (k == 0) {
    return FcStatus::InvalidArgument("spec.k must be >= 1");
  }
  if (z != 1 && z != 2) {
    return FcStatus::InvalidArgument(
        "spec.z must be 1 (k-median) or 2 (k-means), got " +
        std::to_string(z));
  }
  if (EffectiveM() == 0) {
    return FcStatus::InvalidArgument("effective coreset size m is 0");
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!std::isfinite(weights[i]) || weights[i] < 0.0) {
      return FcStatus::InvalidArgument(
          "spec.weights[" + std::to_string(i) +
          "] must be finite and >= 0");
    }
  }
  return std::visit(OptionsValidator{k}, options);
}

}  // namespace api
}  // namespace fastcoreset
