// fastcoreset public API — the one header library consumers include.
//
//   #include "src/api/fastcoreset.h"
//
//   fastcoreset::api::CoresetSpec spec;
//   spec.method = "fast_coreset";
//   spec.k = 100;
//   spec.seed = 42;
//   auto result = fastcoreset::api::Build(spec, points);
//   if (!result.ok()) { /* result.status() says why */ }
//   use(result->coreset);
//   log(result->diagnostics.ToString());
//
// The facade covers the paper's whole sampling spectrum (uniform ->
// lightweight -> welterweight -> sensitivity -> fast_coreset), the
// group-sampling extension, and the streaming builders (bico, stream_km)
// through one spec/registry/diagnostics surface:
//
//   - CoresetSpec (src/api/spec.h): request-shaped options; Validate()
//     rejects inconsistent requests instead of aborting.
//   - Registry (src/api/registry.h): string-keyed, self-registering
//     method registry — new methods plug in without a dispatch switch.
//   - BuildResult (src/api/diagnostics.h): the coreset plus structured
//     diagnostics (per-stage wall-clock, effective parameters, volumes).
//   - FcStatus / FcStatusOr (src/api/status.h): recoverable errors.
//
// Streaming composition (merge-&-reduce, reservoirs) is re-exported here:
// wrap any spec into a CoresetBuilder with MakeBuilder() and feed a
// StreamingCompressor, or let BuildStreaming() run the whole pipeline.
// For a long-lived request-driven front (named datasets, sharded builds,
// an LRU build cache), see src/service/service.h.

#ifndef FASTCORESET_API_FASTCORESET_H_
#define FASTCORESET_API_FASTCORESET_H_

#include <cstddef>
#include <vector>

#include "src/api/algorithm.h"
#include "src/api/diagnostics.h"
#include "src/api/registry.h"
#include "src/api/spec.h"
#include "src/api/status.h"
#include "src/clustering/types.h"
#include "src/common/rng.h"
#include "src/core/coreset.h"
#include "src/geometry/matrix.h"
#include "src/streaming/merge_reduce.h"
#include "src/streaming/reservoir.h"

namespace fastcoreset {
namespace api {

/// Full request validation: spec.Validate(), registry lookup, and the
/// method's own ValidateSpec(). Build()/MakeBuilder() run this for you;
/// call it directly to vet a request before accepting it (e.g. at a
/// service boundary).
FcStatus ValidateSpec(const CoresetSpec& spec);

/// Seed-driven build: compresses `points` (weighted by spec.weights, or
/// unweighted when empty) with the method named by the spec, using a
/// fresh Rng(spec.seed). Same spec + same points = bit-identical coreset,
/// at any FC_THREADS. Invalid or unknown requests come back as a non-ok
/// status; nothing aborts.
FcStatusOr<BuildResult> Build(const CoresetSpec& spec, const Matrix& points);

/// External-randomness build, for callers that thread one Rng through a
/// larger randomized pipeline (trial harnesses, streaming). `weights`
/// override spec.weights when non-empty (both set is an error).
FcStatusOr<BuildResult> Build(const CoresetSpec& spec, const Matrix& points,
                              const std::vector<double>& weights, Rng& rng);

/// Wraps the spec's method into the streaming CoresetBuilder signature
/// (src/core/coreset.h): the compressor supplies points/weights/m/rng per
/// reduce call, the spec supplies everything else. The spec is fully
/// validated here, once. Per-call *inputs* follow the internal
/// composition contract — the CoresetBuilder signature has no status
/// channel, so a batch the method cannot digest (e.g. a zero weight fed
/// to bico) aborts with the validation message rather than returning an
/// error; vet user-supplied batches with Build() first when in doubt.
FcStatusOr<CoresetBuilder> MakeBuilder(const CoresetSpec& spec);

/// One-shot merge-&-reduce streaming build: consumes `points` in blocks
/// of `block_size` through a StreamingCompressor over the spec's method
/// and finalizes. Diagnostics additionally report stream_blocks /
/// stream_reduce_ops / stream_levels, and points_processed counts the
/// re-reduction work.
FcStatusOr<BuildResult> BuildStreaming(const CoresetSpec& spec,
                                       const Matrix& points,
                                       size_t block_size);

/// Advanced: the sensitivity-sampling tail over a caller-provided
/// candidate solution — the common backend of the whole j-center spectrum
/// (Schwiegelshohn & Sheikh-Omar, ESA'22). For seeder research and custom
/// pipelines that bring their own approximate solution.
Coreset SampleFromSolution(const Matrix& points,
                           const std::vector<double>& weights,
                           const Clustering& solution, size_t m, Rng& rng);

}  // namespace api
}  // namespace fastcoreset

#endif  // FASTCORESET_API_FASTCORESET_H_
