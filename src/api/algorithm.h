// CoresetAlgorithm: the polymorphic interface every compression method on
// the spectrum implements — one-shot samplers and streaming builders
// alike. Implementations live behind the string-keyed Registry
// (src/api/registry.h) and self-register, so adding a method never means
// growing an enum switch.

#ifndef FASTCORESET_API_ALGORITHM_H_
#define FASTCORESET_API_ALGORITHM_H_

#include <string_view>
#include <vector>

#include "src/api/diagnostics.h"
#include "src/api/spec.h"
#include "src/common/rng.h"
#include "src/core/coreset.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {
namespace api {

/// A compression method. Implementations are stateless (all per-build
/// state flows through the arguments), so one shared instance per
/// registered name serves every caller concurrently.
class CoresetAlgorithm {
 public:
  virtual ~CoresetAlgorithm() = default;

  /// Canonical registry name ("fast_coreset", ...).
  virtual std::string_view Name() const = 0;

  /// Method-specific spec checks on top of CoresetSpec::Validate():
  /// rejects a mismatched options tag (e.g. welterweight options on a
  /// uniform build) and any constraint the method imposes (bico needs
  /// z == 2). The default accepts monostate only.
  virtual FcStatus ValidateSpec(const CoresetSpec& spec) const;

  /// Method-specific *input* checks on top of the facade's common pass
  /// (shape match, finite non-negative weights, positive total). Runs
  /// before Build() so inputs the method cannot digest are reported, not
  /// aborted on — e.g. bico rejects individual zero weights. The default
  /// accepts.
  virtual FcStatus ValidateInput(const Matrix& points,
                                 const std::vector<double>& weights) const;

  /// Builds a coreset of (points, weights) targeting `m` rows, consuming
  /// randomness from `rng`. `m` is passed separately from the spec so
  /// streaming composition can override it per reduce call. The spec has
  /// already passed Validate() + ValidateSpec() and `weights` is empty or
  /// n-sized; implementations must not FC_CHECK on spec-reachable state.
  /// `diag` may be nullptr; when set, implementations record effective
  /// parameters (j_effective) and internal stage timings.
  virtual Coreset Build(const CoresetSpec& spec, const Matrix& points,
                        const std::vector<double>& weights, size_t m,
                        Rng& rng, BuildDiagnostics* diag) const = 0;

 protected:
  /// Helper for ValidateSpec overrides: ok iff the spec's options hold
  /// monostate or `AllowedT`.
  template <typename AllowedT>
  static FcStatus ExpectOptions(const CoresetSpec& spec) {
    if (std::holds_alternative<std::monostate>(spec.options) ||
        std::holds_alternative<AllowedT>(spec.options)) {
      return FcStatus::Ok();
    }
    return FcStatus::InvalidArgument(
        "method '" + spec.method + "' got sub-options for '" +
        MethodOptionsName(spec.options) + "'");
  }
};

}  // namespace api
}  // namespace fastcoreset

#endif  // FASTCORESET_API_ALGORITHM_H_
