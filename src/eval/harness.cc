#include "src/eval/harness.h"

namespace fastcoreset {

TrialStats RunTrials(int count, uint64_t base_seed,
                     const std::function<double(Rng&)>& trial) {
  TrialStats stats;
  for (int t = 0; t < count; ++t) {
    Rng rng(base_seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(t + 1));
    Timer timer;
    const double value = trial(rng);
    stats.seconds.Add(timer.Seconds());
    stats.value.Add(value);
  }
  return stats;
}

}  // namespace fastcoreset
