#include "src/eval/harness.h"

namespace fastcoreset {

uint64_t TrialSeed(uint64_t base_seed, int t) {
  return base_seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(t + 1);
}

TrialStats RunSeededTrials(int count, uint64_t base_seed,
                           const std::function<double(uint64_t)>& trial) {
  TrialStats stats;
  for (int t = 0; t < count; ++t) {
    Timer timer;
    const double value = trial(TrialSeed(base_seed, t));
    stats.seconds.Add(timer.Seconds());
    stats.value.Add(value);
  }
  return stats;
}

TrialStats RunTrials(int count, uint64_t base_seed,
                     const std::function<double(Rng&)>& trial) {
  return RunSeededTrials(count, base_seed, [&trial](uint64_t seed) {
    Rng rng(seed);
    return trial(rng);
  });
}

}  // namespace fastcoreset
