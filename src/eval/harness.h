// Small experiment harness: repeated randomized trials with mean/variance
// reporting, matching the paper's "mean ± variance over 5 runs" tables.

#ifndef FASTCORESET_EVAL_HARNESS_H_
#define FASTCORESET_EVAL_HARNESS_H_

#include <functional>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/timer.h"

namespace fastcoreset {

/// Result of a repeated measurement.
struct TrialStats {
  RunningStat value;    ///< The measured quantity per trial.
  RunningStat seconds;  ///< Wall-clock per trial.
};

/// Runs `trial` `count` times with independent deterministic seeds derived
/// from `base_seed`; `trial` returns the measured value.
TrialStats RunTrials(int count, uint64_t base_seed,
                     const std::function<double(Rng&)>& trial);

}  // namespace fastcoreset

#endif  // FASTCORESET_EVAL_HARNESS_H_
