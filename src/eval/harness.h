// Small experiment harness: repeated randomized trials with mean/variance
// reporting, matching the paper's "mean ± variance over 5 runs" tables.

#ifndef FASTCORESET_EVAL_HARNESS_H_
#define FASTCORESET_EVAL_HARNESS_H_

#include <functional>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/timer.h"

namespace fastcoreset {

/// Result of a repeated measurement.
struct TrialStats {
  RunningStat value;    ///< The measured quantity per trial.
  RunningStat seconds;  ///< Wall-clock per trial.
};

/// Seed of the t-th trial (t in [0, count)) derived from `base_seed` —
/// the derivation both trial runners share, exposed so spec-shaped
/// callers (api::CoresetSpec::seed) can reproduce any single trial.
uint64_t TrialSeed(uint64_t base_seed, int t);

/// Runs `trial` `count` times with independent deterministic seeds derived
/// from `base_seed`; `trial` returns the measured value.
TrialStats RunTrials(int count, uint64_t base_seed,
                     const std::function<double(Rng&)>& trial);

/// Seed-driven variant for request-shaped (facade) trials: the trial
/// receives the derived seed itself — typically forwarded into a
/// CoresetSpec — instead of a live Rng. RunTrials(c, s, f) is exactly
/// RunSeededTrials(c, s, seed -> f(Rng(seed))).
TrialStats RunSeededTrials(int count, uint64_t base_seed,
                           const std::function<double(uint64_t)>& trial);

}  // namespace fastcoreset

#endif  // FASTCORESET_EVAL_HARNESS_H_
