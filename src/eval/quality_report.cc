#include "src/eval/quality_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/clustering/kmeans_plus_plus.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

std::string QualityReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "distortion=%.3f multi_probe=%.3f weight_err=%.3f%% "
                "size=%zu coverage=%zu/%zu min_cluster_mass=%.2f => %s",
                distortion, multi_probe, 100.0 * weight_error, coreset_size,
                clusters_covered, clusters_total, min_cluster_mass,
                Passes() ? "PASS" : "FAIL");
  return buf;
}

QualityReport EvaluateCoreset(const Matrix& points,
                              const std::vector<double>& weights,
                              const Coreset& coreset,
                              const DistortionOptions& options,
                              int extra_probes, Rng& rng) {
  QualityReport report;
  report.coreset_size = coreset.size();

  double total_weight = 0.0;
  if (weights.empty()) {
    total_weight = static_cast<double>(points.rows());
  } else {
    for (double w : weights) total_weight += w;
  }
  report.weight_error =
      total_weight > 0.0
          ? std::fabs(coreset.TotalWeight() - total_weight) / total_weight
          : 0.0;

  report.distortion =
      CoresetDistortion(points, weights, coreset, options, rng);
  report.multi_probe =
      extra_probes > 0
          ? MaxDistortionOverProbes(points, weights, coreset, options,
                                    extra_probes, rng)
          : report.distortion;

  // Reference solution on the full data; per-cluster coverage = coreset
  // weight assigned to each reference cluster vs the cluster's true mass.
  const Clustering reference =
      KMeansPlusPlus(points, weights, options.k, options.z, rng);
  const size_t k = reference.centers.rows();
  report.clusters_total = k;

  std::vector<double> true_mass(k, 0.0);
  for (size_t i = 0; i < points.rows(); ++i) {
    true_mass[reference.assignment[i]] +=
        weights.empty() ? 1.0 : weights[i];
  }
  std::vector<double> coreset_mass(k, 0.0);
  for (size_t r = 0; r < coreset.size(); ++r) {
    const NearestCenter nearest =
        FindNearestCenter(coreset.points.Row(r), reference.centers);
    coreset_mass[nearest.index] += coreset.weights[r];
  }

  report.min_cluster_mass = 1e300;
  for (size_t c = 0; c < k; ++c) {
    if (true_mass[c] <= 0.0) {
      --report.clusters_total;  // Empty reference cluster: not a target.
      continue;
    }
    if (coreset_mass[c] > 0.0) ++report.clusters_covered;
    report.min_cluster_mass =
        std::min(report.min_cluster_mass, coreset_mass[c] / true_mass[c]);
  }
  if (report.min_cluster_mass == 1e300) report.min_cluster_mass = 0.0;
  return report;
}

}  // namespace fastcoreset
