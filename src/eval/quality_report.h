// Structured quality report for a compression: everything a practitioner
// following the paper's Section 5.5 blueprint would want to inspect before
// trusting a coreset — distortion, multi-probe distortion, weight error
// and per-cluster coverage against a reference solution.

#ifndef FASTCORESET_EVAL_QUALITY_REPORT_H_
#define FASTCORESET_EVAL_QUALITY_REPORT_H_

#include <string>
#include <vector>

#include "src/core/coreset.h"
#include "src/eval/distortion.h"

namespace fastcoreset {

/// Quality summary of a coreset against its source dataset.
struct QualityReport {
  double distortion = 0.0;        ///< Standard coreset distortion.
  double multi_probe = 0.0;       ///< Max over extra full-data probes.
  double weight_error = 0.0;      ///< |TotalWeight - W| / W.
  size_t coreset_size = 0;
  size_t clusters_total = 0;      ///< Clusters of a reference solution.
  size_t clusters_covered = 0;    ///< ... with >= 1 coreset point nearby.
  double min_cluster_mass = 0.0;  ///< Smallest per-cluster coreset weight
                                  ///< relative to the cluster's true mass.

  /// True iff the compression passes the paper's thresholds
  /// (distortion <= 5 and every reference cluster covered).
  bool Passes() const {
    return distortion <= 5.0 && clusters_covered == clusters_total;
  }

  /// One-line human-readable summary.
  std::string ToString() const;
};

/// Evaluates `coreset` against (points, weights). A reference k-solution
/// is seeded on the full data to measure per-cluster coverage; the
/// coreset-derived solution measures distortion. `extra_probes` controls
/// the multi-probe metric (0 disables it).
QualityReport EvaluateCoreset(const Matrix& points,
                              const std::vector<double>& weights,
                              const Coreset& coreset,
                              const DistortionOptions& options,
                              int extra_probes, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_EVAL_QUALITY_REPORT_H_
