// Coreset distortion (Schwiegelshohn & Sheikh-Omar, ESA'22): the paper's
// accuracy metric. Checking the full coreset guarantee is co-NP-hard, so
// distortion probes it with a candidate solution *computed on the coreset*:
//   distortion = max( cost(P, C_Ω) / cost(Ω, C_Ω),
//                     cost(Ω, C_Ω) / cost(P, C_Ω) ).
// A valid ε-coreset keeps this within 1 + ε for any C_Ω; a compression
// that dropped a cluster lets the solver "succeed" on Ω while the true
// cost explodes, and the ratio blows up.

#ifndef FASTCORESET_EVAL_DISTORTION_H_
#define FASTCORESET_EVAL_DISTORTION_H_

#include <vector>

#include "src/common/rng.h"
#include "src/core/coreset.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Options for the distortion probe.
struct DistortionOptions {
  size_t k = 100;       ///< Clusters of the candidate solution.
  int z = 2;            ///< 1 = k-median, 2 = k-means.
  int refine_iters = 5; ///< Lloyd / k-median alternation steps on Ω.
};

/// Candidate solution on the coreset: k-means++/k-median++ seeding over
/// (Ω.points, Ω.weights) plus a few refinement iterations.
Matrix SolveOnCoreset(const Coreset& coreset, const DistortionOptions& options,
                      Rng& rng);

/// Distortion of `coreset` w.r.t. (points, weights); weights may be empty.
double CoresetDistortion(const Matrix& points,
                         const std::vector<double>& weights,
                         const Coreset& coreset,
                         const DistortionOptions& options, Rng& rng);

/// Stricter probe: the maximum distortion over the coreset-derived
/// solution *and* `extra_probes` additional candidate solutions seeded on
/// the full data with distinct seeds. The coreset definition quantifies
/// over all solutions (co-NP-hard to verify); more probes give a tighter
/// lower bound on the true worst case.
double MaxDistortionOverProbes(const Matrix& points,
                               const std::vector<double>& weights,
                               const Coreset& coreset,
                               const DistortionOptions& options,
                               int extra_probes, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_EVAL_DISTORTION_H_
