#include "src/eval/distortion.h"

#include <algorithm>

#include "src/clustering/cost.h"
#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/kmedian.h"
#include "src/clustering/lloyd.h"

namespace fastcoreset {

Matrix SolveOnCoreset(const Coreset& coreset, const DistortionOptions& options,
                      Rng& rng) {
  FC_CHECK_GT(coreset.size(), 0u);
  const Clustering seed = KMeansPlusPlus(coreset.points, coreset.weights,
                                         options.k, options.z, rng);
  if (options.refine_iters <= 0) return seed.centers;
  if (options.z == 2) {
    LloydOptions lloyd;
    lloyd.max_iters = options.refine_iters;
    return LloydKMeans(coreset.points, coreset.weights, seed.centers, lloyd)
        .centers;
  }
  return LloydKMedian(coreset.points, coreset.weights, seed.centers,
                      options.refine_iters)
      .centers;
}

namespace {

/// Distortion of a fixed candidate solution.
double DistortionOfSolution(const Matrix& points,
                            const std::vector<double>& weights,
                            const Coreset& coreset, const Matrix& solution,
                            int z) {
  const double cost_full = CostToCenters(points, weights, solution, z);
  const double cost_coreset =
      CostToCenters(coreset.points, coreset.weights, solution, z);
  if (cost_full <= 0.0 && cost_coreset <= 0.0) return 1.0;
  if (cost_full <= 0.0 || cost_coreset <= 0.0) return 1e12;
  return std::max(cost_full / cost_coreset, cost_coreset / cost_full);
}

}  // namespace

double MaxDistortionOverProbes(const Matrix& points,
                               const std::vector<double>& weights,
                               const Coreset& coreset,
                               const DistortionOptions& options,
                               int extra_probes, Rng& rng) {
  double worst = CoresetDistortion(points, weights, coreset, options, rng);
  for (int p = 0; p < extra_probes; ++p) {
    // Candidate solutions seeded on the *full* data probe regions the
    // coreset-derived solution may never visit.
    const Clustering probe =
        KMeansPlusPlus(points, weights, options.k, options.z, rng);
    worst = std::max(worst, DistortionOfSolution(points, weights, coreset,
                                                 probe.centers, options.z));
  }
  return worst;
}

double CoresetDistortion(const Matrix& points,
                         const std::vector<double>& weights,
                         const Coreset& coreset,
                         const DistortionOptions& options, Rng& rng) {
  const Matrix solution = SolveOnCoreset(coreset, options, rng);
  const double cost_full = CostToCenters(points, weights, solution, options.z);
  const double cost_coreset =
      CostToCenters(coreset.points, coreset.weights, solution, options.z);
  if (cost_full <= 0.0 && cost_coreset <= 0.0) return 1.0;
  if (cost_full <= 0.0 || cost_coreset <= 0.0) {
    // One side collapsed to zero: unbounded distortion in theory; report a
    // large sentinel that still sorts sensibly in tables.
    return 1e12;
  }
  return std::max(cost_full / cost_coreset, cost_coreset / cost_full);
}

}  // namespace fastcoreset
