// Crude-Approx (Algorithm 2): an O(nd log log Δ) estimate U of the optimal
// k-median cost with OPT <= U <= poly(n, d, log Δ) * OPT.
//
// Idea (Lemma 4.1): in a randomly-shifted quadtree, the first (coarsest)
// level at which the input occupies at least k+1 distinct cells pins down
// OPT in the tree metric within a factor O(n). Counting occupied cells at
// one level is a single O(nd) dictionary pass, and the level is found by
// binary search over the O(log Δ) levels — hence log log Δ probes.

#ifndef FASTCORESET_SPREAD_CRUDE_APPROX_H_
#define FASTCORESET_SPREAD_CRUDE_APPROX_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Result of the crude cost estimation.
struct CrudeApproxResult {
  /// Upper bound on the optimal k-median cost (0 if the input has at most
  /// k distinct cells even at the finest probed level, i.e. OPT ~ 0).
  double upper_bound = 0.0;
  /// Lower bound companion from Lemma 4.1 (0 in the degenerate case).
  double lower_bound = 0.0;
  /// First level (0 = coarsest, side = diameter-scale) with >= k+1
  /// occupied cells; -1 in the degenerate case.
  int split_level = -1;
  /// Number of level-count probes performed (tests the log log Δ claim).
  int probes = 0;
};

/// Number of distinct occupied grid cells of side `cell_side` under grid
/// offset `shift` (one O(nd) pass; exposed for tests and reuse).
size_t CountDistinctCells(const Matrix& points,
                          const std::vector<double>& shift, double cell_side);

/// Runs Crude-Approx for k-median on `points`. The k-means bound follows
/// by Lemma 8.1 as n * upper_bound^2.
CrudeApproxResult CrudeApprox(const Matrix& points, size_t k, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_SPREAD_CRUDE_APPROX_H_
