#include "src/spread/reduce_spread.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "src/geometry/cell_hash.h"

namespace fastcoreset {

SpreadReduction ReduceSpread(const Matrix& points, double cost_upper_bound,
                             double log_spread_hint, Rng& rng) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  FC_CHECK_GT(n, 0u);

  SpreadReduction out;
  out.points = points;
  if (cost_upper_bound <= 0.0) {
    // Degenerate instance (<= k distinct locations): nothing to reduce.
    out.box_of_point.assign(n, 0);
    out.box_shift = Matrix(1, d);
    out.num_boxes = 1;
    return out;
  }

  const double nd = static_cast<double>(n);
  const double dd = static_cast<double>(d);
  const double r = std::sqrt(dd) * nd * nd * cost_upper_bound;
  out.box_side = r;

  // --- Step 1: diameter reduction. -------------------------------------
  std::vector<double> shift(d);
  for (size_t j = 0; j < d; ++j) shift[j] = rng.Uniform(0.0, r);

  // Bucket points into boxes of side r.
  std::unordered_map<CellKey, size_t, CellKeyHash> box_ids;
  out.box_of_point.resize(n);
  std::vector<std::vector<int64_t>> box_coords;
  std::vector<int64_t> coords(d);
  for (size_t i = 0; i < n; ++i) {
    const auto row = points.Row(i);
    for (size_t j = 0; j < d; ++j) {
      coords[j] = static_cast<int64_t>(std::floor((row[j] - shift[j]) / r));
    }
    const CellKey key = HashCell(0, coords);
    auto [it, inserted] = box_ids.try_emplace(key, box_coords.size());
    if (inserted) box_coords.push_back(coords);
    out.box_of_point[i] = it->second;
  }
  out.num_boxes = box_coords.size();
  out.box_shift = Matrix(out.num_boxes, d);

  // Per dimension: sort boxes by their integer coordinate and close every
  // gap larger than 2r (leaving exactly 2r so non-adjacent boxes stay
  // non-adjacent, Proposition 4.4).
  std::vector<size_t> order(out.num_boxes);
  for (size_t j = 0; j < d; ++j) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return box_coords[a][j] < box_coords[b][j];
    });
    double delta = 0.0;
    for (size_t rank = 1; rank < order.size(); ++rank) {
      // Box centers along dim j sit at (coord + 0.5) * r (+ shift); the
      // center gap is the coordinate difference times r.
      const double gap = static_cast<double>(box_coords[order[rank]][j] -
                                             box_coords[order[rank - 1]][j]) *
                         r;
      if (gap >= 2.0 * r) delta += gap - 2.0 * r;
      out.box_shift.At(order[rank], j) = delta;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    auto row = out.points.Row(i);
    const auto box = out.box_shift.Row(out.box_of_point[i]);
    for (size_t j = 0; j < d; ++j) row[j] -= box[j];
  }

  // --- Step 2: minimum-distance reduction (rounding). ------------------
  const double log_spread = std::max(1.0, log_spread_hint);
  const double g =
      cost_upper_bound / (nd * nd * nd * nd * dd * dd * log_spread);
  if (g > 0.0 && std::isfinite(g)) {
    out.grid_size = g;
    for (double& x : out.points.data()) x = std::round(x / g) * g;
  }
  return out;
}

Matrix RestoreCenters(const SpreadReduction& reduction,
                      const Matrix& reduced_centers,
                      const std::vector<size_t>& assignment) {
  Matrix restored = reduced_centers;
  const size_t k = reduced_centers.rows();
  std::vector<bool> done(k, false);
  size_t remaining = k;
  for (size_t i = 0; i < assignment.size() && remaining > 0; ++i) {
    const size_t c = assignment[i];
    if (c >= k || done[c]) continue;
    done[c] = true;
    --remaining;
    auto row = restored.Row(c);
    const auto box = reduction.box_shift.Row(reduction.box_of_point[i]);
    for (size_t j = 0; j < restored.cols(); ++j) row[j] += box[j];
  }
  return restored;
}

}  // namespace fastcoreset
