#include "src/spread/crude_approx.h"

#include <cmath>
#include <unordered_set>

#include "src/geometry/bounding_box.h"
#include "src/geometry/cell_hash.h"

namespace fastcoreset {

size_t CountDistinctCells(const Matrix& points,
                          const std::vector<double>& shift,
                          double cell_side) {
  FC_CHECK_GT(cell_side, 0.0);
  FC_CHECK_EQ(shift.size(), points.cols());
  std::unordered_set<CellKey, CellKeyHash> cells;
  std::vector<int64_t> coords(points.cols());
  const double inv_side = 1.0 / cell_side;
  for (size_t i = 0; i < points.rows(); ++i) {
    const auto row = points.Row(i);
    for (size_t j = 0; j < points.cols(); ++j) {
      coords[j] =
          static_cast<int64_t>(std::floor((row[j] - shift[j]) * inv_side));
    }
    cells.insert(HashCell(0, coords));
  }
  return cells.size();
}

CrudeApproxResult CrudeApprox(const Matrix& points, size_t k, Rng& rng) {
  FC_CHECK_GT(points.rows(), 0u);
  FC_CHECK_GT(k, 0u);
  const size_t n = points.rows();
  const size_t d = points.cols();

  const BoundingBox box = ComputeBoundingBox(points);
  double base = box.MaxSide();
  if (base <= 0.0) {
    // All points coincide: OPT = 0 for any k >= 1.
    return CrudeApproxResult{0.0, 0.0, -1, 0};
  }
  const double root_side = 2.0 * base;

  std::vector<double> shift(d);
  for (size_t j = 0; j < d; ++j) shift[j] = box.lo[j] - rng.Uniform(0.0, base);

  CrudeApproxResult result;
  auto count_at_level = [&](int level) {
    ++result.probes;
    return CountDistinctCells(points, shift, root_side * std::pow(0.5, level));
  };

  // Cell counts are monotone non-decreasing in the level (dyadic grids with
  // a common shift nest), so exponential + binary search applies. Level 60
  // keeps the integer cell coordinates well inside int64 range.
  constexpr int kMaxLevel = 60;
  if (count_at_level(kMaxLevel) < k + 1) {
    // At most k distinct micro-cells: treat the instance as having <= k
    // distinct locations, i.e. OPT ~ 0.
    return CrudeApproxResult{0.0, 0.0, -1, result.probes};
  }

  // Exponential search for an upper bracket: first power-of-two level with
  // >= k+1 occupied cells. O(log split_level) = O(log log Δ) probes.
  int hi = 1;
  while (hi < kMaxLevel && count_at_level(hi) < k + 1) hi *= 2;
  if (hi > kMaxLevel) hi = kMaxLevel;
  int lo = hi / 2;  // count(lo) < k+1 (or lo == 0).
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (count_at_level(mid) >= k + 1) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  const int split_level = hi;
  const double sqrt_d = std::sqrt(static_cast<double>(d));
  const double scale = sqrt_d * root_side * std::pow(0.5, split_level);
  result.split_level = split_level;
  // Lemma 4.1 with Δ-scale = root_side: OPT_T in [2 * scale, 16 n * scale].
  result.lower_bound = 2.0 * scale;
  result.upper_bound = 16.0 * static_cast<double>(n) * scale;
  return result;
}

}  // namespace fastcoreset
