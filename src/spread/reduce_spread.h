// Reduce-Spread (Algorithm 3): rebuilds the dataset so its spread is
// poly(n, d, log Δ) while preserving the cost of every reasonable solution
// up to ±OPT/n (Lemma 4.5 / Theorem 4.6).
//
// Two steps, both O(nd):
//   1. Diameter reduction — bucket points into a randomly-shifted grid of
//      side r = sqrt(d) n^2 U (no optimal cluster straddles two cells,
//      w.h.p., by Lemma 4.3), then translate the occupied boxes toward one
//      another along every axis until consecutive box centers are within
//      2r. Intra-box geometry is untouched; inter-box gaps shrink.
//   2. Minimum-distance reduction — snap every coordinate to the grid
//      g = U / (n^4 d^2 log Δ), so the smallest nonzero distance is >= g.
//
// The transformation keeps a per-point correspondence with the input (the
// output is the same point list, shifted and rounded), records each box's
// translation, and can map solutions back to the original space.

#ifndef FASTCORESET_SPREAD_REDUCE_SPREAD_H_
#define FASTCORESET_SPREAD_REDUCE_SPREAD_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Output of Reduce-Spread. Point i of `points` corresponds to point i of
/// the input; coresets sampled from `points` are valid for the input after
/// mapping weights/indices 1:1 (Theorem 4.6).
struct SpreadReduction {
  Matrix points;                    ///< Transformed dataset.
  std::vector<size_t> box_of_point; ///< Grid box of every input point.
  Matrix box_shift;                 ///< Per-box translation (subtracted).
  double grid_size = 0.0;           ///< Rounding grid g (0 = no rounding).
  double box_side = 0.0;            ///< Grid side r used for the boxes.
  size_t num_boxes = 0;
};

/// Runs both Reduce-Spread steps. `cost_upper_bound` is the U returned by
/// CrudeApprox (k-median scale). `log_spread_hint` is an upper estimate of
/// log2 of the input spread, used only to size the rounding grid; pass 64
/// if unknown. If cost_upper_bound == 0 the input is returned unchanged.
SpreadReduction ReduceSpread(const Matrix& points, double cost_upper_bound,
                             double log_spread_hint, Rng& rng);

/// Maps centers found on the reduced dataset back to the original space:
/// each center is translated by the shift of the box that contributed its
/// assigned points (first assigned point wins; reasonable solutions never
/// straddle boxes). Centers with no assigned points are left unchanged.
Matrix RestoreCenters(const SpreadReduction& reduction,
                      const Matrix& reduced_centers,
                      const std::vector<size_t>& assignment);

}  // namespace fastcoreset

#endif  // FASTCORESET_SPREAD_REDUCE_SPREAD_H_
