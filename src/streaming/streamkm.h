// StreamKM++ (Ackermann, Märtens, Raupach, Swierkot, Lammersen, Sohler,
// JEA'12): streaming k-means coresets built from k-means++ seeding.
//
// The reduce step draws an m-point D^2-sampled subset of the input (the
// "coreset tree" of the original paper realizes exactly this adaptive
// sampling distribution; we run the seeding directly at laptop scale) and
// weights each representative by the total weight of the points assigned
// to it. Streaming uses the standard bucket / merge-&-reduce mechanics.
//
// As the paper notes (Table 9), the method needs coreset sizes logarithmic
// in n and exponential in d to give guarantees, so at sensitivity-sampling
// sizes its distortion is noticeably worse.

#ifndef FASTCORESET_STREAMING_STREAMKM_H_
#define FASTCORESET_STREAMING_STREAMKM_H_

#include "src/core/coreset.h"

namespace fastcoreset {

/// StreamKM++ reduce step: m representatives via D^2 (k-means++) seeding,
/// weighted by assigned input weight. Returns indices into `points`.
Coreset StreamKmReduce(const Matrix& points,
                       const std::vector<double>& weights, size_t m,
                       Rng& rng);

/// CoresetBuilder adapter for use with StreamingCompressor.
CoresetBuilder MakeStreamKmBuilder();

}  // namespace fastcoreset

#endif  // FASTCORESET_STREAMING_STREAMKM_H_
