// BICO (Fichtenberger, Gillé, Schmidt, Schwiegelshohn, Sohler, ESA'13):
// BIRCH-style clustering-feature tree producing k-means coresets in a
// stream.
//
// Every tree node is a clustering feature CF = (weight, linear sum,
// sum of squared norms), enough to evaluate the 1-means error of the
// points it absorbed in O(d). A new point is routed down the tree: at
// each level it looks for a reference CF within a level radius R_i
// (halving per level); if absorbing the point keeps that CF's 1-means
// error below the global threshold T it is merged, otherwise the search
// descends (or opens a fresh CF). When the number of CFs exceeds the
// budget, T doubles and the tree is rebuilt from its own CFs.
//
// The output is one weighted point (the CF centroid) per feature. BICO is
// fast and memory-bounded, but — as the paper's Table 6 shows — the CF
// tree enforces no sensitivity lower bound, so its coreset distortion is
// frequently above 5 at the paper's coreset sizes. This reimplementation
// follows the published algorithm; the original's nearest-neighbor
// filtering heuristics are replaced by linear scans (we run at laptop
// scale).

#ifndef FASTCORESET_STREAMING_BICO_H_
#define FASTCORESET_STREAMING_BICO_H_

#include <cstdint>
#include <vector>

#include "src/core/coreset.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Options for the BICO tree.
struct BicoOptions {
  /// Maximum number of clustering features kept before a rebuild.
  size_t max_features = 4000;
  /// Initial 1-means error threshold; 0 derives it from the first points.
  double initial_threshold = 0.0;
  /// Depth cap of the CF tree.
  int max_depth = 16;
};

/// Streaming BICO compressor for k-means (z = 2 only, as in the original).
class Bico {
 public:
  explicit Bico(size_t dim, const BicoOptions& options = BicoOptions());

  /// Inserts one point with the given weight.
  void Insert(std::span<const double> point, double weight = 1.0);

  /// Inserts every row of `points` (weights may be empty = unit).
  void InsertAll(const Matrix& points,
                 const std::vector<double>& weights = {});

  /// One weighted point per clustering feature (synthetic indices: BICO
  /// representatives are centroids, not input points).
  Coreset ExtractCoreset() const;

  size_t NumFeatures() const { return features_.size(); }
  double threshold() const { return threshold_; }
  size_t rebuilds() const { return rebuilds_; }

 private:
  /// One clustering feature plus its tree linkage.
  struct Feature {
    double weight = 0.0;
    std::vector<double> linear_sum;
    double sum_sq = 0.0;  ///< Sum of w * ||x||^2 over absorbed points.
    std::vector<double> reference;  ///< Routing anchor (first point).
    int level = 1;
    std::vector<int32_t> children;
  };

  /// 1-means error of a feature: sum_sq - ||linear_sum||^2 / weight.
  static double QuantizationError(const Feature& feature);
  /// Error of the feature after absorbing (w, p).
  double MergedError(const Feature& feature, std::span<const double> point,
                     double weight) const;

  void InsertFeature(std::span<const double> point, double weight,
                     double sum_sq);
  void Rebuild();
  double LevelRadius(int level) const;

  size_t dim_;
  BicoOptions options_;
  double threshold_;
  bool threshold_initialized_ = false;
  size_t rebuilds_ = 0;
  std::vector<Feature> features_;
  std::vector<int32_t> roots_;  ///< Level-1 features.
};

}  // namespace fastcoreset

#endif  // FASTCORESET_STREAMING_BICO_H_
