// Merge-&-reduce streaming composition (Bentley-Saxe'80, first applied to
// clustering coresets by Har-Peled & Mazumdar'04; Section 5.4 of the
// paper).
//
// The stream is consumed in blocks. Each block is compressed to size m by
// a black-box CoresetBuilder; compressed blocks are combined like a binary
// counter: two size-m coresets at the same level are concatenated (merge)
// and re-compressed to size m (reduce), producing one coreset at the next
// level. At any time there is at most one coreset per level — O(log b)
// memory for b blocks — and Finalize() concatenates the surviving levels
// and runs one last reduction. Because the coreset property composes
// (a coreset of a union of coresets is a coreset of the union), the result
// is a valid coreset of the whole stream, with stacked (1+ε) error per
// level.

#ifndef FASTCORESET_STREAMING_MERGE_REDUCE_H_
#define FASTCORESET_STREAMING_MERGE_REDUCE_H_

#include <optional>
#include <vector>

#include "src/core/coreset.h"

namespace fastcoreset {

/// Incremental merge-&-reduce compressor over a point stream.
class StreamingCompressor {
 public:
  /// `builder` compresses any weighted point set to a requested size;
  /// `m` is the per-level coreset size. `rng` must outlive the compressor.
  StreamingCompressor(CoresetBuilder builder, size_t m, Rng* rng);

  /// Consumes one block of the stream (weights may be empty = unit).
  /// Indices in the final coreset refer to global stream positions.
  void Push(const Matrix& batch, const std::vector<double>& weights = {});

  /// Concatenates all level coresets and reduces once more to size m.
  /// The compressor may continue receiving Push() calls afterwards (the
  /// internal state is not consumed).
  Coreset Finalize() const;

  /// Number of occupied levels (exposed for tests: should be the number
  /// of ones in the binary representation of the block count).
  size_t OccupiedLevels() const;

  /// Total number of blocks consumed.
  size_t BlocksConsumed() const { return blocks_; }

  /// Total input rows pushed so far.
  size_t RowsConsumed() const { return global_offset_; }

  /// Builder invocations beyond the per-block compressions (level merges
  /// plus the latest Finalize() reduction) — the compression overhead
  /// merge-&-reduce pays for bounded memory. Feeds the facade's build
  /// diagnostics. Finalize() contributes a snapshot, not an accumulation,
  /// so callers that finalize repeatedly (periodic summaries of a live
  /// stream) are not over-counted.
  size_t ReduceOps() const { return reduce_ops_ + finalize_ops_; }

  /// Total rows fed through the builder — blocks, level merges, and the
  /// latest Finalize() reduction (the stream's true "points processed"
  /// accounting, with the same snapshot semantics as ReduceOps()).
  size_t BuilderRowsProcessed() const {
    return builder_rows_ + finalize_rows_;
  }

 private:
  /// Binary-counter carry: installs a coreset at `level`, merging upward
  /// while the slot is occupied.
  void Carry(Coreset coreset, size_t level);
  /// Merges two coresets by concatenation and reduces to m, preserving
  /// global indices.
  Coreset MergeReduce(const Coreset& a, const Coreset& b);

  CoresetBuilder builder_;
  size_t m_;
  Rng* rng_;
  size_t blocks_ = 0;
  size_t global_offset_ = 0;
  /// Diagnostics counters. The finalize pair is overwritten (not
  /// accumulated) per Finalize() call, and mutable because Finalize() is
  /// const yet runs one more reduction.
  size_t reduce_ops_ = 0;
  size_t builder_rows_ = 0;
  mutable size_t finalize_ops_ = 0;
  mutable size_t finalize_rows_ = 0;
  std::vector<std::optional<Coreset>> levels_;
};

/// One-shot convenience: stream `points` through a StreamingCompressor in
/// blocks of `block_size` and finalize.
Coreset StreamingCompress(const Matrix& points,
                          const std::vector<double>& weights,
                          const CoresetBuilder& builder, size_t block_size,
                          size_t m, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_STREAMING_MERGE_REDUCE_H_
