#include "src/streaming/reservoir.h"

#include <algorithm>
#include <cmath>

namespace fastcoreset {

WeightedReservoir::WeightedReservoir(size_t m, size_t dim, Rng* rng)
    : capacity_(m), dim_(dim), rng_(rng) {
  FC_CHECK_GT(capacity_, 0u);
  FC_CHECK_GT(dim_, 0u);
  FC_CHECK(rng_ != nullptr);
  entries_.reserve(capacity_);
}

void WeightedReservoir::DrawSkipBudget() {
  // A-ExpJ: the weight to skip before the next replacement is
  // log(u) / log(T_w) where T_w is the smallest key in the reservoir.
  const double threshold = entries_.front().key;
  if (threshold <= 0.0 || threshold >= 1.0) {
    skip_budget_ = 0.0;  // Degenerate; fall back to per-item processing.
    return;
  }
  double u = 0.0;
  while (u <= 1e-300) u = rng_->NextDouble();
  skip_budget_ = std::log(u) / std::log(threshold);
}

void WeightedReservoir::Offer(std::span<const double> point, double weight) {
  FC_CHECK_EQ(point.size(), dim_);
  FC_CHECK_GT(weight, 0.0);
  const size_t index = stream_index_++;
  stream_weight_ += weight;

  auto key_greater = [](const Entry& a, const Entry& b) {
    return a.key > b.key;
  };

  if (entries_.size() < capacity_) {
    Entry entry;
    double u = 0.0;
    while (u <= 1e-300) u = rng_->NextDouble();
    entry.key = std::pow(u, 1.0 / weight);
    entry.stream_index = index;
    entry.weight = weight;
    entry.point.assign(point.begin(), point.end());
    entries_.push_back(std::move(entry));
    std::push_heap(entries_.begin(), entries_.end(), key_greater);
    if (entries_.size() == capacity_) DrawSkipBudget();
    return;
  }

  skip_budget_ -= weight;
  if (skip_budget_ > 0.0) return;  // Item skipped in O(1).

  // Replace the minimum-key entry. The new key is drawn conditioned on
  // beating the old threshold: t = T_w^w, key = Uniform(t, 1)^(1/w).
  const double threshold = entries_.front().key;
  const double floor_key = std::pow(threshold, weight);
  const double r = rng_->Uniform(floor_key, 1.0);
  std::pop_heap(entries_.begin(), entries_.end(), key_greater);
  Entry& slot = entries_.back();
  slot.key = std::pow(std::max(r, 1e-300), 1.0 / weight);
  slot.stream_index = index;
  slot.weight = weight;
  slot.point.assign(point.begin(), point.end());
  std::push_heap(entries_.begin(), entries_.end(), key_greater);
  DrawSkipBudget();
}

void WeightedReservoir::OfferAll(const Matrix& batch,
                                 const std::vector<double>& weights) {
  FC_CHECK(weights.empty() || weights.size() == batch.rows());
  for (size_t i = 0; i < batch.rows(); ++i) {
    Offer(batch.Row(i), weights.empty() ? 1.0 : weights[i]);
  }
}

Coreset WeightedReservoir::Extract() const {
  Coreset coreset;
  coreset.points = Matrix(entries_.size(), dim_);
  coreset.indices.reserve(entries_.size());
  const double per_point =
      entries_.empty() ? 0.0
                       : stream_weight_ / static_cast<double>(entries_.size());
  for (size_t r = 0; r < entries_.size(); ++r) {
    auto row = coreset.points.Row(r);
    for (size_t j = 0; j < dim_; ++j) row[j] = entries_[r].point[j];
    coreset.indices.push_back(entries_[r].stream_index);
    coreset.weights.push_back(per_point);
  }
  return coreset;
}

}  // namespace fastcoreset
