#include "src/streaming/bico.h"

#include <cmath>
#include <limits>

#include "src/geometry/distance.h"

namespace fastcoreset {

Bico::Bico(size_t dim, const BicoOptions& options)
    : dim_(dim), options_(options), threshold_(options.initial_threshold) {
  FC_CHECK_GT(dim_, 0u);
  FC_CHECK_GT(options_.max_features, 0u);
  threshold_initialized_ = threshold_ > 0.0;
}

double Bico::QuantizationError(const Feature& feature) {
  if (feature.weight <= 0.0) return 0.0;
  double norm_sq = 0.0;
  for (double s : feature.linear_sum) norm_sq += s * s;
  return feature.sum_sq - norm_sq / feature.weight;
}

double Bico::MergedError(const Feature& feature, std::span<const double> point,
                         double weight) const {
  const double new_weight = feature.weight + weight;
  double norm_sq = 0.0;
  double point_sq = 0.0;
  for (size_t j = 0; j < dim_; ++j) {
    const double s = feature.linear_sum[j] + weight * point[j];
    norm_sq += s * s;
    point_sq += point[j] * point[j];
  }
  return feature.sum_sq + weight * point_sq - norm_sq / new_weight;
}

double Bico::LevelRadius(int level) const {
  return std::sqrt(threshold_) * std::pow(0.5, level - 1);
}

void Bico::Insert(std::span<const double> point, double weight) {
  FC_CHECK_EQ(point.size(), dim_);
  FC_CHECK_GT(weight, 0.0);
  double point_sq = 0.0;
  for (double x : point) point_sq += x * x;
  InsertFeature(point, weight, weight * point_sq);
  if (features_.size() > options_.max_features) Rebuild();
}

void Bico::InsertAll(const Matrix& points, const std::vector<double>& weights) {
  FC_CHECK(weights.empty() || weights.size() == points.rows());
  for (size_t i = 0; i < points.rows(); ++i) {
    Insert(points.Row(i), weights.empty() ? 1.0 : weights[i]);
  }
}

void Bico::InsertFeature(std::span<const double> point, double weight,
                         double sum_sq) {
  auto open_feature = [&](int level, std::vector<int32_t>* siblings) {
    Feature feature;
    feature.weight = weight;
    feature.linear_sum.resize(dim_);
    for (size_t j = 0; j < dim_; ++j) {
      feature.linear_sum[j] = weight * point[j];
    }
    feature.sum_sq = sum_sq;
    feature.reference.assign(point.begin(), point.end());
    feature.level = level;
    siblings->push_back(static_cast<int32_t>(features_.size()));
    features_.push_back(std::move(feature));
  };

  // Lazily derive the error threshold from the first nonzero distance seen
  // at the top level (the natural scale of the data).
  if (!threshold_initialized_ && !roots_.empty()) {
    double nearest_sq = std::numeric_limits<double>::infinity();
    for (int32_t id : roots_) {
      nearest_sq =
          std::min(nearest_sq, SquaredL2(point, features_[id].reference));
    }
    if (nearest_sq > 0.0 && std::isfinite(nearest_sq)) {
      threshold_ = nearest_sq;
      threshold_initialized_ = true;
    }
  }

  std::vector<int32_t>* siblings = &roots_;
  int level = 1;
  while (true) {
    // Nearest reference among the candidate features within the level
    // radius (linear scan; the original uses NN filtering for scale).
    int32_t best = -1;
    double best_sq = std::numeric_limits<double>::infinity();
    const double radius = LevelRadius(level);
    const double radius_sq = radius * radius;
    for (int32_t id : *siblings) {
      const double sq = SquaredL2(point, features_[id].reference);
      if (sq <= radius_sq && sq < best_sq) {
        best_sq = sq;
        best = id;
      }
    }
    if (best < 0) {
      open_feature(level, siblings);
      return;
    }
    Feature& feature = features_[best];
    if (MergedError(feature, point, weight) <= threshold_) {
      feature.weight += weight;
      for (size_t j = 0; j < dim_; ++j) {
        feature.linear_sum[j] += weight * point[j];
      }
      feature.sum_sq += sum_sq;
      return;
    }
    if (level >= options_.max_depth) {
      open_feature(level, &feature.children);
      return;
    }
    siblings = &feature.children;
    ++level;
  }
}

void Bico::Rebuild() {
  // Doubling the threshold merges more aggressively; repeat until the
  // feature budget holds (bounded, since the radius eventually spans the
  // whole data diameter and everything merges).
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (features_.size() <= options_.max_features) return;
    struct Moments {
      std::vector<double> centroid;
      double weight;
      double sum_sq;
    };
    std::vector<Moments> moments;
    moments.reserve(features_.size());
    for (const Feature& feature : features_) {
      Moments m;
      m.weight = feature.weight;
      m.sum_sq = feature.sum_sq;
      m.centroid.resize(dim_);
      for (size_t j = 0; j < dim_; ++j) {
        m.centroid[j] = feature.linear_sum[j] / feature.weight;
      }
      moments.push_back(std::move(m));
    }
    features_.clear();
    roots_.clear();
    threshold_ = threshold_ > 0.0 ? threshold_ * 2.0 : 1e-12;
    threshold_initialized_ = true;
    ++rebuilds_;
    // Re-inserting a feature's centroid with its weight and sum of squares
    // reconstructs its exact moments inside whichever feature absorbs it.
    for (const Moments& m : moments) {
      InsertFeature(m.centroid, m.weight, m.sum_sq);
    }
  }
}

Coreset Bico::ExtractCoreset() const {
  Coreset coreset;
  coreset.points = Matrix(features_.size(), dim_);
  coreset.weights.reserve(features_.size());
  coreset.indices.assign(features_.size(), Coreset::kSyntheticIndex);
  for (size_t f = 0; f < features_.size(); ++f) {
    auto row = coreset.points.Row(f);
    for (size_t j = 0; j < dim_; ++j) {
      row[j] = features_[f].linear_sum[j] / features_[f].weight;
    }
    coreset.weights.push_back(features_[f].weight);
  }
  return coreset;
}

}  // namespace fastcoreset
