#include "src/streaming/merge_reduce.h"

#include <utility>

namespace fastcoreset {

namespace {

/// Rewrites builder-local indices (into the points it was fed) through a
/// source-index table so the coreset refers to global stream positions.
void TranslateIndices(const std::vector<size_t>& source_of_row,
                      Coreset* coreset) {
  for (size_t& idx : coreset->indices) {
    if (idx == Coreset::kSyntheticIndex) continue;
    FC_CHECK_LT(idx, source_of_row.size());
    idx = source_of_row[idx];
  }
}

}  // namespace

StreamingCompressor::StreamingCompressor(CoresetBuilder builder, size_t m,
                                         Rng* rng)
    : builder_(std::move(builder)), m_(m), rng_(rng) {
  FC_CHECK(rng_ != nullptr);
  FC_CHECK_GT(m_, 0u);
}

void StreamingCompressor::Push(const Matrix& batch,
                               const std::vector<double>& weights) {
  FC_CHECK_GT(batch.rows(), 0u);
  builder_rows_ += batch.rows();
  Coreset block = builder_(batch, weights, m_, *rng_);
  // Builder indices are batch-relative; shift them to stream positions.
  for (size_t& idx : block.indices) {
    if (idx != Coreset::kSyntheticIndex) idx += global_offset_;
  }
  global_offset_ += batch.rows();
  ++blocks_;
  Carry(std::move(block), 0);
}

void StreamingCompressor::Carry(Coreset coreset, size_t level) {
  if (levels_.size() <= level) levels_.resize(level + 1);
  if (!levels_[level].has_value()) {
    levels_[level] = std::move(coreset);
    return;
  }
  Coreset merged = MergeReduce(*levels_[level], coreset);
  levels_[level].reset();
  Carry(std::move(merged), level + 1);
}

Coreset StreamingCompressor::MergeReduce(const Coreset& a,
                                         const Coreset& b) {
  Matrix merged_points = a.points;
  merged_points.AppendRows(b.points);
  std::vector<double> merged_weights = a.weights;
  merged_weights.insert(merged_weights.end(), b.weights.begin(),
                        b.weights.end());
  std::vector<size_t> source_of_row = a.indices;
  source_of_row.insert(source_of_row.end(), b.indices.begin(),
                       b.indices.end());

  ++reduce_ops_;
  builder_rows_ += merged_points.rows();
  Coreset reduced = builder_(merged_points, merged_weights, m_, *rng_);
  TranslateIndices(source_of_row, &reduced);
  return reduced;
}

Coreset StreamingCompressor::Finalize() const {
  Matrix all_points;
  std::vector<double> all_weights;
  std::vector<size_t> source_of_row;
  for (const auto& level : levels_) {
    if (!level.has_value()) continue;
    all_points.AppendRows(level->points);
    all_weights.insert(all_weights.end(), level->weights.begin(),
                       level->weights.end());
    source_of_row.insert(source_of_row.end(), level->indices.begin(),
                         level->indices.end());
  }
  FC_CHECK_MSG(all_points.rows() > 0, "Finalize() before any Push()");

  finalize_ops_ = 1;
  finalize_rows_ = all_points.rows();
  Coreset final_coreset = builder_(all_points, all_weights, m_, *rng_);
  TranslateIndices(source_of_row, &final_coreset);
  return final_coreset;
}

size_t StreamingCompressor::OccupiedLevels() const {
  size_t count = 0;
  for (const auto& level : levels_) {
    if (level.has_value()) ++count;
  }
  return count;
}

Coreset StreamingCompress(const Matrix& points,
                          const std::vector<double>& weights,
                          const CoresetBuilder& builder, size_t block_size,
                          size_t m, Rng& rng) {
  FC_CHECK_GT(block_size, 0u);
  FC_CHECK(weights.empty() || weights.size() == points.rows());
  StreamingCompressor compressor(builder, m, &rng);
  for (size_t start = 0; start < points.rows(); start += block_size) {
    const size_t end = std::min(points.rows(), start + block_size);
    std::vector<size_t> rows(end - start);
    for (size_t i = start; i < end; ++i) rows[i - start] = i;
    Matrix batch = points.SelectRows(rows);
    std::vector<double> batch_weights;
    if (!weights.empty()) {
      batch_weights.assign(weights.begin() + static_cast<long>(start),
                           weights.begin() + static_cast<long>(end));
    }
    compressor.Push(batch, batch_weights);
  }
  return compressor.Finalize();
}

}  // namespace fastcoreset
