#include "src/streaming/streamkm.h"

#include "src/clustering/kmeans_plus_plus.h"

namespace fastcoreset {

Coreset StreamKmReduce(const Matrix& points,
                       const std::vector<double>& weights, size_t m,
                       Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(m, 0u);
  FC_CHECK(weights.empty() || weights.size() == n);

  if (m >= n) {
    Coreset coreset;
    coreset.indices.resize(n);
    for (size_t i = 0; i < n; ++i) coreset.indices[i] = i;
    coreset.points = points;
    coreset.weights = weights.empty() ? UnitWeights(n) : weights;
    return coreset;
  }

  // D^2-sample m representatives; each input point hands its weight to
  // its nearest representative.
  const Clustering seeding = KMeansPlusPlus(points, weights, m, /*z=*/2, rng);
  const size_t actual = seeding.centers.rows();
  std::vector<double> rep_weight(actual, 0.0);
  for (size_t i = 0; i < n; ++i) {
    rep_weight[seeding.assignment[i]] += weights.empty() ? 1.0 : weights[i];
  }

  Coreset coreset;
  coreset.points = seeding.centers;
  coreset.weights = std::move(rep_weight);
  // KMeansPlusPlus centers are input rows, but it does not report which;
  // representatives are exact input points, so record them as synthetic is
  // unnecessary — recover indices by matching assignment: the center of
  // cluster c is the point that has cost 0. Cheaper: mark synthetic; the
  // points themselves are genuine dataset rows either way.
  coreset.indices.assign(actual, Coreset::kSyntheticIndex);
  return coreset;
}

CoresetBuilder MakeStreamKmBuilder() {
  return [](const Matrix& points, const std::vector<double>& weights,
            size_t m, Rng& rng) {
    return StreamKmReduce(points, weights, m, rng);
  };
}

}  // namespace fastcoreset
