// One-pass weighted reservoir sampling (A-ExpJ, Efraimidis & Spirakis'06).
//
// Merge-&-reduce realizes streaming *uniform* sampling by composing
// per-block samples; the classical alternative is a reservoir that keeps
// exactly m points of the stream, each present with probability
// proportional to its weight, in a single pass with O(m) memory and no
// re-sampling cascades. The paper's Section 5.4 observes that
// merge-&-reduce imposes non-uniformity that can accidentally *help* on
// outlier-heavy streams; the reservoir is the exact-uniform reference
// point for that comparison (see bench_ablations).
//
// Each item receives key u^(1/w) (u uniform); the m largest keys win.
// A-ExpJ accelerates this with exponential jumps: the sampler skips ahead
// by a weight budget instead of drawing a key per item.

#ifndef FASTCORESET_STREAMING_RESERVOIR_H_
#define FASTCORESET_STREAMING_RESERVOIR_H_

#include <queue>
#include <vector>

#include "src/common/rng.h"
#include "src/core/coreset.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Fixed-capacity weighted reservoir over a point stream.
class WeightedReservoir {
 public:
  /// Reservoir of capacity m over d-dimensional points.
  WeightedReservoir(size_t m, size_t dim, Rng* rng);

  /// Offers one stream element (weight > 0).
  void Offer(std::span<const double> point, double weight = 1.0);

  /// Offers every row of a batch (weights may be empty = unit).
  void OfferAll(const Matrix& batch, const std::vector<double>& weights = {});

  /// Number of elements currently held (<= capacity).
  size_t size() const { return entries_.size(); }

  size_t capacity() const { return capacity_; }

  /// Total stream weight seen so far.
  double StreamWeight() const { return stream_weight_; }

  /// Snapshot as a coreset: the held points, each re-weighted to
  /// StreamWeight() / size() (the uniform-sample estimator). Indices are
  /// stream positions.
  Coreset Extract() const;

 private:
  struct Entry {
    double key;  ///< u^(1/w); the reservoir keeps the m largest.
    size_t stream_index;
    double weight;
    std::vector<double> point;
  };

  /// Draws the next skip budget from the current threshold key.
  void DrawSkipBudget();

  size_t capacity_;
  size_t dim_;
  Rng* rng_;
  size_t stream_index_ = 0;
  double stream_weight_ = 0.0;
  double skip_budget_ = -1.0;  ///< Remaining weight to skip (A-ExpJ jump).
  std::vector<Entry> entries_;  ///< Maintained as a min-heap on key.
};

}  // namespace fastcoreset

#endif  // FASTCORESET_STREAMING_RESERVOIR_H_
