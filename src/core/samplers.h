// Uniform registry over all compression methods, used by the experiment
// harness and the streaming layer (which treats samplers as black boxes).

#ifndef FASTCORESET_CORE_SAMPLERS_H_
#define FASTCORESET_CORE_SAMPLERS_H_

#include <string>
#include <vector>

#include "src/core/coreset.h"
#include "src/core/fast_coreset.h"

namespace fastcoreset {

/// The sampling-method spectrum of Section 5.2, ordered fastest to most
/// accurate.
enum class SamplerKind {
  kUniform,
  kLightweight,
  kWelterweight,
  kSensitivity,
  kFastCoreset,
};

/// Human-readable method name (matches the paper's table headers).
std::string SamplerName(SamplerKind kind);

/// All five methods in spectrum order.
std::vector<SamplerKind> AllSamplers();

/// Builds a coreset of size m with the selected method. `k` is the target
/// cluster count; `j` only affects welterweight (0 = default log2 k).
Coreset BuildCoreset(SamplerKind kind, const Matrix& points,
                     const std::vector<double>& weights, size_t k, size_t m,
                     int z, Rng& rng, size_t j = 0);

/// Wraps a method into the streaming CoresetBuilder signature.
CoresetBuilder MakeCoresetBuilder(SamplerKind kind, size_t k, int z,
                                  size_t j = 0);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_SAMPLERS_H_
