// DEPRECATED enum-switch registry over the compression methods.
//
// Superseded by the unified facade in src/api/fastcoreset.h (CoresetSpec +
// string-keyed Registry + BuildResult diagnostics), which reaches every
// method's options and reports recoverable errors instead of aborting.
// These shims stay for one release so out-of-tree callers keep compiling;
// at equal seeds they produce bit-identical coresets to the facade
// (pinned by tests/api_test.cc). New code must not use them.

#ifndef FASTCORESET_CORE_SAMPLERS_H_
#define FASTCORESET_CORE_SAMPLERS_H_

#include <string>
#include <vector>

#include "src/core/coreset.h"
#include "src/core/fast_coreset.h"

namespace fastcoreset {

/// The sampling-method spectrum of Section 5.2, ordered fastest to most
/// accurate. Superseded by registry names ("uniform", ..., "fast_coreset").
enum class SamplerKind {
  kUniform,
  kLightweight,
  kWelterweight,
  kSensitivity,
  kFastCoreset,
};

/// Human-readable method name (matches the paper's table headers).
std::string SamplerName(SamplerKind kind);

/// All five methods in spectrum order.
std::vector<SamplerKind> AllSamplers();

/// Builds a coreset of size m with the selected method. `k` is the target
/// cluster count; `j` only affects welterweight (0 = default log2 k) —
/// the parameter leak that motivated the facade's per-method sub-options.
[[deprecated(
    "use api::Build with a CoresetSpec (src/api/fastcoreset.h)")]] Coreset
BuildCoreset(SamplerKind kind, const Matrix& points,
             const std::vector<double>& weights, size_t k, size_t m, int z,
             Rng& rng, size_t j = 0);

/// Wraps a method into the streaming CoresetBuilder signature.
[[deprecated(
    "use api::MakeBuilder with a CoresetSpec "
    "(src/api/fastcoreset.h)")]] CoresetBuilder
MakeCoresetBuilder(SamplerKind kind, size_t k, int z, size_t j = 0);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_SAMPLERS_H_
