// The Coreset type: a weighted subset (or weighted summary) of a dataset.

#ifndef FASTCORESET_CORE_CORESET_H_
#define FASTCORESET_CORE_CORESET_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// A weighted compression Ω of a dataset P. For sampling-based methods the
/// rows of `points` are rows of P and `indices` records which; methods that
/// synthesize representatives (BICO CF centroids, Algorithm 1's optional
/// center-correction points) use kSyntheticIndex instead.
struct Coreset {
  /// Sentinel for rows not present in the source dataset.
  static constexpr size_t kSyntheticIndex = std::numeric_limits<size_t>::max();

  std::vector<size_t> indices;  ///< Source row per coreset row (or sentinel).
  Matrix points;                ///< m x d coreset points.
  std::vector<double> weights;  ///< m non-negative weights.

  size_t size() const { return points.rows(); }

  /// Sum of the weights (should concentrate around the source total).
  /// Kahan-compensated: coreset weights routinely mix magnitudes (a heavy
  /// synthetic center next to light sampled points), where naive
  /// left-to-right summation silently drops the small terms.
  double TotalWeight() const {
    double total = 0.0;
    double compensation = 0.0;
    for (double w : weights) {
      const double y = w - compensation;
      const double t = total + y;
      compensation = (t - total) - y;
      total = t;
    }
    return total;
  }
};

/// Black-box compression procedure used for streaming composition: maps a
/// (weighted) point set and a target size to a coreset. All samplers in
/// src/core can be wrapped into this signature.
using CoresetBuilder = std::function<Coreset(
    const Matrix& points, const std::vector<double>& weights, size_t m,
    Rng& rng)>;

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_CORESET_H_
