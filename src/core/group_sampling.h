// Group sampling (Cohen-Addad, Saulpic, Schwiegelshohn, STOC'21): the
// coreset construction with optimal size Õ(k ε^{-z-2}) — a factor ε^{-z}
// smaller than sensitivity sampling.
//
// The paper under reproduction cites it (Fact 3.1 uses its guarantee) but
// excludes it from experiments because the original is a theoretical
// device layered on sensitivity sampling. We implement the practical core
// of the idea as an extension:
//
//   Given an approximate solution with clusters C_i and per-cluster
//   average cost Δ_i = cost(C_i) / W(C_i):
//   1. *Close* points — cost(p) <= (ε/8)^z Δ_i — are represented by their
//      center: each cluster contributes one synthetic representative at
//      its center carrying the close points' total weight. (Moving a
//      close point to its center perturbs any solution's cost by at most
//      an ε-fraction of the cluster's average cost.)
//   2. *Outer* points — cost(p) >= (8/ε)^z Δ_i — carry so much individual
//      cost that they are importance-sampled proportional to cost.
//   3. *Middle* points are partitioned into rings R_j (cost within
//      [2^j Δ_i, 2^{j+1} Δ_i)). Costs inside a ring agree within a factor
//      2, so sampling *uniformly by weight within each ring* has bounded
//      variance; each ring's sampling budget is proportional to its total
//      cost. This is the "group" structure: variance control through cost
//      homogeneity instead of per-point importance.
//
// All three parts use unbiased weights, so cost estimates remain unbiased.

#ifndef FASTCORESET_CORE_GROUP_SAMPLING_H_
#define FASTCORESET_CORE_GROUP_SAMPLING_H_

#include "src/clustering/types.h"
#include "src/core/coreset.h"

namespace fastcoreset {

/// Options for group sampling.
struct GroupSamplingOptions {
  size_t k = 100;    ///< Clusters of the internal candidate solution.
  size_t m = 0;      ///< Total coreset budget; 0 picks 40 * k.
  int z = 2;         ///< 1 = k-median, 2 = k-means.
  double eps = 0.5;  ///< Ring-threshold parameter.
};

/// Builds a group-sampling coreset using a fresh k-means++ candidate
/// solution. Close points surface as synthetic center representatives
/// (indices = Coreset::kSyntheticIndex).
Coreset GroupSamplingCoreset(const Matrix& points,
                             const std::vector<double>& weights,
                             const GroupSamplingOptions& options, Rng& rng);

/// Variant reusing a precomputed solution with assignments.
Coreset GroupSamplingFromSolution(const Matrix& points,
                                  const std::vector<double>& weights,
                                  const Clustering& solution,
                                  const GroupSamplingOptions& options,
                                  Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_GROUP_SAMPLING_H_
