// Uniform sampling: the fastest compression (sublinear — it never reads
// points it does not sample) and the weakest one (no worst-case accuracy:
// a missed outlier cluster breaks it, as Tables 2 and 4 show on the
// Taxi-like and Star-like datasets).

#ifndef FASTCORESET_CORE_UNIFORM_SAMPLING_H_
#define FASTCORESET_CORE_UNIFORM_SAMPLING_H_

#include "src/core/coreset.h"

namespace fastcoreset {

/// Uniform coreset of size m. Unweighted inputs sample without replacement
/// with weight n/m per point (the paper's setup); weighted inputs sample
/// with replacement proportional to the weights, each draw carrying weight
/// W/m, with duplicates merged (the natural weighted generalization used
/// when composing in a stream).
Coreset UniformSamplingCoreset(const Matrix& points,
                               const std::vector<double>& weights, size_t m,
                               Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_UNIFORM_SAMPLING_H_
