// Deprecated shims (see samplers.h). The switch dispatches to the same
// per-method entry points the facade's registry adapters call, with the
// same rng-consumption order — that is what keeps the two paths
// bit-identical at equal seeds during the deprecation window.

#include "src/core/samplers.h"

#include "src/core/lightweight_coreset.h"
#include "src/core/sensitivity_sampling.h"
#include "src/core/uniform_sampling.h"
#include "src/core/welterweight_coreset.h"

namespace fastcoreset {

namespace {

/// Non-deprecated body shared by both shims (so the library itself builds
/// without deprecation warnings).
Coreset BuildCoresetImpl(SamplerKind kind, const Matrix& points,
                         const std::vector<double>& weights, size_t k,
                         size_t m, int z, Rng& rng, size_t j) {
  switch (kind) {
    case SamplerKind::kUniform:
      return UniformSamplingCoreset(points, weights, m, rng);
    case SamplerKind::kLightweight:
      return LightweightCoreset(points, weights, m, z, rng);
    case SamplerKind::kWelterweight:
      return WelterweightCoreset(points, weights, k, j, m, z, rng);
    case SamplerKind::kSensitivity:
      return SensitivitySamplingCoreset(points, weights, k, m, z, rng);
    case SamplerKind::kFastCoreset: {
      FastCoresetOptions options;
      options.k = k;
      options.m = m;
      options.z = z;
      return FastCoreset(points, weights, options, rng);
    }
  }
  FC_CHECK_MSG(false, "unreachable sampler kind");
  return Coreset{};
}

}  // namespace

std::string SamplerName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kUniform:
      return "Uniform";
    case SamplerKind::kLightweight:
      return "Lightweight";
    case SamplerKind::kWelterweight:
      return "Welterweight";
    case SamplerKind::kSensitivity:
      return "Sensitivity";
    case SamplerKind::kFastCoreset:
      return "FastCoreset";
  }
  return "Unknown";
}

std::vector<SamplerKind> AllSamplers() {
  return {SamplerKind::kUniform, SamplerKind::kLightweight,
          SamplerKind::kWelterweight, SamplerKind::kSensitivity,
          SamplerKind::kFastCoreset};
}

Coreset BuildCoreset(SamplerKind kind, const Matrix& points,
                     const std::vector<double>& weights, size_t k, size_t m,
                     int z, Rng& rng, size_t j) {
  return BuildCoresetImpl(kind, points, weights, k, m, z, rng, j);
}

CoresetBuilder MakeCoresetBuilder(SamplerKind kind, size_t k, int z,
                                  size_t j) {
  return [kind, k, z, j](const Matrix& points,
                         const std::vector<double>& weights, size_t m,
                         Rng& rng) {
    return BuildCoresetImpl(kind, points, weights, k, m, z, rng, j);
  };
}

}  // namespace fastcoreset
