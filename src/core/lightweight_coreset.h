// Lightweight coresets (Bachem, Lucic, Krause, KDD'18): sensitivity
// sampling against the 1-means solution (the dataset mean). O(nd), but the
// guarantee is additive — ε * cost(P, {μ}) — so small clusters near the
// center of mass can be missed entirely (Figure 3 of the paper).

#ifndef FASTCORESET_CORE_LIGHTWEIGHT_CORESET_H_
#define FASTCORESET_CORE_LIGHTWEIGHT_CORESET_H_

#include "src/core/coreset.h"

namespace fastcoreset {

/// Lightweight coreset of size m for exponent z (2 = k-means as in the
/// original paper; z = 1 uses distances to the mean). Importances are
/// 1/2 * w_p / W + 1/2 * w_p dist^z(p, μ) / cost(P, {μ}).
Coreset LightweightCoreset(const Matrix& points,
                           const std::vector<double>& weights, size_t m,
                           int z, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_LIGHTWEIGHT_CORESET_H_
