#include "src/core/uniform_sampling.h"

#include <algorithm>

#include "src/core/importance.h"

namespace fastcoreset {

Coreset UniformSamplingCoreset(const Matrix& points,
                               const std::vector<double>& weights, size_t m,
                               Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(m, 0u);

  if (!weights.empty()) {
    ImportanceScores scores;
    scores.sigma = weights;
    for (double w : weights) scores.total += w;
    return SampleByImportance(points, weights, scores, m, rng);
  }

  Coreset coreset;
  if (m >= n) {
    coreset.indices.resize(n);
    for (size_t i = 0; i < n; ++i) coreset.indices[i] = i;
    coreset.points = points;
    coreset.weights.assign(n, 1.0);
    return coreset;
  }
  coreset.indices = rng.SampleWithoutReplacement(n, m);
  std::sort(coreset.indices.begin(), coreset.indices.end());
  coreset.points = points.SelectRows(coreset.indices);
  coreset.weights.assign(m, static_cast<double>(n) / static_cast<double>(m));
  return coreset;
}

}  // namespace fastcoreset
