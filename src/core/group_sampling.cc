#include "src/core/group_sampling.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/clustering/kmeans_plus_plus.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

/// Draws `budget` points from `pool` proportional to `mass` (parallel to
/// pool), merging duplicates. Each draw of pool[r] carries weight
/// w_p * total_mass / (budget * mass[r]) — the unbiased inverse-probability
/// weight. Appends to the coreset.
void SampleFromPool(const Matrix& points, const std::vector<double>& weights,
                    const std::vector<size_t>& pool,
                    const std::vector<double>& mass, size_t budget, Rng& rng,
                    Coreset* coreset) {
  if (pool.empty() || budget == 0) return;
  double total = 0.0;
  for (double x : mass) total += x;
  if (total <= 0.0) return;

  std::map<size_t, size_t> hits;  // pool position -> draw count.
  for (size_t draw = 0; draw < budget; ++draw) {
    double target = rng.NextDouble() * total;
    size_t position = pool.size() - 1;
    for (size_t r = 0; r < pool.size(); ++r) {
      target -= mass[r];
      if (target <= 0.0) {
        position = r;
        break;
      }
    }
    ++hits[position];
  }

  Matrix rows(hits.size(), points.cols());
  size_t out = 0;
  for (const auto& [position, count] : hits) {
    const size_t idx = pool[position];
    rows.CopyRowFrom(points, idx, out++);
    coreset->indices.push_back(idx);
    coreset->weights.push_back(static_cast<double>(count) *
                               WeightAt(weights, idx) * total /
                               (static_cast<double>(budget) *
                                mass[position]));
  }
  coreset->points.AppendRows(rows);
}

}  // namespace

Coreset GroupSamplingCoreset(const Matrix& points,
                             const std::vector<double>& weights,
                             const GroupSamplingOptions& options, Rng& rng) {
  const Clustering solution =
      KMeansPlusPlus(points, weights, options.k, options.z, rng);
  return GroupSamplingFromSolution(points, weights, solution, options, rng);
}

Coreset GroupSamplingFromSolution(const Matrix& points,
                                  const std::vector<double>& weights,
                                  const Clustering& solution,
                                  const GroupSamplingOptions& options,
                                  Rng& rng) {
  const size_t n = points.rows();
  const size_t clusters = solution.centers.rows();
  FC_CHECK_EQ(solution.assignment.size(), n);
  FC_CHECK(options.z == 1 || options.z == 2);
  FC_CHECK_GT(options.eps, 0.0);
  FC_CHECK_LT(options.eps, 8.0);
  const size_t m = options.m == 0 ? 40 * options.k : options.m;

  // Per-cluster statistics under the provided assignment.
  std::vector<double> cluster_cost(clusters, 0.0);
  std::vector<double> cluster_weight(clusters, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double w = WeightAt(weights, i);
    cluster_cost[solution.assignment[i]] += w * solution.point_costs[i];
    cluster_weight[solution.assignment[i]] += w;
  }

  const double z = static_cast<double>(options.z);
  const double close_factor = std::pow(options.eps / 8.0, z);
  const double outer_factor = std::pow(8.0 / options.eps, z);
  const int j_min = static_cast<int>(std::floor(std::log2(close_factor)));
  const int j_max = static_cast<int>(std::ceil(std::log2(outer_factor)));

  // Partition points: close -> per-cluster representative; outer -> one
  // importance pool; middle -> per-ring pools. Pool masses are
  // *cluster-normalized* costs w_p cost(p) / cost(C_p): within a ring a
  // cluster's points have comparable masses (the group-sampling
  // homogeneity), and across clusters every cluster contributes mass
  // proportional to the *fraction* of its own cost in the ring — so a
  // cheap-but-important cluster (e.g. a tight far-away outlier cluster)
  // still receives its fair share of the sampling budget.
  std::vector<double> close_weight(clusters, 0.0);
  std::vector<size_t> outer_pool;
  std::vector<double> outer_mass;
  double outer_mass_total = 0.0;
  std::map<int, std::vector<size_t>> rings;
  for (size_t i = 0; i < n; ++i) {
    const size_t c = solution.assignment[i];
    const double w = WeightAt(weights, i);
    const double avg =
        cluster_weight[c] > 0.0 ? cluster_cost[c] / cluster_weight[c] : 0.0;
    const double cost = solution.point_costs[i];
    if (avg <= 0.0 || cost <= close_factor * avg) {
      close_weight[c] += w;
      continue;
    }
    if (cost >= outer_factor * avg) {
      outer_pool.push_back(i);
      outer_mass.push_back(w * cost / cluster_cost[c]);
      outer_mass_total += outer_mass.back();
      continue;
    }
    int j = static_cast<int>(std::floor(std::log2(cost / avg)));
    j = std::clamp(j, j_min, j_max);
    rings[j].push_back(i);
  }

  Coreset coreset;
  coreset.points = Matrix(0, points.cols());

  // Close points: one synthetic representative per cluster at the center.
  {
    Matrix reps(0, points.cols());
    for (size_t c = 0; c < clusters; ++c) {
      if (close_weight[c] <= 0.0) continue;
      Matrix one(1, points.cols());
      one.CopyRowFrom(solution.centers, c, 0);
      reps.AppendRows(one);
      coreset.indices.push_back(Coreset::kSyntheticIndex);
      coreset.weights.push_back(close_weight[c]);
    }
    coreset.points.AppendRows(reps);
  }

  // Budget split proportional to normalized pool mass (each nonempty pool
  // gets at least one draw).
  std::vector<double> ring_mass_total;
  std::vector<std::vector<double>> ring_mass;
  std::vector<const std::vector<size_t>*> ring_pools;
  for (const auto& [j, pool] : rings) {
    (void)j;
    std::vector<double> mass;
    mass.reserve(pool.size());
    double total = 0.0;
    for (size_t idx : pool) {
      const size_t c = solution.assignment[idx];
      mass.push_back(WeightAt(weights, idx) * solution.point_costs[idx] /
                     cluster_cost[c]);
      total += mass.back();
    }
    ring_mass.push_back(std::move(mass));
    ring_mass_total.push_back(total);
    ring_pools.push_back(&pool);
  }
  double sampled_mass_total = outer_mass_total;
  for (double rm : ring_mass_total) sampled_mass_total += rm;

  if (sampled_mass_total > 0.0) {
    auto budget_for = [&](double mass_share) {
      return std::max<size_t>(
          1, static_cast<size_t>(std::llround(
                 static_cast<double>(m) * mass_share / sampled_mass_total)));
    };
    if (!outer_pool.empty()) {
      SampleFromPool(points, weights, outer_pool, outer_mass,
                     budget_for(outer_mass_total), rng, &coreset);
    }
    for (size_t g = 0; g < ring_pools.size(); ++g) {
      SampleFromPool(points, weights, *ring_pools[g], ring_mass[g],
                     budget_for(ring_mass_total[g]), rng, &coreset);
    }
  }
  return coreset;
}

}  // namespace fastcoreset
