// Fast-Coreset (Algorithm 1): the paper's headline Õ(nd) strong-coreset
// construction for k-means and k-median.
//
// Pipeline:
//   1. Johnson-Lindenstrauss embed P into Õ(log k) dimensions.
//   2. Seed an O(polylog k)-approximate solution *with assignments* using
//      Fast-kmeans++ (quadtree D^z sampling) — Õ(nd log Δ).
//   2b. (optional, Section 4) Crude-Approx + Reduce-Spread first, which
//      caps the effective spread at poly(n, d, log Δ) and turns the log Δ
//      factor into log log Δ (Theorem 4.6).
//   3. Refine each cluster's center to its 1-mean / 1-median in the
//      *original* space and compute the sensitivities of eq. (1) there.
//   4. Importance-sample m points; weight them unbiasedly (optionally add
//      the (1+ε)|C_i| − |Ĉ_i| center-correction of lines 7–8).
//
// The result is an ε-coreset of size m = Õ(k ε^{-2z-2}) computed in time
// Õ(nd) — within log factors of reading the input (Corollary 3.2).

#ifndef FASTCORESET_CORE_FAST_CORESET_H_
#define FASTCORESET_CORE_FAST_CORESET_H_

#include "src/clustering/fast_kmeans_plus_plus.h"
#include "src/core/coreset.h"

namespace fastcoreset {

/// Which algorithm supplies the approximate solution of step 2.
enum class FastCoresetSeeder {
  kFastKMeansPlusPlus,  ///< Quadtree D^z sampling (the paper's default).
  kTreeGreedy,          ///< HST top-down greedy (Section 8.4 extension).
};

/// Options for FastCoreset.
struct FastCoresetOptions {
  size_t k = 100;  ///< Number of clusters the coreset must support.
  size_t m = 0;    ///< Coreset size; 0 picks 40 * k (the paper's default).
  int z = 2;       ///< 1 = k-median, 2 = k-means.

  /// JL projection before seeding (skipped when the input dimension is
  /// already at most the target O(log k / jl_eps^2)).
  bool use_jl = true;
  double jl_eps = 0.7;

  /// Run Crude-Approx + Reduce-Spread before seeding (Section 4). Off by
  /// default: it only pays off on inputs with genuinely huge spread.
  bool use_spread_reduction = false;

  /// Append per-cluster center-correction points (Algorithm 1 lines 7–8).
  bool center_correction = false;
  double correction_eps = 0.1;

  /// Seeding algorithm for the approximate solution.
  FastCoresetSeeder seeder = FastCoresetSeeder::kFastKMeansPlusPlus;

  /// Seeding knobs forwarded to Fast-kmeans++ (z is overridden).
  FastKMeansPlusPlusOptions seeding;
};

/// Per-stage wall-clock of one FastCoreset run, for the facade's build
/// diagnostics (src/api/diagnostics.h). Timing never touches the rng, so
/// collecting it cannot perturb the sampled coreset.
struct FastCoresetStageTimes {
  double jl_seconds = 0.0;           ///< Step 1 (0 when skipped).
  double spread_seconds = 0.0;       ///< Step 2b (0 when off).
  double seeding_seconds = 0.0;      ///< Step 2.
  double sensitivity_seconds = 0.0;  ///< Step 3 (refine + eq. (1)).
  double sampling_seconds = 0.0;     ///< Step 4 (+ center correction).
  size_t seed_dims = 0;              ///< Dimensions the seeder ran in.
};

/// Builds a Fast-Coreset of `points` (optionally weighted). The coreset's
/// rows are rows of `points` (plus synthetic correction points if enabled).
/// `stage_times`, when non-null, receives the per-stage breakdown.
Coreset FastCoreset(const Matrix& points, const std::vector<double>& weights,
                    const FastCoresetOptions& options, Rng& rng,
                    FastCoresetStageTimes* stage_times = nullptr);

/// Algorithm 1 steps 3–5 in isolation: given any assignment of the points
/// into `num_clusters` groups, refine each group's center to its 1-mean
/// (z = 2) or 1-median (z = 1) in the space of `points`, compute the
/// eq.-(1) sensitivities and importance-sample m points. Exposed so
/// alternative seeders and the iterative construction (Section 8.4) can
/// reuse the sampling tail.
Coreset CoresetFromAssignment(const Matrix& points,
                              const std::vector<double>& weights,
                              const std::vector<size_t>& assignment,
                              size_t num_clusters, size_t m, int z,
                              Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_FAST_CORESET_H_
