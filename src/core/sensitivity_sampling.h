// Standard sensitivity sampling (Feldman-Langberg / Langberg-Schulman):
// seed a full k-center candidate solution with k-means++ (O(nkd) — the
// runtime bottleneck Fast-Coresets remove), then importance-sample.
// This is the paper's accuracy baseline (the "recommended coreset method"
// of Schwiegelshohn & Sheikh-Omar, ESA'22).

#ifndef FASTCORESET_CORE_SENSITIVITY_SAMPLING_H_
#define FASTCORESET_CORE_SENSITIVITY_SAMPLING_H_

#include "src/clustering/types.h"
#include "src/core/coreset.h"

namespace fastcoreset {

/// Sensitivity-sampling coreset of size m supporting k clusters under
/// exponent z. Runs k-means++/k-median++ internally (O(nkd)).
Coreset SensitivitySamplingCoreset(const Matrix& points,
                                   const std::vector<double>& weights,
                                   size_t k, size_t m, int z, Rng& rng);

/// Variant that reuses a precomputed candidate solution (any clustering
/// with assignments); this is the common tail of all j-center samplers.
Coreset SensitivitySamplingFromSolution(const Matrix& points,
                                        const std::vector<double>& weights,
                                        const Clustering& solution, size_t m,
                                        Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_SENSITIVITY_SAMPLING_H_
