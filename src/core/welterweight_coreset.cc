#include "src/core/welterweight_coreset.h"

#include <cmath>

#include "src/clustering/kmeans_plus_plus.h"
#include "src/core/sensitivity_sampling.h"

namespace fastcoreset {

size_t DefaultWelterweightJ(size_t k) {
  const double lg = std::log2(static_cast<double>(k < 2 ? 2 : k));
  return static_cast<size_t>(std::ceil(lg));
}

Coreset WelterweightCoreset(const Matrix& points,
                            const std::vector<double>& weights, size_t k,
                            size_t j, size_t m, int z, Rng& rng) {
  if (j == 0) j = DefaultWelterweightJ(k);
  const Clustering solution = KMeansPlusPlus(points, weights, j, z, rng);
  return SensitivitySamplingFromSolution(points, weights, solution, m, rng);
}

}  // namespace fastcoreset
