// Sensitivity (importance) scores and importance sampling — the shared
// machinery behind lightweight, welterweight, standard-sensitivity and
// Fast-Coreset constructions.
//
// Given an α-approximate solution C with assignment σ, the importance of a
// point (eq. 1, Feldman-Langberg) in the weighted generalization is
//   σ_C(p) = w_p * cost(p, C_p) / cost(C_p, c_p)  +  w_p / W(C_p),
// where C_p is p's cluster, c_p its center and W(C_p) the cluster's weight.
// Sampling m points proportional to σ_C with weights
// w'_p = w_p * (Σ σ) / (m σ_C(p)) yields an unbiased cost estimator, and a
// strong coreset once m = Õ(k ε^{-2z-2}) (Fact 3.1).

#ifndef FASTCORESET_CORE_IMPORTANCE_H_
#define FASTCORESET_CORE_IMPORTANCE_H_

#include <vector>

#include "src/clustering/types.h"
#include "src/core/coreset.h"

namespace fastcoreset {

/// Per-point importance scores (unnormalized sampling distribution).
struct ImportanceScores {
  std::vector<double> sigma;
  double total = 0.0;
};

/// Computes the weighted sensitivity upper bounds of eq. (1) for the
/// solution (`centers`, `assignment`) under exponent z. `weights` may be
/// empty. Costs are evaluated in the space of `points` — Algorithm 1
/// evaluates them in the *original* space even when the solution was found
/// on a projected/spread-reduced proxy.
ImportanceScores ComputeSensitivities(const Matrix& points,
                                      const std::vector<double>& weights,
                                      const std::vector<size_t>& assignment,
                                      const Matrix& centers, int z);

/// Draws m points with replacement proportional to `scores`, merging
/// repeated draws by summing their weights. Weight of a draw of p is
/// w_p * total / (m * sigma_p), making the coreset cost estimator unbiased.
Coreset SampleByImportance(const Matrix& points,
                           const std::vector<double>& weights,
                           const ImportanceScores& scores, size_t m,
                           Rng& rng);

/// Optional debiasing of Algorithm 1 (lines 7–8): appends each cluster
/// center to the coreset with weight max(0, (1+eps) W_i - Ŵ_i), where Ŵ_i
/// is the sampled weight that landed in cluster i, so that per-cluster
/// weights are preserved (up to 1+eps) rather than just unbiased.
void ApplyCenterCorrection(const Matrix& points,
                           const std::vector<double>& weights,
                           const std::vector<size_t>& assignment,
                           const Matrix& centers, double eps,
                           Coreset* coreset);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_IMPORTANCE_H_
