#include "src/core/lightweight_coreset.h"

#include "src/core/importance.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

Coreset LightweightCoreset(const Matrix& points,
                           const std::vector<double>& weights, size_t m,
                           int z, Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_GT(n, 0u);
  FC_CHECK(z == 1 || z == 2);

  // The 1-means solution: every point is assigned to the mean. Reuse the
  // generic sensitivity machinery with a single-cluster assignment.
  Matrix mean(1, points.cols());
  const std::vector<double> mu = [&] {
    if (weights.empty()) return points.ColumnMeans();
    std::vector<double> acc(points.cols(), 0.0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += weights[i];
      const auto row = points.Row(i);
      for (size_t j = 0; j < points.cols(); ++j) acc[j] += weights[i] * row[j];
    }
    FC_CHECK_GT(total, 0.0);
    for (double& x : acc) x /= total;
    return acc;
  }();
  for (size_t j = 0; j < points.cols(); ++j) mean.At(0, j) = mu[j];

  const std::vector<size_t> assignment(n, 0);
  ImportanceScores scores =
      ComputeSensitivities(points, weights, assignment, mean, z);
  return SampleByImportance(points, weights, scores, m, rng);
}

}  // namespace fastcoreset
