#include "src/core/fast_coreset.h"

#include <vector>

#include "src/clustering/kmedian.h"
#include "src/clustering/tree_greedy.h"
#include "src/common/timer.h"
#include "src/core/importance.h"
#include "src/geometry/jl_projection.h"
#include "src/spread/crude_approx.h"
#include "src/spread/reduce_spread.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

/// Step 3: replace every cluster's seeded center by its 1-mean (z = 2) or
/// 1-median (z = 1) over the cluster's points in the given space.
Matrix RefineCenters(const Matrix& points, const std::vector<double>& weights,
                     const std::vector<size_t>& assignment, size_t k, int z) {
  std::vector<std::vector<size_t>> members(k);
  for (size_t i = 0; i < points.rows(); ++i) {
    members[assignment[i]].push_back(i);
  }
  Matrix centers(k, points.cols());
  for (size_t c = 0; c < k; ++c) {
    if (members[c].empty()) continue;  // Row of zeros; cluster is unused.
    if (z == 2) {
      double total = 0.0;
      auto center = centers.Row(c);
      for (size_t idx : members[c]) {
        const double w = WeightAt(weights, idx);
        total += w;
        const auto row = points.Row(idx);
        for (size_t j = 0; j < points.cols(); ++j) center[j] += w * row[j];
      }
      if (total > 0.0) {
        for (size_t j = 0; j < points.cols(); ++j) center[j] /= total;
      }
    } else {
      const std::vector<double> median =
          GeometricMedian(points, weights, members[c]);
      auto center = centers.Row(c);
      for (size_t j = 0; j < points.cols(); ++j) center[j] = median[j];
    }
  }
  return centers;
}

}  // namespace

Coreset FastCoreset(const Matrix& points, const std::vector<double>& weights,
                    const FastCoresetOptions& options, Rng& rng,
                    FastCoresetStageTimes* stage_times) {
  FC_CHECK_GT(points.rows(), 0u);
  FC_CHECK_GT(options.k, 0u);
  FC_CHECK(options.z == 1 || options.z == 2);
  const size_t m = options.m == 0 ? 40 * options.k : options.m;
  Timer stage_timer;

  // Step 1: dimension reduction. The seeding runs on the proxy; all costs
  // and sampled points come from the original space.
  const Matrix* seed_space = &points;
  Matrix projected;
  if (options.use_jl) {
    const size_t target =
        JlTargetDim(options.k, options.jl_eps, points.cols());
    if (target < points.cols()) {
      projected = JlProject(points, target, rng);
      seed_space = &projected;
    }
  }
  if (stage_times != nullptr) {
    stage_times->jl_seconds = stage_timer.Seconds();
    stage_timer.Reset();
  }

  // Step 2b (optional): spread reduction on the seeding proxy. Rows of the
  // reduced set correspond 1:1 to input rows, so assignments carry over.
  Matrix reduced;
  if (options.use_spread_reduction) {
    const CrudeApproxResult crude = CrudeApprox(*seed_space, options.k, rng);
    if (crude.upper_bound > 0.0) {
      SpreadReduction reduction =
          ReduceSpread(*seed_space, crude.upper_bound, 64.0, rng);
      reduced = std::move(reduction.points);
      seed_space = &reduced;
    }
  }
  if (stage_times != nullptr) {
    stage_times->spread_seconds = stage_timer.Seconds();
    stage_times->seed_dims = seed_space->cols();
    stage_timer.Reset();
  }

  // Step 2: seed an approximate solution with assignments.
  Clustering solution;
  if (options.seeder == FastCoresetSeeder::kTreeGreedy) {
    TreeGreedyOptions greedy;
    greedy.z = options.z;
    greedy.max_depth = options.seeding.max_depth;
    solution = TreeGreedySeeding(*seed_space, weights, options.k, greedy, rng);
  } else {
    FastKMeansPlusPlusOptions seeding = options.seeding;
    seeding.z = options.z;
    solution = FastKMeansPlusPlus(*seed_space, weights, options.k, seeding,
                                  rng);
  }
  if (stage_times != nullptr) {
    stage_times->seeding_seconds = stage_timer.Seconds();
    stage_timer.Reset();
  }

  // Step 3: refine centers and evaluate sensitivities in the original
  // space (the assignment is reused; only the cost geometry changes).
  const Matrix centers =
      RefineCenters(points, weights, solution.assignment,
                    solution.centers.rows(), options.z);
  const ImportanceScores scores = ComputeSensitivities(
      points, weights, solution.assignment, centers, options.z);
  if (stage_times != nullptr) {
    stage_times->sensitivity_seconds = stage_timer.Seconds();
    stage_timer.Reset();
  }

  // Step 4: importance-sample and weight.
  Coreset coreset = SampleByImportance(points, weights, scores, m, rng);
  if (options.center_correction) {
    ApplyCenterCorrection(points, weights, solution.assignment, centers,
                          options.correction_eps, &coreset);
  }
  if (stage_times != nullptr) {
    stage_times->sampling_seconds = stage_timer.Seconds();
  }
  return coreset;
}

Coreset CoresetFromAssignment(const Matrix& points,
                              const std::vector<double>& weights,
                              const std::vector<size_t>& assignment,
                              size_t num_clusters, size_t m, int z,
                              Rng& rng) {
  FC_CHECK_EQ(assignment.size(), points.rows());
  FC_CHECK_GT(num_clusters, 0u);
  FC_CHECK_GT(m, 0u);
  const Matrix centers =
      RefineCenters(points, weights, assignment, num_clusters, z);
  const ImportanceScores scores =
      ComputeSensitivities(points, weights, assignment, centers, z);
  return SampleByImportance(points, weights, scores, m, rng);
}

}  // namespace fastcoreset
