// Iterative Fast-Coreset (Section 8.4 / Braverman, Jiang, Krauthgamer,
// Wu SODA'21): Algorithm 1's coreset size depends linearly on the quality
// of its seed solution. Iterating shrinks that dependency:
//
//   round 0: Fast-Coreset from the O(polylog) seed (standard Algorithm 1);
//   round i: solve k-means/k-median on the *coreset* (cheap — the coreset
//            is small), re-assign the full dataset to the improved
//            solution via the quadtree (TreeAssign, Õ(nd) — never O(nkd)),
//            and re-run the sampling tail (steps 3–5) with the better
//            sensitivities.
//
// Each round improves the candidate solution from polylog-approximate
// toward O(1)-approximate, which is what the near-optimal coreset size of
// Fact 3.1 requires; the paper notes only an O(log* n) number of rounds
// is ever needed.

#ifndef FASTCORESET_CORE_ITERATIVE_CORESET_H_
#define FASTCORESET_CORE_ITERATIVE_CORESET_H_

#include "src/core/fast_coreset.h"

namespace fastcoreset {

/// Options for the iterative construction.
struct IterativeCoresetOptions {
  FastCoresetOptions base;  ///< Round-0 Fast-Coreset configuration.
  int rounds = 2;           ///< Total rounds (1 = plain Fast-Coreset).
  int refine_iters = 5;     ///< Lloyd / k-median steps on the coreset.
};

/// Runs `rounds` rounds of coreset -> solve-on-coreset -> tree-reassign ->
/// resample. Returns the final coreset (rows of `points`).
Coreset IterativeFastCoreset(const Matrix& points,
                             const std::vector<double>& weights,
                             const IterativeCoresetOptions& options,
                             Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_ITERATIVE_CORESET_H_
