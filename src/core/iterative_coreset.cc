#include "src/core/iterative_coreset.h"

#include "src/clustering/kmeans_plus_plus.h"
#include "src/clustering/kmedian.h"
#include "src/clustering/lloyd.h"
#include "src/clustering/tree_assign.h"

namespace fastcoreset {

Coreset IterativeFastCoreset(const Matrix& points,
                             const std::vector<double>& weights,
                             const IterativeCoresetOptions& options,
                             Rng& rng) {
  FC_CHECK_GE(options.rounds, 1);
  const size_t k = options.base.k;
  const int z = options.base.z;
  const size_t m = options.base.m == 0 ? 40 * k : options.base.m;

  Coreset coreset = FastCoreset(points, weights, options.base, rng);
  for (int round = 1; round < options.rounds; ++round) {
    // Improve the candidate solution on the compressed data only.
    const Clustering seed =
        KMeansPlusPlus(coreset.points, coreset.weights, k, z, rng);
    Matrix improved_centers;
    if (z == 2) {
      LloydOptions lloyd;
      lloyd.max_iters = options.refine_iters;
      improved_centers =
          LloydKMeans(coreset.points, coreset.weights, seed.centers, lloyd)
              .centers;
    } else {
      improved_centers = LloydKMedian(coreset.points, coreset.weights,
                                      seed.centers, options.refine_iters)
                             .centers;
    }

    // Re-assign the full dataset in Õ(nd) via the quadtree, then re-run
    // Algorithm 1's sampling tail against the improved sensitivities.
    const Clustering assignment = TreeAssign(
        points, weights, improved_centers, z, rng,
        options.base.seeding.max_depth);
    coreset = CoresetFromAssignment(points, weights, assignment.assignment,
                                    improved_centers.rows(), m, z, rng);
  }
  return coreset;
}

}  // namespace fastcoreset
