// Welterweight coresets: the paper's interpolation knob between uniform
// sampling and full sensitivity sampling. Importances come from a j-center
// candidate solution with 1 <= j <= k: j = 1 recovers lightweight
// coresets, j = k recovers standard sensitivity sampling, and intermediate
// j trades O(njd) seeding time against robustness to cluster imbalance
// (Table 7: larger γ imbalance needs larger j).

#ifndef FASTCORESET_CORE_WELTERWEIGHT_CORESET_H_
#define FASTCORESET_CORE_WELTERWEIGHT_CORESET_H_

#include "src/core/coreset.h"

namespace fastcoreset {

/// Welterweight coreset of size m using a j-means++ candidate solution.
/// `j` = 0 picks the paper's default j = ceil(log2 k). `k` is only used
/// for that default.
Coreset WelterweightCoreset(const Matrix& points,
                            const std::vector<double>& weights, size_t k,
                            size_t j, size_t m, int z, Rng& rng);

/// The paper's default candidate-solution size: ceil(log2 k), at least 1.
size_t DefaultWelterweightJ(size_t k);

}  // namespace fastcoreset

#endif  // FASTCORESET_CORE_WELTERWEIGHT_CORESET_H_
