#include "src/core/sensitivity_sampling.h"

#include "src/clustering/kmeans_plus_plus.h"
#include "src/core/importance.h"

namespace fastcoreset {

Coreset SensitivitySamplingCoreset(const Matrix& points,
                                   const std::vector<double>& weights,
                                   size_t k, size_t m, int z, Rng& rng) {
  const Clustering solution = KMeansPlusPlus(points, weights, k, z, rng);
  return SensitivitySamplingFromSolution(points, weights, solution, m, rng);
}

Coreset SensitivitySamplingFromSolution(const Matrix& points,
                                        const std::vector<double>& weights,
                                        const Clustering& solution, size_t m,
                                        Rng& rng) {
  const ImportanceScores scores = ComputeSensitivities(
      points, weights, solution.assignment, solution.centers, solution.z);
  return SampleByImportance(points, weights, scores, m, rng);
}

}  // namespace fastcoreset
