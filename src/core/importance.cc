#include "src/core/importance.h"

#include <cmath>
#include <map>

#include "src/common/discrete_distribution.h"
#include "src/common/parallel.h"
#include "src/geometry/distance.h"

namespace fastcoreset {

namespace {

double WeightAt(const std::vector<double>& weights, size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

}  // namespace

ImportanceScores ComputeSensitivities(const Matrix& points,
                                      const std::vector<double>& weights,
                                      const std::vector<size_t>& assignment,
                                      const Matrix& centers, int z) {
  const size_t n = points.rows();
  const size_t k = centers.rows();
  FC_CHECK_EQ(assignment.size(), n);
  FC_CHECK(z == 1 || z == 2);
  FC_CHECK(weights.empty() || weights.size() == n);

  // The O(nd) distance pass runs on the parallel substrate; the O(n)
  // cluster accumulations stay serial so their summation order (and thus
  // every downstream sampling decision) is thread-invariant.
  std::vector<double> point_cost(n);
  ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const size_t c = assignment[i];
      FC_DCHECK(c < k);
      point_cost[i] = DistPow(points.Row(i), centers.Row(c), z);
    }
  });
  std::vector<double> cluster_cost(k, 0.0);
  std::vector<double> cluster_weight(k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = assignment[i];
    const double w = WeightAt(weights, i);
    cluster_cost[c] += w * point_cost[i];
    cluster_weight[c] += w;
  }

  ImportanceScores scores;
  scores.sigma.resize(n);
  scores.total = ParallelReduce(n, [&](size_t begin, size_t end) {
    double partial = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const size_t c = assignment[i];
      const double w = WeightAt(weights, i);
      double sigma = 0.0;
      if (cluster_cost[c] > 0.0) sigma += w * point_cost[i] / cluster_cost[c];
      // cluster_weight > 0 because point i itself belongs to the cluster
      // (w may be 0 for zero-weight points; then sigma is 0, correctly).
      if (cluster_weight[c] > 0.0) sigma += w / cluster_weight[c];
      scores.sigma[i] = sigma;
      partial += sigma;
    }
    return partial;
  });
  return scores;
}

Coreset SampleByImportance(const Matrix& points,
                           const std::vector<double>& weights,
                           const ImportanceScores& scores, size_t m,
                           Rng& rng) {
  const size_t n = points.rows();
  FC_CHECK_EQ(scores.sigma.size(), n);
  FC_CHECK_GT(m, 0u);
  FC_CHECK_MSG(scores.total > 0.0, "importance scores sum to zero");

  // O(n) bulk build of the sigma distribution, then m draws at O(log n)
  // each. A sigma == 0 point owns a zero-width interval of the cumulative
  // distribution and its coreset weight would divide by sigma, so the
  // distribution's zero-slot stepping (FenwickTree::UpperBound) attributes
  // any boundary-drifted target to the nearest positive-sigma point.
  const DiscreteDistribution distribution(scores.sigma);

  // hits[i] = number of draws landing on point i (only nonzero entries).
  std::map<size_t, size_t> hits;
  for (size_t draw = 0; draw < m; ++draw) {
    ++hits[distribution.Sample(rng)];
  }

  Coreset coreset;
  coreset.indices.reserve(hits.size());
  coreset.weights.reserve(hits.size());
  coreset.points = Matrix(hits.size(), points.cols());
  size_t row = 0;
  const double md = static_cast<double>(m);
  for (const auto& [idx, count] : hits) {
    coreset.indices.push_back(idx);
    coreset.points.CopyRowFrom(points, idx, row++);
    const double w = WeightAt(weights, idx);
    coreset.weights.push_back(static_cast<double>(count) * w * scores.total /
                              (md * scores.sigma[idx]));
  }
  return coreset;
}

void ApplyCenterCorrection(const Matrix& points,
                           const std::vector<double>& weights,
                           const std::vector<size_t>& assignment,
                           const Matrix& centers, double eps,
                           Coreset* coreset) {
  FC_CHECK(coreset != nullptr);
  const size_t k = centers.rows();

  std::vector<double> cluster_weight(k, 0.0);
  for (size_t i = 0; i < points.rows(); ++i) {
    cluster_weight[assignment[i]] += WeightAt(weights, i);
  }
  std::vector<double> sampled_weight(k, 0.0);
  for (size_t r = 0; r < coreset->size(); ++r) {
    const size_t src = coreset->indices[r];
    if (src == Coreset::kSyntheticIndex) continue;
    sampled_weight[assignment[src]] += coreset->weights[r];
  }

  Matrix appended(0, points.cols());
  for (size_t c = 0; c < k; ++c) {
    if (cluster_weight[c] <= 0.0) continue;
    const double correction =
        (1.0 + eps) * cluster_weight[c] - sampled_weight[c];
    if (correction <= 0.0) continue;
    Matrix one(1, points.cols());
    one.CopyRowFrom(centers, c, 0);
    appended.AppendRows(one);
    coreset->indices.push_back(Coreset::kSyntheticIndex);
    coreset->weights.push_back(correction);
  }
  coreset->points.AppendRows(appended);
}

}  // namespace fastcoreset
