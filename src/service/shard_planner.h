// ShardPlanner: sharded coreset builds via merge-&-reduce composition.
//
// The paper's composability property — a coreset of a union of coresets is
// a coreset of the union — is what makes sharded serving correct: the
// dataset is split into contiguous row-range shards, each shard is
// compressed independently (one api::Build per shard, on the persistent
// thread pool), and the shard coresets are combined through the streaming
// merge-&-reduce compressor (src/streaming/merge_reduce) into one final
// size-m coreset whose indices still refer to the original dataset rows.
//
// Execution runs on the task-graph tier (src/common/task_graph.h): one
// graph node per shard build plus a merge node that waits on every shard
// edge, scheduled over up to `parallelism` node executors, each shard's
// inner chunk dispatches capped to a slice of the worker budget.
//
// Determinism contract: each shard's build seeds a fresh Rng with
// DeriveBuildSeed(spec.seed, kShardSeedDomain, shard_index), the merge
// phase gets its own derived seed, and the merge consumes shard coresets
// in fixed shard order — so a (seed, shard_count) pair fully determines
// the result, bit-identically at any FC_THREADS and any parallelism
// budget: concurrent shard execution equals the sequential walk
// (parallelism = 1) exactly. Different shard counts are different (all
// valid) coresets.

#ifndef FASTCORESET_SERVICE_SHARD_PLANNER_H_
#define FASTCORESET_SERVICE_SHARD_PLANNER_H_

#include <cstdint>
#include <vector>

#include "src/api/diagnostics.h"
#include "src/api/spec.h"
#include "src/api/status.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {
namespace service {

/// One contiguous row range [begin, end) of the dataset.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
  size_t rows() const { return end - begin; }
};

/// Seed-derivation domains (so a shard seed can never collide with the
/// merge seed of the same request).
inline constexpr uint64_t kShardSeedDomain = 0x5348415244ull;  // "SHARD"
inline constexpr uint64_t kMergeSeedDomain = 0x4d45524745ull;  // "MERGE"

/// SplitMix64-mixed child seed: deterministic, and well-spread even for
/// adjacent base seeds / indices.
uint64_t DeriveBuildSeed(uint64_t base_seed, uint64_t domain, uint64_t index);

/// Shard count actually used for `rows`: `requested` clamped to the row
/// count (a shard must own at least one row). Requires requested >= 1.
size_t EffectiveShardCount(size_t rows, size_t requested);

/// Near-equal contiguous partition of [0, rows) into
/// EffectiveShardCount(rows, requested) ranges, in row order. The
/// partition depends only on (rows, requested) — it is part of the cache
/// identity of a sharded build.
std::vector<ShardRange> PlanShards(size_t rows, size_t requested);

/// What one shard's build did: its range, its derived seed, the full
/// per-build diagnostics (stage times included), and where its execution
/// sat on the request's wall clock. With concurrent shards the
/// [start_seconds, end_seconds) windows OVERLAP — summing per-shard
/// durations gives CPU-side work, not elapsed time.
struct ShardDiagnostics {
  size_t index = 0;
  size_t row_begin = 0;
  size_t row_end = 0;
  uint64_t seed = 0;
  /// Offsets from the sharded build's start at which this shard's node
  /// began and finished executing.
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  api::BuildDiagnostics build;
};

/// What the task-graph run behind a sharded build looked like.
struct ShardSchedulerStats {
  size_t parallelism = 0;            ///< Effective worker budget used.
  size_t tasks_executed = 0;         ///< Graph nodes run (shards + merge).
  size_t max_concurrent_shards = 0;  ///< High-water of nodes in flight.
  size_t queue_high_water = 0;       ///< Max ready-queue length observed.
};

/// A sharded build's product.
struct ShardedBuildResult {
  Coreset coreset;  ///< Indices refer to the original dataset rows.
  std::vector<ShardDiagnostics> shards;   ///< One entry per shard, in order.
  bool has_merge = false;                 ///< True when shards > 1.
  /// Merge-phase accounting (stream_* fields + wall clock) when has_merge.
  api::BuildDiagnostics merge;
  ShardSchedulerStats scheduler;          ///< Task-graph run counters.
  size_t points_processed = 0;  ///< Shard rows + merge re-reduction rows.
  size_t bytes_processed = 0;   ///< points_processed * dims * sizeof(double).
  /// Wall clock of the whole graph run — the critical path through the
  /// overlapped shard windows plus the merge, NOT the per-shard sum.
  double critical_path_seconds = 0.0;
};

/// Runs the full sharded pipeline: plan, per-shard api::Build with derived
/// seeds submitted as task-graph nodes, merge-&-reduce combine as the node
/// every shard edge feeds. spec.weights (when non-empty) must match
/// points.rows() and is sliced per shard. `parallelism` is the worker
/// budget for the graph (0 = all workers; 1 = the sequential reference
/// walk); it never changes the result, only the schedule. All
/// request-level failures come back as a status; nothing aborts.
api::FcStatusOr<ShardedBuildResult> BuildSharded(const api::CoresetSpec& spec,
                                                 const Matrix& points,
                                                 size_t shard_count,
                                                 size_t parallelism = 0);

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_SHARD_PLANNER_H_
