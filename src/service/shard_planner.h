// ShardPlanner: sharded coreset builds via merge-&-reduce composition.
//
// The paper's composability property — a coreset of a union of coresets is
// a coreset of the union — is what makes sharded serving correct: the
// dataset is split into contiguous row-range shards, each shard is
// compressed independently (one api::Build per shard, on the persistent
// thread pool), and the shard coresets are combined through the streaming
// merge-&-reduce compressor (src/streaming/merge_reduce) into one final
// size-m coreset whose indices still refer to the original dataset rows.
//
// Determinism contract: each shard's build seeds a fresh Rng with
// DeriveBuildSeed(spec.seed, kShardSeedDomain, shard_index), and the merge
// phase with its own derived seed — so a (seed, shard_count) pair fully
// determines the result, bit-identically at any FC_THREADS (shards run
// sequentially in shard order; each build parallelizes internally over the
// pool, which preserves the library-wide thread-invariance contract).
// Different shard counts are different (all valid) coresets.

#ifndef FASTCORESET_SERVICE_SHARD_PLANNER_H_
#define FASTCORESET_SERVICE_SHARD_PLANNER_H_

#include <cstdint>
#include <vector>

#include "src/api/diagnostics.h"
#include "src/api/spec.h"
#include "src/api/status.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {
namespace service {

/// One contiguous row range [begin, end) of the dataset.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
  size_t rows() const { return end - begin; }
};

/// Seed-derivation domains (so a shard seed can never collide with the
/// merge seed of the same request).
inline constexpr uint64_t kShardSeedDomain = 0x5348415244ull;  // "SHARD"
inline constexpr uint64_t kMergeSeedDomain = 0x4d45524745ull;  // "MERGE"

/// SplitMix64-mixed child seed: deterministic, and well-spread even for
/// adjacent base seeds / indices.
uint64_t DeriveBuildSeed(uint64_t base_seed, uint64_t domain, uint64_t index);

/// Shard count actually used for `rows`: `requested` clamped to the row
/// count (a shard must own at least one row). Requires requested >= 1.
size_t EffectiveShardCount(size_t rows, size_t requested);

/// Near-equal contiguous partition of [0, rows) into
/// EffectiveShardCount(rows, requested) ranges, in row order. The
/// partition depends only on (rows, requested) — it is part of the cache
/// identity of a sharded build.
std::vector<ShardRange> PlanShards(size_t rows, size_t requested);

/// What one shard's build did: its range, its derived seed, and the full
/// per-build diagnostics (stage times included).
struct ShardDiagnostics {
  size_t index = 0;
  size_t row_begin = 0;
  size_t row_end = 0;
  uint64_t seed = 0;
  api::BuildDiagnostics build;
};

/// A sharded build's product.
struct ShardedBuildResult {
  Coreset coreset;  ///< Indices refer to the original dataset rows.
  std::vector<ShardDiagnostics> shards;   ///< One entry per shard, in order.
  bool has_merge = false;                 ///< True when shards > 1.
  /// Merge-phase accounting (stream_* fields + wall clock) when has_merge.
  api::BuildDiagnostics merge;
  size_t points_processed = 0;  ///< Shard rows + merge re-reduction rows.
  size_t bytes_processed = 0;   ///< points_processed * dims * sizeof(double).
};

/// Runs the full sharded pipeline: plan, per-shard api::Build with derived
/// seeds, merge-&-reduce combine. spec.weights (when non-empty) must match
/// points.rows() and is sliced per shard. All request-level failures come
/// back as a status; nothing aborts.
api::FcStatusOr<ShardedBuildResult> BuildSharded(const api::CoresetSpec& spec,
                                                 const Matrix& points,
                                                 size_t shard_count);

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_SHARD_PLANNER_H_
