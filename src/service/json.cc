#include "src/service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace fastcoreset {
namespace service {

namespace {

constexpr int kMaxDepth = 64;

/// Cursor over the input with one-token-lookahead helpers. All errors are
/// reported with the byte offset so a malformed request is debuggable from
/// the response alone.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  api::FcStatusOr<JsonValue> Parse() {
    api::FcStatusOr<JsonValue> value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  api::FcStatus Error(const std::string& message) const {
    return api::FcStatus::InvalidArgument(
        "json: " + message + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t length = 0;
    while (literal[length] != '\0') ++length;
    if (text_.compare(pos_, length, literal) != 0) return false;
    pos_ += length;
    return true;
  }

  api::FcStatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        api::FcStatusOr<std::string> text = ParseString();
        if (!text.ok()) return text.status();
        return JsonValue(std::move(text.value()));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  api::FcStatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      api::FcStatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      api::FcStatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      if (!members.emplace(std::move(key.value()), std::move(value.value()))
               .second) {
        return Error("duplicate object key");
      }
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  api::FcStatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue::Array elements;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(elements));
    while (true) {
      api::FcStatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      elements.push_back(std::move(value.value()));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(elements));
      return Error("expected ',' or ']' in array");
    }
  }

  /// Validates and copies one multi-byte UTF-8 sequence starting at pos_.
  /// Rejects stray continuation bytes, truncated sequences, overlong
  /// encodings, raw-encoded surrogates, and code points past U+10FFFF —
  /// a string that parses is guaranteed to re-serialize as valid UTF-8.
  api::FcStatus ConsumeUtf8(std::string* out) {
    const unsigned char lead = static_cast<unsigned char>(text_[pos_]);
    size_t length;
    unsigned code, min_code;
    if ((lead & 0xE0) == 0xC0) {
      length = 2, code = lead & 0x1Fu, min_code = 0x80;
    } else if ((lead & 0xF0) == 0xE0) {
      length = 3, code = lead & 0x0Fu, min_code = 0x800;
    } else if ((lead & 0xF8) == 0xF0) {
      length = 4, code = lead & 0x07u, min_code = 0x10000;
    } else {
      return Error("invalid UTF-8 byte in string");
    }
    if (pos_ + length > text_.size()) {
      return Error("truncated UTF-8 sequence in string");
    }
    for (size_t i = 1; i < length; ++i) {
      const unsigned char cont = static_cast<unsigned char>(text_[pos_ + i]);
      if ((cont & 0xC0) != 0x80) {
        return Error("invalid UTF-8 continuation byte in string");
      }
      code = (code << 6) | (cont & 0x3Fu);
    }
    if (code < min_code) return Error("overlong UTF-8 encoding in string");
    if (code >= 0xD800 && code <= 0xDFFF) {
      return Error("UTF-8-encoded surrogate in string");
    }
    if (code > 0x10FFFF) return Error("UTF-8 code point out of range");
    out->append(text_, pos_, length);
    pos_ += length;
    return api::FcStatus::Ok();
  }

  /// Reads the 4 hex digits of a \uXXXX escape (pos_ at the first digit).
  api::FcStatusOr<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    return code;
  }

  api::FcStatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (static_cast<unsigned char>(c) >= 0x80) {
        api::FcStatus status = ConsumeUtf8(&out);
        if (!status.ok()) return status;
        continue;
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          api::FcStatusOr<unsigned> hex = ParseHex4();
          if (!hex.ok()) return hex.status();
          unsigned code = hex.value();
          // Surrogates only occur as a \uD800-\uDBFF + \uDC00-\uDFFF pair
          // naming one supplementary code point. Combining them here (and
          // rejecting lone halves) keeps the invariant that every parsed
          // string is valid UTF-8 — a lone surrogate would otherwise emit
          // CESU-8 bytes that corrupt the response the server echoes back.
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            api::FcStatusOr<unsigned> low_hex = ParseHex4();
            if (!low_hex.ok()) return low_hex.status();
            const unsigned low = low_hex.value();
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("high surrogate not followed by low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  bool ConsumeDigits() {
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  api::FcStatusOr<JsonValue> ParseNumber() {
    // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // — strtod alone would also accept "+5", ".5", "5.", "01", "inf".
    const size_t start = pos_;
    Consume('-');
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;  // A leading zero must stand alone ("01" is not JSON).
    } else if (!ConsumeDigits()) {
      return Error("invalid value");
    }
    if (Consume('.') && !ConsumeDigits()) {
      return Error("digits must follow a decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!ConsumeDigits()) return Error("digits must follow an exponent");
    }
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      return Error("number '" + token + "' overflows a double");
    }
    return JsonValue(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::bool_value() const {
  // fc-lint: allow(no-abort-in-service): typed-accessor contract
  // — callers test kind() first; a mismatch is a programmer error.
  FC_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::number_value() const {
  // fc-lint: allow(no-abort-in-service): typed-accessor contract
  // — callers test kind() first; a mismatch is a programmer error.
  FC_CHECK(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::string_value() const {
  // fc-lint: allow(no-abort-in-service): typed-accessor contract
  // — callers test kind() first; a mismatch is a programmer error.
  FC_CHECK(kind_ == Kind::kString);
  return string_;
}

const JsonValue::Array& JsonValue::array() const {
  // fc-lint: allow(no-abort-in-service): typed-accessor contract
  // — callers test kind() first; a mismatch is a programmer error.
  FC_CHECK(kind_ == Kind::kArray);
  return array_;
}

const JsonValue::Object& JsonValue::object() const {
  // fc-lint: allow(no-abort-in-service): typed-accessor contract
  // — callers test kind() first; a mismatch is a programmer error.
  FC_CHECK(kind_ == Kind::kObject);
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

api::FcStatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

void AppendJsonString(std::string* out, const std::string& text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace service
}  // namespace fastcoreset
