#include "src/service/shard_planner.h"

#include <numeric>
#include <string>
#include <utility>

#include "src/api/fastcoreset.h"
#include "src/common/timer.h"

namespace fastcoreset {
namespace service {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Returns the shard's rows as a dense matrix plus (when the request is
/// weighted) the matching weight slice.
Matrix SliceRows(const Matrix& points, const ShardRange& range) {
  Matrix slice(range.rows(), points.cols());
  for (size_t r = range.begin; r < range.end; ++r) {
    slice.CopyRowFrom(points, r, r - range.begin);
  }
  return slice;
}

}  // namespace

uint64_t DeriveBuildSeed(uint64_t base_seed, uint64_t domain, uint64_t index) {
  return SplitMix64(base_seed ^ SplitMix64(domain ^ SplitMix64(index)));
}

size_t EffectiveShardCount(size_t rows, size_t requested) {
  // fc-lint: allow(no-abort-in-service): the service rejects shards == 0
  // with InvalidArgument before planning (service.cc), so zero here is a
  // programmer error, not request data.
  FC_CHECK_GT(requested, 0u);
  if (rows == 0) return 1;
  return requested < rows ? requested : rows;
}

std::vector<ShardRange> PlanShards(size_t rows, size_t requested) {
  const size_t shards = EffectiveShardCount(rows, requested);
  std::vector<ShardRange> plan(shards);
  const size_t base = rows / shards;
  const size_t remainder = rows % shards;
  size_t begin = 0;
  for (size_t i = 0; i < shards; ++i) {
    const size_t size = base + (i < remainder ? 1 : 0);
    plan[i] = {begin, begin + size};
    begin += size;
  }
  return plan;
}

api::FcStatusOr<ShardedBuildResult> BuildSharded(const api::CoresetSpec& spec,
                                                 const Matrix& points,
                                                 size_t shard_count) {
  if (shard_count == 0) {
    return api::FcStatus::InvalidArgument("shard count must be >= 1");
  }
  if (points.rows() == 0 || points.cols() == 0) {
    return api::FcStatus::InvalidArgument("input has no points");
  }
  if (!spec.weights.empty() && spec.weights.size() != points.rows()) {
    return api::FcStatus::InvalidArgument(
        "spec.weights size (" + std::to_string(spec.weights.size()) +
        ") does not match dataset rows (" + std::to_string(points.rows()) +
        ")");
  }

  const std::vector<ShardRange> plan = PlanShards(points.rows(), shard_count);
  const size_t shards = plan.size();

  ShardedBuildResult result;
  result.shards.reserve(shards);
  std::vector<Coreset> shard_coresets;
  shard_coresets.reserve(shards);

  // Per-shard builds, sequential in shard order (each build parallelizes
  // internally over the persistent pool — running the outer loop serial is
  // what keeps the result bit-identical at any FC_THREADS).
  for (size_t i = 0; i < shards; ++i) {
    api::CoresetSpec sub_spec = spec;
    // With a single shard the request IS a plain one-shot build; derived
    // seeds start mattering once there is more than one rng to keep apart.
    sub_spec.seed = shards == 1
                        ? spec.seed
                        : DeriveBuildSeed(spec.seed, kShardSeedDomain, i);
    if (!spec.weights.empty()) {
      sub_spec.weights.assign(spec.weights.begin() + plan[i].begin,
                              spec.weights.begin() + plan[i].end);
    }
    api::FcStatusOr<api::BuildResult> built =
        api::Build(sub_spec, SliceRows(points, plan[i]));
    if (!built.ok()) return built.status();
    // Shard-local indices -> dataset rows.
    for (size_t& index : built->coreset.indices) {
      if (index != Coreset::kSyntheticIndex) index += plan[i].begin;
    }
    result.shards.push_back(
        {i, plan[i].begin, plan[i].end, sub_spec.seed,
         std::move(built->diagnostics)});
    result.points_processed += plan[i].rows();
    shard_coresets.push_back(std::move(built->coreset));
  }

  if (shards == 1) {
    result.coreset = std::move(shard_coresets[0]);
  } else {
    // Merge phase: feed the shard coresets through the streaming
    // merge-&-reduce compressor (coresets of coresets are coresets). The
    // compressor's global stream positions index the concatenation of the
    // pushed shard coresets; `stream_to_dataset` maps them back to
    // original dataset rows.
    api::CoresetSpec merge_spec = spec;
    merge_spec.weights.clear();
    merge_spec.seed = DeriveBuildSeed(spec.seed, kMergeSeedDomain, shards);
    api::FcStatusOr<CoresetBuilder> builder = api::MakeBuilder(merge_spec);
    if (!builder.ok()) return builder.status();

    Timer merge_timer;
    Rng merge_rng(merge_spec.seed);
    StreamingCompressor compressor(builder.value(), spec.EffectiveM(),
                                   &merge_rng);
    std::vector<size_t> stream_to_dataset;
    for (const Coreset& shard : shard_coresets) {
      // Zero-weight rows carry no mass and some reducers (bico's CF tree)
      // reject them; dropping them changes nothing the coreset represents.
      std::vector<size_t> keep;
      keep.reserve(shard.size());
      for (size_t r = 0; r < shard.size(); ++r) {
        if (shard.weights[r] > 0.0) keep.push_back(r);
      }
      if (keep.empty()) continue;
      std::vector<double> weights;
      weights.reserve(keep.size());
      for (size_t r : keep) {
        stream_to_dataset.push_back(shard.indices[r]);
        weights.push_back(shard.weights[r]);
      }
      compressor.Push(shard.points.SelectRows(keep), weights);
    }
    if (stream_to_dataset.empty()) {
      return api::FcStatus::Internal("all shard coresets were empty");
    }
    Coreset merged = compressor.Finalize();
    for (size_t& index : merged.indices) {
      index = index < stream_to_dataset.size() ? stream_to_dataset[index]
                                               : Coreset::kSyntheticIndex;
    }

    result.has_merge = true;
    result.merge.method = result.shards[0].build.method;
    result.merge.seed = merge_spec.seed;
    result.merge.input_rows = stream_to_dataset.size();
    result.merge.input_dims = points.cols();
    result.merge.k = spec.k;
    result.merge.m_requested = spec.m;
    result.merge.m_effective = spec.EffectiveM();
    result.merge.z = spec.z;
    result.merge.stream_blocks = compressor.BlocksConsumed();
    result.merge.stream_reduce_ops = compressor.ReduceOps();
    result.merge.stream_levels = compressor.OccupiedLevels();
    result.merge.points_processed = compressor.BuilderRowsProcessed();
    result.merge.bytes_processed =
        result.merge.points_processed * points.cols() * sizeof(double);
    result.merge.output_rows = merged.size();
    result.merge.output_total_weight = merged.TotalWeight();
    result.merge.total_seconds = merge_timer.Seconds();
    result.points_processed += result.merge.points_processed;
    result.coreset = std::move(merged);
  }

  result.bytes_processed =
      result.points_processed * points.cols() * sizeof(double);
  return result;
}

}  // namespace service
}  // namespace fastcoreset
