#include "src/service/shard_planner.h"

#include <numeric>
#include <string>
#include <utility>

#include "src/api/fastcoreset.h"
#include "src/common/task_graph.h"
#include "src/common/timer.h"

namespace fastcoreset {
namespace service {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Returns the shard's rows as a dense matrix plus (when the request is
/// weighted) the matching weight slice.
Matrix SliceRows(const Matrix& points, const ShardRange& range) {
  Matrix slice(range.rows(), points.cols());
  for (size_t r = range.begin; r < range.end; ++r) {
    slice.CopyRowFrom(points, r, r - range.begin);
  }
  return slice;
}

/// One shard node's product (node bodies cannot return a status — each
/// records everything in its own slot for assembly after the graph
/// drains; slots are written by exactly one node).
struct ShardOutcome {
  api::FcStatus status;  ///< Ok unless this shard's build failed.
  Coreset coreset;       ///< Indices already remapped to dataset rows.
  api::BuildDiagnostics diagnostics;
};

/// The merge node's product (the node body cannot return a status — it
/// records everything here for assembly after the graph drains).
struct MergeOutcome {
  api::FcStatus status;
  Coreset coreset;
  size_t stream_blocks = 0;
  size_t stream_reduce_ops = 0;
  size_t stream_levels = 0;
  size_t input_rows = 0;  ///< Non-empty shard coreset rows fed to the merge.
  size_t points_processed = 0;
  uint64_t seed = 0;
  double seconds = 0.0;
};

}  // namespace

uint64_t DeriveBuildSeed(uint64_t base_seed, uint64_t domain, uint64_t index) {
  return SplitMix64(base_seed ^ SplitMix64(domain ^ SplitMix64(index)));
}

size_t EffectiveShardCount(size_t rows, size_t requested) {
  // fc-lint: allow(no-abort-in-service): the service rejects shards == 0
  // with InvalidArgument before planning (service.cc), so zero here is a
  // programmer error, not request data.
  FC_CHECK_GT(requested, 0u);
  if (rows == 0) return 1;
  return requested < rows ? requested : rows;
}

std::vector<ShardRange> PlanShards(size_t rows, size_t requested) {
  const size_t shards = EffectiveShardCount(rows, requested);
  std::vector<ShardRange> plan(shards);
  const size_t base = rows / shards;
  const size_t remainder = rows % shards;
  size_t begin = 0;
  for (size_t i = 0; i < shards; ++i) {
    const size_t size = base + (i < remainder ? 1 : 0);
    plan[i] = {begin, begin + size};
    begin += size;
  }
  return plan;
}

api::FcStatusOr<ShardedBuildResult> BuildSharded(const api::CoresetSpec& spec,
                                                 const Matrix& points,
                                                 size_t shard_count,
                                                 size_t parallelism) {
  if (shard_count == 0) {
    return api::FcStatus::InvalidArgument("shard count must be >= 1");
  }
  if (points.rows() == 0 || points.cols() == 0) {
    return api::FcStatus::InvalidArgument("input has no points");
  }
  if (!spec.weights.empty() && spec.weights.size() != points.rows()) {
    return api::FcStatus::InvalidArgument(
        "spec.weights size (" + std::to_string(spec.weights.size()) +
        ") does not match dataset rows (" + std::to_string(points.rows()) +
        ")");
  }

  const std::vector<ShardRange> plan = PlanShards(points.rows(), shard_count);
  const size_t shards = plan.size();

  // Per-shard result slots and execution windows: graph nodes write only
  // their own index, so concurrent execution needs no locking here, and
  // the post-run assembly reads them in fixed shard order.
  Timer wall;
  std::vector<ShardOutcome> built(shards);
  std::vector<std::pair<double, double>> windows(shards, {0.0, 0.0});
  MergeOutcome merge_out;

  // The graph: one build node per shard (independent, internally
  // parallel on its budget slice) plus, for shards > 1, a merge node
  // that waits on every shard edge. The schedule decides only WHEN a
  // node runs: seeds are derived per shard and the merge consumes shard
  // coresets in fixed shard order, so concurrent execution is
  // bit-identical to the sequential walk.
  TaskGraph graph;
  std::vector<TaskGraph::TaskId> shard_nodes;
  shard_nodes.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shard_nodes.push_back(graph.AddTask([&spec, &points, &plan, &built,
                                         &windows, &wall, shards, i] {
      windows[i].first = wall.Seconds();
      api::CoresetSpec sub_spec = spec;
      // With a single shard the request IS a plain one-shot build;
      // derived seeds start mattering once there is more than one rng to
      // keep apart.
      sub_spec.seed = shards == 1
                          ? spec.seed
                          : DeriveBuildSeed(spec.seed, kShardSeedDomain, i);
      if (!spec.weights.empty()) {
        sub_spec.weights.assign(spec.weights.begin() + plan[i].begin,
                                spec.weights.begin() + plan[i].end);
      }
      api::FcStatusOr<api::BuildResult> shard_built =
          api::Build(sub_spec, SliceRows(points, plan[i]));
      if (!shard_built.ok()) {
        built[i].status = shard_built.status();
      } else {
        // Shard-local indices -> dataset rows.
        for (size_t& index : shard_built->coreset.indices) {
          if (index != Coreset::kSyntheticIndex) index += plan[i].begin;
        }
        built[i].coreset = std::move(shard_built->coreset);
        built[i].diagnostics = std::move(shard_built->diagnostics);
      }
      windows[i].second = wall.Seconds();
    }));
  }

  if (shards > 1) {
    graph.AddTask(
        [&spec, &points, &built, &merge_out, shards] {
          // A failed shard makes the merge moot; the failure itself is
          // surfaced (in shard order) by the assembly below.
          for (size_t i = 0; i < shards; ++i) {
            if (!built[i].status.ok()) {
              merge_out.status = built[i].status;
              return;
            }
          }
          // Merge phase: feed the shard coresets through the streaming
          // merge-&-reduce compressor (coresets of coresets are
          // coresets). The compressor's global stream positions index
          // the concatenation of the pushed shard coresets;
          // `stream_to_dataset` maps them back to original dataset rows.
          api::CoresetSpec merge_spec = spec;
          merge_spec.weights.clear();
          merge_spec.seed =
              DeriveBuildSeed(spec.seed, kMergeSeedDomain, shards);
          merge_out.seed = merge_spec.seed;
          api::FcStatusOr<CoresetBuilder> builder =
              api::MakeBuilder(merge_spec);
          if (!builder.ok()) {
            merge_out.status = builder.status();
            return;
          }

          Timer merge_timer;
          Rng merge_rng(merge_spec.seed);
          StreamingCompressor compressor(builder.value(), spec.EffectiveM(),
                                         &merge_rng);
          std::vector<size_t> stream_to_dataset;
          for (size_t i = 0; i < shards; ++i) {
            const Coreset& shard = built[i].coreset;
            // Zero-weight rows carry no mass and some reducers (bico's
            // CF tree) reject them; dropping them changes nothing the
            // coreset represents.
            std::vector<size_t> keep;
            keep.reserve(shard.size());
            for (size_t r = 0; r < shard.size(); ++r) {
              if (shard.weights[r] > 0.0) keep.push_back(r);
            }
            if (keep.empty()) continue;
            std::vector<double> weights;
            weights.reserve(keep.size());
            for (size_t r : keep) {
              stream_to_dataset.push_back(shard.indices[r]);
              weights.push_back(shard.weights[r]);
            }
            compressor.Push(shard.points.SelectRows(keep), weights);
          }
          if (stream_to_dataset.empty()) {
            merge_out.status =
                api::FcStatus::Internal("all shard coresets were empty");
            return;
          }
          merge_out.input_rows = stream_to_dataset.size();
          Coreset merged = compressor.Finalize();
          for (size_t& index : merged.indices) {
            index = index < stream_to_dataset.size()
                        ? stream_to_dataset[index]
                        : Coreset::kSyntheticIndex;
          }
          merge_out.coreset = std::move(merged);
          merge_out.stream_blocks = compressor.BlocksConsumed();
          merge_out.stream_reduce_ops = compressor.ReduceOps();
          merge_out.stream_levels = compressor.OccupiedLevels();
          merge_out.points_processed = compressor.BuilderRowsProcessed();
          merge_out.seconds = merge_timer.Seconds();
        },
        shard_nodes);
  }

  const TaskGraph::RunStats run = graph.Run(parallelism);

  ShardedBuildResult result;
  result.scheduler.parallelism = run.parallelism;
  result.scheduler.tasks_executed = run.tasks_executed;
  result.scheduler.max_concurrent_shards = run.max_concurrent_tasks;
  result.scheduler.queue_high_water = run.queue_high_water;
  result.critical_path_seconds = wall.Seconds();

  // Assembly, in fixed shard order: the first failed shard's status wins
  // (matching the sequential walk), then the merge outcome.
  result.shards.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    if (!built[i].status.ok()) return built[i].status;
    ShardDiagnostics diag;
    diag.index = i;
    diag.row_begin = plan[i].begin;
    diag.row_end = plan[i].end;
    diag.seed = shards == 1
                    ? spec.seed
                    : DeriveBuildSeed(spec.seed, kShardSeedDomain, i);
    diag.start_seconds = windows[i].first;
    diag.end_seconds = windows[i].second;
    diag.build = std::move(built[i].diagnostics);
    result.shards.push_back(std::move(diag));
    result.points_processed += plan[i].rows();
  }

  if (shards == 1) {
    result.coreset = std::move(built[0].coreset);
  } else {
    if (!merge_out.status.ok()) return merge_out.status;
    result.has_merge = true;
    result.merge.method = result.shards[0].build.method;
    result.merge.seed = merge_out.seed;
    result.merge.input_rows = merge_out.input_rows;
    result.merge.input_dims = points.cols();
    result.merge.k = spec.k;
    result.merge.m_requested = spec.m;
    result.merge.m_effective = spec.EffectiveM();
    result.merge.z = spec.z;
    result.merge.stream_blocks = merge_out.stream_blocks;
    result.merge.stream_reduce_ops = merge_out.stream_reduce_ops;
    result.merge.stream_levels = merge_out.stream_levels;
    result.merge.points_processed = merge_out.points_processed;
    result.merge.bytes_processed =
        merge_out.points_processed * points.cols() * sizeof(double);
    result.merge.output_rows = merge_out.coreset.size();
    result.merge.output_total_weight = merge_out.coreset.TotalWeight();
    result.merge.total_seconds = merge_out.seconds;
    result.points_processed += merge_out.points_processed;
    result.coreset = std::move(merge_out.coreset);
  }

  result.bytes_processed =
      result.points_processed * points.cols() * sizeof(double);
  return result;
}

}  // namespace service
}  // namespace fastcoreset
