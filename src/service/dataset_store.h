// DatasetStore: named datasets for the coreset-build service. A long-lived
// service cannot take the dataset by value on every request — clients
// register data once (an in-memory matrix, a CSV file, or a synthetic
// generator spec) and address it by name afterwards. Each entry carries a
// content fingerprint (src/service/fingerprint.h), which is what the
// coreset cache keys on: names are mutable bindings, content is not.

#ifndef FASTCORESET_SERVICE_DATASET_STORE_H_
#define FASTCORESET_SERVICE_DATASET_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/api/status.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {
namespace service {

/// Generator-backed dataset description, marshalled from a protocol
/// request. `generator` selects among the paper's instance families
/// (src/data/generators.h); fields irrelevant to the selected generator
/// are ignored.
struct SyntheticSpec {
  /// "gaussian_mixture" | "benchmark" | "spread" | "c_outlier".
  std::string generator = "gaussian_mixture";
  size_t n = 1000;       ///< Point count (all generators).
  size_t d = 2;          ///< Dimensions (gaussian_mixture, c_outlier).
  size_t kappa = 4;      ///< Cluster count (gaussian_mixture).
  double gamma = 0.0;    ///< Cluster-size imbalance (gaussian_mixture).
  size_t k = 4;          ///< Solution size (benchmark).
  size_t r = 4;          ///< Spread parameter (spread).
  size_t c = 10;         ///< Outlier count (c_outlier).
  double separation = 100.0;  ///< Outlier distance (c_outlier).
  uint64_t seed = 1;     ///< Generator rng seed.
};

/// One registered dataset. Entries are immutable once registered (the
/// fingerprint would otherwise lie) and handed out as shared snapshots,
/// so a lookup stays valid even if the name is Remove()d mid-build.
struct DatasetEntry {
  std::string name;
  std::string source;  ///< "inline" | "csv:<path>" | "synthetic:<generator>".
  Matrix points;
  uint64_t fingerprint = 0;  ///< Content hash (FingerprintMatrix).
};

/// Thread-safe name -> dataset registry. Get() returns a shared
/// snapshot: Remove() unbinds the name, while in-flight holders keep the
/// entry (and its Matrix) alive.
class DatasetStore {
 public:
  /// Registers an in-memory matrix. Rejects empty matrices and duplicate
  /// names (re-binding a name is an explicit Remove + Register, so a
  /// client can never silently swap data under a cached fingerprint).
  api::FcStatus RegisterMatrix(const std::string& name, Matrix points,
                               const std::string& source = "inline");

  /// Loads a headerless numeric CSV (src/data/csv_loader) and registers it.
  api::FcStatus RegisterCsv(const std::string& name, const std::string& path);

  /// Generates a synthetic dataset (src/data/generators) and registers it.
  /// Deterministic: the same spec always registers identical content.
  api::FcStatus RegisterSynthetic(const std::string& name,
                                  const SyntheticSpec& spec);

  /// Looks up a dataset; kNotFound names the known datasets.
  api::FcStatusOr<std::shared_ptr<const DatasetEntry>> Get(
      const std::string& name) const;

  /// Removes a dataset binding. Returns false when the name is unknown.
  /// Cached coresets built from it are keyed by fingerprint and stay
  /// valid (the content they describe did not change).
  bool Remove(const std::string& name);

  /// Sorted registered names.
  std::vector<std::string> Names() const;

  size_t size() const;

 private:
  /// Rank kDatasetStore (see tools/lint/lock_hierarchy.toml).
  mutable Mutex mutex_ FC_ACQUIRED_AFTER(lock_rank::tier_dataset_store)
      FC_ACQUIRED_BEFORE(lock_rank::tier_coreset_cache){
          lock_rank::kDatasetStore};
  std::map<std::string, std::shared_ptr<const DatasetEntry>> entries_
      FC_GUARDED_BY(mutex_);
};

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_DATASET_STORE_H_
