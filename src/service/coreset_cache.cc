#include "src/service/coreset_cache.h"

#include <utility>

namespace fastcoreset {
namespace service {

std::shared_ptr<const CachedBuild> CoresetCache::Lookup(
    const std::string& key) {
  MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.recency);
  return it->second.value;
}

void CoresetCache::Insert(std::shared_ptr<const CachedBuild> entry) {
  // fc-lint: allow(no-abort-in-service): null entry is a programmer
  // error in the build pipeline, not request data; requests cannot
  // steer this argument.
  FC_CHECK(entry != nullptr);
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  const auto it = entries_.find(entry->key);
  if (it != entries_.end()) {
    // Replace in place (same key = same deterministic build, but a
    // use_cache=false rebuild may re-insert).
    it->second.value = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.recency);
    return;
  }
  const std::string key = entry->key;  // std::move(entry) below.
  lru_.push_front(key);
  entries_.emplace(key, Slot{std::move(entry), lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

size_t CoresetCache::EvictDataset(uint64_t dataset_fingerprint) {
  MutexLock lock(mutex_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.value->dataset_fingerprint == dataset_fingerprint) {
      lru_.erase(it->second.recency);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  evictions_ += dropped;
  return dropped;
}

void CoresetCache::Clear() {
  MutexLock lock(mutex_);
  evictions_ += entries_.size();
  entries_.clear();
  lru_.clear();
}

CoresetCache::Stats CoresetCache::stats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace service
}  // namespace fastcoreset
