#include "src/service/dataset_store.h"

#include <optional>
#include <utility>

#include "src/common/rng.h"
#include "src/data/csv_loader.h"
#include "src/data/generators.h"
#include "src/service/fingerprint.h"

namespace fastcoreset {
namespace service {

api::FcStatus DatasetStore::RegisterMatrix(const std::string& name,
                                           Matrix points,
                                           const std::string& source) {
  if (name.empty()) {
    return api::FcStatus::InvalidArgument("dataset name must be non-empty");
  }
  if (points.rows() == 0 || points.cols() == 0) {
    return api::FcStatus::InvalidArgument(
        "dataset '" + name + "' has no points");
  }
  auto entry = std::make_shared<DatasetEntry>();
  entry->name = name;
  entry->source = source;
  entry->fingerprint = FingerprintMatrix(points);
  entry->points = std::move(points);

  MutexLock lock(mutex_);
  if (!entries_.emplace(name, std::move(entry)).second) {
    return api::FcStatus::InvalidArgument(
        "dataset '" + name + "' is already registered (Remove it first)");
  }
  return api::FcStatus::Ok();
}

api::FcStatus DatasetStore::RegisterCsv(const std::string& name,
                                        const std::string& path) {
  std::optional<Matrix> points = LoadCsv(path);
  if (!points.has_value()) {
    return api::FcStatus::InvalidArgument(
        "could not load CSV '" + path + "' (missing file or malformed rows)");
  }
  return RegisterMatrix(name, std::move(*points), "csv:" + path);
}

api::FcStatus DatasetStore::RegisterSynthetic(const std::string& name,
                                              const SyntheticSpec& spec) {
  if (spec.n == 0) {
    return api::FcStatus::InvalidArgument("synthetic n must be >= 1");
  }
  Rng rng(spec.seed);
  Matrix points;
  if (spec.generator == "gaussian_mixture") {
    if (spec.d == 0 || spec.kappa == 0) {
      return api::FcStatus::InvalidArgument(
          "gaussian_mixture needs d >= 1 and kappa >= 1");
    }
    points = GenerateGaussianMixture(spec.n, spec.d, spec.kappa, spec.gamma,
                                     rng);
  } else if (spec.generator == "benchmark") {
    if (spec.k < 4) {
      return api::FcStatus::InvalidArgument("benchmark needs k >= 4");
    }
    points = GenerateBenchmark(spec.n, spec.k, rng);
  } else if (spec.generator == "spread") {
    if (spec.r == 0) {
      return api::FcStatus::InvalidArgument("spread needs r >= 1");
    }
    points = GenerateSpreadDataset(spec.n, spec.r, rng);
  } else if (spec.generator == "c_outlier") {
    if (spec.d == 0 || spec.c >= spec.n) {
      return api::FcStatus::InvalidArgument(
          "c_outlier needs d >= 1 and c < n");
    }
    points = GenerateCOutlier(spec.n, spec.c, spec.d, spec.separation, rng);
  } else {
    return api::FcStatus::InvalidArgument(
        "unknown synthetic generator '" + spec.generator +
        "' (gaussian_mixture | benchmark | spread | c_outlier)");
  }
  return RegisterMatrix(name, std::move(points),
                        "synthetic:" + spec.generator);
}

api::FcStatusOr<std::shared_ptr<const DatasetEntry>> DatasetStore::Get(
    const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [registered, entry] : entries_) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    return api::FcStatus::NotFound(
        "no dataset named '" + name + "' (registered: " +
        (known.empty() ? "<none>" : known) + ")");
  }
  return it->second;
}

bool DatasetStore::Remove(const std::string& name) {
  MutexLock lock(mutex_);
  return entries_.erase(name) > 0;
}

std::vector<std::string> DatasetStore::Names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

size_t DatasetStore::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace service
}  // namespace fastcoreset
