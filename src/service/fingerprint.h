// Content fingerprints for the service layer. A dataset is addressed by
// name but *cached* by content: the cache key embeds an FNV-1a hash over
// the matrix bytes, so re-registering a name with different rows can never
// serve a stale coreset, and two names bound to identical content share
// cache entries. The same hash doubles as a cheap bit-identity witness for
// coresets in the fc_serve protocol (two responses with equal fingerprints
// carry equal points/weights/indices).

#ifndef FASTCORESET_SERVICE_FINGERPRINT_H_
#define FASTCORESET_SERVICE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/coreset.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {
namespace service {

inline constexpr uint64_t kFnv64Offset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv64Prime = 0x00000100000001b3ull;

/// FNV-1a over a byte range, chained via `state` so multi-part hashes
/// (dims, then data) compose without an intermediate buffer.
inline uint64_t Fnv1a64(const void* data, size_t bytes,
                        uint64_t state = kFnv64Offset) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    state ^= p[i];
    state *= kFnv64Prime;
  }
  return state;
}

inline uint64_t Fnv1a64(uint64_t value, uint64_t state) {
  return Fnv1a64(&value, sizeof(value), state);
}

/// Content hash of a matrix: shape plus raw double bytes. Bit-identical
/// matrices (not merely approximately equal ones) hash equal — exactly the
/// granularity the determinism contract guarantees.
inline uint64_t FingerprintMatrix(const Matrix& points) {
  uint64_t state = Fnv1a64(static_cast<uint64_t>(points.rows()), kFnv64Offset);
  state = Fnv1a64(static_cast<uint64_t>(points.cols()), state);
  return Fnv1a64(points.data().data(), points.data().size() * sizeof(double),
                 state);
}

inline uint64_t FingerprintDoubles(const std::vector<double>& values,
                                   uint64_t state = kFnv64Offset) {
  state = Fnv1a64(static_cast<uint64_t>(values.size()), state);
  return Fnv1a64(values.data(), values.size() * sizeof(double), state);
}

/// Bit-identity witness over a whole coreset (indices, points, weights).
inline uint64_t FingerprintCoreset(const Coreset& coreset) {
  uint64_t state = FingerprintMatrix(coreset.points);
  state = FingerprintDoubles(coreset.weights, state);
  state = Fnv1a64(static_cast<uint64_t>(coreset.indices.size()), state);
  return Fnv1a64(coreset.indices.data(),
                 coreset.indices.size() * sizeof(size_t), state);
}

/// Fixed-width lowercase hex rendering used in cache keys and protocol
/// responses.
inline std::string FingerprintHex(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_FINGERPRINT_H_
