#include "src/service/spec_key.h"

#include <cstdio>
#include <variant>

#include "src/api/registry.h"
#include "src/core/welterweight_coreset.h"
#include "src/service/fingerprint.h"
#include "src/service/json.h"

namespace fastcoreset {
namespace service {

namespace {

/// %.17g — doubles round-trip exactly, so 0.7 and 0.7000000000000001 get
/// distinct (correct) keys.
std::string Num(double value) { return JsonNumber(value); }

/// Typed sub-options with defaults resolved: monostate means "the
/// method's defaults", so both spell the same build and must serialize
/// identically.
template <typename OptionsT>
OptionsT Resolve(const api::MethodOptions& options) {
  if (const OptionsT* typed = std::get_if<OptionsT>(&options)) return *typed;
  return OptionsT{};
}

/// Value-faithful serialization of whichever alternative the variant
/// holds, with no method-default resolution — the fallback for methods
/// the canonicalizer does not know (externally registered ones, whose
/// ValidateSpec may accept any tag). Every option value lands in the
/// string, so two specs differing only in an option can never share a
/// key; the only cost of not canonicalizing is a duplicate cache slot
/// when monostate and explicit defaults describe the same build.
struct AlternativeSerializer {
  std::string operator()(std::monostate) const { return "default"; }
  std::string operator()(const api::UniformOptions&) const { return "{}"; }
  std::string operator()(const api::LightweightOptions&) const {
    return "{}";
  }
  std::string operator()(const api::SensitivityOptions&) const {
    return "{}";
  }
  std::string operator()(const api::StreamKmOptions&) const { return "{}"; }
  std::string operator()(const api::WelterweightOptions& options) const {
    return "{j=" + std::to_string(options.j) + "}";
  }
  std::string operator()(const api::FastOptions& options) const {
    return "{jl=" + std::to_string(options.use_jl ? 1 : 0) +
           ",jl_eps=" + Num(options.jl_eps) +
           ",spread=" + std::to_string(options.use_spread_reduction ? 1 : 0) +
           ",cc=" + std::to_string(options.center_correction ? 1 : 0) +
           ",cc_eps=" + Num(options.correction_eps) + ",seeder=" +
           (options.seeder == api::FastSeeder::kTreeGreedy ? "tree_greedy"
                                                           : "fast_kmpp") +
           ",depth=" + std::to_string(options.seeding_max_depth) +
           ",full=" + std::to_string(options.seeding_full_depth_tree ? 1 : 0) +
           ",rej=" +
           std::to_string(options.seeding_rejection_sampling ? 1 : 0) +
           ",maxrej=" + std::to_string(options.seeding_max_rejections) + "}";
  }
  std::string operator()(const api::GroupOptions& options) const {
    return "{eps=" + Num(options.eps) + "}";
  }
  std::string operator()(const api::BicoOptions& options) const {
    return "{features=" + std::to_string(options.max_features) +
           ",threshold=" + Num(options.initial_threshold) +
           ",depth=" + std::to_string(options.max_depth) + "}";
  }
};

std::string SerializeOptions(const std::string& canonical,
                             const api::CoresetSpec& spec) {
  // Methods without knobs: monostate and the empty tag struct are the
  // same build.
  if (canonical == "uniform" || canonical == "lightweight" ||
      canonical == "sensitivity" || canonical == "stream_km") {
    return "none";
  }
  if (canonical == "welterweight") {
    auto options = Resolve<api::WelterweightOptions>(spec.options);
    // j = 0 is the paper's default ceil(log2 k) — the same build as
    // passing that value explicitly.
    if (options.j == 0) options.j = DefaultWelterweightJ(spec.k);
    return "welterweight" + AlternativeSerializer{}(options);
  }
  if (canonical == "fast_coreset") {
    return "fast" +
           AlternativeSerializer{}(Resolve<api::FastOptions>(spec.options));
  }
  if (canonical == "group_sampling") {
    return "group" +
           AlternativeSerializer{}(Resolve<api::GroupOptions>(spec.options));
  }
  if (canonical == "bico") {
    auto options = Resolve<api::BicoOptions>(spec.options);
    // max_features = 0 resolves to the effective coreset size (what the
    // adapter does).
    if (options.max_features == 0) options.max_features = spec.EffectiveM();
    return "bico" + AlternativeSerializer{}(options);
  }
  // Externally registered method: its ValidateSpec governs which tags it
  // accepts, so serialize the tag name AND the held values — two specs
  // differing in any option value must never share a cache key.
  return "tag:" + api::MethodOptionsName(spec.options) +
         std::visit(AlternativeSerializer{}, spec.options);
}

}  // namespace

api::FcStatusOr<std::string> CanonicalSpecKey(const api::CoresetSpec& spec) {
  api::FcStatusOr<const api::CoresetAlgorithm*> algo =
      api::Registry::Instance().Get(spec.method);
  if (!algo.ok()) return algo.status();
  const std::string canonical(algo.value()->Name());

  std::string key = "method=" + canonical;
  key += ";k=" + std::to_string(spec.k);
  key += ";m=" + std::to_string(spec.EffectiveM());
  key += ";z=" + std::to_string(spec.z);
  key += ";seed=" + std::to_string(spec.seed);
  key += ";w=";
  key += spec.weights.empty()
             ? "unit"
             : FingerprintHex(FingerprintDoubles(spec.weights));
  key += ";opt=" + SerializeOptions(canonical, spec);
  return key;
}

}  // namespace service
}  // namespace fastcoreset
