// Minimal JSON for the service protocol (tools/fc_serve speaks
// newline-delimited JSON over stdin/stdout). The container ships no JSON
// dependency, so this is a small self-contained value type + strict
// recursive-descent parser + escaping helpers: objects, arrays, strings
// (with \uXXXX incl. surrogate pairs), doubles, bools, null. Parse errors
// are recoverable FcStatus values — a malformed request line must produce
// an error response, never kill the server. Parsed strings are validated
// UTF-8: raw bytes are checked for well-formedness (no overlong forms,
// raw surrogates, or out-of-range code points) and lone \u surrogate
// halves are rejected, so anything that parses re-serializes as valid
// UTF-8. Nesting depth is capped and oversized numeric literals are
// rejected rather than rounded to infinity.

#ifndef FASTCORESET_SERVICE_JSON_H_
#define FASTCORESET_SERVICE_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "src/api/status.h"

namespace fastcoreset {
namespace service {

/// One JSON value. Numbers are doubles (the protocol's integral fields are
/// range-checked on extraction); object keys are kept sorted, which makes
/// serialized output stable.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  explicit JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  explicit JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  explicit JsonValue(Array value)
      : kind_(Kind::kArray), array_(std::move(value)) {}
  explicit JsonValue(Object value)
      : kind_(Kind::kObject), object_(std::move(value)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one is a programming error (the
  /// protocol layer checks kind() first and reports type mismatches as
  /// invalid_argument).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const Array& array() const;
  const Object& object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Strict whole-string parse: leading/trailing whitespace is allowed,
/// trailing garbage is an error, nesting depth is capped (a request line
/// must not be able to overflow the stack).
api::FcStatusOr<JsonValue> ParseJson(const std::string& text);

/// Appends `text` as a quoted JSON string with all required escapes.
void AppendJsonString(std::string* out, const std::string& text);

/// Shortest-round-trip rendering of a double (%.17g, with non-finite
/// values — which JSON cannot carry — rendered as null).
std::string JsonNumber(double value);

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_JSON_H_
