// The fc_serve wire protocol: newline-delimited JSON requests and
// responses over stdin/stdout. One request object per line, dispatched on
// its "verb":
//
//   {"verb":"register","name":"d","csv":"points.csv"}
//   {"verb":"register","name":"g","synthetic":{"generator":
//        "gaussian_mixture","n":5000,"d":8,"kappa":16,"seed":3}}
//   {"verb":"register","name":"t","points":[[0,0],[1,1],[2,2]]}
//   {"verb":"build","dataset":"d","method":"fast_coreset","k":10,
//        "m":400,"seed":1,"shards":4,"parallelism":2,
//        "options":{"use_jl":false}}
//   {"verb":"stats"}
//   {"verb":"evict","dataset":"d"}        (or {"verb":"evict","all":true})
//
// Every response is one JSON object line that leads with the protocol
// version ("v":1 — bump kProtocolVersion on breaking response-shape
// changes) and carries an "ok" field; failures carry the FcStatus
// taxonomy ({"v":1,"ok":false,"code":"invalid_argument","message":...})
// and never terminate the server. Build responses carry the cache
// status, shard-aggregated accounting, the scheduler's effective
// parallelism + critical-path wall clock, and a coreset fingerprint
// (bit-identity witness); "parallelism" caps the task-graph worker
// budget (0 = all workers) without changing the result. Pass
// "output":"path.csv" to also persist the coreset via SaveCoresetCsv.
// The stats verb reports cache counters, registered datasets, lifetime
// task-graph scheduler totals, and the attached transport's load gauges
// (queue_depth / sessions_active / requests_rejected — all zero in
// stdin/stdout mode). Unknown fields are rejected — a typoed knob must
// fail loudly, not silently fall back to a default.
//
// Transport-independent request context: every verb accepts an optional
// "id" member (string or number) — a client-chosen correlation token
// echoed verbatim as the response's "id" field, on success and error
// alike. Pipelined clients on a multiplexed transport use it to match
// responses to requests; the stdio transport is strictly in-order, so
// there it is just a convenience. Admission-control rejections
// (OverloadResponse) are emitted before the line is parsed and carry no
// echo.
//
// The marshalling lives in the library (not the tool) so tests drive the
// exact production surface: HandleRequestLine is fc_serve's whole loop
// body.

#ifndef FASTCORESET_SERVICE_PROTOCOL_H_
#define FASTCORESET_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/api/spec.h"
#include "src/api/status.h"
#include "src/service/json.h"
#include "src/service/service.h"

namespace fastcoreset {
namespace service {

/// Wire-protocol version every response line leads with ("v":1). Bump on
/// breaking response-shape changes; additive fields keep the version.
inline constexpr uint64_t kProtocolVersion = 1;

/// Marshals the spec-shaped fields of a request object (method, k, m, z,
/// seed, options) into a CoresetSpec. Absent fields keep their defaults;
/// wrong types, non-integral counts, unknown option keys, and options for
/// a method that takes none are invalid_argument.
api::FcStatusOr<api::CoresetSpec> SpecFromJson(const JsonValue& request);

/// Serializes a status as an error-response line (without trailing
/// newline).
std::string ErrorResponse(const api::FcStatus& status);

/// Structured admission-control rejection for a transport shedding load:
/// {"v":1,"ok":false,"code":"unavailable",...} with the queue gauges
/// that triggered the shed. Deliberately cheap — no JSON parse — so an
/// overloaded server can reject in O(line length).
std::string OverloadResponse(size_t queue_depth, size_t queue_limit);

/// Parses one request line, executes it against the service, and returns
/// the response line (without trailing newline). Never throws or aborts
/// on malformed input.
std::string HandleRequestLine(CoresetService& service,
                              const std::string& line);

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_PROTOCOL_H_
