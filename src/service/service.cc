#include "src/service/service.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "src/common/timer.h"
#include "src/service/fingerprint.h"
#include "src/service/spec_key.h"

namespace fastcoreset {
namespace service {

namespace {

void AppendLine(std::string* out, const std::string& key,
                const std::string& value) {
  out->append(key);
  out->append("=");
  out->append(value);
  out->append("\n");
}

std::string FormatSeconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", seconds);
  return buffer;
}

}  // namespace

std::string ServiceDiagnostics::ToString() const {
  std::string out;
  AppendLine(&out, "dataset", dataset);
  AppendLine(&out, "dataset_fingerprint", FingerprintHex(dataset_fingerprint));
  AppendLine(&out, "cache", cache_status);
  AppendLine(&out, "shards", std::to_string(shard_count));
  for (const ShardDiagnostics& shard : shards) {
    const std::string prefix = "shard." + std::to_string(shard.index);
    AppendLine(&out, prefix + ".rows",
               std::to_string(shard.row_begin) + ".." +
                   std::to_string(shard.row_end));
    AppendLine(&out, prefix + ".seed", std::to_string(shard.seed));
    AppendLine(&out, prefix + ".seconds",
               FormatSeconds(shard.build.total_seconds));
  }
  if (has_merge) {
    AppendLine(&out, "merge.reduce_ops",
               std::to_string(merge.stream_reduce_ops));
    AppendLine(&out, "merge.levels", std::to_string(merge.stream_levels));
    AppendLine(&out, "merge.points_processed",
               std::to_string(merge.points_processed));
    AppendLine(&out, "merge.seconds", FormatSeconds(merge.total_seconds));
  }
  AppendLine(&out, "points_processed", std::to_string(points_processed));
  AppendLine(&out, "bytes_processed", std::to_string(bytes_processed));
  AppendLine(&out, "build_seconds", FormatSeconds(build_seconds));
  AppendLine(&out, "total_seconds", FormatSeconds(total_seconds));
  return out;
}

api::FcStatusOr<BuildResponse> CoresetService::Build(
    const BuildRequest& request) {
  Timer timer;
  if (request.shards == 0) {
    return api::FcStatus::InvalidArgument("shards must be >= 1");
  }
  api::FcStatus status = api::ValidateSpec(request.spec);
  if (!status.ok()) return status;

  // The shared snapshot pins the dataset for the whole build even if a
  // concurrent Remove() unbinds the name.
  api::FcStatusOr<std::shared_ptr<const DatasetEntry>> dataset =
      store_.Get(request.dataset);
  if (!dataset.ok()) return dataset.status();
  const Matrix& points = dataset.value()->points;
  if (!request.spec.weights.empty() &&
      request.spec.weights.size() != points.rows()) {
    return api::FcStatus::InvalidArgument(
        "spec.weights size (" + std::to_string(request.spec.weights.size()) +
        ") does not match dataset '" + request.dataset + "' rows (" +
        std::to_string(points.rows()) + ")");
  }

  const size_t shards = EffectiveShardCount(points.rows(), request.shards);
  api::FcStatusOr<std::string> spec_key = CanonicalSpecKey(request.spec);
  if (!spec_key.ok()) return spec_key.status();

  ServiceDiagnostics diag;
  diag.dataset = request.dataset;
  diag.dataset_fingerprint = dataset.value()->fingerprint;
  diag.cache_key = "ds=" + FingerprintHex(dataset.value()->fingerprint) +
                   ";" + spec_key.value() + ";shards=" +
                   std::to_string(shards);
  diag.shard_count = shards;

  const bool caching = request.use_cache && options_.cache_capacity > 0;
  if (caching) {
    if (std::shared_ptr<const CachedBuild> cached =
            cache_.Lookup(diag.cache_key)) {
      // Hit: hand back the stored coreset. shards stays empty and
      // points_processed/build_seconds stay 0 — this request did no
      // build work, and the diagnostics prove it.
      diag.cache_status = "hit";
      diag.total_seconds = timer.Seconds();
      return BuildResponse{cached->coreset, std::move(diag)};
    }
    diag.cache_status = "miss";
  } else {
    diag.cache_status = "bypass";
  }

  Timer build_timer;
  api::FcStatusOr<ShardedBuildResult> built =
      BuildSharded(request.spec, points, shards);
  if (!built.ok()) return built.status();
  diag.build_seconds = build_timer.Seconds();
  diag.shards = std::move(built->shards);
  diag.has_merge = built->has_merge;
  diag.merge = std::move(built->merge);
  diag.points_processed = built->points_processed;
  diag.bytes_processed = built->bytes_processed;

  if (caching) {
    auto entry = std::make_shared<CachedBuild>();
    entry->key = diag.cache_key;
    entry->dataset_fingerprint = diag.dataset_fingerprint;
    entry->shard_count = shards;
    entry->coreset = built->coreset;  // Copy: the response owns the other.
    entry->shards = diag.shards;
    entry->has_merge = diag.has_merge;
    entry->merge = diag.merge;
    entry->build_seconds = diag.build_seconds;
    cache_.Insert(std::move(entry));
  }

  diag.total_seconds = timer.Seconds();
  return BuildResponse{std::move(built->coreset), std::move(diag)};
}

api::FcStatusOr<size_t> CoresetService::EvictDataset(
    const std::string& name) {
  api::FcStatusOr<std::shared_ptr<const DatasetEntry>> dataset =
      store_.Get(name);
  if (!dataset.ok()) return dataset.status();
  return cache_.EvictDataset(dataset.value()->fingerprint);
}

}  // namespace service
}  // namespace fastcoreset
