#include "src/service/service.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/common/parallel.h"
#include "src/common/timer.h"
#include "src/service/fingerprint.h"
#include "src/service/spec_key.h"

namespace fastcoreset {
namespace service {

namespace {

void AppendLine(std::string* out, const std::string& key,
                const std::string& value) {
  out->append(key);
  out->append("=");
  out->append(value);
  out->append("\n");
}

std::string FormatSeconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", seconds);
  return buffer;
}

}  // namespace

std::string ServiceDiagnostics::ToString() const {
  std::string out;
  AppendLine(&out, "dataset", dataset);
  AppendLine(&out, "dataset_fingerprint", FingerprintHex(dataset_fingerprint));
  AppendLine(&out, "cache", cache_status);
  AppendLine(&out, "shards", std::to_string(shard_count));
  if (parallelism_effective > 0) {
    AppendLine(&out, "parallelism",
               std::to_string(parallelism_effective) + " (requested " +
                   (parallelism_requested == 0
                        ? std::string("all")
                        : std::to_string(parallelism_requested)) +
                   ")");
    AppendLine(&out, "scheduler.tasks_executed",
               std::to_string(scheduler.tasks_executed));
    AppendLine(&out, "scheduler.max_concurrent_shards",
               std::to_string(scheduler.max_concurrent_shards));
    AppendLine(&out, "scheduler.queue_high_water",
               std::to_string(scheduler.queue_high_water));
  }
  for (const ShardDiagnostics& shard : shards) {
    const std::string prefix = "shard." + std::to_string(shard.index);
    AppendLine(&out, prefix + ".rows",
               std::to_string(shard.row_begin) + ".." +
                   std::to_string(shard.row_end));
    AppendLine(&out, prefix + ".seed", std::to_string(shard.seed));
    AppendLine(&out, prefix + ".seconds",
               FormatSeconds(shard.build.total_seconds));
    // The shard node's [start, end) offsets on the request wall clock;
    // concurrent shards show overlapping windows here.
    AppendLine(&out, prefix + ".window",
               FormatSeconds(shard.start_seconds) + ".." +
                   FormatSeconds(shard.end_seconds));
  }
  if (has_merge) {
    AppendLine(&out, "merge.reduce_ops",
               std::to_string(merge.stream_reduce_ops));
    AppendLine(&out, "merge.levels", std::to_string(merge.stream_levels));
    AppendLine(&out, "merge.points_processed",
               std::to_string(merge.points_processed));
    AppendLine(&out, "merge.seconds", FormatSeconds(merge.total_seconds));
  }
  AppendLine(&out, "points_processed", std::to_string(points_processed));
  AppendLine(&out, "bytes_processed", std::to_string(bytes_processed));
  // build_seconds sums per-shard + merge work (CPU-side);
  // critical_path_seconds is the graph run's wall clock. With concurrent
  // shards the former exceeds the latter — that gap is the overlap won.
  AppendLine(&out, "build_seconds", FormatSeconds(build_seconds));
  AppendLine(&out, "critical_path_seconds",
             FormatSeconds(critical_path_seconds));
  AppendLine(&out, "total_seconds", FormatSeconds(total_seconds));
  return out;
}

api::FcStatusOr<BuildResponse> CoresetService::Build(
    const BuildRequest& request) {
  Timer timer;
  if (request.shards == 0) {
    return api::FcStatus::InvalidArgument("shards must be >= 1");
  }
  if (request.parallelism > MaxParallelism()) {
    return api::FcStatus::InvalidArgument(
        "parallelism (" + std::to_string(request.parallelism) +
        ") exceeds the maximum worker budget (" +
        std::to_string(MaxParallelism()) + ")");
  }
  api::FcStatus status = api::ValidateSpec(request.spec);
  if (!status.ok()) return status;

  // The shared snapshot pins the dataset for the whole build even if a
  // concurrent Remove() unbinds the name.
  api::FcStatusOr<std::shared_ptr<const DatasetEntry>> dataset =
      store_.Get(request.dataset);
  if (!dataset.ok()) return dataset.status();
  const Matrix& points = dataset.value()->points;
  if (!request.spec.weights.empty() &&
      request.spec.weights.size() != points.rows()) {
    return api::FcStatus::InvalidArgument(
        "spec.weights size (" + std::to_string(request.spec.weights.size()) +
        ") does not match dataset '" + request.dataset + "' rows (" +
        std::to_string(points.rows()) + ")");
  }

  const size_t shards = EffectiveShardCount(points.rows(), request.shards);
  api::FcStatusOr<std::string> spec_key = CanonicalSpecKey(request.spec);
  if (!spec_key.ok()) return spec_key.status();

  ServiceDiagnostics diag;
  diag.dataset = request.dataset;
  diag.dataset_fingerprint = dataset.value()->fingerprint;
  diag.cache_key = "ds=" + FingerprintHex(dataset.value()->fingerprint) +
                   ";" + spec_key.value() + ";shards=" +
                   std::to_string(shards);
  diag.shard_count = shards;

  const bool caching = request.use_cache && options_.cache_capacity > 0;
  if (caching) {
    if (std::shared_ptr<const CachedBuild> cached =
            cache_.Lookup(diag.cache_key)) {
      // Hit: hand back the stored coreset. shards stays empty and
      // points_processed/build_seconds stay 0 — this request did no
      // build work, and the diagnostics prove it.
      diag.cache_status = "hit";
      diag.total_seconds = timer.Seconds();
      return BuildResponse{cached->coreset, std::move(diag)};
    }
    diag.cache_status = "miss";
  } else {
    diag.cache_status = "bypass";
  }

  api::FcStatusOr<ShardedBuildResult> built =
      BuildSharded(request.spec, points, shards, request.parallelism);
  if (!built.ok()) return built.status();
  diag.parallelism_requested = request.parallelism;
  diag.parallelism_effective = built->scheduler.parallelism;
  diag.scheduler = built->scheduler;
  diag.critical_path_seconds = built->critical_path_seconds;
  diag.shards = std::move(built->shards);
  diag.has_merge = built->has_merge;
  diag.merge = std::move(built->merge);
  diag.points_processed = built->points_processed;
  diag.bytes_processed = built->bytes_processed;
  // Summed CPU-side work: with concurrent shards this exceeds
  // critical_path_seconds — exactly the point of the comparison.
  for (const ShardDiagnostics& shard : diag.shards) {
    diag.build_seconds += shard.build.total_seconds;
  }
  if (diag.has_merge) diag.build_seconds += diag.merge.total_seconds;

  {
    MutexLock lock(scheduler_mutex_);
    ++scheduler_totals_.graphs_run;
    scheduler_totals_.tasks_executed += built->scheduler.tasks_executed;
    scheduler_totals_.max_concurrent_shards =
        std::max(scheduler_totals_.max_concurrent_shards,
                 built->scheduler.max_concurrent_shards);
    scheduler_totals_.queue_high_water =
        std::max(scheduler_totals_.queue_high_water,
                 built->scheduler.queue_high_water);
  }

  if (caching) {
    auto entry = std::make_shared<CachedBuild>();
    entry->key = diag.cache_key;
    entry->dataset_fingerprint = diag.dataset_fingerprint;
    entry->shard_count = shards;
    entry->coreset = built->coreset;  // Copy: the response owns the other.
    entry->shards = diag.shards;
    entry->has_merge = diag.has_merge;
    entry->merge = diag.merge;
    entry->build_seconds = diag.build_seconds;
    cache_.Insert(std::move(entry));
  }

  diag.total_seconds = timer.Seconds();
  return BuildResponse{std::move(built->coreset), std::move(diag)};
}

CoresetService::SchedulerTotals CoresetService::SchedulerStats() const {
  MutexLock lock(scheduler_mutex_);
  return scheduler_totals_;
}

void CoresetService::ReportTransportLoad(size_t queue_depth,
                                         size_t sessions_active) {
  MutexLock lock(scheduler_mutex_);
  transport_stats_.queue_depth = queue_depth;
  transport_stats_.sessions_active = sessions_active;
}

void CoresetService::AddTransportRejections(uint64_t count) {
  MutexLock lock(scheduler_mutex_);
  transport_stats_.requests_rejected += count;
}

CoresetService::TransportStats CoresetService::TransportLoad() const {
  MutexLock lock(scheduler_mutex_);
  return transport_stats_;
}

api::FcStatusOr<size_t> CoresetService::EvictDataset(
    const std::string& name) {
  api::FcStatusOr<std::shared_ptr<const DatasetEntry>> dataset =
      store_.Get(name);
  if (!dataset.ok()) return dataset.status();
  return cache_.EvictDataset(dataset.value()->fingerprint);
}

}  // namespace service
}  // namespace fastcoreset
