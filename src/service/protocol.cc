#include "src/service/protocol.h"

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/api/registry.h"
#include "src/data/coreset_io.h"
#include "src/service/fingerprint.h"

namespace fastcoreset {
namespace service {

namespace {

using api::FcStatus;
using api::FcStatusOr;

/// Incremental JSON-object response builder (keys are emitted in call
/// order; values are pre-escaped by the typed appenders).
class ObjectWriter {
 public:
  void String(const char* key, const std::string& value) {
    Key(key);
    AppendJsonString(&out_, value);
  }
  void Integer(const char* key, uint64_t value) {
    Key(key);
    out_ += std::to_string(value);
  }
  void Number(const char* key, double value) {
    Key(key);
    out_ += JsonNumber(value);
  }
  void Bool(const char* key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
  }
  /// Appends an already-serialized JSON value (array/object).
  void Raw(const char* key, const std::string& json) {
    Key(key);
    out_ += json;
  }
  std::string Finish() { return out_ + "}"; }

 private:
  void Key(const char* key) {
    out_ += first_ ? "{" : ",";
    first_ = false;
    AppendJsonString(&out_, key);
    out_ += ":";
  }
  std::string out_;
  bool first_ = true;
};

/// Top-level response writer: every response line (success or error)
/// leads with the protocol version, then the request's echoed "id"
/// correlation token (a pre-serialized JSON fragment; empty = absent).
/// Nested objects (stats sub-blocks) use a plain ObjectWriter — the
/// version belongs to the line, not to every object on it.
ObjectWriter ResponseWriter(const std::string& id_echo = std::string()) {
  ObjectWriter out;
  out.Integer("v", kProtocolVersion);
  if (!id_echo.empty()) out.Raw("id", id_echo);
  return out;
}

/// Error-response line carrying the request's id echo.
std::string ErrorResponseWithId(const api::FcStatus& status,
                                const std::string& id_echo) {
  ObjectWriter out = ResponseWriter(id_echo);
  out.Bool("ok", false);
  out.String("code", api::FcErrorCodeName(status.code()));
  out.String("message", status.message());
  return out.Finish();
}

FcStatus TypeError(const char* key, const char* expected) {
  return FcStatus::InvalidArgument("field '" + std::string(key) +
                                   "' must be a " + expected);
}

/// Readers: leave *out untouched when the key is absent, error on a
/// type/range mismatch. This keeps every protocol field optional with the
/// struct's own default.
FcStatus ReadString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* value = obj.Find(key);
  if (value == nullptr) return FcStatus::Ok();
  if (!value->is_string()) return TypeError(key, "string");
  *out = value->string_value();
  return FcStatus::Ok();
}

FcStatus ReadBool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* value = obj.Find(key);
  if (value == nullptr) return FcStatus::Ok();
  if (!value->is_bool()) return TypeError(key, "boolean");
  *out = value->bool_value();
  return FcStatus::Ok();
}

FcStatus ReadDouble(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* value = obj.Find(key);
  if (value == nullptr) return FcStatus::Ok();
  if (!value->is_number()) return TypeError(key, "number");
  *out = value->number_value();
  return FcStatus::Ok();
}

/// Non-negative integer fields (counts, seeds). Doubles above 2^53 or
/// with a fractional part are errors, not truncations.
FcStatus ReadUnsigned(const JsonValue& obj, const char* key, uint64_t* out) {
  const JsonValue* value = obj.Find(key);
  if (value == nullptr) return FcStatus::Ok();
  if (!value->is_number()) return TypeError(key, "number");
  const double number = value->number_value();
  if (number < 0.0 || number != std::floor(number) || number > 0x1p53) {
    return FcStatus::InvalidArgument("field '" + std::string(key) +
                                     "' must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(number);
  return FcStatus::Ok();
}

FcStatus ReadSizeT(const JsonValue& obj, const char* key, size_t* out) {
  uint64_t value = *out;
  FcStatus status = ReadUnsigned(obj, key, &value);
  if (!status.ok()) return status;
  *out = static_cast<size_t>(value);
  return FcStatus::Ok();
}

FcStatus ReadInt(const JsonValue& obj, const char* key, int* out) {
  const JsonValue* value = obj.Find(key);
  if (value == nullptr) return FcStatus::Ok();
  if (!value->is_number()) return TypeError(key, "number");
  const double number = value->number_value();
  if (number != std::floor(number) || number < -1e9 || number > 1e9) {
    return FcStatus::InvalidArgument("field '" + std::string(key) +
                                     "' must be an integer");
  }
  *out = static_cast<int>(number);
  return FcStatus::Ok();
}

/// Typo guard: every verb names its full field set; anything else is an
/// error rather than a silently ignored knob.
FcStatus CheckAllowedKeys(const JsonValue& obj,
                          std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.object()) {
    bool known = false;
    for (const char* candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      return FcStatus::InvalidArgument("unknown field '" + key + "'");
    }
  }
  return FcStatus::Ok();
}

/// Per-method options sub-object -> MethodOptions alternative.
FcStatusOr<api::MethodOptions> OptionsFromJson(const std::string& canonical,
                                               const JsonValue& options) {
  if (!options.is_object()) {
    return FcStatus::InvalidArgument("field 'options' must be an object");
  }
  if (canonical == "welterweight") {
    FcStatus status = CheckAllowedKeys(options, {"j"});
    if (!status.ok()) return status;
    api::WelterweightOptions out;
    status = ReadSizeT(options, "j", &out.j);
    if (!status.ok()) return status;
    return api::MethodOptions(out);
  }
  if (canonical == "fast_coreset") {
    FcStatus status = CheckAllowedKeys(
        options, {"use_jl", "jl_eps", "use_spread_reduction",
                  "center_correction", "correction_eps", "seeder",
                  "seeding_max_depth", "seeding_full_depth_tree",
                  "seeding_rejection_sampling", "seeding_max_rejections"});
    if (!status.ok()) return status;
    api::FastOptions out;
    if (!(status = ReadBool(options, "use_jl", &out.use_jl)).ok() ||
        !(status = ReadDouble(options, "jl_eps", &out.jl_eps)).ok() ||
        !(status = ReadBool(options, "use_spread_reduction",
                            &out.use_spread_reduction))
             .ok() ||
        !(status = ReadBool(options, "center_correction",
                            &out.center_correction))
             .ok() ||
        !(status = ReadDouble(options, "correction_eps",
                              &out.correction_eps))
             .ok() ||
        !(status = ReadInt(options, "seeding_max_depth",
                           &out.seeding_max_depth))
             .ok() ||
        !(status = ReadBool(options, "seeding_full_depth_tree",
                            &out.seeding_full_depth_tree))
             .ok() ||
        !(status = ReadBool(options, "seeding_rejection_sampling",
                            &out.seeding_rejection_sampling))
             .ok() ||
        !(status = ReadInt(options, "seeding_max_rejections",
                           &out.seeding_max_rejections))
             .ok()) {
      return status;
    }
    std::string seeder;
    status = ReadString(options, "seeder", &seeder);
    if (!status.ok()) return status;
    if (seeder == "tree_greedy") {
      out.seeder = api::FastSeeder::kTreeGreedy;
    } else if (!seeder.empty() && seeder != "fast_kmeans++") {
      return FcStatus::InvalidArgument(
          "seeder must be 'fast_kmeans++' or 'tree_greedy'");
    }
    return api::MethodOptions(out);
  }
  if (canonical == "group_sampling") {
    FcStatus status = CheckAllowedKeys(options, {"eps"});
    if (!status.ok()) return status;
    api::GroupOptions out;
    status = ReadDouble(options, "eps", &out.eps);
    if (!status.ok()) return status;
    return api::MethodOptions(out);
  }
  if (canonical == "bico") {
    FcStatus status = CheckAllowedKeys(
        options, {"max_features", "initial_threshold", "max_depth"});
    if (!status.ok()) return status;
    api::BicoOptions out;
    if (!(status = ReadSizeT(options, "max_features", &out.max_features))
             .ok() ||
        !(status = ReadDouble(options, "initial_threshold",
                              &out.initial_threshold))
             .ok() ||
        !(status = ReadInt(options, "max_depth", &out.max_depth)).ok()) {
      return status;
    }
    return api::MethodOptions(out);
  }
  if (options.object().empty()) return api::MethodOptions();
  return FcStatus::InvalidArgument("method '" + canonical +
                                   "' takes no options");
}

FcStatusOr<Matrix> PointsFromJson(const JsonValue& rows) {
  if (!rows.is_array() || rows.array().empty()) {
    return FcStatus::InvalidArgument(
        "field 'points' must be a non-empty array of rows");
  }
  const size_t n = rows.array().size();
  size_t d = 0;
  std::vector<double> data;
  for (size_t r = 0; r < n; ++r) {
    const JsonValue& row = rows.array()[r];
    if (!row.is_array() || row.array().empty()) {
      return FcStatus::InvalidArgument(
          "points rows must be non-empty arrays of numbers");
    }
    if (r == 0) {
      d = row.array().size();
      data.reserve(n * d);
    } else if (row.array().size() != d) {
      return FcStatus::InvalidArgument("points rows have ragged lengths");
    }
    for (const JsonValue& cell : row.array()) {
      if (!cell.is_number()) {
        return FcStatus::InvalidArgument("points cells must be numbers");
      }
      data.push_back(cell.number_value());
    }
  }
  return Matrix(n, d, std::move(data));
}

FcStatusOr<SyntheticSpec> SyntheticFromJson(const JsonValue& obj) {
  if (!obj.is_object()) {
    return FcStatus::InvalidArgument("field 'synthetic' must be an object");
  }
  FcStatus status = CheckAllowedKeys(
      obj, {"generator", "n", "d", "kappa", "gamma", "k", "r", "c",
            "separation", "seed"});
  if (!status.ok()) return status;
  SyntheticSpec spec;
  if (!(status = ReadString(obj, "generator", &spec.generator)).ok() ||
      !(status = ReadSizeT(obj, "n", &spec.n)).ok() ||
      !(status = ReadSizeT(obj, "d", &spec.d)).ok() ||
      !(status = ReadSizeT(obj, "kappa", &spec.kappa)).ok() ||
      !(status = ReadDouble(obj, "gamma", &spec.gamma)).ok() ||
      !(status = ReadSizeT(obj, "k", &spec.k)).ok() ||
      !(status = ReadSizeT(obj, "r", &spec.r)).ok() ||
      !(status = ReadSizeT(obj, "c", &spec.c)).ok() ||
      !(status = ReadDouble(obj, "separation", &spec.separation)).ok() ||
      !(status = ReadUnsigned(obj, "seed", &spec.seed)).ok()) {
    return status;
  }
  return spec;
}

std::string HandleRegister(CoresetService& service, const JsonValue& request,
                           const std::string& id_echo) {
  const auto fail = [&](const FcStatus& status) {
    return ErrorResponseWithId(status, id_echo);
  };
  FcStatus status = CheckAllowedKeys(
      request, {"verb", "id", "name", "csv", "points", "synthetic"});
  if (!status.ok()) return fail(status);
  std::string name;
  status = ReadString(request, "name", &name);
  if (!status.ok()) return fail(status);
  if (name.empty()) {
    return fail(
        FcStatus::InvalidArgument("register needs a non-empty 'name'"));
  }

  const JsonValue* csv = request.Find("csv");
  const JsonValue* points = request.Find("points");
  const JsonValue* synthetic = request.Find("synthetic");
  const int sources = (csv != nullptr) + (points != nullptr) +
                      (synthetic != nullptr);
  if (sources != 1) {
    return fail(FcStatus::InvalidArgument(
        "register needs exactly one of 'csv', 'points', 'synthetic'"));
  }

  if (csv != nullptr) {
    if (!csv->is_string()) return fail(TypeError("csv", "string"));
    status = service.datasets().RegisterCsv(name, csv->string_value());
  } else if (points != nullptr) {
    FcStatusOr<Matrix> matrix = PointsFromJson(*points);
    if (!matrix.ok()) return fail(matrix.status());
    status = service.datasets().RegisterMatrix(name,
                                               std::move(matrix.value()));
  } else {
    FcStatusOr<SyntheticSpec> spec = SyntheticFromJson(*synthetic);
    if (!spec.ok()) return fail(spec.status());
    status = service.datasets().RegisterSynthetic(name, spec.value());
  }
  if (!status.ok()) return fail(status);

  // Re-resolve through the store rather than assuming success: a
  // concurrent Remove() can unbind the name between the Register above
  // and this lookup, and .value() on the failed lookup would abort the
  // server (found by the service concurrency stress test under TSan).
  api::FcStatusOr<std::shared_ptr<const DatasetEntry>> entry_or =
      service.datasets().Get(name);
  if (!entry_or.ok()) return fail(entry_or.status());
  const std::shared_ptr<const DatasetEntry>& entry = entry_or.value();
  ObjectWriter out = ResponseWriter(id_echo);
  out.Bool("ok", true);
  out.String("verb", "register");
  out.String("name", name);
  out.Integer("rows", entry->points.rows());
  out.Integer("dims", entry->points.cols());
  out.String("fingerprint", FingerprintHex(entry->fingerprint));
  return out.Finish();
}

std::string HandleBuild(CoresetService& service, const JsonValue& request,
                        const std::string& id_echo) {
  const auto fail = [&](const FcStatus& status) {
    return ErrorResponseWithId(status, id_echo);
  };
  FcStatus status = CheckAllowedKeys(
      request, {"verb", "id", "dataset", "method", "k", "m", "z", "seed",
                "options", "shards", "parallelism", "use_cache", "output"});
  if (!status.ok()) return fail(status);

  BuildRequest build;
  status = ReadString(request, "dataset", &build.dataset);
  if (!status.ok()) return fail(status);
  if (build.dataset.empty()) {
    return fail(FcStatus::InvalidArgument("build needs a 'dataset' name"));
  }
  FcStatusOr<api::CoresetSpec> spec = SpecFromJson(request);
  if (!spec.ok()) return fail(spec.status());
  build.spec = std::move(spec.value());
  if (!(status = ReadSizeT(request, "shards", &build.shards)).ok() ||
      !(status = ReadSizeT(request, "parallelism", &build.parallelism))
           .ok() ||
      !(status = ReadBool(request, "use_cache", &build.use_cache)).ok()) {
    return fail(status);
  }
  std::string output;
  status = ReadString(request, "output", &output);
  if (!status.ok()) return fail(status);

  FcStatusOr<BuildResponse> response = service.Build(build);
  if (!response.ok()) return fail(response.status());
  const Coreset& coreset = response->coreset;
  const ServiceDiagnostics& diag = response->diagnostics;

  if (!output.empty() && !SaveCoresetCsv(output, coreset)) {
    return fail(
        FcStatus::Internal("could not write coreset to '" + output + "'"));
  }

  ObjectWriter out = ResponseWriter(id_echo);
  out.Bool("ok", true);
  out.String("verb", "build");
  out.String("dataset", build.dataset);
  out.String("cache", diag.cache_status);
  out.Integer("shards", diag.shard_count);
  // Effective scheduler budget: 0 on a cache hit (no graph ran).
  out.Integer("parallelism", diag.parallelism_effective);
  out.Integer("rows", coreset.size());
  out.Integer("dims", coreset.points.cols());
  out.Number("total_weight", coreset.TotalWeight());
  out.String("coreset_fingerprint",
             FingerprintHex(FingerprintCoreset(coreset)));
  out.Integer("points_processed", diag.points_processed);
  out.Integer("bytes_processed", diag.bytes_processed);
  // build_seconds is summed shard + merge work; critical_path_seconds is
  // the graph run's wall clock (they differ when shards overlap).
  out.Number("build_seconds", diag.build_seconds);
  out.Number("critical_path_seconds", diag.critical_path_seconds);
  out.Number("seconds", diag.total_seconds);
  if (!diag.shards.empty()) {
    std::string shard_seconds = "[";
    std::string shard_windows = "[";
    for (size_t i = 0; i < diag.shards.size(); ++i) {
      if (i > 0) {
        shard_seconds += ",";
        shard_windows += ",";
      }
      shard_seconds += JsonNumber(diag.shards[i].build.total_seconds);
      shard_windows += "[" + JsonNumber(diag.shards[i].start_seconds) +
                       "," + JsonNumber(diag.shards[i].end_seconds) + "]";
    }
    out.Raw("shard_seconds", shard_seconds + "]");
    // Per-shard [start, end) offsets on the request wall clock;
    // concurrent shards show overlapping windows.
    out.Raw("shard_windows", shard_windows + "]");
  }
  if (diag.has_merge) {
    out.Integer("merge_reduce_ops", diag.merge.stream_reduce_ops);
    out.Number("merge_seconds", diag.merge.total_seconds);
  }
  if (!output.empty()) out.String("output", output);
  return out.Finish();
}

std::string HandleStats(CoresetService& service, const JsonValue& request,
                        const std::string& id_echo) {
  FcStatus status = CheckAllowedKeys(request, {"verb", "id"});
  if (!status.ok()) return ErrorResponseWithId(status, id_echo);
  const CoresetCache::Stats stats = service.CacheStats();
  const CoresetService::SchedulerTotals totals = service.SchedulerStats();
  const CoresetService::TransportStats transport = service.TransportLoad();

  // Load gauges of whatever transport fronts the service; all zero in
  // stdin/stdout mode (the stdio loop has no queue and no sessions).
  ObjectWriter transport_out;
  transport_out.Integer("queue_depth", transport.queue_depth);
  transport_out.Integer("sessions_active", transport.sessions_active);
  transport_out.Integer("requests_rejected", transport.requests_rejected);

  ObjectWriter scheduler;
  scheduler.Integer("graphs_run", totals.graphs_run);
  scheduler.Integer("tasks_executed", totals.tasks_executed);
  scheduler.Integer("max_concurrent_shards", totals.max_concurrent_shards);
  scheduler.Integer("queue_high_water", totals.queue_high_water);

  ObjectWriter cache;
  cache.Integer("hits", stats.hits);
  cache.Integer("misses", stats.misses);
  cache.Integer("evictions", stats.evictions);
  cache.Integer("entries", stats.entries);
  cache.Integer("capacity", stats.capacity);

  std::string datasets = "[";
  bool first = true;
  for (const std::string& name : service.datasets().Names()) {
    const auto entry_or = service.datasets().Get(name);
    // A name can vanish between Names() and Get() under concurrent
    // removal; skip it rather than abort on .value().
    if (!entry_or.ok()) continue;
    const std::shared_ptr<const DatasetEntry>& entry = entry_or.value();
    ObjectWriter row;
    row.String("name", entry->name);
    row.String("source", entry->source);
    row.Integer("rows", entry->points.rows());
    row.Integer("dims", entry->points.cols());
    row.String("fingerprint", FingerprintHex(entry->fingerprint));
    if (!first) datasets += ",";
    first = false;
    datasets += row.Finish();
  }
  datasets += "]";

  ObjectWriter out = ResponseWriter(id_echo);
  out.Bool("ok", true);
  out.String("verb", "stats");
  out.Integer("protocol_version", kProtocolVersion);
  out.Raw("cache", cache.Finish());
  out.Raw("scheduler", scheduler.Finish());
  out.Raw("transport", transport_out.Finish());
  out.Raw("datasets", datasets);
  return out.Finish();
}

std::string HandleEvict(CoresetService& service, const JsonValue& request,
                        const std::string& id_echo) {
  const auto fail = [&](const FcStatus& status) {
    return ErrorResponseWithId(status, id_echo);
  };
  FcStatus status = CheckAllowedKeys(request,
                                     {"verb", "id", "dataset", "all"});
  if (!status.ok()) return fail(status);
  bool all = false;
  status = ReadBool(request, "all", &all);
  if (!status.ok()) return fail(status);
  std::string dataset;
  status = ReadString(request, "dataset", &dataset);
  if (!status.ok()) return fail(status);

  ObjectWriter out = ResponseWriter(id_echo);
  if (all ? !dataset.empty() : dataset.empty()) {
    // Exactly one of the two forms, spelled out.
    return fail(FcStatus::InvalidArgument(
        "evict needs either 'dataset' or 'all':true"));
  }
  if (all) {
    service.ClearCache();
    out.Bool("ok", true);
    out.String("verb", "evict");
    out.Bool("cleared", true);
    return out.Finish();
  }
  FcStatusOr<size_t> evicted = service.EvictDataset(dataset);
  if (!evicted.ok()) return fail(evicted.status());
  out.Bool("ok", true);
  out.String("verb", "evict");
  out.String("dataset", dataset);
  out.Integer("evicted", evicted.value());
  return out.Finish();
}

}  // namespace

FcStatusOr<api::CoresetSpec> SpecFromJson(const JsonValue& request) {
  api::CoresetSpec spec;
  FcStatus status = ReadString(request, "method", &spec.method);
  if (!status.ok()) return status;
  if (!(status = ReadSizeT(request, "k", &spec.k)).ok() ||
      !(status = ReadSizeT(request, "m", &spec.m)).ok() ||
      !(status = ReadInt(request, "z", &spec.z)).ok() ||
      !(status = ReadUnsigned(request, "seed", &spec.seed)).ok()) {
    return status;
  }
  if (const JsonValue* options = request.Find("options")) {
    FcStatusOr<const api::CoresetAlgorithm*> algo =
        api::Registry::Instance().Get(spec.method);
    if (!algo.ok()) return algo.status();
    FcStatusOr<api::MethodOptions> parsed =
        OptionsFromJson(std::string(algo.value()->Name()), *options);
    if (!parsed.ok()) return parsed.status();
    spec.options = std::move(parsed.value());
  }
  return spec;
}

std::string ErrorResponse(const api::FcStatus& status) {
  return ErrorResponseWithId(status, std::string());
}

std::string OverloadResponse(size_t queue_depth, size_t queue_limit) {
  ObjectWriter out = ResponseWriter();
  out.Bool("ok", false);
  out.String("code",
             api::FcErrorCodeName(api::FcErrorCode::kUnavailable));
  out.String("message",
             "server overloaded: request queue is full (" +
                 std::to_string(queue_depth) + "/" +
                 std::to_string(queue_limit) + "); retry later");
  out.Integer("queue_depth", queue_depth);
  out.Integer("queue_limit", queue_limit);
  return out.Finish();
}

std::string HandleRequestLine(CoresetService& service,
                              const std::string& line) {
  FcStatusOr<JsonValue> request = ParseJson(line);
  if (!request.ok()) return ErrorResponse(request.status());
  if (!request.value().is_object()) {
    return ErrorResponse(
        FcStatus::InvalidArgument("request must be a JSON object"));
  }
  // The correlation token is extracted before the verb so that every
  // outcome below — including "unknown verb" — carries the echo.
  std::string id_echo;
  if (const JsonValue* id = request.value().Find("id")) {
    if (id->is_string()) {
      AppendJsonString(&id_echo, id->string_value());
    } else if (id->is_number()) {
      id_echo = JsonNumber(id->number_value());
    } else {
      return ErrorResponse(FcStatus::InvalidArgument(
          "field 'id' must be a string or number"));
    }
  }
  std::string verb;
  FcStatus status = ReadString(request.value(), "verb", &verb);
  if (!status.ok()) return ErrorResponseWithId(status, id_echo);

  if (verb == "register") {
    return HandleRegister(service, request.value(), id_echo);
  }
  if (verb == "build") return HandleBuild(service, request.value(), id_echo);
  if (verb == "stats") return HandleStats(service, request.value(), id_echo);
  if (verb == "evict") return HandleEvict(service, request.value(), id_echo);
  return ErrorResponseWithId(
      FcStatus::InvalidArgument("unknown verb '" + verb +
                                "' (register | build | stats | evict)"),
      id_echo);
}

}  // namespace service
}  // namespace fastcoreset
