// CoresetCache: LRU cache over completed coreset builds. Coreset requests
// are deterministic functions of (dataset content, canonical spec, shard
// count) — the perfect shape for caching: a repeated request under heavy
// traffic costs a map lookup and a copy instead of an O(nd) build. Keys
// are the service's composite strings ("ds=<fingerprint>;<spec key>;
// shards=N"); values are immutable shared snapshots of the build, so a
// hit can be handed out while another thread inserts or evicts.

#ifndef FASTCORESET_SERVICE_CORESET_CACHE_H_
#define FASTCORESET_SERVICE_CORESET_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/api/diagnostics.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/service/shard_planner.h"

namespace fastcoreset {
namespace service {

/// Immutable snapshot of one completed build, shared between the cache
/// and any in-flight responses.
struct CachedBuild {
  std::string key;
  uint64_t dataset_fingerprint = 0;
  size_t shard_count = 1;
  Coreset coreset;
  /// The diagnostics of the build that populated the entry (what a hit
  /// saved): per-shard breakdown, merge accounting, wall clock.
  std::vector<ShardDiagnostics> shards;
  bool has_merge = false;
  api::BuildDiagnostics merge;
  double build_seconds = 0.0;
};

/// Thread-safe LRU cache with hit/miss/eviction counters. Capacity is an
/// entry count; capacity 0 disables insertion entirely (every lookup
/// misses).
class CoresetCache {
 public:
  explicit CoresetCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the entry and refreshes its recency, or nullptr. Counts one
  /// hit or miss.
  std::shared_ptr<const CachedBuild> Lookup(const std::string& key);

  /// Inserts (or replaces) the entry and evicts least-recently-used
  /// entries beyond capacity. No-op at capacity 0.
  void Insert(std::shared_ptr<const CachedBuild> entry);

  /// Drops every entry built from the given dataset content. Returns the
  /// number of entries dropped (counted as evictions).
  size_t EvictDataset(uint64_t dataset_fingerprint);

  /// Drops everything (counted as evictions).
  void Clear();

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
    size_t entries = 0;
    size_t capacity = 0;
  };
  Stats stats() const;

 private:
  struct Slot {
    std::shared_ptr<const CachedBuild> value;
    std::list<std::string>::iterator recency;  ///< Position in lru_.
  };

  /// Rank kCoresetCache (see tools/lint/lock_hierarchy.toml).
  mutable Mutex mutex_ FC_ACQUIRED_AFTER(lock_rank::tier_coreset_cache)
      FC_ACQUIRED_BEFORE(lock_rank::tier_registry){
          lock_rank::kCoresetCache};
  const size_t capacity_;  ///< Immutable after construction: lock-free reads.
  /// Front = most recently used.
  std::list<std::string> lru_ FC_GUARDED_BY(mutex_);
  std::unordered_map<std::string, Slot> entries_ FC_GUARDED_BY(mutex_);
  size_t hits_ FC_GUARDED_BY(mutex_) = 0;
  size_t misses_ FC_GUARDED_BY(mutex_) = 0;
  size_t evictions_ FC_GUARDED_BY(mutex_) = 0;
};

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_CORESET_CACHE_H_
