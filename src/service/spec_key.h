// Canonical cache-key serialization of a CoresetSpec. Two specs that
// describe the same build must map to the same key string, so the key
// canonicalizes everything the spec leaves implicit: the method name is
// resolved through the registry (alias "fast" == "fast_coreset"), m = 0
// resolves to the 40k default, monostate options resolve to the method's
// defaults (and defaulted knobs inside them — welterweight j = 0, bico
// max_features = 0 — to their effective values), and input weights
// collapse to a content fingerprint. Anything that changes the built
// coreset must land in the key; anything that cannot must not.

#ifndef FASTCORESET_SERVICE_SPEC_KEY_H_
#define FASTCORESET_SERVICE_SPEC_KEY_H_

#include <string>

#include "src/api/spec.h"
#include "src/api/status.h"

namespace fastcoreset {
namespace service {

/// Serializes a *validated* spec to its canonical key. Fails with the
/// registry's kNotFound when the method name is unknown (callers validate
/// first, so in the service flow this never fires after validation).
api::FcStatusOr<std::string> CanonicalSpecKey(const api::CoresetSpec& spec);

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_SPEC_KEY_H_
