// CoresetService: the long-lived, request-driven front over the one-shot
// api::Build. It composes the service-layer parts — DatasetStore (named
// data + content fingerprints), ShardPlanner (deterministic sharded
// merge-&-reduce builds), CoresetCache (LRU over completed builds) — into
// one entry point: validate the request, resolve the dataset, consult the
// cache, build on miss, and return the coreset with shard-aggregated
// diagnostics that say exactly what the request cost (and what a cache
// hit saved). tools/fc_serve.cc exposes this over newline-delimited JSON.

#ifndef FASTCORESET_SERVICE_SERVICE_H_
#define FASTCORESET_SERVICE_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/fastcoreset.h"
#include "src/service/coreset_cache.h"
#include "src/service/dataset_store.h"
#include "src/service/shard_planner.h"

namespace fastcoreset {
namespace service {

struct ServiceOptions {
  /// LRU capacity in cached builds. 0 disables caching (every request
  /// reports cache="bypass").
  size_t cache_capacity = 32;
};

/// One build request: a registered dataset by name, a CoresetSpec, and
/// the shard count. Requests are plain data — the JSON protocol marshals
/// into this struct and nothing else.
struct BuildRequest {
  std::string dataset;
  api::CoresetSpec spec;
  size_t shards = 1;
  /// false skips both cache lookup and insertion (cache="bypass") — for
  /// measurements and cache-busting rebuilds.
  bool use_cache = true;
};

/// What the service did for one request, aggregated across shards. On a
/// cache hit `shards` is empty and points_processed/build_seconds are 0 —
/// the proof that no rebuild happened.
struct ServiceDiagnostics {
  std::string dataset;
  uint64_t dataset_fingerprint = 0;
  std::string cache_key;     ///< Full composite key the cache used.
  std::string cache_status;  ///< "hit" | "miss" | "bypass".
  size_t shard_count = 1;    ///< Effective (clamped) shard count.

  /// Per-shard build diagnostics (stage times included); empty on a hit.
  std::vector<ShardDiagnostics> shards;
  bool has_merge = false;
  api::BuildDiagnostics merge;  ///< Merge-&-reduce accounting (shards > 1).

  size_t points_processed = 0;  ///< Rows this request fed through builders.
  size_t bytes_processed = 0;
  double build_seconds = 0.0;  ///< Build work done by this request.
  double total_seconds = 0.0;  ///< Request wall clock (lookup included).

  /// Multi-line key=value report in the BuildDiagnostics style.
  std::string ToString() const;
};

/// A request's product.
struct BuildResponse {
  Coreset coreset;
  ServiceDiagnostics diagnostics;
};

class CoresetService {
 public:
  explicit CoresetService(ServiceOptions options = {})
      : options_(options), cache_(options.cache_capacity) {}

  /// Dataset registration/lookup surface (register/remove/list).
  DatasetStore& datasets() { return store_; }
  const DatasetStore& datasets() const { return store_; }

  /// Serves one request. Same request = bit-identical coreset, whether it
  /// came from the cache or a rebuild, at any FC_THREADS. All failures
  /// (unknown dataset, invalid spec, zero shards) are non-ok statuses.
  api::FcStatusOr<BuildResponse> Build(const BuildRequest& request);

  CoresetCache::Stats CacheStats() const { return cache_.stats(); }

  /// Drops cached builds of the named dataset's content; kNotFound when
  /// the name is not registered.
  api::FcStatusOr<size_t> EvictDataset(const std::string& name);

  void ClearCache() { cache_.Clear(); }

 private:
  ServiceOptions options_;
  DatasetStore store_;
  CoresetCache cache_;
};

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_SERVICE_H_
