// CoresetService: the long-lived, request-driven front over the one-shot
// api::Build. It composes the service-layer parts — DatasetStore (named
// data + content fingerprints), ShardPlanner (deterministic sharded
// merge-&-reduce builds), CoresetCache (LRU over completed builds) — into
// one entry point: validate the request, resolve the dataset, consult the
// cache, build on miss, and return the coreset with shard-aggregated
// diagnostics that say exactly what the request cost (and what a cache
// hit saved). tools/fc_serve.cc exposes this over newline-delimited JSON.

#ifndef FASTCORESET_SERVICE_SERVICE_H_
#define FASTCORESET_SERVICE_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/fastcoreset.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/service/coreset_cache.h"
#include "src/service/dataset_store.h"
#include "src/service/shard_planner.h"

namespace fastcoreset {
namespace service {

struct ServiceOptions {
  /// LRU capacity in cached builds. 0 disables caching (every request
  /// reports cache="bypass").
  size_t cache_capacity = 32;
};

/// One build request: a registered dataset by name, a CoresetSpec, and
/// the shard count. Requests are plain data — the JSON protocol marshals
/// into this struct and nothing else.
struct BuildRequest {
  std::string dataset;
  api::CoresetSpec spec;
  size_t shards = 1;
  /// Parallelism budget for the task-graph scheduler that runs the shard
  /// build: caps how many shards build concurrently (0 = all workers,
  /// GetNumThreads()); the shards in flight partition the pool's workers
  /// between them. 1 = the sequential reference walk — one shard at a
  /// time, each on the full pool. Validated against MaxParallelism();
  /// NEVER part of the cache key, because the budget only changes the
  /// schedule — the result is bit-identical at any value.
  size_t parallelism = 0;
  /// false skips both cache lookup and insertion (cache="bypass") — for
  /// measurements and cache-busting rebuilds.
  bool use_cache = true;
};

/// What the service did for one request, aggregated across shards. On a
/// cache hit `shards` is empty and points_processed/build_seconds are 0 —
/// the proof that no rebuild happened.
struct ServiceDiagnostics {
  std::string dataset;
  uint64_t dataset_fingerprint = 0;
  std::string cache_key;     ///< Full composite key the cache used.
  std::string cache_status;  ///< "hit" | "miss" | "bypass".
  size_t shard_count = 1;    ///< Effective (clamped) shard count.

  size_t parallelism_requested = 0;  ///< Budget as asked for (0 = all).
  /// Budget the scheduler actually ran with (request clamped to the
  /// pool); 0 on a cache hit — no graph ran.
  size_t parallelism_effective = 0;
  ShardSchedulerStats scheduler;  ///< Task-graph run counters; zero on a hit.

  /// Per-shard build diagnostics (stage times included); empty on a hit.
  std::vector<ShardDiagnostics> shards;
  bool has_merge = false;
  api::BuildDiagnostics merge;  ///< Merge-&-reduce accounting (shards > 1).

  size_t points_processed = 0;  ///< Rows this request fed through builders.
  size_t bytes_processed = 0;
  /// Summed CPU-side build work: Σ shard build seconds + merge seconds.
  /// With concurrent shards this EXCEEDS elapsed time — compare against
  /// critical_path_seconds to see the overlap.
  double build_seconds = 0.0;
  /// Wall clock of the task-graph run (the critical path through the
  /// overlapped shard windows plus the merge); 0 on a cache hit.
  double critical_path_seconds = 0.0;
  double total_seconds = 0.0;  ///< Request wall clock (lookup included).

  /// Multi-line key=value report in the BuildDiagnostics style.
  std::string ToString() const;
};

/// A request's product.
struct BuildResponse {
  Coreset coreset;
  ServiceDiagnostics diagnostics;
};

class CoresetService {
 public:
  explicit CoresetService(ServiceOptions options = {})
      : options_(options), cache_(options.cache_capacity) {}

  /// Dataset registration/lookup surface (register/remove/list).
  DatasetStore& datasets() { return store_; }
  const DatasetStore& datasets() const { return store_; }

  /// Serves one request. Same request = bit-identical coreset, whether it
  /// came from the cache or a rebuild, at any FC_THREADS. All failures
  /// (unknown dataset, invalid spec, zero shards) are non-ok statuses.
  api::FcStatusOr<BuildResponse> Build(const BuildRequest& request);

  CoresetCache::Stats CacheStats() const { return cache_.stats(); }

  /// Lifetime task-graph totals across every build this service ran
  /// (cache hits run no graph and add nothing). High-water fields are
  /// maxima across runs; the rest are sums. For the stats verb.
  struct SchedulerTotals {
    size_t graphs_run = 0;
    size_t tasks_executed = 0;
    size_t max_concurrent_shards = 0;
    size_t queue_high_water = 0;
  };
  SchedulerTotals SchedulerStats() const;

  /// Load gauges + rejection counter reported by whatever transport
  /// fronts this service (tools/fc_serve's socket listener). The service
  /// itself never writes them — it is transport-agnostic — but it owns
  /// the storage so the stats verb can report load without the protocol
  /// layer knowing which transport is attached. Gauges are
  /// last-write-wins snapshots; requests_rejected accumulates.
  struct TransportStats {
    size_t queue_depth = 0;       ///< Requests queued, not yet executing.
    size_t sessions_active = 0;   ///< Connected client sessions.
    uint64_t requests_rejected = 0;  ///< Admission-control rejections.
  };
  /// Transport hooks: set the current load gauges / count a shed request.
  void ReportTransportLoad(size_t queue_depth, size_t sessions_active);
  void AddTransportRejections(uint64_t count);
  TransportStats TransportLoad() const;

  /// Drops cached builds of the named dataset's content; kNotFound when
  /// the name is not registered.
  api::FcStatusOr<size_t> EvictDataset(const std::string& name);

  void ClearCache() { cache_.Clear(); }

 private:
  ServiceOptions options_;
  DatasetStore store_;
  CoresetCache cache_;
  /// Rank kServiceScheduler: the outermost lock of the service layer —
  /// only the net transport's kNetServer mutex ranks outside it (see
  /// tools/lint/lock_hierarchy.toml).
  mutable Mutex scheduler_mutex_
      FC_ACQUIRED_AFTER(lock_rank::tier_service_scheduler)
          FC_ACQUIRED_BEFORE(lock_rank::tier_dataset_store){
              lock_rank::kServiceScheduler};
  SchedulerTotals scheduler_totals_ FC_GUARDED_BY(scheduler_mutex_);
  TransportStats transport_stats_ FC_GUARDED_BY(scheduler_mutex_);
};

}  // namespace service
}  // namespace fastcoreset

#endif  // FASTCORESET_SERVICE_SERVICE_H_
