#include "src/data/real_like.h"

#include <algorithm>
#include <cmath>

#include "src/data/generators.h"

namespace fastcoreset {

namespace {

constexpr double kNoiseScale = 1e-3;

size_t Scaled(size_t base, double scale) {
  return std::max<size_t>(1000, static_cast<size_t>(
                                    static_cast<double>(base) * scale));
}

/// Gaussian blobs with explicit sizes, centers in [0, box]^d.
Matrix Blobs(const std::vector<size_t>& sizes, size_t d, double box,
             double std_dev, Rng& rng) {
  size_t n = 0;
  for (size_t s : sizes) n += s;
  Matrix points(n, d);
  std::vector<double> center(d);
  size_t row_idx = 0;
  for (size_t size : sizes) {
    for (double& x : center) x = rng.Uniform(0.0, box);
    for (size_t p = 0; p < size; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) {
        row[j] = center[j] + std_dev * rng.NextGaussian();
      }
    }
  }
  AddUniformNoise(&points, kNoiseScale, rng);
  return points;
}

std::vector<size_t> SplitEvenly(size_t n, size_t parts) {
  std::vector<size_t> sizes(parts, n / parts);
  sizes[0] += n - (n / parts) * parts;
  return sizes;
}

}  // namespace

Dataset MakeAdultLike(size_t n, Rng& rng) {
  // Benign tabular data: ~10 moderately separated clusters, mild (2:1)
  // imbalance. Every sampling method should tie here (Table 2 row Adult).
  std::vector<size_t> sizes;
  size_t remaining = n;
  for (int i = 0; i < 9; ++i) {
    const size_t take = std::max<size_t>(1, remaining / (12 - i));
    sizes.push_back(take * (i % 2 == 0 ? 2 : 1) <= remaining
                        ? take * (i % 2 == 0 ? 2 : 1)
                        : remaining);
    remaining -= sizes.back();
  }
  sizes.push_back(remaining);
  return Dataset{"Adult", Blobs(sizes, 14, 40.0, 2.0, rng), 100};
}

Dataset MakeMnistLike(size_t n, Rng& rng) {
  // High-dimensional well-separated digit-like blobs: each class lives on
  // a sparse support (most "pixels" near zero), classes roughly balanced.
  const size_t d = 784;
  const size_t classes = 10;
  const std::vector<size_t> sizes = SplitEvenly(n, classes);
  Matrix points(n, d);
  size_t row_idx = 0;
  std::vector<double> pattern(d);
  for (size_t cls = 0; cls < classes; ++cls) {
    // ~15% active pixels per class with intensity in [0.5, 1].
    for (double& x : pattern) {
      x = rng.NextDouble() < 0.15 ? rng.Uniform(0.5, 1.0) : 0.0;
    }
    for (size_t p = 0; p < sizes[cls]; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) {
        const double base = pattern[j];
        row[j] = base > 0.0 ? std::max(0.0, base + 0.1 * rng.NextGaussian())
                            : 0.0;
      }
    }
  }
  AddUniformNoise(&points, kNoiseScale, rng);
  return Dataset{"MNIST", std::move(points), 100};
}

Dataset MakeStarLike(size_t n, Rng& rng) {
  // A shooting-star image: almost all pixels are dark (one huge tight
  // blob), a small streak cluster and a tiny bright head far away. The
  // bright head is a fixed ~25 pixels, so at the paper's sampling rates a
  // uniform sample misses it with constant probability — the source of
  // Star's 8.46x uniform failure in Table 2.
  const size_t tiny = 25;
  const size_t small = std::max<size_t>(100, n / 200);  // ~0.5%
  const size_t dark = n - tiny - small;
  Matrix points(n, 3);
  size_t row_idx = 0;
  for (size_t i = 0; i < dark; ++i) {
    auto row = points.Row(row_idx++);
    for (int j = 0; j < 3; ++j) row[j] = 0.5 * rng.NextGaussian();
  }
  for (size_t i = 0; i < small; ++i) {
    auto row = points.Row(row_idx++);
    row[0] = 120.0 + rng.NextGaussian();
    row[1] = 80.0 + rng.NextGaussian();
    row[2] = 60.0 + rng.NextGaussian();
  }
  for (size_t i = 0; i < tiny; ++i) {
    auto row = points.Row(row_idx++);
    row[0] = 420.0 + 0.5 * rng.NextGaussian();
    row[1] = 400.0 + 0.5 * rng.NextGaussian();
    row[2] = 380.0 + 0.5 * rng.NextGaussian();
  }
  AddUniformNoise(&points, kNoiseScale, rng);
  return Dataset{"Star", std::move(points), 100};
}

Dataset MakeSongLike(size_t n, Rng& rng) {
  // Diffuse audio features: ~25 anisotropic blobs whose radii follow a
  // lognormal (heavy tail), overlapping considerably.
  const size_t d = 90;
  const size_t blobs = 25;
  const std::vector<size_t> sizes = SplitEvenly(n, blobs);
  Matrix points(n, d);
  std::vector<double> center(d);
  std::vector<double> axis_scale(d);
  size_t row_idx = 0;
  for (size_t b = 0; b < blobs; ++b) {
    for (double& x : center) x = rng.Uniform(0.0, 60.0);
    const double radius = std::exp(1.0 + 0.8 * rng.NextGaussian());
    for (double& s : axis_scale) s = radius * rng.Uniform(0.3, 1.7);
    for (size_t p = 0; p < sizes[b]; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) {
        row[j] = center[j] + axis_scale[j] * rng.NextGaussian();
      }
    }
  }
  AddUniformNoise(&points, kNoiseScale, rng);
  return Dataset{"Song", std::move(points), 100};
}

Dataset MakeCovtypeLike(size_t n, Rng& rng) {
  // Seven cover types with moderate imbalance (two classes dominate, as in
  // the real data) but no extreme outliers.
  std::vector<size_t> sizes;
  const double fractions[7] = {0.36, 0.33, 0.12, 0.09, 0.05, 0.03, 0.02};
  size_t assigned = 0;
  for (int i = 0; i < 6; ++i) {
    sizes.push_back(static_cast<size_t>(fractions[i] * n));
    assigned += sizes.back();
  }
  sizes.push_back(n - assigned);
  return Dataset{"Cover Type", Blobs(sizes, 54, 80.0, 4.0, rng), 100};
}

Dataset MakeTaxiLike(size_t n, Rng& rng) {
  // 2-D pickup locations: Zipf-sized street clusters in the city box plus
  // a handful of tiny remote clusters (airports / suburbs) far outside.
  // The remote mass is what uniform sampling misses.
  const size_t remote_clusters = 6;
  const size_t remote_each = std::max<size_t>(10, n / 2000);
  const size_t city_n = n - remote_clusters * remote_each;
  const size_t city_clusters = 200;

  // Zipf(1.5) sizes over city clusters.
  std::vector<double> raw(city_clusters);
  double total = 0.0;
  for (size_t i = 0; i < city_clusters; ++i) {
    raw[i] = 1.0 / std::pow(static_cast<double>(i + 1), 1.5);
    total += raw[i];
  }
  std::vector<size_t> sizes(city_clusters);
  size_t assigned = 0;
  for (size_t i = 0; i < city_clusters; ++i) {
    sizes[i] = std::max<size_t>(
        1, static_cast<size_t>(raw[i] / total * static_cast<double>(city_n)));
    assigned += sizes[i];
  }
  while (assigned > city_n) {
    sizes[0]--;
    assigned--;
  }
  sizes[0] += city_n - assigned;

  Matrix points(n, 2);
  size_t row_idx = 0;
  for (size_t c = 0; c < city_clusters; ++c) {
    const double cx = rng.Uniform(0.0, 100.0);
    const double cy = rng.Uniform(0.0, 100.0);
    const double spread = rng.Uniform(0.05, 1.5);
    for (size_t p = 0; p < sizes[c]; ++p) {
      auto row = points.Row(row_idx++);
      row[0] = cx + spread * rng.NextGaussian();
      row[1] = cy + spread * rng.NextGaussian();
    }
  }
  for (size_t c = 0; c < remote_clusters; ++c) {
    const double angle = rng.Uniform(0.0, 2.0 * M_PI);
    const double dist = rng.Uniform(3000.0, 8000.0);
    const double cx = 50.0 + dist * std::cos(angle);
    const double cy = 50.0 + dist * std::sin(angle);
    for (size_t p = 0; p < remote_each; ++p) {
      auto row = points.Row(row_idx++);
      row[0] = cx + 0.5 * rng.NextGaussian();
      row[1] = cy + 0.5 * rng.NextGaussian();
    }
  }
  FC_CHECK_EQ(row_idx, n);
  AddUniformNoise(&points, kNoiseScale, rng);
  return Dataset{"Taxi", std::move(points), 100};
}

Dataset MakeCensusLike(size_t n, Rng& rng) {
  // Large benign mixture: 20 balanced clusters in 68 dims.
  return Dataset{"Census", Blobs(SplitEvenly(n, 20), 68, 60.0, 3.0, rng),
                 100};
}

std::vector<Dataset> RealLikeSuite(double scale, Rng& rng) {
  std::vector<Dataset> suite;
  suite.push_back(MakeAdultLike(Scaled(20000, scale), rng));
  suite.push_back(MakeMnistLike(Scaled(10000, scale), rng));
  suite.push_back(MakeStarLike(Scaled(100000, scale), rng));
  suite.push_back(MakeSongLike(Scaled(30000, scale), rng));
  suite.push_back(MakeCovtypeLike(Scaled(30000, scale), rng));
  suite.push_back(MakeTaxiLike(Scaled(50000, scale), rng));
  suite.push_back(MakeCensusLike(Scaled(50000, scale), rng));
  return suite;
}

std::vector<Dataset> ArtificialSuite(double scale, Rng& rng) {
  const size_t n = Scaled(50000, scale);
  std::vector<Dataset> suite;
  // c = 5 outliers: at the paper's m = 40k sampling rates a uniform sample
  // misses all of them with constant probability, producing the huge
  // mean-and-variance cells of Table 4.
  suite.push_back(
      Dataset{"c-outlier", GenerateCOutlier(n, 5, 50, 1e4, rng), 100});
  suite.push_back(
      Dataset{"Geometric", GenerateGeometric(100, 100, 2, 50, rng), 100});
  suite.push_back(Dataset{
      "Gaussian Mix.", GenerateGaussianMixture(n, 50, 50, 3.0, rng), 100});
  suite.push_back(Dataset{"Benchmark", GenerateBenchmark(n, 100, rng), 100});
  return suite;
}

}  // namespace fastcoreset
