// Minimal CSV I/O so users can run the library on their own data and so
// benches can export point clouds (Figure 3) for external plotting.

#ifndef FASTCORESET_DATA_CSV_LOADER_H_
#define FASTCORESET_DATA_CSV_LOADER_H_

#include <optional>
#include <string>

#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Loads a headerless comma-separated numeric matrix. Returns nullopt on
/// I/O or parse errors (ragged rows, non-numeric cells).
std::optional<Matrix> LoadCsv(const std::string& path);

/// Writes `points` as comma-separated rows at full double precision
/// (%.17g), so LoadCsv(SaveCsv(x)) reproduces x bit-identically. Returns
/// false on I/O error.
bool SaveCsv(const std::string& path, const Matrix& points);

}  // namespace fastcoreset

#endif  // FASTCORESET_DATA_CSV_LOADER_H_
