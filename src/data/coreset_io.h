// Coreset serialization: a CSV sidecar format (point columns + one weight
// column, matching fc_compress's output) so compressions can be stored,
// shipped between MapReduce workers, or reloaded into a later session.

#ifndef FASTCORESET_DATA_CORESET_IO_H_
#define FASTCORESET_DATA_CORESET_IO_H_

#include <optional>
#include <string>

#include "src/core/coreset.h"

namespace fastcoreset {

/// Writes `coreset` as CSV rows: d point columns followed by the weight,
/// at full double precision — a save/load cycle reproduces points and
/// weights bit-identically (mixed-magnitude weights included), so
/// TotalWeight() and downstream costs are unchanged by persistence.
/// Source indices are not persisted (they are session-local). Returns
/// false on I/O failure.
bool SaveCoresetCsv(const std::string& path, const Coreset& coreset);

/// Reads a coreset written by SaveCoresetCsv (last column = weight).
/// Indices are set to Coreset::kSyntheticIndex. Returns nullopt on parse
/// errors or non-positive weights.
std::optional<Coreset> LoadCoresetCsv(const std::string& path);

}  // namespace fastcoreset

#endif  // FASTCORESET_DATA_CORESET_IO_H_
