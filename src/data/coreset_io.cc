#include "src/data/coreset_io.h"

#include "src/data/csv_loader.h"

namespace fastcoreset {

bool SaveCoresetCsv(const std::string& path, const Coreset& coreset) {
  Matrix out(coreset.size(), coreset.points.cols() + 1);
  for (size_t r = 0; r < coreset.size(); ++r) {
    for (size_t j = 0; j < coreset.points.cols(); ++j) {
      out.At(r, j) = coreset.points.At(r, j);
    }
    out.At(r, coreset.points.cols()) = coreset.weights[r];
  }
  return SaveCsv(path, out);
}

std::optional<Coreset> LoadCoresetCsv(const std::string& path) {
  const std::optional<Matrix> raw = LoadCsv(path);
  if (!raw.has_value() || raw->cols() < 2) return std::nullopt;

  Coreset coreset;
  const size_t d = raw->cols() - 1;
  coreset.points = Matrix(raw->rows(), d);
  coreset.weights.reserve(raw->rows());
  coreset.indices.assign(raw->rows(), Coreset::kSyntheticIndex);
  for (size_t r = 0; r < raw->rows(); ++r) {
    for (size_t j = 0; j < d; ++j) coreset.points.At(r, j) = raw->At(r, j);
    const double weight = raw->At(r, d);
    if (weight <= 0.0) return std::nullopt;
    coreset.weights.push_back(weight);
  }
  return coreset;
}

}  // namespace fastcoreset
