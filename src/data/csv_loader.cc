#include "src/data/csv_loader.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace fastcoreset {

std::optional<Matrix> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::vector<double> data;
  size_t cols = 0;
  size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t row_cols = 0;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) return std::nullopt;  // Non-numeric cell.
      data.push_back(value);
      ++row_cols;
    }
    if (rows == 0) {
      cols = row_cols;
    } else if (row_cols != cols) {
      return std::nullopt;  // Ragged row.
    }
    ++rows;
  }
  if (rows == 0 || cols == 0) return std::nullopt;
  return Matrix(rows, cols, std::move(data));
}

bool SaveCsv(const std::string& path, const Matrix& points) {
  std::ofstream out(path);
  if (!out) return false;
  // %.17g: 17 significant digits round-trip every double exactly, so a
  // save/load cycle is bit-identical (ostream's default 6 digits silently
  // rounded coreset weights and coordinates).
  char cell[40];
  for (size_t i = 0; i < points.rows(); ++i) {
    const auto row = points.Row(i);
    for (size_t j = 0; j < points.cols(); ++j) {
      if (j) out << ',';
      std::snprintf(cell, sizeof(cell), "%.17g", row[j]);
      out << cell;
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace fastcoreset
