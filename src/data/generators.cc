#include "src/data/generators.h"

#include <algorithm>
#include <cmath>

namespace fastcoreset {

namespace {

constexpr double kNoiseScale = 1e-3;

}  // namespace

void AddUniformNoise(Matrix* points, double scale, Rng& rng) {
  FC_CHECK(points != nullptr);
  for (double& x : points->data()) x += rng.Uniform(0.0, scale);
}

Matrix GenerateCOutlier(size_t n, size_t c, size_t d, double separation,
                        Rng& rng) {
  FC_CHECK_GT(n, c);
  FC_CHECK_GT(d, 0u);
  Matrix points(n, d);

  // Random unit direction for the outlier location.
  std::vector<double> direction(d);
  double norm_sq = 0.0;
  for (double& x : direction) {
    x = rng.NextGaussian();
    norm_sq += x * x;
  }
  const double inv_norm = 1.0 / std::sqrt(std::max(norm_sq, 1e-300));
  for (double& x : direction) x *= inv_norm;

  for (size_t i = n - c; i < n; ++i) {
    auto row = points.Row(i);
    for (size_t j = 0; j < d; ++j) row[j] = separation * direction[j];
  }
  AddUniformNoise(&points, kNoiseScale, rng);
  return points;
}

Matrix GenerateGeometric(size_t k, size_t c, size_t r, size_t d, Rng& rng) {
  FC_CHECK_GE(r, 2u);
  FC_CHECK_GT(c * k, 0u);
  // Round sizes: ck, ck/r, ck/r^2, ... until the size would drop below 1.
  std::vector<size_t> sizes;
  double size = static_cast<double>(c * k);
  while (size >= 1.0) {
    sizes.push_back(static_cast<size_t>(size));
    size /= static_cast<double>(r);
  }
  FC_CHECK_MSG(sizes.size() <= d,
               "geometric dataset needs d >= log_r(c*k) dimensions");

  size_t n = 0;
  for (size_t s : sizes) n += s;
  Matrix points(n, d);
  size_t row_idx = 0;
  for (size_t vertex = 0; vertex < sizes.size(); ++vertex) {
    for (size_t i = 0; i < sizes[vertex]; ++i) {
      points.At(row_idx++, vertex) = 1.0;
    }
  }
  AddUniformNoise(&points, kNoiseScale, rng);
  return points;
}

Matrix GenerateGaussianMixture(size_t n, size_t d, size_t kappa, double gamma,
                               Rng& rng, double box, double cluster_std) {
  FC_CHECK_GT(n, 0u);
  FC_CHECK_GT(kappa, 0u);

  // The paper's sequential size construction.
  std::vector<size_t> sizes(kappa, 0);
  size_t assigned = 0;
  for (size_t i = 0; i < kappa; ++i) {
    const double rho = rng.Uniform(-0.5, 0.5);
    const double remaining = static_cast<double>(n - assigned);
    const double denom = static_cast<double>(kappa - i);
    double want = remaining / denom * std::exp(gamma * rho);
    size_t take = static_cast<size_t>(std::max(1.0, std::round(want)));
    take = std::min(take, n - assigned - (kappa - 1 - i));  // Leave >= 1 each.
    sizes[i] = take;
    assigned += take;
  }
  sizes[kappa - 1] += n - assigned;  // Exact total.

  Matrix points(n, d);
  size_t row_idx = 0;
  std::vector<double> center(d);
  for (size_t i = 0; i < kappa; ++i) {
    for (double& x : center) x = rng.Uniform(0.0, box);
    for (size_t p = 0; p < sizes[i]; ++p) {
      auto row = points.Row(row_idx++);
      for (size_t j = 0; j < d; ++j) {
        row[j] = center[j] + cluster_std * rng.NextGaussian();
      }
    }
  }
  FC_CHECK_EQ(row_idx, n);
  AddUniformNoise(&points, kNoiseScale, rng);
  return points;
}

Matrix GenerateBenchmark(size_t n, size_t k, Rng& rng) {
  FC_CHECK_GE(k, 4u);
  const size_t k1 = k / 2;
  const size_t k2 = (k - k1) / 2;
  const size_t k3 = k - k1 - k2;
  const size_t sub_k[3] = {k1, k2, k3};

  // Each sub-instance lives in its own coordinate block so solutions do
  // not interact across sub-instances.
  size_t total_dim = 0;
  for (size_t s : sub_k) total_dim += s + 1;

  Matrix points(0, total_dim);
  const double simplex_scale = 10.0;
  size_t dim_offset = 0;
  for (int block = 0; block < 3; ++block) {
    const size_t vertices = sub_k[block] + 1;
    const size_t per_vertex =
        std::max<size_t>(1, n / (3 * vertices));
    std::vector<double> offset(total_dim);
    for (double& x : offset) x = rng.Uniform(0.0, 100.0);

    Matrix sub(per_vertex * vertices, total_dim);
    size_t row_idx = 0;
    for (size_t v = 0; v < vertices; ++v) {
      for (size_t p = 0; p < per_vertex; ++p) {
        auto row = sub.Row(row_idx++);
        for (size_t j = 0; j < total_dim; ++j) row[j] = offset[j];
        row[dim_offset + v] += simplex_scale;
      }
    }
    points.AppendRows(sub);
    dim_offset += vertices;
  }
  AddUniformNoise(&points, kNoiseScale, rng);
  return points;
}

Matrix GenerateSpreadDataset(size_t n, size_t r, Rng& rng) {
  FC_CHECK_GT(r, 0u);
  const size_t n_special = std::min(n / 2, std::max<size_t>(r, n / 10));
  const size_t copies = std::max<size_t>(1, n_special / r);
  const size_t n_uniform = n - copies * r;

  Matrix points(n_uniform + copies * r, 2);
  size_t row_idx = 0;
  for (size_t i = 0; i < n_uniform; ++i) {
    auto row = points.Row(row_idx++);
    row[0] = rng.Uniform(-1.0, 1.0);
    row[1] = rng.Uniform(-1.0, 1.0);
  }
  for (size_t copy = 0; copy < copies; ++copy) {
    const double x = rng.Uniform(-1.0, 1.0);
    double y = 1.0;
    for (size_t step = 0; step < r; ++step) {
      auto row = points.Row(row_idx++);
      row[0] = x;
      row[1] = y;
      y *= 0.5;
    }
  }
  FC_CHECK_EQ(row_idx, points.rows());
  // No noise: the 0.5^r geometry *is* the point of this dataset, and noise
  // at 1e-3 would flatten the fine scales.
  return points;
}

}  // namespace fastcoreset
