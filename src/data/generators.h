// Artificial dataset generators from Section 5.2, each engineered to
// stress a different failure mode of the sampling spectrum:
//   - c-outlier: almost no information, but missing the c outliers is
//     catastrophic (breaks uniform sampling).
//   - Geometric: exponentially shrinking mass on simplex vertices — many
//     "regions of interest" with wildly uneven weight.
//   - Gaussian mixture: uneven inter-cluster distances and γ-controlled
//     exponential cluster-size imbalance (Table 7's knob).
//   - Benchmark (Schwiegelshohn & Sheikh-Omar, ESA'22): all reasonable
//     k-means solutions are equal-cost but maximally far apart — the
//     adversarial case for sensitivity sampling's reliance on a seed
//     solution.
//   - Spread dataset (Table 1): log Δ grows linearly with the parameter r,
//     stressing the quadtree depth.

#ifndef FASTCORESET_DATA_GENERATORS_H_
#define FASTCORESET_DATA_GENERATORS_H_

#include <cstddef>

#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// Adds i.i.d. uniform noise in [0, scale) to every coordinate (the paper
/// perturbs all datasets with scale 1e-3 so points are unique).
void AddUniformNoise(Matrix* points, double scale, Rng& rng);

/// n - c points at the origin, c points at distance `separation` along a
/// random direction. Noise 1e-3 applied.
Matrix GenerateCOutlier(size_t n, size_t c, size_t d, double separation,
                        Rng& rng);

/// Geometric dataset: c*k points at e_1, c*k/r at e_2, c*k/r^2 at e_3, ...
/// for log_r(c*k) rounds (vertices of a high-dimensional simplex with
/// exponentially uneven weights). d must cover the number of rounds.
Matrix GenerateGeometric(size_t k, size_t c, size_t r, size_t d, Rng& rng);

/// Gaussian mixture of `kappa` clusters over n points in d dims. Cluster
/// sizes follow the paper's sequential construction:
/// |c_{i+1}| = (n - sum) / (kappa - i) * exp(gamma * rho), rho ~ U[-.5,.5];
/// gamma = 0 gives balanced clusters, larger gamma exponential imbalance.
/// Centers are scattered uniformly in [0, box]^d with unit-variance noise.
Matrix GenerateGaussianMixture(size_t n, size_t d, size_t kappa, double gamma,
                               Rng& rng, double box = 500.0,
                               double cluster_std = 1.0);

/// ESA'22-style benchmark instance: three sub-instances with parameter
/// k1 = k/2, k2 = (k-k1)/2, k3 = k-k1-k2; each sub-instance places
/// n_i/(k_i+1) points on each vertex of a regular k_i-simplex (every
/// k_i-subset of vertices is an optimal solution), with a random offset
/// per sub-instance. Total points ~ n.
Matrix GenerateBenchmark(size_t n, size_t k, Rng& rng);

/// Table-1 spread dataset: n - n' points uniform in [-1,1]^2 plus n'/r
/// copies of the sequence (x_j, 0.5^0), ..., (x_j, 0.5^r) at distinct x
/// coordinates; log Δ grows linearly with r.
Matrix GenerateSpreadDataset(size_t n, size_t r, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_DATA_GENERATORS_H_
