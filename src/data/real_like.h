// Synthetic stand-ins for the paper's seven public evaluation datasets.
//
// This environment has no network access, so each dataset is replaced by
// a generator reproducing (a) a scaled version of its shape (n, d) and
// (b) the structural property the paper identifies as driving the observed
// behaviour — e.g. Taxi's heavy-tailed cluster sizes with small far-away
// clusters are what break uniform sampling (~600x distortion), Star's
// tiny bright cluster against an overwhelming dark blob breaks it more
// mildly (~8x). See DESIGN.md §3 for the substitution table.

#ifndef FASTCORESET_DATA_REAL_LIKE_H_
#define FASTCORESET_DATA_REAL_LIKE_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/geometry/matrix.h"

namespace fastcoreset {

/// A named dataset plus the paper's default k for it.
struct Dataset {
  std::string name;
  Matrix points;
  size_t default_k = 100;
};

/// Adult-like: benign low-dimensional tabular mixture (all methods tie).
Dataset MakeAdultLike(size_t n, Rng& rng);

/// MNIST-like: high-dimensional (d = 784) well-separated sparse blobs.
Dataset MakeMnistLike(size_t n, Rng& rng);

/// Star-like: one overwhelming dark blob + a tiny far bright cluster
/// (uniform sampling fails ~8x).
Dataset MakeStarLike(size_t n, Rng& rng);

/// Song-like: diffuse anisotropic heavy-tailed blobs in 90 dims.
Dataset MakeSongLike(size_t n, Rng& rng);

/// CoverType-like: moderately imbalanced benign mixture in 54 dims.
Dataset MakeCovtypeLike(size_t n, Rng& rng);

/// Taxi-like: 2-D, Zipf-sized clusters plus tiny remote clusters
/// (uniform sampling fails catastrophically).
Dataset MakeTaxiLike(size_t n, Rng& rng);

/// Census-like: large benign mixture in 68 dims.
Dataset MakeCensusLike(size_t n, Rng& rng);

/// The full suite at a size multiplier (1.0 = bench defaults, which are
/// already scaled from the paper's sizes to a laptop time budget).
std::vector<Dataset> RealLikeSuite(double scale, Rng& rng);

/// The four artificial datasets of Section 5.2 at paper defaults
/// (n = 50000 * scale, d = 50, k = 100).
std::vector<Dataset> ArtificialSuite(double scale, Rng& rng);

}  // namespace fastcoreset

#endif  // FASTCORESET_DATA_REAL_LIKE_H_
