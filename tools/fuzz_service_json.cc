// Fuzz harness for the fc_serve request surface: one input line goes
// through the exact production path — ParseJson, SpecFromJson, and
// HandleRequestLine against a live CoresetService — and the harness
// asserts the protocol's crash-freedom contract: every input produces a
// well-formed JSON response line, never an abort, leak, or sanitizer
// fault.
//
// Two build modes share this file:
//   - FC_FUZZ=ON (clang): links -fsanitize=fuzzer and libFuzzer drives
//     LLVMFuzzerTestOneInput with coverage-guided mutation. CI runs
//     `fuzz_service_json -max_total_time=60 tools/fuzz_corpus/...`.
//   - FC_FUZZ=OFF (any compiler): a standalone main() replays the files
//     named on the command line through the same entry point, so the
//     committed corpus is exercised as a plain ctest on gcc-only hosts.
//
// The service is rebuilt per input: registration state leaking across
// inputs would make crashes depend on mutation order, which destroys
// reproducibility (a lone corpus file must reproduce its finding).
//
// Dangerous numeric fields are clamped BEFORE the service sees them:
// `n`/`d` of a synthetic registration or `m` of a build multiply into
// allocations, and a fuzzer asked to explore 2^53 sizes only finds OOM,
// not bugs. The clamp rewrites the parsed request and re-serializes it —
// everything else (structure, strings, unknown keys, type confusion)
// reaches the service untouched.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/service/json.h"
#include "src/service/protocol.h"
#include "src/service/service.h"

namespace fastcoreset {
namespace {

using service::JsonValue;

// Anything that scales an allocation is capped to "small but exercised".
constexpr double kMaxPoints = 512.0;    // synthetic n / inline rows
constexpr double kMaxDims = 16.0;       // synthetic d
constexpr double kMaxCoreset = 256.0;   // m
constexpr double kMaxShards = 8.0;      // shards
constexpr size_t kMaxInlineCells = 4096;

double ClampNumber(double value, double cap) {
  if (!(value >= 0.0)) return value;  // Negative/NaN: let validation see it.
  return value < cap ? value : cap;
}

void ClampField(JsonValue::Object* object, const std::string& key,
                double cap) {
  auto it = object->find(key);
  if (it != object->end() && it->second.is_number()) {
    it->second = JsonValue(ClampNumber(it->second.number_value(), cap));
  }
}

/// Serializes a JsonValue back to text (the parser's inverse; objects are
/// stored sorted, so this is deterministic).
void Serialize(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out->append("null");
      break;
    case JsonValue::Kind::kBool:
      out->append(value.bool_value() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber:
      out->append(service::JsonNumber(value.number_value()));
      break;
    case JsonValue::Kind::kString:
      service::AppendJsonString(out, value.string_value());
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& element : value.array()) {
        if (!first) out->push_back(',');
        first = false;
        Serialize(element, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.object()) {
        if (!first) out->push_back(',');
        first = false;
        service::AppendJsonString(out, key);
        out->push_back(':');
        Serialize(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

/// Rewrites allocation-scaling fields of a parsed request in place.
/// Returns the re-serialized line, or the original when it isn't a JSON
/// object (non-object lines are interesting exactly as they are).
std::string ClampRequest(const std::string& line) {
  api::FcStatusOr<JsonValue> parsed = service::ParseJson(line);
  if (!parsed.ok() || !parsed.value().is_object()) return line;
  JsonValue::Object object = parsed.value().object();

  ClampField(&object, "m", kMaxCoreset);
  ClampField(&object, "k", kMaxCoreset);
  ClampField(&object, "shards", kMaxShards);

  auto synthetic = object.find("synthetic");
  if (synthetic != object.end() && synthetic->second.is_object()) {
    JsonValue::Object spec = synthetic->second.object();
    ClampField(&spec, "n", kMaxPoints);
    ClampField(&spec, "d", kMaxDims);
    ClampField(&spec, "kappa", kMaxPoints);
    ClampField(&spec, "k", kMaxCoreset);
    ClampField(&spec, "r", kMaxDims);
    ClampField(&spec, "c", kMaxPoints);
    synthetic->second = JsonValue(std::move(spec));
  }

  // Inline point matrices allocate rows*cols doubles; truncate rather
  // than clamp (the values themselves are the interesting part).
  auto points = object.find("points");
  if (points != object.end() && points->second.is_array()) {
    JsonValue::Array rows = points->second.array();
    size_t cells = 0;
    for (size_t r = 0; r < rows.size(); ++r) {
      cells += rows[r].is_array() ? rows[r].array().size() : 1;
      if (cells > kMaxInlineCells) {
        rows.resize(r);
        break;
      }
    }
    points->second = JsonValue(std::move(rows));
  }

  std::string clamped;
  Serialize(JsonValue(std::move(object)), &clamped);
  return clamped;
}

void FuzzOneLine(const std::string& line) {
  service::CoresetService svc(service::ServiceOptions{/*cache_capacity=*/4});
  const std::string response =
      service::HandleRequestLine(svc, ClampRequest(line));
  // The contract under test: the response is always one parseable JSON
  // object with an "ok" bool, no matter what came in.
  api::FcStatusOr<JsonValue> parsed = service::ParseJson(response);
  FC_CHECK(parsed.ok());
  const JsonValue* ok = parsed.value().Find("ok");
  FC_CHECK(ok != nullptr && ok->is_bool());
}

}  // namespace
}  // namespace fastcoreset

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  fastcoreset::FuzzOneLine(
      std::string(reinterpret_cast<const char*>(data), size));
  return 0;
}

#if !defined(FC_FUZZ_WITH_LIBFUZZER)
// Corpus-replay driver for builds without libFuzzer (gcc, or clang with
// FC_FUZZ=OFF): each argv names a corpus file to feed through the same
// entry point. Exit 0 = no contract violation (FC_CHECK aborts on one).
int main(int argc, char** argv) {
  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    FILE* file = std::fopen(argv[i], "rb");
    if (file == nullptr) {
      std::fprintf(stderr, "fuzz_service_json: cannot open %s\n", argv[i]);
      return 1;
    }
    std::string data;
    char buffer[4096];
    size_t read;
    while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      data.append(buffer, read);
    }
    std::fclose(file);
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(data.data()),
                           data.size());
    ++replayed;
  }
  std::printf("fuzz_service_json: replayed %zu corpus file(s), no "
              "violations\n",
              replayed);
  return 0;
}
#endif  // !FC_FUZZ_WITH_LIBFUZZER
