#!/usr/bin/env python3
"""End-to-end smoke test for fc_serve (registered in ctest).

Drives the binary over its stdin/stdout NDJSON protocol:
register a CSV dataset, issue the same sharded build request twice, and
assert the second response is a cache hit carrying a bit-identical
coreset (equal coreset fingerprints), that an invalid request surfaces an
error response without killing the server, and that stats reflect the
traffic.

Usage: fc_serve_smoke.py <fc_serve-binary> <input.csv>
"""

import json
import subprocess
import sys


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} <fc_serve-binary> <input.csv>",
              file=sys.stderr)
        return 2
    serve, csv_path = sys.argv[1], sys.argv[2]

    build = {"verb": "build", "dataset": "tiny", "method": "fast_coreset",
             "k": 4, "m": 48, "z": 2, "seed": 7, "shards": 2,
             "options": {"use_jl": False}}
    requests = [
        {"verb": "register", "name": "tiny", "csv": csv_path},
        build,
        build,
        {"verb": "build", "dataset": "no_such_dataset", "k": 4},
        {"verb": "build", "dataset": "tiny", "k": 4, "z": 3},
        {"verb": "stats"},
    ]
    payload = "".join(json.dumps(r) + "\n" for r in requests)

    proc = subprocess.run([serve], input=payload, capture_output=True,
                          text=True, timeout=300)
    if proc.returncode != 0:
        print(f"fc_serve exited {proc.returncode}: {proc.stderr}",
              file=sys.stderr)
        return 1
    lines = proc.stdout.splitlines()
    if len(lines) != len(requests):
        print(f"expected {len(requests)} response lines, got {len(lines)}:"
              f"\n{proc.stdout}", file=sys.stderr)
        return 1
    responses = [json.loads(line) for line in lines]
    register, first, second, unknown, invalid, stats = responses

    failures = []

    def check(condition, message):
        if not condition:
            failures.append(message)

    check(register.get("ok") and register.get("rows", 0) > 0,
          f"register failed: {register}")
    check(first.get("ok"), f"first build failed: {first}")
    check(first.get("cache") == "miss",
          f"first build should miss the cache: {first}")
    check(first.get("shards") == 2, f"expected 2 shards: {first}")
    check(second.get("ok"), f"second build failed: {second}")
    check(second.get("cache") == "hit",
          f"second build should hit the cache: {second}")
    check(second.get("points_processed") == 0,
          f"a cache hit must not rebuild: {second}")
    check(first.get("coreset_fingerprint")
          == second.get("coreset_fingerprint"),
          "cached coreset is not bit-identical: "
          f"{first.get('coreset_fingerprint')} vs "
          f"{second.get('coreset_fingerprint')}")
    check(not unknown.get("ok") and unknown.get("code") == "not_found",
          f"unknown dataset should be not_found: {unknown}")
    check(not invalid.get("ok") and invalid.get("code") == "invalid_argument",
          f"z=3 should be invalid_argument: {invalid}")
    cache = stats.get("cache", {})
    check(stats.get("ok") and cache.get("hits") == 1
          and cache.get("misses") == 1 and cache.get("entries") == 1,
          f"stats disagree with the traffic: {stats}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("fc_serve smoke passed: register + build x2 (miss then "
          "bit-identical hit) + error responses + stats")
    return 0


if __name__ == "__main__":
    sys.exit(main())
