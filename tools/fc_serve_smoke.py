#!/usr/bin/env python3
"""End-to-end smoke test for fc_serve (registered in ctest).

Drives the binary over BOTH transports:

  stdio — the original lockstep scenario: register a CSV dataset, issue
  the same sharded build request twice (the first with an explicit
  parallelism budget), and assert every response line leads with
  protocol version v=1, the second build is a cache hit carrying a
  bit-identical coreset (equal coreset fingerprints), a budget-capped
  rebuild still matches bit for bit, an invalid request surfaces an
  error response without killing the server, and stats report the
  protocol version plus task-graph scheduler totals that reflect the
  traffic.

  --listen (loopback TCP daemon) — the same scenario over a socket, then
  four concurrent clients issuing pipelined builds (responses must come
  back complete, valid, and in request order per connection, witnessed
  by the echoed "id"), a saturation pass against a --max-queue 1
  --workers 1 server (every request is answered with success or the
  structured "unavailable" error, nothing dropped mid-response), and a
  SIGTERM drain with a request in flight (the response is still
  delivered and the daemon exits 0).

Each request gets its own response deadline (FC_SMOKE_REQUEST_TIMEOUT
seconds, default 60) so one wedged request fails fast with its index
instead of eating the whole ctest budget; servers are killed on any
failure path.

Usage: fc_serve_smoke.py <fc_serve-binary> <input.csv>
"""

import json
import os
import queue
import re
import signal
import socket
import subprocess
import sys
import threading
import time

REQUEST_TIMEOUT = float(os.environ.get("FC_SMOKE_REQUEST_TIMEOUT", "60"))

FAILURES = []


def check(condition, message):
    if not condition:
        FAILURES.append(message)


def scenario_requests(csv_path):
    build = {"verb": "build", "dataset": "tiny", "method": "fast_coreset",
             "k": 4, "m": 48, "z": 2, "seed": 7, "shards": 2,
             "options": {"use_jl": False}}
    # Same request with a sequential scheduler budget and no cache: the
    # budget must change the schedule only, never the bits.
    serial = dict(build, parallelism=1, use_cache=False)
    return [
        {"verb": "register", "name": "tiny", "csv": csv_path},
        build,
        build,
        serial,
        {"verb": "build", "dataset": "no_such_dataset", "k": 4},
        {"verb": "build", "dataset": "tiny", "k": 4, "z": 3},
        {"verb": "build", "dataset": "tiny", "k": 4, "parallelism": 100000},
        {"verb": "stats"},
    ]


def validate_scenario(responses, transport):
    """The shared request/response contract, identical on both
    transports; `transport` only labels messages and gates the transport
    gauge expectations in stats."""
    (register, first, second, serial_build, unknown, invalid, over_budget,
     stats) = responses

    for i, response in enumerate(responses):
        check(response.get("v") == 1,
              f"[{transport}] response {i} must lead with v=1: {response}")
    check(register.get("ok") and register.get("rows", 0) > 0,
          f"[{transport}] register failed: {register}")
    check(first.get("ok"), f"[{transport}] first build failed: {first}")
    check(first.get("cache") == "miss",
          f"[{transport}] first build should miss the cache: {first}")
    check(first.get("shards") == 2, f"[{transport}] expected 2 shards: "
          f"{first}")
    check(first.get("parallelism", 0) >= 1,
          f"[{transport}] a rebuild must report its effective parallelism: "
          f"{first}")
    check(first.get("critical_path_seconds", -1.0) >= 0.0
          and first.get("build_seconds", -1.0) >= 0.0,
          f"[{transport}] rebuild must report work and critical path: "
          f"{first}")
    check(len(first.get("shard_windows", [])) == 2,
          f"[{transport}] expected one [start, end] window per shard: "
          f"{first}")
    check(second.get("ok"), f"[{transport}] second build failed: {second}")
    check(second.get("cache") == "hit",
          f"[{transport}] second build should hit the cache: {second}")
    check(second.get("points_processed") == 0,
          f"[{transport}] a cache hit must not rebuild: {second}")
    check(first.get("coreset_fingerprint")
          == second.get("coreset_fingerprint"),
          f"[{transport}] cached coreset is not bit-identical: "
          f"{first.get('coreset_fingerprint')} vs "
          f"{second.get('coreset_fingerprint')}")
    check(serial_build.get("ok") and serial_build.get("parallelism") == 1,
          f"[{transport}] parallelism=1 rebuild should run serially: "
          f"{serial_build}")
    check(first.get("coreset_fingerprint")
          == serial_build.get("coreset_fingerprint"),
          f"[{transport}] scheduler budget changed the bits: "
          f"{first.get('coreset_fingerprint')} vs "
          f"{serial_build.get('coreset_fingerprint')}")
    check(not unknown.get("ok") and unknown.get("code") == "not_found",
          f"[{transport}] unknown dataset should be not_found: {unknown}")
    check(not invalid.get("ok")
          and invalid.get("code") == "invalid_argument",
          f"[{transport}] z=3 should be invalid_argument: {invalid}")
    check(not over_budget.get("ok")
          and over_budget.get("code") == "invalid_argument",
          f"[{transport}] parallelism=100000 should be invalid_argument: "
          f"{over_budget}")
    cache = stats.get("cache", {})
    check(stats.get("ok") and cache.get("hits") == 1
          and cache.get("misses") == 1 and cache.get("entries") == 1,
          f"[{transport}] stats disagree with the traffic: {stats}")
    check(stats.get("protocol_version") == 1,
          f"[{transport}] stats must report protocol_version=1: {stats}")
    scheduler = stats.get("scheduler", {})
    check(scheduler.get("graphs_run") == 2,
          f"[{transport}] two rebuilds ran, so two graphs: {stats}")
    check(scheduler.get("tasks_executed") == 6,
          f"[{transport}] each 2-shard rebuild runs 3 nodes (2 shards + "
          f"merge): {stats}")
    check(scheduler.get("max_concurrent_shards", 0) >= 1
          and scheduler.get("queue_high_water", 0) >= 1,
          f"[{transport}] scheduler high-water counters missing: {stats}")
    gauges = stats.get("transport", {})
    if transport == "stdio":
        check(gauges.get("sessions_active") == 0
              and gauges.get("queue_depth") == 0
              and gauges.get("requests_rejected") == 0,
              f"[stdio] transport gauges must read zero: {stats}")
    else:
        check(gauges.get("sessions_active", 0) >= 1,
              f"[tcp] stats came over a live session: {stats}")


# ---------------------------------------------------------------------
# stdio transport
# ---------------------------------------------------------------------


def run_stdio(serve, requests):
    proc = subprocess.Popen([serve], stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)
    out_q = queue.Queue()
    stderr_chunks = []

    def pump_stdout():
        for line in proc.stdout:
            out_q.put(line.rstrip("\n"))
        out_q.put(None)  # EOF: the server closed stdout / died

    def pump_stderr():
        stderr_chunks.append(proc.stderr.read())

    threading.Thread(target=pump_stdout, daemon=True).start()
    threading.Thread(target=pump_stderr, daemon=True).start()

    lines = []
    try:
        for i, request in enumerate(requests):
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            try:
                line = out_q.get(timeout=REQUEST_TIMEOUT)
            except queue.Empty:
                print(f"[stdio] request {i} ({request.get('verb')}) got no "
                      f"response within {REQUEST_TIMEOUT:.0f}s — killing "
                      f"fc_serve", file=sys.stderr)
                return None
            if line is None:
                print(f"[stdio] fc_serve died before answering request {i} "
                      f"({request.get('verb')}): {''.join(stderr_chunks)}",
                      file=sys.stderr)
                return None
            lines.append(line)
        proc.stdin.close()
        try:
            rc = proc.wait(timeout=REQUEST_TIMEOUT)
        except subprocess.TimeoutExpired:
            print(f"[stdio] fc_serve did not exit within "
                  f"{REQUEST_TIMEOUT:.0f}s of stdin EOF — killing it",
                  file=sys.stderr)
            return None
        if rc != 0:
            print(f"[stdio] fc_serve exited {rc}: {''.join(stderr_chunks)}",
                  file=sys.stderr)
            return None
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    return [json.loads(line) for line in lines]


# ---------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------


def start_daemon(serve, extra_flags=()):
    """Launches fc_serve --listen 0 and returns (proc, port) after the
    bound-port announcement, or (proc, None) on startup failure."""
    proc = subprocess.Popen([serve, "--listen", "0", *extra_flags],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    announce = proc.stdout.readline()
    match = re.search(r"listening on 127\.0\.0\.1:(\d+)", announce)
    if not match:
        proc.kill()
        proc.wait()
        print(f"[tcp] no listen announcement, got: {announce!r} "
              f"{proc.stderr.read()}", file=sys.stderr)
        return proc, None
    return proc, int(match.group(1))


class NetClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=REQUEST_TIMEOUT)
        self.buffer = b""

    def send_line(self, line):
        self.sock.sendall(line.encode() + b"\n")

    def recv_line(self):
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode()

    def recv_until_closed(self):
        try:
            while True:
                chunk = self.sock.recv(65536)
                if not chunk:
                    return True
                self.buffer += chunk
        except OSError:
            return False

    def close(self):
        self.sock.close()


def tcp_lockstep(port, requests):
    client = NetClient(port)
    responses = []
    for i, request in enumerate(requests):
        client.send_line(json.dumps(request))
        line = client.recv_line()
        if line is None:
            print(f"[tcp] connection closed before answering request {i} "
                  f"({request.get('verb')})", file=sys.stderr)
            client.close()
            return None
        responses.append(json.loads(line))
    client.close()
    return responses


def tcp_concurrent_clients(port, clients=4, requests_per_client=3):
    """Pipelined builds from `clients` concurrent connections; asserts
    complete, valid, in-order responses via the echoed id."""
    results = [None] * clients

    def run_client(index):
        client = NetClient(port)
        ids = [1000 + index * requests_per_client + r
               for r in range(requests_per_client)]
        burst = "".join(
            json.dumps({"verb": "build", "dataset": "tiny",
                        "method": "fast_coreset", "k": 4, "m": 48, "z": 2,
                        "seed": request_id, "shards": 2,
                        "options": {"use_jl": False}, "id": request_id})
            + "\n" for request_id in ids)
        client.sock.sendall(burst.encode())
        got = []
        for _ in ids:
            line = client.recv_line()
            if line is None:
                break
            got.append(json.loads(line))
        client.close()
        results[index] = (ids, got)

    threads = [threading.Thread(target=run_client, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for index, result in enumerate(results):
        check(result is not None, f"[tcp] client {index} never ran")
        if result is None:
            continue
        ids, got = result
        check(len(got) == len(ids),
              f"[tcp] client {index} got {len(got)}/{len(ids)} responses")
        for request_id, response in zip(ids, got):
            check(response.get("v") == 1 and response.get("ok"),
                  f"[tcp] client {index} bad response: {response}")
            check(response.get("id") == request_id,
                  f"[tcp] client {index} responses out of order: expected "
                  f"id {request_id}, got {response.get('id')}")


def tcp_saturation(serve):
    """A --max-queue 1 --workers 1 daemon under a pipelined burst: every
    request is answered — success or structured 'unavailable'."""
    proc, port = start_daemon(
        serve, ("--max-queue", "1", "--workers", "1"))
    if port is None:
        check(False, "[tcp] saturation daemon failed to start")
        return
    try:
        registrar = NetClient(port)
        registrar.send_line(json.dumps(
            {"verb": "register", "name": "g", "synthetic":
             {"generator": "gaussian_mixture", "n": 4000, "d": 4,
              "kappa": 4, "seed": 3}}))
        ack = registrar.recv_line()
        registrar.close()
        check(ack is not None and json.loads(ack).get("ok"),
              f"[tcp] saturation register failed: {ack}")

        served = [0]
        shed = [0]
        lost = [0]

        def blast(index):
            client = NetClient(port)
            count = 4
            burst = "".join(
                json.dumps({"verb": "build", "dataset": "g",
                            "method": "sensitivity", "k": 4, "m": 100,
                            "seed": 5000 + index * count + r}) + "\n"
                for r in range(count))
            client.sock.sendall(burst.encode())
            for _ in range(count):
                line = client.recv_line()
                if line is None:
                    lost[0] += 1
                    continue
                response = json.loads(line)
                if response.get("v") != 1:
                    lost[0] += 1
                elif response.get("ok"):
                    served[0] += 1
                elif response.get("code") == "unavailable":
                    check("queue_limit" in response,
                          f"[tcp] unavailable must carry queue gauges: "
                          f"{response}")
                    shed[0] += 1
                else:
                    lost[0] += 1
            client.close()

        threads = [threading.Thread(target=blast, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        check(lost[0] == 0,
              f"[tcp] {lost[0]} requests lost or malformed under overload")
        check(served[0] > 0, "[tcp] overload must not starve every client")
        check(shed[0] > 0,
              f"[tcp] 32 pipelined builds over queue=1/workers=1 must "
              f"shed (served={served[0]})")
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=REQUEST_TIMEOUT)
            check(rc == 0, f"[tcp] saturation daemon exited {rc}")
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            check(False, "[tcp] saturation daemon did not drain on SIGTERM")


def tcp_sigterm_drain(proc, port):
    """SIGTERM with a request in flight: the response must still be
    delivered, the connection closed, and the daemon must exit 0."""
    client = NetClient(port)
    # A completed round trip first: the session is then provably
    # accepted, so the build below exercises the established-connection
    # drain path, not the accept-time shed.
    client.send_line(json.dumps({"verb": "stats"}))
    check(client.recv_line() is not None, "[tcp] drain client stats died")
    client.send_line(json.dumps(
        {"verb": "build", "dataset": "tiny", "method": "fast_coreset",
         "k": 4, "m": 48, "z": 2, "seed": 99, "shards": 2,
         "options": {"use_jl": False}, "id": "drain"}))
    time.sleep(0.2)  # let the line be read and (usually) dispatched
    proc.send_signal(signal.SIGTERM)
    line = client.recv_line()
    check(line is not None,
          "[tcp] SIGTERM dropped an in-flight request's response")
    if line is not None:
        response = json.loads(line)
        check(response.get("v") == 1,
              f"[tcp] drain response malformed: {response}")
        check(response.get("ok")
              or response.get("code") == "unavailable",
              f"[tcp] drain response must be success or a structured "
              f"shed: {response}")
        if "id" in response:
            check(response.get("id") == "drain",
                  f"[tcp] drain response echoes the wrong id: {response}")
    check(client.recv_until_closed(),
          "[tcp] server must close the connection after draining")
    client.close()
    try:
        rc = proc.wait(timeout=REQUEST_TIMEOUT)
        check(rc == 0, f"[tcp] daemon exited {rc} after SIGTERM drain")
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        check(False, "[tcp] daemon did not exit after SIGTERM drain")


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} <fc_serve-binary> <input.csv>",
              file=sys.stderr)
        return 2
    serve, csv_path = sys.argv[1], sys.argv[2]
    requests = scenario_requests(csv_path)

    # Transport 1: stdin/stdout, lockstep.
    responses = run_stdio(serve, requests)
    if responses is None:
        return 1
    validate_scenario(responses, "stdio")

    # Transport 2: the TCP daemon — same scenario, then concurrency and
    # drain against the same process (the dataset is already registered).
    proc, port = start_daemon(serve)
    if port is None:
        return 1
    try:
        responses = tcp_lockstep(port, requests)
        if responses is None:
            return 1
        validate_scenario(responses, "tcp")
        tcp_concurrent_clients(port)
        tcp_sigterm_drain(proc, port)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # Transport 2b: admission control under saturation.
    tcp_saturation(serve)

    for failure in FAILURES:
        print(f"FAIL: {failure}", file=sys.stderr)
    if FAILURES:
        return 1
    print("fc_serve smoke passed on both transports: v=1 on every line, "
          "register + build x2 (miss then bit-identical hit) + "
          "budget-capped rebuild + error responses + stats w/ scheduler "
          "totals; tcp adds 4 concurrent pipelined clients (in-order "
          "responses), queue-saturation shedding via structured "
          "'unavailable', and a SIGTERM drain that delivers the in-flight "
          "response and exits 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
