#!/usr/bin/env python3
"""End-to-end smoke test for fc_serve (registered in ctest).

Drives the binary over its stdin/stdout NDJSON protocol:
register a CSV dataset, issue the same sharded build request twice (the
first with an explicit parallelism budget), and assert every response
line leads with protocol version v=1, the second build is a cache hit
carrying a bit-identical coreset (equal coreset fingerprints), a
budget-capped rebuild still matches bit for bit, an invalid request
surfaces an error response without killing the server, and stats report
the protocol version plus task-graph scheduler totals that reflect the
traffic.

Each request gets its own response deadline (FC_SMOKE_REQUEST_TIMEOUT
seconds, default 60) so one wedged request fails fast with its index
instead of eating the whole ctest budget; the server is killed on any
failure path.

Usage: fc_serve_smoke.py <fc_serve-binary> <input.csv>
"""

import json
import os
import queue
import subprocess
import sys
import threading

REQUEST_TIMEOUT = float(os.environ.get("FC_SMOKE_REQUEST_TIMEOUT", "60"))


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} <fc_serve-binary> <input.csv>",
              file=sys.stderr)
        return 2
    serve, csv_path = sys.argv[1], sys.argv[2]

    build = {"verb": "build", "dataset": "tiny", "method": "fast_coreset",
             "k": 4, "m": 48, "z": 2, "seed": 7, "shards": 2,
             "options": {"use_jl": False}}
    # Same request with a sequential scheduler budget and no cache: the
    # budget must change the schedule only, never the bits.
    serial = dict(build, parallelism=1, use_cache=False)
    requests = [
        {"verb": "register", "name": "tiny", "csv": csv_path},
        build,
        build,
        serial,
        {"verb": "build", "dataset": "no_such_dataset", "k": 4},
        {"verb": "build", "dataset": "tiny", "k": 4, "z": 3},
        {"verb": "build", "dataset": "tiny", "k": 4, "parallelism": 100000},
        {"verb": "stats"},
    ]
    proc = subprocess.Popen([serve], stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)
    out_q: "queue.Queue[object]" = queue.Queue()
    stderr_chunks = []

    def pump_stdout():
        for line in proc.stdout:
            out_q.put(line.rstrip("\n"))
        out_q.put(None)  # EOF: the server closed stdout / died

    def pump_stderr():
        stderr_chunks.append(proc.stderr.read())

    threading.Thread(target=pump_stdout, daemon=True).start()
    threading.Thread(target=pump_stderr, daemon=True).start()

    lines = []
    try:
        for i, request in enumerate(requests):
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            try:
                line = out_q.get(timeout=REQUEST_TIMEOUT)
            except queue.Empty:
                print(f"request {i} ({request.get('verb')}) got no response "
                      f"within {REQUEST_TIMEOUT:.0f}s — killing fc_serve",
                      file=sys.stderr)
                return 1
            if line is None:
                print(f"fc_serve died before answering request {i} "
                      f"({request.get('verb')}): {''.join(stderr_chunks)}",
                      file=sys.stderr)
                return 1
            lines.append(line)
        proc.stdin.close()
        try:
            rc = proc.wait(timeout=REQUEST_TIMEOUT)
        except subprocess.TimeoutExpired:
            print(f"fc_serve did not exit within {REQUEST_TIMEOUT:.0f}s of "
                  f"stdin EOF — killing it", file=sys.stderr)
            return 1
        if rc != 0:
            print(f"fc_serve exited {rc}: {''.join(stderr_chunks)}",
                  file=sys.stderr)
            return 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    responses = [json.loads(line) for line in lines]
    (register, first, second, serial_build, unknown, invalid, over_budget,
     stats) = responses

    failures = []

    def check(condition, message):
        if not condition:
            failures.append(message)

    for i, response in enumerate(responses):
        check(response.get("v") == 1,
              f"response {i} must lead with protocol v=1: {response}")
    check(register.get("ok") and register.get("rows", 0) > 0,
          f"register failed: {register}")
    check(first.get("ok"), f"first build failed: {first}")
    check(first.get("cache") == "miss",
          f"first build should miss the cache: {first}")
    check(first.get("shards") == 2, f"expected 2 shards: {first}")
    check(first.get("parallelism", 0) >= 1,
          f"a rebuild must report its effective parallelism: {first}")
    check(first.get("critical_path_seconds", -1.0) >= 0.0
          and first.get("build_seconds", -1.0) >= 0.0,
          f"rebuild must report both work and critical path: {first}")
    check(len(first.get("shard_windows", [])) == 2,
          f"expected one [start, end] window per shard: {first}")
    check(second.get("ok"), f"second build failed: {second}")
    check(second.get("cache") == "hit",
          f"second build should hit the cache: {second}")
    check(second.get("points_processed") == 0,
          f"a cache hit must not rebuild: {second}")
    check(first.get("coreset_fingerprint")
          == second.get("coreset_fingerprint"),
          "cached coreset is not bit-identical: "
          f"{first.get('coreset_fingerprint')} vs "
          f"{second.get('coreset_fingerprint')}")
    check(serial_build.get("ok") and serial_build.get("parallelism") == 1,
          f"parallelism=1 rebuild should run serially: {serial_build}")
    check(first.get("coreset_fingerprint")
          == serial_build.get("coreset_fingerprint"),
          "scheduler budget changed the bits: "
          f"{first.get('coreset_fingerprint')} vs "
          f"{serial_build.get('coreset_fingerprint')}")
    check(not unknown.get("ok") and unknown.get("code") == "not_found",
          f"unknown dataset should be not_found: {unknown}")
    check(not invalid.get("ok") and invalid.get("code") == "invalid_argument",
          f"z=3 should be invalid_argument: {invalid}")
    check(not over_budget.get("ok")
          and over_budget.get("code") == "invalid_argument",
          f"parallelism=100000 should be invalid_argument: {over_budget}")
    cache = stats.get("cache", {})
    check(stats.get("ok") and cache.get("hits") == 1
          and cache.get("misses") == 1 and cache.get("entries") == 1,
          f"stats disagree with the traffic: {stats}")
    check(stats.get("protocol_version") == 1,
          f"stats must report protocol_version=1: {stats}")
    scheduler = stats.get("scheduler", {})
    check(scheduler.get("graphs_run") == 2,
          f"two rebuilds ran, so two graphs: {stats}")
    check(scheduler.get("tasks_executed") == 6,
          f"each 2-shard rebuild runs 3 nodes (2 shards + merge): {stats}")
    check(scheduler.get("max_concurrent_shards", 0) >= 1
          and scheduler.get("queue_high_water", 0) >= 1,
          f"scheduler high-water counters missing: {stats}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("fc_serve smoke passed: v=1 on every line, register + build x2 "
          "(miss then bit-identical hit) + budget-capped rebuild "
          "(bit-identical) + error responses + stats w/ scheduler totals")
    return 0


if __name__ == "__main__":
    sys.exit(main())
