#!/usr/bin/env python3
"""End-to-end smoke test for fc_serve (registered in ctest).

Drives the binary over its stdin/stdout NDJSON protocol:
register a CSV dataset, issue the same sharded build request twice (the
first with an explicit parallelism budget), and assert every response
line leads with protocol version v=1, the second build is a cache hit
carrying a bit-identical coreset (equal coreset fingerprints), a
budget-capped rebuild still matches bit for bit, an invalid request
surfaces an error response without killing the server, and stats report
the protocol version plus task-graph scheduler totals that reflect the
traffic.

Usage: fc_serve_smoke.py <fc_serve-binary> <input.csv>
"""

import json
import subprocess
import sys


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} <fc_serve-binary> <input.csv>",
              file=sys.stderr)
        return 2
    serve, csv_path = sys.argv[1], sys.argv[2]

    build = {"verb": "build", "dataset": "tiny", "method": "fast_coreset",
             "k": 4, "m": 48, "z": 2, "seed": 7, "shards": 2,
             "options": {"use_jl": False}}
    # Same request with a sequential scheduler budget and no cache: the
    # budget must change the schedule only, never the bits.
    serial = dict(build, parallelism=1, use_cache=False)
    requests = [
        {"verb": "register", "name": "tiny", "csv": csv_path},
        build,
        build,
        serial,
        {"verb": "build", "dataset": "no_such_dataset", "k": 4},
        {"verb": "build", "dataset": "tiny", "k": 4, "z": 3},
        {"verb": "build", "dataset": "tiny", "k": 4, "parallelism": 100000},
        {"verb": "stats"},
    ]
    payload = "".join(json.dumps(r) + "\n" for r in requests)

    proc = subprocess.run([serve], input=payload, capture_output=True,
                          text=True, timeout=300)
    if proc.returncode != 0:
        print(f"fc_serve exited {proc.returncode}: {proc.stderr}",
              file=sys.stderr)
        return 1
    lines = proc.stdout.splitlines()
    if len(lines) != len(requests):
        print(f"expected {len(requests)} response lines, got {len(lines)}:"
              f"\n{proc.stdout}", file=sys.stderr)
        return 1
    responses = [json.loads(line) for line in lines]
    (register, first, second, serial_build, unknown, invalid, over_budget,
     stats) = responses

    failures = []

    def check(condition, message):
        if not condition:
            failures.append(message)

    for i, response in enumerate(responses):
        check(response.get("v") == 1,
              f"response {i} must lead with protocol v=1: {response}")
    check(register.get("ok") and register.get("rows", 0) > 0,
          f"register failed: {register}")
    check(first.get("ok"), f"first build failed: {first}")
    check(first.get("cache") == "miss",
          f"first build should miss the cache: {first}")
    check(first.get("shards") == 2, f"expected 2 shards: {first}")
    check(first.get("parallelism", 0) >= 1,
          f"a rebuild must report its effective parallelism: {first}")
    check(first.get("critical_path_seconds", -1.0) >= 0.0
          and first.get("build_seconds", -1.0) >= 0.0,
          f"rebuild must report both work and critical path: {first}")
    check(len(first.get("shard_windows", [])) == 2,
          f"expected one [start, end] window per shard: {first}")
    check(second.get("ok"), f"second build failed: {second}")
    check(second.get("cache") == "hit",
          f"second build should hit the cache: {second}")
    check(second.get("points_processed") == 0,
          f"a cache hit must not rebuild: {second}")
    check(first.get("coreset_fingerprint")
          == second.get("coreset_fingerprint"),
          "cached coreset is not bit-identical: "
          f"{first.get('coreset_fingerprint')} vs "
          f"{second.get('coreset_fingerprint')}")
    check(serial_build.get("ok") and serial_build.get("parallelism") == 1,
          f"parallelism=1 rebuild should run serially: {serial_build}")
    check(first.get("coreset_fingerprint")
          == serial_build.get("coreset_fingerprint"),
          "scheduler budget changed the bits: "
          f"{first.get('coreset_fingerprint')} vs "
          f"{serial_build.get('coreset_fingerprint')}")
    check(not unknown.get("ok") and unknown.get("code") == "not_found",
          f"unknown dataset should be not_found: {unknown}")
    check(not invalid.get("ok") and invalid.get("code") == "invalid_argument",
          f"z=3 should be invalid_argument: {invalid}")
    check(not over_budget.get("ok")
          and over_budget.get("code") == "invalid_argument",
          f"parallelism=100000 should be invalid_argument: {over_budget}")
    cache = stats.get("cache", {})
    check(stats.get("ok") and cache.get("hits") == 1
          and cache.get("misses") == 1 and cache.get("entries") == 1,
          f"stats disagree with the traffic: {stats}")
    check(stats.get("protocol_version") == 1,
          f"stats must report protocol_version=1: {stats}")
    scheduler = stats.get("scheduler", {})
    check(scheduler.get("graphs_run") == 2,
          f"two rebuilds ran, so two graphs: {stats}")
    check(scheduler.get("tasks_executed") == 6,
          f"each 2-shard rebuild runs 3 nodes (2 shards + merge): {stats}")
    check(scheduler.get("max_concurrent_shards", 0) >= 1
          and scheduler.get("queue_high_water", 0) >= 1,
          f"scheduler high-water counters missing: {stats}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("fc_serve smoke passed: v=1 on every line, register + build x2 "
          "(miss then bit-identical hit) + budget-capped rebuild "
          "(bit-identical) + error responses + stats w/ scheduler totals")
    return 0


if __name__ == "__main__":
    sys.exit(main())
