// API-surface check: a standalone consumer translation unit that includes
// ONLY the umbrella header, exactly like an out-of-tree user would. It
// exercises every facade entry point so that a missing transitive include
// or hidden internal dependency in src/api/ breaks this build — in CI —
// instead of a downstream consumer. Also registered as a ctest smoke test.

#include "src/api/fastcoreset.h"

int main() {
  using namespace fastcoreset;

  // Spec construction with sub-options, validation, and the error model.
  api::CoresetSpec spec;
  spec.method = "fast_coreset";
  spec.k = 4;
  spec.m = 40;
  spec.seed = 7;
  api::FastOptions fast_options;
  fast_options.use_jl = false;
  spec.options = fast_options;
  if (!spec.Validate().ok()) return 1;
  if (!api::ValidateSpec(spec).ok()) return 1;
  api::CoresetSpec bogus;
  bogus.method = "bogus";
  if (api::ValidateSpec(bogus).ok()) return 1;

  // Registry introspection.
  if (!api::Registry::Instance().Contains("stream_km")) return 1;
  if (api::Registry::Instance().Names().size() < 8) return 1;

  // Seed-driven build on a tiny inline dataset + diagnostics.
  Matrix points(40, 2);
  Rng fill(3);
  for (double& x : points.data()) x = fill.Uniform(0.0, 100.0);
  const api::FcStatusOr<api::BuildResult> result = api::Build(spec, points);
  if (!result.ok()) return 1;
  if (result->coreset.size() == 0) return 1;
  if (result->diagnostics.ToString().empty()) return 1;

  // External-rng build, the streaming adapter, and streaming composition.
  Rng rng(11);
  if (!api::Build(spec, points, {}, rng).ok()) return 1;
  const api::FcStatusOr<CoresetBuilder> builder = api::MakeBuilder(spec);
  if (!builder.ok()) return 1;
  StreamingCompressor compressor(builder.value(), 40, &rng);
  compressor.Push(points);
  if (compressor.Finalize().size() == 0) return 1;
  if (!api::BuildStreaming(spec, points, 10).ok()) return 1;

  // The bring-your-own-solution tail.
  Clustering solution;
  solution.centers = Matrix(1, 2);
  solution.assignment.assign(points.rows(), 0);
  solution.point_costs.assign(points.rows(), 1.0);
  solution.total_cost = static_cast<double>(points.rows());
  if (api::SampleFromSolution(points, {}, solution, 10, rng).size() == 0) {
    return 1;
  }
  return 0;
}
