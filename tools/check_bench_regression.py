#!/usr/bin/env python3
"""CI perf-regression gate over bench JSON artifacts.

Compares the "gate" object of freshly produced bench JSONs (e.g.
BENCH_parallel.json, BENCH_service.json) against committed baselines.
Gate metrics are machine-relative speedup ratios (higher is better), so a
uniformly slower CI runner does not fail the build — only a regressed
ratio does. A metric fails when

    current < baseline * (1 - tolerance)

Usage:
    check_bench_regression.py BASELINE CURRENT [BASELINE2 CURRENT2 ...] \
        [--tolerance 0.25]

Files are consumed as baseline/current pairs, so one invocation gates
every bench artifact of a CI run. Exit status: 0 when every gate metric
of every pair is within tolerance, 1 otherwise (also on malformed input).
New metrics present only in a current run are reported but never fail;
metrics present only in a baseline fail, so a bench refactor cannot
silently drop a gated number.
"""

import argparse
import json
import sys


def load_gate(path):
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(1)
    gate = data.get("gate")
    if not isinstance(gate, dict) or not gate:
        print(f"error: {path} has no non-empty 'gate' object", file=sys.stderr)
        sys.exit(1)
    return gate


def check_pair(baseline_path, current_path, tolerance):
    """Returns failure descriptions ("gate:metric (current/baseline
    ratio)") for one baseline/current pair, printing a per-metric
    report."""
    baseline = load_gate(baseline_path)
    current = load_gate(current_path)

    failures = []
    width = max(len(name) for name in baseline | current)
    gate_name = current_path
    print(f"perf gate: {current_path} vs {baseline_path}")
    for name, base_value in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{gate_name}:{name} (missing from current "
                            f"run, baseline {base_value:.3f})")
            print(f"  FAIL {name:<{width}} missing from current run"
                  f" (baseline {base_value:.3f})")
            continue
        value = current[name]
        floor = base_value * (1.0 - tolerance)
        ok = value >= floor
        status = "ok  " if ok else "FAIL"
        print(f"  {status} {name:<{width}} current {value:8.3f}"
              f"  baseline {base_value:8.3f}  floor {floor:8.3f}")
        if not ok:
            ratio = value / base_value if base_value else float("inf")
            failures.append(f"{gate_name}:{name} (current {value:.3f} / "
                            f"baseline {base_value:.3f} = {ratio:.2f}x, "
                            f"floor {floor:.3f})")
    for name in sorted(set(current) - set(baseline)):
        print(f"  new  {name:<{width}} current {current[name]:8.3f}"
              f"  (no baseline; not gated)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", metavar="BASELINE CURRENT",
                        help="baseline/current JSON paths, in pairs")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    if len(args.files) % 2 != 0:
        print("error: files must come in BASELINE CURRENT pairs",
              file=sys.stderr)
        return 1

    print(f"tolerance {args.tolerance:.0%}"
          f" (fail below baseline * {1 - args.tolerance:.2f})")
    failures = []
    for i in range(0, len(args.files), 2):
        failures += check_pair(args.files[i], args.files[i + 1],
                               args.tolerance)

    if failures:
        print(f"perf gate FAILED ({len(failures)} metric(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
