#!/usr/bin/env python3
"""CI perf-regression gate over bench JSON artifacts.

Compares the "gate" object of a freshly produced bench JSON (e.g.
BENCH_parallel.json) against a committed baseline. Gate metrics are
machine-relative speedup ratios (higher is better), so a uniformly slower
CI runner does not fail the build — only a regressed ratio does. A metric
fails when

    current < baseline * (1 - tolerance)

Usage:
    check_bench_regression.py BASELINE CURRENT [--tolerance 0.25]

Exit status: 0 when every gate metric is within tolerance, 1 otherwise
(also on malformed input). New metrics present only in the current run
are reported but never fail; metrics present only in the baseline fail,
so a bench refactor cannot silently drop a gated number.
"""

import argparse
import json
import sys


def load_gate(path):
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(1)
    gate = data.get("gate")
    if not isinstance(gate, dict) or not gate:
        print(f"error: {path} has no non-empty 'gate' object", file=sys.stderr)
        sys.exit(1)
    return gate


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    baseline = load_gate(args.baseline)
    current = load_gate(args.current)

    failures = []
    width = max(len(name) for name in baseline | current)
    print(f"perf gate: tolerance {args.tolerance:.0%}"
          f" (fail below baseline * {1 - args.tolerance:.2f})")
    for name, base_value in sorted(baseline.items()):
        if name not in current:
            failures.append(name)
            print(f"  FAIL {name:<{width}} missing from current run"
                  f" (baseline {base_value:.3f})")
            continue
        value = current[name]
        floor = base_value * (1.0 - args.tolerance)
        ok = value >= floor
        status = "ok  " if ok else "FAIL"
        print(f"  {status} {name:<{width}} current {value:8.3f}"
              f"  baseline {base_value:8.3f}  floor {floor:8.3f}")
        if not ok:
            failures.append(name)
    for name in sorted(set(current) - set(baseline)):
        print(f"  new  {name:<{width}} current {current[name]:8.3f}"
              f"  (no baseline; not gated)")

    if failures:
        print(f"perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
